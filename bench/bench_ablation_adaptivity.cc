// Adaptivity study for §3.3's motivation: "the system's capacity is also
// subject to variations caused by external factors, such as external
// workload imposed on the same server... A desirable solution should be
// able to detect such short-term variations ... and promptly adapt the
// scheduling strategy accordingly."
//
// An external tenant steals a quarter of one node's workers (= 5% of
// cluster capacity) for 20 intervals spanning the deployment, under Zipf
// LowLoad. The feedback-based schedulers measure the work ratio each
// interval and keep their interference budget; the run must stay failure-
// free and complete, merely stretching the deployment.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  std::printf("==== Ablation: adapting to external capacity loss (Sec 3.3) ====\n\n");
  std::printf("%-10s %-12s %-10s %-12s %-14s %-12s %-12s\n", "strategy",
              "disturbance", "rep_done@", "tail_fail", "tail_tput/min",
              "peak_lat_ms", "max_fail");
  int exit_code = 0;
  for (auto strategy : {soap::SchedulingStrategy::kFeedback,
                        soap::SchedulingStrategy::kHybrid}) {
    for (bool disturbed : {false, true}) {
      soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
          strategy, soap::workload::PopularityDist::kZipf,
          /*high_load=*/false, /*alpha=*/1.0);
      if (!soap::bench::FastMode()) {
        config.workload_options.spec.num_templates /= 5;
        config.workload_options.spec.num_keys /= 5;
        config.measured_intervals = 60;
      }
      if (disturbed) {
        config.fault_options.disturbance.enabled = true;
        config.fault_options.disturbance.node = 0;
        config.fault_options.disturbance.start_interval = config.warmup_intervals;
        config.fault_options.disturbance.end_interval = config.warmup_intervals + 20;
        // 25% of one node = 5% of the cluster: enough to squeeze the
        // margin the schedulers work in, not enough to sink the node.
        config.fault_options.disturbance.fraction = 0.25;
      }
      soap::engine::ExperimentResult r =
          soap::engine::Experiment(config).Run();
      std::printf("%-10s %-12s %-10d %-12.3f %-14.0f %-12.0f %-12.3f\n",
                  soap::StrategyName(strategy), disturbed ? "yes" : "no",
                  r.RepartitionCompletedAt(), r.failure_rate.TailMean(10),
                  r.throughput.TailMean(10), r.latency_ms.Max(),
                  r.failure_rate.Max());
      std::fflush(stdout);
      if (disturbed && (!r.plan_completed || r.failure_rate.Max() > 0.1)) {
        exit_code = 1;  // adaptation failed
      }
    }
  }
  std::printf(
      "\n# Expectation: with the disturbance the deployment stretches but\n"
      "# still completes, failures stay near zero, and steady-state\n"
      "# throughput is unaffected once the external load leaves.\n");
  return exit_code;
}
