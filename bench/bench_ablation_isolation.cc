// Validates the paper's §4.1 claim about isolation levels: "higher
// isolation level will decrease the system concurrency and hence lower the
// system's capacity. But it will not affect the performance of our
// algorithms." Runs Hybrid and AfterAll under both read committed and
// serializable (S2PL) and compares capacity and the relative ordering.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using soap::cluster::IsolationLevel;
  std::printf(
      "==== Ablation: isolation level (read committed vs serializable) ====\n\n");
  std::printf("%-16s %-10s %-10s %-14s %-12s %-12s %-10s\n", "isolation",
              "strategy", "rep_done@", "tail_tput/min", "tail_lat_ms",
              "tail_fail", "deadlocks");

  double tput[2][2] = {{0, 0}, {0, 0}};
  int row = 0;
  for (IsolationLevel isolation :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSerializable}) {
    int col = 0;
    for (auto strategy :
         {soap::SchedulingStrategy::kHybrid,
          soap::SchedulingStrategy::kAfterAll}) {
      soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
          strategy, soap::workload::PopularityDist::kZipf,
          /*high_load=*/true, /*alpha=*/1.0);
      if (!soap::bench::FastMode()) {
        config.workload_options.spec.num_templates /= 5;
        config.workload_options.spec.num_keys /= 5;
        config.measured_intervals = 60;
      }
      config.cluster.isolation = isolation;
      soap::engine::ExperimentResult r =
          soap::engine::Experiment(config).Run();
      tput[row][col] = r.throughput.TailMean(10);
      std::printf("%-16s %-10s %-10d %-14.0f %-12.0f %-12.3f %-10llu\n",
                  isolation == IsolationLevel::kReadCommitted
                      ? "read-committed"
                      : "serializable",
                  soap::StrategyName(strategy), r.RepartitionCompletedAt(),
                  r.throughput.TailMean(10), r.latency_ms.TailMean(10),
                  r.failure_rate.TailMean(10),
                  static_cast<unsigned long long>(
                      r.counters.aborts_deadlock));
      std::fflush(stdout);
      ++col;
    }
    ++row;
  }
  std::printf(
      "\n# Claim check: serializable throughput <= read-committed for each\n"
      "# strategy (lower capacity), while Hybrid > AfterAll holds under\n"
      "# BOTH isolation levels (the algorithms' ordering is unaffected).\n");
  const bool capacity_drops = tput[1][0] <= tput[0][0] * 1.02;
  const bool ordering_holds = tput[0][0] > tput[0][1] && tput[1][0] > tput[1][1];
  std::printf("# capacity_drops=%s ordering_holds=%s\n",
              capacity_drops ? "yes" : "NO", ordering_holds ? "yes" : "NO");
  return ordering_holds ? 0 : 1;
}
