// Ablation for §3.1's packaging discussion: Algorithm 1's one-transaction-
// per-benefiting-template heuristic vs the two extremes — one giant
// transaction holding every lock until commit, and one transaction per
// operation maximising per-transaction overhead. Run with the Feedback
// scheduler under Zipf/HighLoad where the trade-off bites hardest.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using soap::core::PackagingMode;
  std::printf("==== Ablation: repartition transaction packaging (Sec 3.1) ====\n\n");

  struct Mode {
    const char* name;
    PackagingMode mode;
  };
  const Mode modes[] = {
      {"per-template (Algorithm 1)", PackagingMode::kPerBenefitingTemplate},
      {"single giant transaction", PackagingMode::kSingleGiantTxn},
      {"one transaction per op", PackagingMode::kPerOperation},
      {"per key range (Sec 2.2)", PackagingMode::kPerKeyRange},
      {"per hash bucket (Sec 2.2)", PackagingMode::kPerHashBucket},
  };

  std::printf("%-28s %-10s %-12s %-14s %-12s %-10s %-12s\n", "packaging",
              "rep_done@", "tail_fail", "tail_tput/min", "tail_lat_ms",
              "deadlocks", "rep_txns");
  for (const Mode& m : modes) {
    soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
        soap::SchedulingStrategy::kFeedback,
        soap::workload::PopularityDist::kZipf, /*high_load=*/true,
        /*alpha=*/1.0);
    if (!soap::bench::FastMode()) {
      // The giant-transaction mode is pathological by design; a reduced
      // horizon keeps the ablation affordable while the contrast is
      // already unmistakable.
      config.workload_options.spec.num_templates /= 5;
      config.workload_options.spec.num_keys /= 5;
      config.measured_intervals = 60;
    }
    config.deployment.packaging = m.mode;
    soap::engine::ExperimentResult r = soap::engine::Experiment(config).Run();
    std::printf("%-28s %-10d %-12.3f %-14.0f %-12.0f %-10llu %-12llu\n",
                m.name, r.RepartitionCompletedAt(),
                r.failure_rate.TailMean(10), r.throughput.TailMean(10),
                r.latency_ms.TailMean(10),
                static_cast<unsigned long long>(r.counters.aborts_deadlock),
                static_cast<unsigned long long>(
                    r.counters.submitted_repartition));
    std::fflush(stdout);
  }
  std::printf(
      "\n# Expectation: per-template completes the plan with low failure\n"
      "# rates. The giant transaction's cost exceeds any per-interval\n"
      "# budget, so the controller can never schedule it under load (and\n"
      "# were it forced through, it would hold every plan key's lock for\n"
      "# its whole lifetime). Per-operation doubles the transaction count\n"
      "# and pays begin/2PC per moved tuple. The Sec 2.2 range/hash\n"
      "# granularities fall in between.\n");
  return 0;
}
