// Ablation for §3.3's controller tuning: the paper runs Kp=1, Ki=0, Kd=0
// tuned via Ziegler-Nichols. Sweeps alternative gain sets on the Feedback
// scheduler (Zipf/HighLoad, alpha=100%) and reports deployment speed vs
// interference.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using soap::core::PidGains;
  using soap::core::ZieglerNichols;
  std::printf("==== Ablation: PID gains for the feedback scheduler (Sec 3.3) ====\n\n");

  struct Case {
    const char* name;
    PidGains gains;
  };
  const Case cases[] = {
      {"paper (Kp=1)", {1.0, 0.0, 0.0}},
      {"soft P (Kp=0.5)", {0.5, 0.0, 0.0}},
      {"aggressive P (Kp=4)", {4.0, 0.0, 0.0}},
      {"PI", {1.0, 0.05, 0.0}},
      {"PD", {1.0, 0.0, 0.5}},
      {"ZN classic (Ku=2,Tu=3)", ZieglerNichols::Classic(2.0, 3.0)},
      {"ZN PI (Ku=2,Tu=3)", ZieglerNichols::PI(2.0, 3.0)},
  };

  std::printf("%-24s %-10s %-12s %-14s %-12s %-14s\n", "gains", "rep_done@",
              "tail_fail", "tail_tput/min", "tail_lat_ms", "mean_PV_ratio");
  for (const Case& c : cases) {
    soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
        soap::SchedulingStrategy::kFeedback,
        soap::workload::PopularityDist::kZipf, /*high_load=*/true,
        /*alpha=*/1.0);
    if (!soap::bench::FastMode()) {
      config.workload_options.spec.num_templates /= 5;
      config.workload_options.spec.num_keys /= 5;
      config.measured_intervals = 60;
    }
    config.deployment.feedback.gains = c.gains;
    soap::engine::ExperimentResult r = soap::engine::Experiment(config).Run();
    double pv = 0.0;
    int n = 0;
    for (size_t i = config.warmup_intervals; i < r.rep_work_ratio.size();
         ++i) {
      if (r.rep_rate.at(i) >= 0.999) break;
      pv += r.rep_work_ratio.at(i);
      ++n;
    }
    std::printf("%-24s %-10d %-12.3f %-14.0f %-12.0f %-14.3f\n", c.name,
                r.RepartitionCompletedAt(), r.failure_rate.TailMean(10),
                r.throughput.TailMean(10), r.latency_ms.TailMean(10),
                n > 0 ? pv / n : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
