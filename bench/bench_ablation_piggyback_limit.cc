// Ablation for §3.4's piggyback limit: "we need to limit the maximum
// number of repartition operations that can piggyback onto each normal
// transaction". Sweeps the per-carrier cap with the Hybrid scheduler under
// Zipf/HighLoad.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  std::printf("==== Ablation: max piggybacked ops per carrier (Sec 3.4) ====\n\n");
  std::printf("%-8s %-10s %-12s %-14s %-12s %-12s %-14s\n", "limit",
              "rep_done@", "tail_fail", "tail_tput/min", "tail_lat_ms",
              "pgy_ops", "carrier_aborts");
  for (uint32_t limit : {0u, 1u, 2u, 4u, 8u, 16u}) {
    soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
        soap::SchedulingStrategy::kHybrid,
        soap::workload::PopularityDist::kZipf, /*high_load=*/true,
        /*alpha=*/1.0);
    if (!soap::bench::FastMode()) {
      config.workload_options.spec.num_templates /= 5;
      config.workload_options.spec.num_keys /= 5;
      config.measured_intervals = 60;
    }
    config.deployment.piggyback.max_ops_per_carrier = limit;
    soap::engine::ExperimentResult r = soap::engine::Experiment(config).Run();
    std::printf("%-8u %-10d %-12.3f %-14.0f %-12.0f %-12llu %-14llu\n",
                limit, r.RepartitionCompletedAt(),
                r.failure_rate.TailMean(10), r.throughput.TailMean(10),
                r.latency_ms.TailMean(10),
                static_cast<unsigned long long>(r.piggybacked_ops),
                static_cast<unsigned long long>(
                    r.counters.piggyback_carrier_aborts));
    std::fflush(stdout);
  }
  std::printf(
      "\n# limit=0 disables piggybacking entirely (pure feedback module);\n"
      "# small limits piggyback the 2-op migrations of this workload,\n"
      "# larger limits change nothing because Algorithm 1's per-template\n"
      "# transactions carry at most a handful of operations.\n");
  return 0;
}
