// Adaptive repartitioning under drift: compares the one-shot static plan
// (the paper's pipeline — optimizer plan deployed once at the end of
// warmup) against continuous co-access-graph planning (src/planner/) on
// three drifting workloads, across all five scheduling strategies. The
// headline gate: under hotspot drift, continuous planning must reach a
// strictly lower steady-state distributed-transaction ratio AND a higher
// committed throughput than the static plan for at least 3 of the 5
// strategies — otherwise the exit code is 1.
//
// Usage: bench_adaptive [--smoke] [--threads N] [--seed S] [--json PATH]
// SOAP_BENCH_FAST=1 (or --smoke) shrinks the grid for CI smoke runs.
// Output is byte-identical at any --threads value and per-seed
// reproducible.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/parallel_runner.h"

namespace {

using soap::engine::ExperimentConfig;
using soap::engine::ExperimentResult;
using soap::workload::WorkloadSpec;

struct Scenario {
  const char* name;
  /// Applies the drift phases to a base spec.
  WorkloadSpec (*drift)(const WorkloadSpec&, uint32_t first, uint32_t phases,
                        uint32_t phase_len);
  /// The acceptance gate runs on this scenario only.
  bool gated;
  /// Offered load relative to pre-repartitioning capacity. Hotspot runs
  /// near saturation: rotation-induced node imbalance is the effect under
  /// test, and at the paper's 1.30 overload the unbounded backlog delays
  /// commits by many intervals, decoupling the measured tail from the
  /// live phase. The other scenarios keep the paper's 1.30 overload,
  /// where their capacity effects (skew width, pair churn) are visible.
  double utilization;
};

soap::workload::WorkloadSpec Hotspot(const WorkloadSpec& base, uint32_t first,
                                     uint32_t phases, uint32_t phase_len) {
  return WorkloadSpec::HotspotDrift(base, first, phases, phase_len);
}
WorkloadSpec Skew(const WorkloadSpec& base, uint32_t first, uint32_t phases,
                  uint32_t phase_len) {
  return WorkloadSpec::SkewFlip(base, first, phases, phase_len);
}
WorkloadSpec Mix(const WorkloadSpec& base, uint32_t first, uint32_t phases,
                 uint32_t phase_len) {
  return WorkloadSpec::MixRotation(base, first, phases, phase_len);
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  uint64_t seed = 42;
  std::string json_path = "adaptive_matrix.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  const bool fast = smoke || soap::bench::FastMode();
  const unsigned threads = soap::bench::BenchThreads(argc, argv);

  // Drift geometry: phases start right after warmup and rotate the hot
  // set every phase_len intervals; the tail of the last phase is the
  // steady state the gate measures.
  const uint32_t warmup = fast ? 2 : 3;
  const uint32_t num_phases = 3;
  const uint32_t phase_len = 8;
  const uint32_t measured = num_phases * phase_len;
  // Steady state = the tail of the last phase, after the planner has had
  // time to chase the final drift step.
  const size_t tail_n = phase_len / 2;

  const std::vector<Scenario> scenarios = {
      {"hotspot", &Hotspot, true, 0.95},
      {"skewflip", &Skew, false, 1.30},
      {"mixrotation", &Mix, false, 1.30},
  };

  std::printf("==== Adaptive repartitioning under drift ====\n");
  std::printf("(seed=%llu, %s grid: %u phases x %u intervals after %u "
              "warmup)\n\n",
              static_cast<unsigned long long>(seed), fast ? "fast" : "full",
              num_phases, phase_len, warmup);
  std::printf("%-12s %-10s %-9s %-12s %-12s %-10s %-7s %-6s\n", "scenario",
              "strategy", "mode", "dist_ratio", "tput/min", "gens", "plans",
              "audit");

  std::vector<soap::engine::ExperimentCell> cells;
  for (const Scenario& scenario : scenarios) {
    for (auto strategy : soap::bench::AllStrategies()) {
      for (int adaptive = 0; adaptive < 2; ++adaptive) {
        ExperimentConfig config = soap::bench::MakeCellConfig(
            strategy, soap::workload::PopularityDist::kZipf,
            /*high_load=*/true, /*alpha=*/1.0, seed);
        config.workload_options.utilization = scenario.utilization;
        config.workload_options.spec.num_keys = fast ? 5'000 : 20'000;
        config.workload_options.spec.num_templates = fast ? 200 : 800;
        config.warmup_intervals = warmup;
        config.measured_intervals = measured;
        config.workload_options.spec = scenario.drift(config.workload_options.spec, warmup, num_phases,
                                         phase_len);
        if (adaptive == 1) {
          config.planner_options.enabled = true;
          config.planner_options.replan_period = 2;
          config.planner_options.min_plan_ops = 8;
        }
        cells.push_back(soap::engine::ExperimentCell{std::move(config)});
      }
    }
  }
  std::vector<soap::engine::CellOutcome> outcomes =
      soap::engine::ParallelRunner(threads).Run(std::move(cells));

  std::ostringstream json;
  json << "{\n  \"seed\": " << seed << ",\n  \"scenarios\": [\n";
  int exit_code = 0;
  size_t cell_index = 0;
  bool first_scenario = true;
  for (const Scenario& scenario : scenarios) {
    if (!first_scenario) json << ",\n";
    first_scenario = false;
    json << "    {\"scenario\": \"" << scenario.name
         << "\", \"strategies\": [";
    int wins = 0;
    bool first_strategy = true;
    for (auto strategy : soap::bench::AllStrategies()) {
      const ExperimentResult& stat = outcomes[cell_index++].result;
      const ExperimentResult& adap = outcomes[cell_index++].result;
      const double stat_dist = stat.distributed_ratio.TailMean(tail_n);
      const double adap_dist = adap.distributed_ratio.TailMean(tail_n);
      const double stat_tput = stat.throughput.TailMean(tail_n);
      const double adap_tput = adap.throughput.TailMean(tail_n);
      const bool win = adap_dist < stat_dist && adap_tput > stat_tput;
      if (win) ++wins;

      std::printf("%-12s %-10s %-9s %-12.4f %-12.0f %-10llu %-7llu %-6s\n",
                  scenario.name, soap::StrategyName(strategy), "static",
                  stat_dist, stat_tput,
                  static_cast<unsigned long long>(stat.plan_generations),
                  0ULL, stat.audit.ok() ? "ok" : "FAIL");
      std::printf("%-12s %-10s %-9s %-12.4f %-12.0f %-10llu %-7llu %-6s%s\n",
                  scenario.name, soap::StrategyName(strategy), "adaptive",
                  adap_dist, adap_tput,
                  static_cast<unsigned long long>(adap.plan_generations),
                  static_cast<unsigned long long>(
                      adap.planner_stats.plans_emitted),
                  adap.audit.ok() ? "ok" : "FAIL", win ? "  <- win" : "");
      std::fflush(stdout);

      if (!stat.audit.ok() || !adap.audit.ok() || !stat.drained ||
          !adap.drained) {
        exit_code = 1;
      }

      if (!first_strategy) json << ", ";
      first_strategy = false;
      json << "{\"strategy\": \"" << soap::StrategyName(strategy)
           << "\", \"static\": {\"distributed_ratio\": " << Num(stat_dist)
           << ", \"tail_throughput_txn_min\": " << Num(stat_tput)
           << ", \"generations\": " << stat.plan_generations
           << ", \"audit_ok\": " << (stat.audit.ok() ? "true" : "false")
           << "}, \"adaptive\": {\"distributed_ratio\": " << Num(adap_dist)
           << ", \"tail_throughput_txn_min\": " << Num(adap_tput)
           << ", \"generations\": " << adap.plan_generations
           << ", \"plans_emitted\": " << adap.planner_stats.plans_emitted
           << ", \"ops_emitted\": " << adap.planner_stats.ops_emitted
           << ", \"last_cut_weight\": " << adap.planner_stats.last_cut_weight
           << ", \"audit_ok\": " << (adap.audit.ok() ? "true" : "false")
           << "}, \"adaptive_wins\": " << (win ? "true" : "false") << "}";
    }
    json << "], \"wins\": " << wins << ", \"gated\": "
         << (scenario.gated ? "true" : "false") << "}";

    std::printf("  -> %s: adaptive wins %d/5%s\n", scenario.name, wins,
                scenario.gated ? " (gate: >=3)" : "");
    if (scenario.gated && wins < 3) exit_code = 1;
  }
  json << "\n  ]\n}\n";

  std::printf("\n==== JSON ====\n%s", json.str().c_str());
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  std::printf(
      "\n# Reading the report: 'dist_ratio' is the steady-state fraction of\n"
      "# committed transactions spanning >1 partition (tail of the last\n"
      "# drift phase). A 'win' = the continuous planner beat the one-shot\n"
      "# static plan on BOTH distributed ratio (lower) and committed\n"
      "# throughput (higher). Exit code 1 if the hotspot gate (<3/5 wins)\n"
      "# or any audit/drain fails.\n");
  return exit_code;
}
