#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "src/common/flags.h"
#include "src/engine/flag_table.h"
#include "src/engine/parallel_runner.h"

namespace soap::bench {

double Table1Sp(SchedulingStrategy strategy,
                workload::PopularityDist distribution, bool high_load,
                double alpha) {
  using workload::PopularityDist;
  const bool zipf = distribution == PopularityDist::kZipf;
  // Index the alpha column: 1.0 -> 0, 0.6 -> 1, 0.2 -> 2.
  const int col = alpha > 0.8 ? 0 : (alpha > 0.4 ? 1 : 2);
  if (strategy == SchedulingStrategy::kFeedback) {
    if (high_load) {
      if (zipf) return (col == 2) ? 1.1 : 1.05;
      return 1.25;
    }
    if (zipf) {
      const double values[3] = {1.05, 1.03, 1.015};
      return values[col];
    }
    const double values[3] = {1.02, 1.03, 1.02};
    return values[col];
  }
  if (strategy == SchedulingStrategy::kHybrid) {
    if (high_load) {
      if (zipf) return 1.05;
      const double values[3] = {1.05, 1.05, 1.05};
      return values[col];
    }
    if (zipf) {
      const double values[3] = {1.05, 1.03, 1.05};
      return values[col];
    }
    const double values[3] = {1.03, 1.05, 1.05};
    return values[col];
  }
  return 1.05;  // unused by the other strategies
}

bool FastMode() {
  // getenv is surprisingly hot when every MakeCellConfig call pays it, and
  // the answer cannot change mid-process: resolve once.
  static const bool fast = [] {
    const char* env = std::getenv("SOAP_BENCH_FAST");
    return env != nullptr && env[0] == '1';
  }();
  return fast;
}

unsigned BenchThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return engine::ParseThreadCount(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return engine::ParseThreadCount(argv[i] + 10);
    }
  }
  return engine::ParseThreadCount(std::getenv("SOAP_BENCH_THREADS"));
}

engine::ExperimentConfig MakeCellConfig(SchedulingStrategy strategy,
                                        workload::PopularityDist distribution,
                                        bool high_load, double alpha,
                                        uint64_t seed) {
  engine::ExperimentConfig config;
  config.workload_options.spec = distribution == workload::PopularityDist::kZipf
                        ? workload::WorkloadSpec::Zipf(alpha)
                        : workload::WorkloadSpec::Uniform(alpha);
  config.workload_options.utilization = high_load ? workload::kHighLoadUtilization
                                 : workload::kLowLoadUtilization;
  config.deployment.strategy = strategy;
  config.deployment.feedback.sp = Table1Sp(strategy, distribution, high_load, alpha);
  config.seed = seed;
  if (FastMode()) {
    config.workload_options.spec.num_templates /= 10;
    config.workload_options.spec.num_keys /= 10;
    config.warmup_intervals = 5;
    config.measured_intervals = 30;
  }
  // SOAP_OBS_DIR=<dir> makes every cell export its observability bundle
  // (<dir>/<strategy>_<dist>_<load>_a<pct>.{prom,jsonl,trace.json,
  // audit.jsonl,timeline.jsonl}); SOAP_TRACE_SAMPLE overrides the
  // 1-in-100 trace sampling. Off by default so the figures run exactly
  // the unobserved path.
  std::string stem = StrategyName(strategy);
  stem += distribution == workload::PopularityDist::kZipf ? "_zipf"
                                                          : "_uniform";
  stem += high_load ? "_high" : "_low";
  stem += "_a" + std::to_string(static_cast<int>(alpha * 100.0 + 0.5));
  ApplyObsEnv(&config, stem);
  return config;
}

void ApplyObsEnv(engine::ExperimentConfig* config, const std::string& stem) {
  const char* obs_dir = std::getenv("SOAP_OBS_DIR");
  if (obs_dir == nullptr || obs_dir[0] == '\0') return;
  const std::string base = std::string(obs_dir) + "/" + stem;
  config->obs.metrics_out = base + ".prom";
  config->obs.metrics_jsonl_out = base + ".jsonl";
  config->obs.trace_out = base + ".trace.json";
  config->obs.audit_out = base + ".audit.jsonl";
  config->obs.timeline_out = base + ".timeline.jsonl";
  config->obs.trace_sample = 100;
  const char* sample = std::getenv("SOAP_TRACE_SAMPLE");
  if (sample != nullptr && sample[0] != '\0') {
    config->obs.trace_sample =
        static_cast<uint32_t>(std::strtoul(sample, nullptr, 10));
  }
}

const std::vector<SchedulingStrategy>& AllStrategies() {
  static const std::vector<SchedulingStrategy> strategies = {
      SchedulingStrategy::kApplyAll, SchedulingStrategy::kAfterAll,
      SchedulingStrategy::kFeedback, SchedulingStrategy::kPiggyback,
      SchedulingStrategy::kHybrid};
  return strategies;
}

std::vector<PanelResult> RunPanel(workload::PopularityDist distribution,
                                  bool high_load,
                                  const std::vector<double>& alphas,
                                  unsigned threads) {
  const size_t per_row = AllStrategies().size();
  if (threads <= 1) {
    // Serial path: byte-for-byte the historical loop (CPU-clock timing and
    // all) so default runs remain directly comparable with old logs.
    std::vector<PanelResult> panel;
    for (double alpha : alphas) {
      PanelResult row;
      row.alpha = alpha;
      for (SchedulingStrategy strategy : AllStrategies()) {
        engine::ExperimentConfig config =
            MakeCellConfig(strategy, distribution, high_load, alpha);
        const std::clock_t t0 = std::clock();
        engine::Experiment experiment(config);
        row.per_strategy.push_back(experiment.Run());
        const double secs =
            static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;
        const engine::ExperimentResult& r = row.per_strategy.back();
        std::printf("# ran %-9s alpha=%.0f%%: %.1fs wall, %llu events, %s\n",
                    StrategyName(strategy), alpha * 100.0, secs,
                    static_cast<unsigned long long>(r.events_executed),
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      }
      panel.push_back(std::move(row));
    }
    return panel;
  }

  // Parallel path: one cell per (alpha, strategy), fanned across the pool.
  // Progress lines stream in input order as cells complete, with true
  // wall-clock per cell.
  std::vector<engine::ExperimentCell> cells;
  cells.reserve(alphas.size() * per_row);
  for (double alpha : alphas) {
    for (SchedulingStrategy strategy : AllStrategies()) {
      cells.push_back(engine::ExperimentCell{
          MakeCellConfig(strategy, distribution, high_load, alpha)});
    }
  }
  engine::ParallelRunner runner(threads);
  std::vector<engine::CellOutcome> outcomes =
      runner.Run(std::move(cells), [&](const engine::CellOutcome& outcome) {
        const size_t row = outcome.index / per_row;
        const size_t col = outcome.index % per_row;
        const engine::ExperimentResult& r = outcome.result;
        std::printf("# ran %-9s alpha=%.0f%%: %.1fs wall, %llu events, %s\n",
                    StrategyName(AllStrategies()[col]), alphas[row] * 100.0,
                    outcome.wall_seconds,
                    static_cast<unsigned long long>(r.events_executed),
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      });
  std::vector<PanelResult> panel;
  for (size_t row = 0; row < alphas.size(); ++row) {
    PanelResult out;
    out.alpha = alphas[row];
    for (size_t col = 0; col < per_row; ++col) {
      out.per_strategy.push_back(
          std::move(outcomes[row * per_row + col].result));
    }
    panel.push_back(std::move(out));
  }
  return panel;
}

namespace {

const Series& MetricOf(const engine::ExperimentResult& r,
                       const std::string& metric) {
  if (metric == "rep_rate") return r.rep_rate;
  if (metric == "throughput") return r.throughput;
  if (metric == "latency_ms") return r.latency_ms;
  if (metric == "failure_rate") return r.failure_rate;
  if (metric == "queue_length") return r.queue_length;
  std::fprintf(stderr, "unknown metric %s\n", metric.c_str());
  std::abort();
}

}  // namespace

void PrintMetric(const std::vector<PanelResult>& panel,
                 const std::string& metric, const std::string& title,
                 const std::string& csv_prefix, size_t stride) {
  for (const PanelResult& row : panel) {
    char subtitle[256];
    std::snprintf(subtitle, sizeof(subtitle), "%s, alpha=%.0f%%",
                  title.c_str(), row.alpha * 100.0);
    SeriesBundle bundle(subtitle);
    for (size_t i = 0; i < row.per_strategy.size(); ++i) {
      bundle.Insert(std::string(StrategyName(AllStrategies()[i])),
                    MetricOf(row.per_strategy[i], metric));
    }
    std::printf("%s\n", bundle.ToTable(stride).c_str());
    const bool log_scale = metric == "latency_ms";
    std::printf("%s\n", bundle.ToAsciiChart(12, log_scale).c_str());
    char csv_path[256];
    std::snprintf(csv_path, sizeof(csv_path), "%s_a%.0f.csv",
                  csv_prefix.c_str(), row.alpha * 100.0);
    Status s = bundle.WriteCsv(csv_path);
    if (!s.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", s.ToString().c_str());
    }
  }
}

void PrintPanelSummary(const std::vector<PanelResult>& panel) {
  std::printf(
      "# %-9s %-6s %-12s %-14s %-12s %-12s %-10s\n", "strategy", "alpha",
      "rep_done@", "tail_tput/min", "tail_lat_ms", "tail_fail", "pgy_ops");
  for (const PanelResult& row : panel) {
    for (size_t i = 0; i < row.per_strategy.size(); ++i) {
      const engine::ExperimentResult& r = row.per_strategy[i];
      std::printf("# %-9s %-6.0f %-12d %-14.0f %-12.0f %-12.3f %-10llu\n",
                  StrategyName(AllStrategies()[i]), row.alpha * 100.0,
                  r.RepartitionCompletedAt(), r.throughput.TailMean(10),
                  r.latency_ms.TailMean(10), r.failure_rate.TailMean(10),
                  static_cast<unsigned long long>(r.piggybacked_ops));
    }
  }
  std::printf("\n");
}

int RunFigureMain(workload::PopularityDist distribution, bool high_load,
                  const char* figure_name, const char* description,
                  int argc, char** argv) {
  // The figure benches take only presentation flags, but they share the
  // generated --help and the unknown-flag near-miss check with soap_run.
  engine::FlagTable table({
      {"threads", engine::FlagType::kInt, "1",
       "run cells on N parallel threads (results are identical at any "
       "thread count; SOAP_BENCH_THREADS also works)",
       nullptr},
      {"help", engine::FlagType::kBool, "", "this text", nullptr},
  });
  if (argv != nullptr) {
    Result<Flags> parsed = Flags::Parse(argc, argv);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 2;
    }
    if (parsed->GetBool("help")) {
      std::printf("%s", table.Help(figure_name, description).c_str());
      return 0;
    }
    if (Status s = table.CheckUnknown(*parsed); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  std::printf("==== %s: %s ====\n", figure_name, description);
  std::printf("# scale: %s\n\n",
              FastMode() ? "FAST (SOAP_BENCH_FAST=1, ~10x reduced)"
                         : "full (paper dimensions, Section 4.1)");
  std::vector<PanelResult> panel =
      RunPanel(distribution, high_load, {1.0, 0.6, 0.2},
               BenchThreads(argc, argv));
  std::printf("\n");
  const std::string prefix = figure_name;
  PrintMetric(panel, "rep_rate", std::string(figure_name) + " RepRate",
              prefix + "_reprate");
  PrintMetric(panel, "throughput",
              std::string(figure_name) + " Throughput (txn/min)",
              prefix + "_throughput");
  PrintMetric(panel, "latency_ms",
              std::string(figure_name) + " Latency (ms)",
              prefix + "_latency");
  PrintMetric(panel, "failure_rate",
              std::string(figure_name) + " Failure rate",
              prefix + "_failure");
  PrintPanelSummary(panel);
  for (const PanelResult& row : panel) {
    for (const engine::ExperimentResult& r : row.per_strategy) {
      if (!r.audit.ok()) {
        std::fprintf(stderr, "consistency audit FAILED: %s\n",
                     r.audit.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace soap::bench
