// Shared harness for the figure benches: runs one evaluation panel
// (workload distribution x load level) across all five strategies and the
// paper's alpha sweep, at the paper's full scale, and prints the series
// each figure plots plus CSV dumps for external plotting.

#ifndef SOAP_BENCH_BENCH_COMMON_H_
#define SOAP_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/engine/experiment.h"

namespace soap::bench {

/// The SP values of Table 1, keyed by (strategy, distribution, load,
/// alpha). Only Feedback and Hybrid consume an SP; other strategies get
/// the default.
double Table1Sp(SchedulingStrategy strategy,
                workload::PopularityDist distribution, bool high_load,
                double alpha);

/// Scale knob: SOAP_BENCH_FAST=1 in the environment shrinks the workload
/// and the horizon ~10x for smoke runs. Full scale reproduces §4.1:
/// 500,000 tuples, 23,457/30,000 templates, 10 + 125 intervals of 20 s.
/// The environment is read once and cached (benches call this per cell).
bool FastMode();

/// Worker-thread count for panel runs: `--threads N` (or `--threads=N`)
/// from argv, else SOAP_BENCH_THREADS, else 1. Cells are independent
/// experiments, so any thread count produces identical results; see
/// engine::ParallelRunner.
unsigned BenchThreads(int argc, char** argv);

/// Builds the full §4.1 configuration for one experiment cell.
engine::ExperimentConfig MakeCellConfig(SchedulingStrategy strategy,
                                        workload::PopularityDist distribution,
                                        bool high_load, double alpha,
                                        uint64_t seed = 42);

/// Applies the SOAP_OBS_DIR observability-export convention to an
/// arbitrary cell config: when the variable is set, the cell writes
/// <dir>/<stem>.{prom,jsonl,trace.json,audit.jsonl,timeline.jsonl}.
/// No-op when unset, keeping the default path unobserved. Used by benches
/// that build their configs outside MakeCellConfig (e.g. bench_replica).
void ApplyObsEnv(engine::ExperimentConfig* config, const std::string& stem);

struct PanelResult {
  double alpha;
  std::vector<engine::ExperimentResult> per_strategy;  // 5 entries
};

/// All five strategies ordered as the paper's legends list them.
const std::vector<SchedulingStrategy>& AllStrategies();

/// Runs one (distribution, load) panel for the given alphas. Prints a
/// progress line per run (always in run order). `threads > 1` fans the
/// independent cells across an engine::ParallelRunner pool; results and
/// output ordering are identical at any thread count.
std::vector<PanelResult> RunPanel(workload::PopularityDist distribution,
                                  bool high_load,
                                  const std::vector<double>& alphas,
                                  unsigned threads = 1);

/// Prints the per-interval series for one metric across strategies, one
/// table per alpha, and writes "<csv_prefix>_a<alpha>.csv".
void PrintMetric(const std::vector<PanelResult>& panel,
                 const std::string& metric,  // rep_rate | throughput |
                                             // latency_ms | failure_rate
                 const std::string& title, const std::string& csv_prefix,
                 size_t stride = 5);

/// One-line closing summary per (alpha, strategy): completion interval,
/// tail throughput/latency/failure — the quantities EXPERIMENTS.md quotes.
void PrintPanelSummary(const std::vector<PanelResult>& panel);

/// Whole-figure driver for Figures 4-7: one (distribution, load) panel,
/// alpha in {100%, 60%, 20%}, printing the figure's three rows (RepRate,
/// throughput, latency) plus the failure-rate series and a summary.
/// Returns a process exit code.
int RunFigureMain(workload::PopularityDist distribution, bool high_load,
                  const char* figure_name, const char* description,
                  int argc = 0, char** argv = nullptr);

}  // namespace soap::bench

#endif  // SOAP_BENCH_BENCH_COMMON_H_
