// Fault-tolerance matrix: each of the five scheduling strategies runs the
// same Zipf workload under a grid of injected fault scenarios, and its
// degradation against the fault-free baseline is reported — throughput,
// tail latency, failure rate and repartition completion. The output ends
// with a machine-readable JSON block (also written to fault_matrix.json)
// so CI and plotting scripts can track regressions in the self-healing
// deployment path.
//
// SOAP_BENCH_FAST=1 shrinks the grid for smoke runs.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/parallel_runner.h"

namespace {

struct Scenario {
  const char* name;
  const char* spec;  // empty = fault-free baseline
  /// Transient faults (crashes that heal) must not stop the deployment.
  /// Persistent message loss may legitimately starve the lazy strategies
  /// — they only spend idle capacity, and the loss-induced backlog leaves
  /// none — so completion is not required there.
  bool require_completion;
};

std::string JsonEscapeless(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using soap::engine::ExperimentConfig;
  using soap::engine::ExperimentResult;

  const bool fast = soap::bench::FastMode();
  const unsigned threads = soap::bench::BenchThreads(argc, argv);
  // Crashes land mid-deployment: repartitioning starts at the end of the
  // warmup, and the crash window opens one interval later.
  const std::vector<Scenario> scenarios = {
      {"none", "", true},
      {"crash", "crash:node=1,at=80s,down=20s", true},
      {"drop1pct", "drop:p=0.01", false},
      {"crash+drop", "crash:node=1,at=80s,down=20s;drop:p=0.005", false},
      {"double_crash",
       "crash:node=1,at=80s,down=20s;crash:node=3,at=140s,down=20s", true},
  };

  std::printf("==== Fault matrix: degradation by strategy x scenario ====\n\n");
  std::printf("%-10s %-13s %-10s %-12s %-12s %-10s %-9s %-9s %-9s\n",
              "strategy", "scenario", "rep_done@", "tput/min", "p99_ms",
              "fail_max", "crashes", "audit", "check");

  // One cell per (strategy, scenario); independent, so the grid fans out
  // across the pool. Ordered streaming keeps the report rows (and the
  // baseline-first dependency inside each strategy block) intact at any
  // thread count.
  std::vector<soap::engine::ExperimentCell> cells;
  for (auto strategy : soap::bench::AllStrategies()) {
    for (const Scenario& scenario : scenarios) {
      ExperimentConfig config = soap::bench::MakeCellConfig(
          strategy, soap::workload::PopularityDist::kZipf,
          /*high_load=*/false, /*alpha=*/1.0);
      config.workload_options.spec.num_keys = fast ? 5'000 : 20'000;
      config.workload_options.spec.num_templates = fast ? 200 : 800;
      config.warmup_intervals = fast ? 2 : 3;
      config.measured_intervals = fast ? 6 : 12;
      config.fault_options.spec = scenario.spec;
      // Every cell runs with the consistency checker on: the matrix is
      // exactly the fault surface the checker exists to guard, and the
      // JSON verdict below feeds the chaos-smoke CI job.
      config.check.enabled = true;
      cells.push_back(soap::engine::ExperimentCell{std::move(config)});
    }
  }
  std::vector<soap::engine::CellOutcome> outcomes =
      soap::engine::ParallelRunner(threads).Run(std::move(cells));

  std::ostringstream json;
  json << "{\n  \"strategies\": [\n";
  int exit_code = 0;
  bool first_strategy = true;
  size_t cell_index = 0;
  for (auto strategy : soap::bench::AllStrategies()) {
    double baseline_tput = 0.0;
    double baseline_p99 = 0.0;
    if (!first_strategy) json << ",\n";
    first_strategy = false;
    json << "    {\"strategy\": \"" << soap::StrategyName(strategy)
         << "\", \"scenarios\": [";
    bool first_scenario = true;
    for (const Scenario& scenario : scenarios) {
      const ExperimentResult& r = outcomes[cell_index++].result;

      const double tput = r.throughput.TailMean(3);
      const double p99 = r.latency_p99_ms.Max();
      const double fail_max = r.failure_rate.Max();
      if (scenario.spec[0] == '\0') {
        baseline_tput = tput;
        baseline_p99 = p99;
      }
      const double tput_ratio =
          baseline_tput > 0.0 ? tput / baseline_tput : 0.0;
      const double p99_ratio = baseline_p99 > 0.0 ? p99 / baseline_p99 : 0.0;

      std::printf(
          "%-10s %-13s %-10d %-12.0f %-12.0f %-10.3f %-9llu %-9s %-9s\n",
          soap::StrategyName(strategy), scenario.name,
          r.RepartitionCompletedAt(), tput, p99, fail_max,
          static_cast<unsigned long long>(r.faults_crashes),
          r.audit.ok() ? "ok" : "FAIL",
          r.check_report.ok() ? "ok" : "FAIL");
      std::fflush(stdout);

      if (!first_scenario) json << ", ";
      first_scenario = false;
      json << "{\"scenario\": \"" << scenario.name << "\", \"spec\": \""
           << scenario.spec << "\", \"tail_throughput_txn_min\": "
           << JsonEscapeless(tput)
           << ", \"throughput_vs_baseline\": " << JsonEscapeless(tput_ratio)
           << ", \"p99_ms\": " << JsonEscapeless(p99)
           << ", \"p99_vs_baseline\": " << JsonEscapeless(p99_ratio)
           << ", \"failure_rate_max\": " << JsonEscapeless(fail_max)
           << ", \"rep_completed_at\": " << r.RepartitionCompletedAt()
           << ", \"crashes\": " << r.faults_crashes
           << ", \"msgs_dropped\": " << r.faults_msgs_dropped
           << ", \"tpc_resends\": " << r.tpc_stats.resends
           << ", \"aborts_node_crash\": " << r.counters.aborts_node_crash
           << ", \"audit_ok\": " << (r.audit.ok() ? "true" : "false")
           << ", \"check_ok\": " << (r.check_report.ok() ? "true" : "false")
           << ", \"check_violations\": "
           << r.check_report.violations.size()
           << ", \"drained\": " << (r.drained ? "true" : "false") << "}";

      // The self-healing bar: every faulted run must stay consistent and
      // drain; transient-fault runs must still finish the plan.
      if (!r.audit.ok() || !r.check_report.ok() || !r.drained) exit_code = 1;
      if (scenario.require_completion && !r.plan_completed) exit_code = 1;
    }
    json << "]}";
  }
  json << "\n  ]\n}\n";

  std::printf("\n==== JSON ====\n%s", json.str().c_str());
  if (FILE* f = std::fopen("fault_matrix.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("# wrote fault_matrix.json\n");
  }
  std::printf(
      "\n# Reading the report: throughput_vs_baseline ~ 1.0 and a bounded\n"
      "# p99_vs_baseline mean the strategy absorbed the faults; audit_ok,\n"
      "# check_ok and drained must be true everywhere, else the exit code\n"
      "# is 1.\n");
  return exit_code;
}
