// Reproduces Figure 3: transaction failure rate over time for all five
// strategies at alpha = 100% — the four panels (a) Zipf/High,
// (b) Uniform/High, (c) Zipf/Low, (d) Uniform/Low.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using soap::workload::PopularityDist;
  struct Panel {
    const char* name;
    PopularityDist dist;
    bool high;
  };
  const Panel panels[] = {
      {"fig3a Zipf/High", PopularityDist::kZipf, true},
      {"fig3b Uniform/High", PopularityDist::kUniform, true},
      {"fig3c Zipf/Low", PopularityDist::kZipf, false},
      {"fig3d Uniform/Low", PopularityDist::kUniform, false},
  };
  std::printf("==== fig3: Transaction Failure Rate (alpha=100%%) ====\n");
  std::printf("# scale: %s\n\n",
              soap::bench::FastMode()
                  ? "FAST (SOAP_BENCH_FAST=1, ~10x reduced)"
                  : "full (paper dimensions, Section 4.1)");
  int exit_code = 0;
  for (const Panel& panel : panels) {
    std::printf("---- %s ----\n", panel.name);
    auto results = soap::bench::RunPanel(panel.dist, panel.high, {1.0},
                                         soap::bench::BenchThreads(argc, argv));
    std::string csv = std::string("fig3_") +
                      (panel.dist == PopularityDist::kZipf ? "zipf" : "uni") +
                      (panel.high ? "_high" : "_low");
    soap::bench::PrintMetric(results, "failure_rate",
                             std::string(panel.name) + " failure rate", csv);
    soap::bench::PrintPanelSummary(results);
    for (const auto& row : results) {
      for (const auto& r : row.per_strategy) {
        if (!r.audit.ok()) exit_code = 1;
      }
    }
  }
  return exit_code;
}
