// Reproduces Figure 3: transaction failure rate over time for all five
// strategies at alpha = 100% — the four panels (a) Zipf/High,
// (b) Uniform/High, (c) Zipf/Low, (d) Uniform/Low.
//
// --cc-compare appends a fifth section that reruns the Zipf/High panel at
// serializable isolation under both concurrency-control engines
// (--cc=2pl and --cc=mvcc) and prints the failure-rate curves side by
// side. The default invocation never runs it, so the golden figure CSVs
// are byte-identical with or without the MVCC subsystem compiled in.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/parallel_runner.h"

namespace {

bool CcCompareRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cc-compare") == 0 ||
        std::strcmp(argv[i], "--cc_compare") == 0) {
      return true;
    }
  }
  return false;
}

// Zipf/High at alpha=100%, serializable with a 200ms OLTP lock deadline,
// five strategies x {2pl, mvcc}. Prints the overall and read-side
// (lock-timeout aborts per completed transaction) failure rates — the
// read-side column is the curve MVCC flattens.
int RunCcComparison(unsigned threads) {
  using namespace soap;
  std::printf("---- fig3cc Zipf/High @ serializable: 2pl vs mvcc ----\n");
  std::vector<engine::ExperimentCell> cells;
  for (SchedulingStrategy strategy : bench::AllStrategies()) {
    engine::ExperimentConfig two_pl = bench::MakeCellConfig(
        strategy, workload::PopularityDist::kZipf, /*high_load=*/true,
        /*alpha=*/1.0);
    two_pl.cluster.isolation = cluster::IsolationLevel::kSerializable;
    two_pl.cluster.costs.lock_timeout = Millis(200);
    engine::ExperimentConfig mvcc_cfg = two_pl;
    mvcc_cfg.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
    cells.push_back(engine::ExperimentCell{two_pl});
    cells.push_back(engine::ExperimentCell{mvcc_cfg});
  }
  engine::ParallelRunner runner(threads);
  std::vector<engine::CellOutcome> outcomes = runner.Run(
      std::move(cells), [](const engine::CellOutcome& outcome) {
        const engine::ExperimentResult& r = outcome.result;
        std::printf("# ran %-9s %-5s: %.1fs wall, %s\n",
                    r.strategy_name.c_str(),
                    r.mvcc_enabled ? "mvcc" : "2pl", outcome.wall_seconds,
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      });

  int exit_code = 0;
  std::printf("\n# %-9s %-11s %-11s %-11s %-11s %-8s\n", "strategy",
              "readf_2pl", "readf_mvcc", "fail_2pl", "fail_mvcc",
              "mvcc_win");
  int wins = 0;
  for (size_t i = 0; i < soap::bench::AllStrategies().size(); ++i) {
    const engine::ExperimentResult& two_pl = outcomes[2 * i].result;
    const engine::ExperimentResult& mv = outcomes[2 * i + 1].result;
    if (!two_pl.audit.ok() || !mv.audit.ok()) exit_code = 1;
    auto read_fail = [](const engine::ExperimentResult& r) {
      const uint64_t completed =
          r.counters.committed_normal + r.counters.aborted_normal;
      return completed > 0
                 ? static_cast<double>(r.counters.aborts_lock_timeout) /
                       static_cast<double>(completed)
                 : 0.0;
    };
    const double readf_2pl = read_fail(two_pl);
    const double readf_mvcc = read_fail(mv);
    const bool win = readf_mvcc < readf_2pl;
    wins += win ? 1 : 0;
    std::printf("# %-9s %-11.4f %-11.4f %-11.4f %-11.4f %-8s\n",
                two_pl.strategy_name.c_str(), readf_2pl, readf_mvcc,
                two_pl.failure_rate.TailMean(10),
                mv.failure_rate.TailMean(10), win ? "yes" : "no");
  }
  std::printf("# mvcc lowers the read-side failure rate on %d/5 "
              "strategies\n\n", wins);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  using soap::workload::PopularityDist;
  struct Panel {
    const char* name;
    PopularityDist dist;
    bool high;
  };
  const Panel panels[] = {
      {"fig3a Zipf/High", PopularityDist::kZipf, true},
      {"fig3b Uniform/High", PopularityDist::kUniform, true},
      {"fig3c Zipf/Low", PopularityDist::kZipf, false},
      {"fig3d Uniform/Low", PopularityDist::kUniform, false},
  };
  std::printf("==== fig3: Transaction Failure Rate (alpha=100%%) ====\n");
  std::printf("# scale: %s\n\n",
              soap::bench::FastMode()
                  ? "FAST (SOAP_BENCH_FAST=1, ~10x reduced)"
                  : "full (paper dimensions, Section 4.1)");
  int exit_code = 0;
  for (const Panel& panel : panels) {
    std::printf("---- %s ----\n", panel.name);
    auto results = soap::bench::RunPanel(panel.dist, panel.high, {1.0},
                                         soap::bench::BenchThreads(argc, argv));
    std::string csv = std::string("fig3_") +
                      (panel.dist == PopularityDist::kZipf ? "zipf" : "uni") +
                      (panel.high ? "_high" : "_low");
    soap::bench::PrintMetric(results, "failure_rate",
                             std::string(panel.name) + " failure rate", csv);
    soap::bench::PrintPanelSummary(results);
    for (const auto& row : results) {
      for (const auto& r : row.per_strategy) {
        if (!r.audit.ok()) exit_code = 1;
      }
    }
  }
  if (CcCompareRequested(argc, argv)) {
    const int cc_exit =
        RunCcComparison(soap::bench::BenchThreads(argc, argv));
    if (cc_exit != 0) exit_code = cc_exit;
  }
  return exit_code;
}
