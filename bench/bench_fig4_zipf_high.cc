// Reproduces Figure 4: Zipf workload under HighLoad (130% of capacity).
// Rows: RepRate (4a-c), throughput txn/min (4d-f), latency ms (4g-i),
// for alpha in {100%, 60%, 20%} across all five scheduling strategies.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return soap::bench::RunFigureMain(
      soap::workload::PopularityDist::kZipf, /*high_load=*/true, "fig4",
      "Zipf High Workload (RepRate / Throughput / Latency, alpha sweep)",
      argc, argv);
}
