// Reproduces Figure 5: uniform workload under HighLoad (130% of capacity).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return soap::bench::RunFigureMain(
      soap::workload::PopularityDist::kUniform, /*high_load=*/true, "fig5",
      "Uniform High Workload (RepRate / Throughput / Latency, alpha sweep)",
      argc, argv);
}
