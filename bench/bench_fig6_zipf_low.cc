// Reproduces Figure 6: Zipf workload under LowLoad (65% utilisation).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return soap::bench::RunFigureMain(
      soap::workload::PopularityDist::kZipf, /*high_load=*/false, "fig6",
      "Zipf Low Workload (RepRate / Throughput / Latency, alpha sweep)",
      argc, argv);
}
