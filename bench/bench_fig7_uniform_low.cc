// Reproduces Figure 7: uniform workload under LowLoad (65% utilisation).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return soap::bench::RunFigureMain(
      soap::workload::PopularityDist::kUniform, /*high_load=*/false, "fig7",
      "Uniform Low Workload (RepRate / Throughput / Latency, alpha sweep)",
      argc, argv);
}
