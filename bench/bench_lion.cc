// bench_lion: adaptive replica provisioning (lion) versus the static
// replica-aware planner on a drifting affinity-hub workload.
//
// Workload: Zipf with 20% writes and a partition-affinity hub — every
// paired transaction homed on partition p borrows the keys of one fixed
// hot reference template homed on p's neighbour, so each hub key has an
// owner partition (reads from the template that owns it) and exactly one
// borrower partition. Phase 1 is read-only borrowing: both planners
// answer with a fan-in copy on the borrower and keep the primary with the
// owner. Phase 2 rotates template popularity (the owners go cold) and
// turns a slice of the borrowed accesses into writes. That wedges the
// static replica-aware planner (PR 5) into a corner it cannot leave:
// migrating the primary to the borrower is vetoed because a copy already
// lives there, the borrower's copy is kept by read hysteresis, and a
// primary can never be dropped — so every borrowed write 2PCs across the
// stranded primary and the borrower's copy forever. Lion prices
// migrate-vs-replicate-vs-leader-shift per key from one candidate pool:
// the borrower partition dominates the key's windowed write sources, the
// leader *shifts* onto the existing copy at zero move cost, and the next
// sweep retires the faded owner's copy — borrowed writes go single-node.
//
// Headline metrics, per strategy: the tail distributed-transaction ratio
// (lower = more work went local) and the tail distributed-*write* ratio
// (lower = write-hot keys went single-node), plus applied shift counts
// and budget activity.
//
//   bench_lion [--smoke] [--json PATH] [--threads N]
//
// --smoke shrinks the scale ~4x and gates only on mechanics (shifts
// emitted and applied, clean audits); the full run additionally requires
// lion to beat the static replica planner's tail distributed ratio on
// >= 3 of 5 strategies.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/flags.h"
#include "src/engine/flag_table.h"
#include "src/engine/parallel_runner.h"

namespace {

using namespace soap;

engine::ExperimentConfig BaseConfig(bool smoke) {
  engine::ExperimentConfig config;
  // alpha = 0.2: a modest initial repartitioning backlog. The paper's
  // alpha = 1.0 floods every plan generation with the 2-keys-per-template
  // migration storm, and the slow-deploying strategies then never get the
  // hub copies placed before the drift — this bench measures placement
  // *policy* under drift, not backlog scheduling.
  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(/*alpha=*/0.2);
  spec.num_templates = smoke ? 1'000 : 4'000;
  spec.num_keys = smoke ? 25'000 : 100'000;
  spec.write_fraction = 0.2;  // enough writes that leadership placement matters

  // Phase 1 (interval 0): stationary affinity-hub pairing — each
  // partition's paired transactions read the keys of one hot reference
  // template homed on the neighbouring partition. Hot owner + one steady
  // borrower puts both planners in the split-reader state: primary with
  // the owner, fan-in copy on the borrower.
  workload::DriftPhase pairing;
  pairing.start_interval = 0;
  pairing.rotation = 0;
  pairing.zipf_s = spec.zipf_s;
  pairing.pair_fraction = 0.35;
  pairing.pair_hub = config.cluster.num_nodes;
  pairing.pair_affinity = true;
  spec.phases.push_back(pairing);

  // Phase 2 (mid-window): popularity rotates away from the hub owners,
  // and an eighth of the borrowed accesses become writes. The borrower
  // partition — unchanged by rotation, because affinity pairing keys the
  // hub off the issuing partition — is now each hub key's only reader and
  // its dominant write source; the owner-side primary is stranded dead
  // weight only a leader shift can unseat.
  workload::DriftPhase drift = pairing;
  drift.start_interval = smoke ? 10 : 18;
  drift.rotation = smoke ? 250 : 1'000;
  drift.pair_write = 0.125;
  spec.phases.push_back(drift);
  config.workload_options.spec = spec;

  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.warmup_intervals = smoke ? 3 : 5;
  // The slow-deploying strategies replan only when the previous plan has
  // fully deployed (a new generation every ~4-5 intervals); the
  // shift-then-retire sequence needs two post-drift generations plus
  // deployment, so the measured window leaves them that runway.
  config.measured_intervals = smoke ? 25 : 60;
  config.seed = 42;
  config.planner_options.enabled = true;
  // The rotation kick floods a single plan generation (every template's
  // stranded remote keys go hot at once); the default per-generation op
  // cap would displace cooler migrates behind lion's extra shift/drop
  // ops and measure cap scheduling instead of placement policy.
  config.planner_options.builder.max_ops = 8192;
  // Both modes get the static replica machinery; lion builds on top of it.
  config.replicas.enabled = true;
  config.replicas.max_copies = config.cluster.num_nodes;
  return config;
}

engine::ExperimentConfig WithLion(engine::ExperimentConfig config) {
  config.lion.enabled = true;
  return config;
}

struct StrategyOutcome {
  std::string name;
  double dist_tail_static = 0.0;
  double dist_tail_lion = 0.0;
  double dist_write_tail_static = 0.0;
  double dist_write_tail_lion = 0.0;
  uint64_t shifts_emitted = 0;
  uint64_t shifts_applied = 0;
  uint64_t evictions = 0;
  uint64_t denials = 0;
  bool win = false;
};

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  engine::FlagTable table({
      {"smoke", engine::FlagType::kBool, "off",
       "CI scale: ~4x smaller, mechanical gates only", nullptr},
      {"json", engine::FlagType::kString, "",
       "write the outcome table as a JSON artifact", nullptr},
      {"threads", engine::FlagType::kInt, "1",
       "run cells on N parallel threads (identical results at any count)",
       nullptr},
      {"help", engine::FlagType::kBool, "", "this text", nullptr},
  });
  if (parsed->GetBool("help")) {
    std::printf("%s", table.Help("bench_lion",
                                 "adaptive replica provisioning + leader "
                                 "shifting vs the static replica planner")
                          .c_str());
    return 0;
  }
  if (Status s = table.CheckUnknown(*parsed); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const bool smoke = parsed->GetBool("smoke");
  const std::string json_path = parsed->GetString("json", "");
  const unsigned threads = engine::ParseThreadCount(
      parsed->GetString("threads", "").c_str());

  std::printf("==== bench_lion: adaptive provisioning vs static replicas "
              "====\n");
  std::printf("# scale: %s\n\n", smoke ? "SMOKE (~4x reduced)" : "full");

  // One cell pair per strategy: static replica planner first, lion second.
  std::vector<engine::ExperimentCell> cells;
  for (SchedulingStrategy strategy : bench::AllStrategies()) {
    engine::ExperimentConfig stat = BaseConfig(smoke);
    stat.deployment.strategy = strategy;
    engine::ExperimentConfig lion = WithLion(stat);
    bench::ApplyObsEnv(&stat,
                       std::string(StrategyName(strategy)) + "_static");
    bench::ApplyObsEnv(&lion, std::string(StrategyName(strategy)) + "_lion");
    cells.push_back(engine::ExperimentCell{stat});
    cells.push_back(engine::ExperimentCell{lion});
  }
  engine::ParallelRunner runner(threads);
  std::vector<engine::CellOutcome> outcomes = runner.Run(
      std::move(cells), [&](const engine::CellOutcome& outcome) {
        const engine::ExperimentResult& r = outcome.result;
        std::printf("# ran %-9s %-7s: %.1fs wall, %s\n",
                    r.strategy_name.c_str(),
                    r.lion_enabled ? "lion" : "static", outcome.wall_seconds,
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      });

  int exit_code = 0;
  std::vector<StrategyOutcome> results;
  for (size_t i = 0; i < bench::AllStrategies().size(); ++i) {
    const engine::ExperimentResult& stat = outcomes[2 * i].result;
    const engine::ExperimentResult& lion = outcomes[2 * i + 1].result;
    if (!stat.audit.ok() || !lion.audit.ok()) exit_code = 1;
    StrategyOutcome out;
    out.name = stat.strategy_name;
    out.dist_tail_static = stat.distributed_ratio.TailMean(10);
    out.dist_tail_lion = lion.distributed_ratio.TailMean(10);
    out.dist_write_tail_static = stat.distributed_write_ratio.TailMean(10);
    out.dist_write_tail_lion = lion.distributed_write_ratio.TailMean(10);
    out.shifts_emitted = lion.planner_stats.leader_shifts_emitted;
    out.shifts_applied = lion.counters.leader_shifts_applied;
    out.evictions = lion.planner_stats.replicas_evicted_budget;
    out.denials = lion.planner_stats.replica_budget_denials;
    out.win = out.dist_tail_lion < out.dist_tail_static;
    results.push_back(out);
  }

  std::printf("\n# %-9s %-12s %-12s %-5s %-13s %-13s %-8s %-8s %-7s %-7s\n",
              "strategy", "dist_static", "dist_lion", "win", "dwrite_static",
              "dwrite_lion", "emitted", "applied", "evict", "deny");
  int wins = 0;
  uint64_t total_shifts_applied = 0;
  uint64_t total_shifts_emitted = 0;
  for (const StrategyOutcome& out : results) {
    std::printf(
        "# %-9s %-12.4f %-12.4f %-5s %-13.4f %-13.4f %-8llu %-8llu %-7llu "
        "%-7llu\n",
        out.name.c_str(), out.dist_tail_static, out.dist_tail_lion,
        out.win ? "yes" : "no", out.dist_write_tail_static,
        out.dist_write_tail_lion,
        static_cast<unsigned long long>(out.shifts_emitted),
        static_cast<unsigned long long>(out.shifts_applied),
        static_cast<unsigned long long>(out.evictions),
        static_cast<unsigned long long>(out.denials));
    wins += out.win ? 1 : 0;
    total_shifts_applied += out.shifts_applied;
    total_shifts_emitted += out.shifts_emitted;
  }
  std::printf("# lion wins %d/5 on tail distributed ratio; %llu leader "
              "shifts applied\n\n",
              wins, static_cast<unsigned long long>(total_shifts_applied));

  // --- Gates.
  if (total_shifts_emitted == 0) {
    std::fprintf(stderr, "GATE: the planner never emitted a leader shift\n");
    exit_code = 1;
  }
  if (total_shifts_applied == 0) {
    std::fprintf(stderr, "GATE: no leader shift was ever applied\n");
    exit_code = 1;
  }
  if (!smoke && wins < 3) {
    std::fprintf(stderr, "GATE: lion won only %d/5 strategies\n", wins);
    exit_code = 1;
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"scale\": \"%s\",\n  \"strategies\": [\n",
                 smoke ? "smoke" : "full");
    for (size_t i = 0; i < results.size(); ++i) {
      const StrategyOutcome& out = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"dist_tail_static\": %.6f, "
          "\"dist_tail_lion\": %.6f, \"win\": %s, "
          "\"dist_write_tail_static\": %.6f, \"dist_write_tail_lion\": %.6f, "
          "\"shifts_emitted\": %llu, \"shifts_applied\": %llu, "
          "\"evictions\": %llu, \"denials\": %llu}%s\n",
          out.name.c_str(), out.dist_tail_static, out.dist_tail_lion,
          out.win ? "true" : "false", out.dist_write_tail_static,
          out.dist_write_tail_lion,
          static_cast<unsigned long long>(out.shifts_emitted),
          static_cast<unsigned long long>(out.shifts_applied),
          static_cast<unsigned long long>(out.evictions),
          static_cast<unsigned long long>(out.denials),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"wins\": %d,\n  \"shifts_applied\": %llu\n}\n",
                 wins,
                 static_cast<unsigned long long>(total_shifts_applied));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return exit_code;
}
