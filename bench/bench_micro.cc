// Component microbenchmarks (google-benchmark): lock manager, routing
// table/query router, samplers, simulator event loop, and the processing
// queue. These bound the per-event costs the discrete-event runs pay.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/cluster/processing_queue.h"
#include "src/common/random.h"
#include "src/router/query_parser.h"
#include "src/router/query_router.h"
#include "src/sim/simulator.h"
#include "src/txn/lock_manager.h"

namespace {

using soap::Rng;
using soap::ZipfSampler;

void BM_LockAcquireReleaseUncontended(benchmark::State& state) {
  soap::txn::LockManager lm;
  soap::txn::TxnId id = 1;
  uint64_t key = 0;
  for (auto _ : state) {
    lm.Acquire(id, key, soap::txn::LockMode::kExclusive, [] {});
    lm.ReleaseAll(id);
    ++id;
    key = (key + 1) % 1024;
  }
}
BENCHMARK(BM_LockAcquireReleaseUncontended);

void BM_LockContendedQueueGrant(benchmark::State& state) {
  // One holder, one waiter, release grants: the hot-key path.
  soap::txn::LockManager lm;
  soap::txn::TxnId id = 1;
  for (auto _ : state) {
    const soap::txn::TxnId a = id++;
    const soap::txn::TxnId b = id++;
    lm.Acquire(a, 7, soap::txn::LockMode::kExclusive, [] {});
    lm.Acquire(b, 7, soap::txn::LockMode::kExclusive, [] {});
    lm.ReleaseAll(a);  // grants b
    lm.ReleaseAll(b);
  }
}
BENCHMARK(BM_LockContendedQueueGrant);

void BM_DeadlockCheckDepth(benchmark::State& state) {
  // A chain of N waiters; every new Acquire runs the cycle check over it.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    soap::txn::LockManager lm;
    for (int i = 0; i < depth; ++i) {
      lm.Acquire(i + 1, i, soap::txn::LockMode::kExclusive, [] {});
    }
    for (int i = 1; i < depth; ++i) {
      lm.Acquire(i, i - 1 + 1000000, soap::txn::LockMode::kExclusive, [] {});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lm.Acquire(depth, depth - 1, soap::txn::LockMode::kExclusive, [] {}));
  }
}
BENCHMARK(BM_DeadlockCheckDepth)->Arg(4)->Arg(16)->Arg(64);

void BM_RoutingLookup(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  for (uint64_t k = 0; k < 500'000; ++k) {
    (void)rt.SetPrimary(k, static_cast<uint32_t>(k % 5));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.GetPrimary(rng.NextUint64(500'000)));
  }
}
BENCHMARK(BM_RoutingLookup);

void BM_RoutingMigrate(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  for (uint64_t k = 0; k < 500'000; ++k) {
    (void)rt.SetPrimary(k, 0);
  }
  uint64_t key = 0;
  uint32_t from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.Migrate(key, from, from + 1));
    key = (key + 1) % 500'000;
    if (key == 0) ++from;
  }
}
BENCHMARK(BM_RoutingMigrate);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(soap::router::QueryParser::Parse(
        "UPDATE t SET content = 42 WHERE key = 123456"));
  }
}
BENCHMARK(BM_QueryParse);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfSampler zipf(23'457, 1.16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_PoissonSample(benchmark::State& state) {
  Rng rng(1);
  const double mean = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextPoisson(mean));
  }
}
BENCHMARK(BM_PoissonSample)->Arg(20)->Arg(8000);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    soap::sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.At(i, [] {});
    }
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_ProcessingQueuePushPop(benchmark::State& state) {
  soap::cluster::ProcessingQueue q;
  for (auto _ : state) {
    auto t = std::make_unique<soap::txn::Transaction>();
    t->id = 1;
    t->priority = soap::txn::TxnPriority::kNormal;
    q.Push(std::move(t));
    benchmark::DoNotOptimize(q.Pop());
  }
}
BENCHMARK(BM_ProcessingQueuePushPop);

}  // namespace

BENCHMARK_MAIN();
