// Component microbenchmarks (google-benchmark): lock manager, routing
// table/query router, samplers, simulator event loop, and the processing
// queue. These bound the per-event costs the discrete-event runs pay.
//
// Besides the normal google-benchmark CLI, the binary has a machine-
// readable mode for CI perf tracking:
//
//   bench_micro --json [path]         measure the event-loop suite and
//                                     write bench_results/BENCH_micro.json
//                                     (or `path`)
//   bench_micro --json --baseline f   additionally compare against a
//                                     previous JSON and exit non-zero on a
//                                     >25% throughput regression
//
// The JSON suite times the simulator event loop (drain + steady-state),
// cancel throughput, and a fast-scale figure panel serially and on
// min(4, host cores) ParallelRunner threads.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/processing_queue.h"
#include "src/common/random.h"
#include "src/engine/parallel_runner.h"
#include "src/router/query_parser.h"
#include "src/router/query_router.h"
#include "src/sim/simulator.h"
#include "src/txn/lock_manager.h"

namespace {

using soap::Rng;
using soap::ZipfSampler;

void BM_LockAcquireReleaseUncontended(benchmark::State& state) {
  soap::txn::LockManager lm;
  soap::txn::TxnId id = 1;
  uint64_t key = 0;
  for (auto _ : state) {
    lm.Acquire(id, key, soap::txn::LockMode::kExclusive, [] {});
    lm.ReleaseAll(id);
    ++id;
    key = (key + 1) % 1024;
  }
}
BENCHMARK(BM_LockAcquireReleaseUncontended);

void BM_LockContendedQueueGrant(benchmark::State& state) {
  // One holder, one waiter, release grants: the hot-key path.
  soap::txn::LockManager lm;
  soap::txn::TxnId id = 1;
  for (auto _ : state) {
    const soap::txn::TxnId a = id++;
    const soap::txn::TxnId b = id++;
    lm.Acquire(a, 7, soap::txn::LockMode::kExclusive, [] {});
    lm.Acquire(b, 7, soap::txn::LockMode::kExclusive, [] {});
    lm.ReleaseAll(a);  // grants b
    lm.ReleaseAll(b);
  }
}
BENCHMARK(BM_LockContendedQueueGrant);

void BM_DeadlockCheckDepth(benchmark::State& state) {
  // A chain of N waiters; every new Acquire runs the cycle check over it.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    soap::txn::LockManager lm;
    for (int i = 0; i < depth; ++i) {
      lm.Acquire(i + 1, i, soap::txn::LockMode::kExclusive, [] {});
    }
    for (int i = 1; i < depth; ++i) {
      lm.Acquire(i, i - 1 + 1000000, soap::txn::LockMode::kExclusive, [] {});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lm.Acquire(depth, depth - 1, soap::txn::LockMode::kExclusive, [] {}));
  }
}
BENCHMARK(BM_DeadlockCheckDepth)->Arg(4)->Arg(16)->Arg(64);

void BM_RoutingLookup(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  for (uint64_t k = 0; k < 500'000; ++k) {
    (void)rt.SetPrimary(k, static_cast<uint32_t>(k % 5));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.GetPrimary(rng.NextUint64(500'000)));
  }
}
BENCHMARK(BM_RoutingLookup);

// The three lookup shapes of the interval table: a pure round-robin range
// hit (the bulk-load layout — one entry, owner = key % modulus), a point-
// exception hit (migrated keys living in the overlay), and the legacy
// dense path (every key SetPrimary'd with no base range, i.e. the
// all-exception representation the dense table degenerated to).
void BM_RoutingLookupRangeHit(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  (void)rt.AssignRoundRobin(0, 500'000, 5);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.GetPrimary(rng.NextUint64(500'000)));
  }
}
BENCHMARK(BM_RoutingLookupRangeHit);

void BM_RoutingLookupExceptionHit(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  (void)rt.AssignRoundRobin(0, 500'000, 5);
  // Move 50k keys off their round-robin owner: all land in the overlay.
  for (uint64_t k = 0; k < 500'000; k += 10) {
    (void)rt.SetPrimary(k, static_cast<uint32_t>((k + 1) % 5));
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.GetPrimary(rng.NextUint64(50'000) * 10));
  }
}
BENCHMARK(BM_RoutingLookupExceptionHit);

void BM_RoutingMigrate(benchmark::State& state) {
  soap::router::RoutingTable rt(500'000);
  for (uint64_t k = 0; k < 500'000; ++k) {
    (void)rt.SetPrimary(k, 0);
  }
  uint64_t key = 0;
  uint32_t from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.Migrate(key, from, from + 1));
    key = (key + 1) % 500'000;
    if (key == 0) ++from;
  }
}
BENCHMARK(BM_RoutingMigrate);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(soap::router::QueryParser::Parse(
        "UPDATE t SET content = 42 WHERE key = 123456"));
  }
}
BENCHMARK(BM_QueryParse);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfSampler zipf(23'457, 1.16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_PoissonSample(benchmark::State& state) {
  Rng rng(1);
  const double mean = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextPoisson(mean));
  }
}
BENCHMARK(BM_PoissonSample)->Arg(20)->Arg(8000);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    soap::sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.At(i, [] {});
    }
    state.ResumeTiming();
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_ProcessingQueuePushPop(benchmark::State& state) {
  soap::cluster::ProcessingQueue q;
  for (auto _ : state) {
    auto t = std::make_unique<soap::txn::Transaction>();
    t->id = 1;
    t->priority = soap::txn::TxnPriority::kNormal;
    q.Push(std::move(t));
    benchmark::DoNotOptimize(q.Pop());
  }
}
BENCHMARK(BM_ProcessingQueuePushPop);

// --- Machine-readable perf suite (--json mode) -------------------------

double MedianOf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// ns/event draining a pre-seeded 10k-event queue (the BM_SimulatorEventLoop
/// shape), median over `reps`.
double MeasureDrainNsPerEvent(int reps) {
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    soap::sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) sim.At(i, [] {});
    const auto t0 = std::chrono::steady_clock::now();
    sim.Run();
    samples.push_back(SecondsSince(t0) * 1e9 / 10'000.0);
  }
  return MedianOf(std::move(samples));
}

/// ns/event with self-rescheduling callbacks at a steady queue depth — the
/// pattern experiment runs actually produce (schedule/execute interleaved).
double MeasureSteadyStateNsPerEvent(int reps) {
  struct State {
    soap::sim::Simulator* sim;
    long remaining;
    uint64_t mix;
  };
  struct Fire {
    State* st;
    void operator()() {
      if (--st->remaining <= 0) return;
      st->mix = st->mix * 6364136223846793005ull + 1442695040888963407ull;
      st->sim->After(1 + (st->mix >> 33) % 200, Fire{st});
    }
  };
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    soap::sim::Simulator sim;
    State st{&sim, 1'000'000, 0x9e3779b97f4a7c15ull};
    for (int i = 0; i < 1'000; ++i) sim.At(i, Fire{&st});
    const auto t0 = std::chrono::steady_clock::now();
    sim.Run();
    samples.push_back(SecondsSince(t0) * 1e9 /
                      static_cast<double>(sim.events_executed()));
  }
  return MedianOf(std::move(samples));
}

/// ns per Cancel of a pending far-future event, median over `reps`.
double MeasureCancelNs(int reps) {
  const int kN = 200'000;
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    soap::sim::Simulator sim;
    std::vector<soap::sim::EventId> ids;
    ids.reserve(kN);
    for (int i = 0; i < kN; ++i) ids.push_back(sim.After(1'000'000 + i, [] {}));
    const auto t0 = std::chrono::steady_clock::now();
    for (soap::sim::EventId id : ids) sim.Cancel(id);
    samples.push_back(SecondsSince(t0) * 1e9 / kN);
  }
  return MedianOf(std::move(samples));
}

/// ns per routing GetPrimary for one of the three table shapes (see the
/// BM_RoutingLookup* comments), median over `reps`.
enum class RoutingShape { kRangeHit, kExceptionHit, kDensePath };

double MeasureRoutingLookupNs(RoutingShape shape, int reps) {
  constexpr uint64_t kKeys = 500'000;
  constexpr uint64_t kLookups = 2'000'000;
  soap::router::RoutingTable rt(kKeys);
  if (shape == RoutingShape::kDensePath) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      (void)rt.SetPrimary(k, static_cast<uint32_t>(k % 5));
    }
  } else {
    (void)rt.AssignRoundRobin(0, kKeys, 5);
    if (shape == RoutingShape::kExceptionHit) {
      for (uint64_t k = 0; k < kKeys; k += 10) {
        (void)rt.SetPrimary(k, static_cast<uint32_t>((k + 1) % 5));
      }
    }
  }
  std::vector<double> samples;
  for (int rep = 0; rep < reps; ++rep) {
    Rng rng(1 + rep);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kLookups; ++i) {
      const uint64_t key = shape == RoutingShape::kExceptionHit
                               ? rng.NextUint64(kKeys / 10) * 10
                               : rng.NextUint64(kKeys);
      benchmark::DoNotOptimize(rt.GetPrimary(key));
    }
    samples.push_back(SecondsSince(t0) * 1e9 / kLookups);
  }
  return MedianOf(std::move(samples));
}

/// Fast-scale fig4-style panel (alpha sweep x 5 strategies) wall-clock at
/// the given thread count. Scale mirrors SOAP_BENCH_FAST without needing
/// the environment variable.
double MeasurePanelSeconds(unsigned threads) {
  std::vector<soap::engine::ExperimentCell> cells;
  for (double alpha : {1.0, 0.6, 0.2}) {
    for (soap::SchedulingStrategy strategy : soap::bench::AllStrategies()) {
      soap::engine::ExperimentConfig config = soap::bench::MakeCellConfig(
          strategy, soap::workload::PopularityDist::kZipf,
          /*high_load=*/true, alpha);
      config.workload_options.spec.num_templates = 2'345;
      config.workload_options.spec.num_keys = 50'000;
      config.warmup_intervals = 2;
      config.measured_intervals = 6;
      cells.push_back(soap::engine::ExperimentCell{std::move(config)});
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  soap::engine::ParallelRunner(threads).Run(std::move(cells));
  return SecondsSince(t0);
}

/// Minimal extractor for the flat JSON this binary writes: finds
/// `"key": <number>` anywhere in `text`. Returns 0.0 when absent.
double JsonNumber(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

int RunJsonMode(const std::string& out_path, const std::string& baseline) {
  const double drain_ns = MeasureDrainNsPerEvent(151);
  const double steady_ns = MeasureSteadyStateNsPerEvent(5);
  const double cancel_ns = MeasureCancelNs(9);
  const double route_range_ns =
      MeasureRoutingLookupNs(RoutingShape::kRangeHit, 5);
  const double route_exc_ns =
      MeasureRoutingLookupNs(RoutingShape::kExceptionHit, 5);
  const double route_dense_ns =
      MeasureRoutingLookupNs(RoutingShape::kDensePath, 5);
  const double panel_serial_s = MeasurePanelSeconds(1);
  // Panel speedup scales with min(threads, cores); measuring 4 threads on
  // a 1-core host would just report scheduler overhead. Record the host
  // core count so readers can interpret the ratio.
  const unsigned host_cpus =
      std::max(1u, std::thread::hardware_concurrency());
  const unsigned panel_threads = std::min(4u, host_cpus);
  const double panel_par_s = panel_threads > 1 ? MeasurePanelSeconds(panel_threads)
                                               : panel_serial_s;

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"schema\": \"soap-bench-micro-v1\",\n"
       << "  \"host_cpus\": " << host_cpus << ",\n"
       << "  \"event_loop_events_per_sec\": " << 1e9 / drain_ns << ",\n"
       << "  \"event_loop_ns_per_event\": " << drain_ns << ",\n"
       << "  \"steady_state_events_per_sec\": " << 1e9 / steady_ns << ",\n"
       << "  \"steady_state_ns_per_event\": " << steady_ns << ",\n"
       << "  \"cancel_per_sec\": " << 1e9 / cancel_ns << ",\n"
       << "  \"cancel_ns\": " << cancel_ns << ",\n"
       << "  \"routing_range_hit_per_sec\": " << 1e9 / route_range_ns << ",\n"
       << "  \"routing_range_hit_ns\": " << route_range_ns << ",\n"
       << "  \"routing_exception_hit_per_sec\": " << 1e9 / route_exc_ns
       << ",\n"
       << "  \"routing_exception_hit_ns\": " << route_exc_ns << ",\n"
       << "  \"routing_dense_path_per_sec\": " << 1e9 / route_dense_ns
       << ",\n"
       << "  \"routing_dense_path_ns\": " << route_dense_ns << ",\n"
       << "  \"panel_fast_serial_seconds\": " << panel_serial_s << ",\n"
       << "  \"panel_fast_parallel_threads\": " << panel_threads << ",\n"
       << "  \"panel_fast_parallel_seconds\": " << panel_par_s << ",\n"
       << "  \"panel_fast_speedup\": "
       << (panel_par_s > 0.0 ? panel_serial_s / panel_par_s : 0.0) << "\n"
       << "}\n";

  std::filesystem::path path(out_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  out << json.str();
  out.close();
  std::printf("%s", json.str().c_str());
  std::printf("# wrote %s\n", out_path.c_str());

  if (baseline.empty()) return 0;
  std::ifstream in(baseline);
  if (!in) {
    std::fprintf(stderr, "baseline %s unreadable\n", baseline.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string base = buf.str();
  struct Gate {
    const char* key;
    double current;
  };
  // Throughput gates: fail when current drops below 75% of the baseline.
  const Gate gates[] = {
      {"event_loop_events_per_sec", 1e9 / drain_ns},
      {"steady_state_events_per_sec", 1e9 / steady_ns},
      {"cancel_per_sec", 1e9 / cancel_ns},
      {"routing_range_hit_per_sec", 1e9 / route_range_ns},
      {"routing_exception_hit_per_sec", 1e9 / route_exc_ns},
      {"routing_dense_path_per_sec", 1e9 / route_dense_ns},
  };
  int exit_code = 0;
  for (const Gate& gate : gates) {
    const double was = JsonNumber(base, gate.key);
    if (was <= 0.0) continue;
    const double ratio = gate.current / was;
    std::printf("# gate %-28s %.3gx baseline%s\n", gate.key, ratio,
                ratio < 0.75 ? "  REGRESSION" : "");
    if (ratio < 0.75) exit_code = 1;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "bench_results/BENCH_micro.json";
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return RunJsonMode(json_path, baseline);
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
