// bench_mvcc: MVCC snapshot reads versus 2PL shared locks on a
// read-heavy hub workload at serializable isolation.
//
// Workload: Zipf, 10% writes, with a stationary pair_hub phase from
// interval 0: a fraction of transactions additionally read keys of a
// small hub of hot templates, so every partition keeps re-reading the
// same contended keys. Under serializable 2PL those reads take shared
// locks and queue behind writers — at high load they time out and abort.
// Under --cc=mvcc the same reads come off version-chain snapshots without
// ever touching the lock manager, so the read-side failure rate falls;
// writers still lock and pay first-updater-wins conflicts instead.
//
// For each of the five scheduling strategies the bench runs the same
// configuration twice — 2PL first, then MVCC — and reports the pair. The
// headline metric is the READ-SIDE failure rate: lock-timeout aborts per
// completed transaction. On this read-heavy workload lock-timeout aborts
// are the readers' failure mode, and snapshot reads make them structurally
// impossible (only writers still wait on locks). The overall failure rate
// is reported too, and is honest about the trade: SI turns writer lock
// waits into first-updater-wins aborts, so on write-contended keys MVCC
// aborts more writers while failing far fewer readers.
//
//   bench_mvcc [--smoke] [--json PATH] [--threads N]
//
// Gates (both scales): at least one cell ran under mvcc, GC pruned, every
// strategy with read-side aborts under 2PL strictly improves under MVCC,
// and the cross-strategy total strictly falls.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/flags.h"
#include "src/engine/flag_table.h"
#include "src/engine/parallel_runner.h"

namespace {

using namespace soap;

engine::ExperimentConfig BaseConfig(bool smoke) {
  engine::ExperimentConfig config;
  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(/*alpha=*/1.0);
  spec.num_templates = smoke ? 1'000 : 4'000;
  spec.num_keys = smoke ? 25'000 : 100'000;
  spec.write_fraction = 0.1;  // read-heavy: the contention is on reads
  // A hub of hot templates read from every partition: the shared keys
  // every transaction keeps coming back to. This is where serializable
  // 2PL readers pile up behind writers.
  workload::DriftPhase pairing;
  pairing.start_interval = 0;
  pairing.rotation = 0;
  pairing.zipf_s = spec.zipf_s;
  pairing.pair_fraction = 0.35;
  pairing.pair_hub = smoke ? 40 : 100;
  spec.phases.push_back(pairing);
  config.workload_options.spec = spec;

  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.warmup_intervals = smoke ? 3 : 5;
  config.measured_intervals = smoke ? 15 : 40;
  config.seed = 42;
  config.cluster.isolation = cluster::IsolationLevel::kSerializable;
  // OLTP SLA: give up a lock wait after 200ms instead of the 30s default
  // (the PostgreSQL lock_timeout analogue). This is what makes the
  // read-side failure mode visible — under 2PL, hub readers queued behind
  // writers blow the deadline and abort; under MVCC they never wait.
  config.cluster.costs.lock_timeout = Millis(200);
  return config;
}

struct StrategyOutcome {
  std::string name;
  double fail_tail_2pl = 0.0;
  double fail_tail_mvcc = 0.0;
  double read_fail_2pl = 0.0;   // lock-timeout aborts / completed
  double read_fail_mvcc = 0.0;
  uint64_t lock_timeouts_2pl = 0;
  uint64_t lock_timeouts_mvcc = 0;
  uint64_t write_conflicts_mvcc = 0;
  uint64_t versions_live = 0;
  uint64_t gc_pruned = 0;
  bool win = false;  // read-side failure strictly lower under mvcc
};

double ReadFailRate(const engine::ExperimentResult& r) {
  const uint64_t completed =
      r.counters.committed_normal + r.counters.aborted_normal;
  return completed > 0 ? static_cast<double>(
                             r.counters.aborts_lock_timeout) /
                             static_cast<double>(completed)
                       : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  engine::FlagTable table({
      {"smoke", engine::FlagType::kBool, "off",
       "CI scale: ~4x smaller, mechanical gates only", nullptr},
      {"json", engine::FlagType::kString, "",
       "write the outcome table as a JSON artifact", nullptr},
      {"threads", engine::FlagType::kInt, "1",
       "run cells on N parallel threads (identical results at any count)",
       nullptr},
      {"help", engine::FlagType::kBool, "", "this text", nullptr},
  });
  if (parsed->GetBool("help")) {
    std::printf("%s", table.Help("bench_mvcc",
                                 "MVCC snapshot reads vs 2PL shared locks "
                                 "on a read-heavy hub workload")
                          .c_str());
    return 0;
  }
  if (Status s = table.CheckUnknown(*parsed); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const bool smoke = parsed->GetBool("smoke");
  const std::string json_path = parsed->GetString("json", "");
  const unsigned threads = engine::ParseThreadCount(
      parsed->GetString("threads", "").c_str());

  std::printf("==== bench_mvcc: snapshot reads vs 2PL @ serializable ====\n");
  std::printf("# scale: %s\n\n", smoke ? "SMOKE (~4x reduced)" : "full");

  // One cell per (strategy, cc): 2PL first, MVCC second.
  std::vector<engine::ExperimentCell> cells;
  for (SchedulingStrategy strategy : bench::AllStrategies()) {
    engine::ExperimentConfig two_pl = BaseConfig(smoke);
    two_pl.deployment.strategy = strategy;
    engine::ExperimentConfig mvcc_cfg = two_pl;
    mvcc_cfg.cluster.cc = mvcc::ConcurrencyControl::kMvcc;
    bench::ApplyObsEnv(&two_pl,
                       std::string(StrategyName(strategy)) + "_2pl");
    bench::ApplyObsEnv(&mvcc_cfg,
                       std::string(StrategyName(strategy)) + "_mvcc");
    cells.push_back(engine::ExperimentCell{two_pl});
    cells.push_back(engine::ExperimentCell{mvcc_cfg});
  }
  engine::ParallelRunner runner(threads);
  std::vector<engine::CellOutcome> outcomes = runner.Run(
      std::move(cells), [&](const engine::CellOutcome& outcome) {
        const engine::ExperimentResult& r = outcome.result;
        std::printf("# ran %-9s %-5s: %.1fs wall, %s\n",
                    r.strategy_name.c_str(),
                    r.mvcc_enabled ? "mvcc" : "2pl",
                    outcome.wall_seconds,
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      });

  int exit_code = 0;
  std::vector<StrategyOutcome> results;
  for (size_t i = 0; i < bench::AllStrategies().size(); ++i) {
    const engine::ExperimentResult& two_pl = outcomes[2 * i].result;
    const engine::ExperimentResult& mv = outcomes[2 * i + 1].result;
    if (!two_pl.audit.ok() || !mv.audit.ok()) exit_code = 1;
    StrategyOutcome out;
    out.name = two_pl.strategy_name;
    out.fail_tail_2pl = two_pl.failure_rate.TailMean(10);
    out.fail_tail_mvcc = mv.failure_rate.TailMean(10);
    out.read_fail_2pl = ReadFailRate(two_pl);
    out.read_fail_mvcc = ReadFailRate(mv);
    out.lock_timeouts_2pl = two_pl.counters.aborts_lock_timeout;
    out.lock_timeouts_mvcc = mv.counters.aborts_lock_timeout;
    out.write_conflicts_mvcc = mv.counters.aborts_write_conflict;
    out.versions_live = mv.mvcc_versions_live;
    out.gc_pruned = mv.mvcc_gc_pruned;
    out.win = out.read_fail_mvcc < out.read_fail_2pl;
    results.push_back(out);
  }

  std::printf("\n# %-9s %-10s %-10s %-11s %-11s %-5s %-12s %-10s\n",
              "strategy", "readf_2pl", "readf_mvcc", "fail_2pl",
              "fail_mvcc", "win", "wconflicts", "gc_pruned");
  int wins = 0;
  int contended = 0;  // strategies with any read-side aborts under 2PL
  uint64_t total_lock_timeouts_2pl = 0;
  uint64_t total_lock_timeouts_mvcc = 0;
  uint64_t total_pruned = 0;
  bool every_contended_improved = true;
  for (const StrategyOutcome& out : results) {
    std::printf("# %-9s %-10.4f %-10.4f %-11.4f %-11.4f %-5s %-12llu "
                "%-10llu\n",
                out.name.c_str(), out.read_fail_2pl, out.read_fail_mvcc,
                out.fail_tail_2pl, out.fail_tail_mvcc,
                out.win ? "yes" : "no",
                static_cast<unsigned long long>(out.write_conflicts_mvcc),
                static_cast<unsigned long long>(out.gc_pruned));
    wins += out.win ? 1 : 0;
    if (out.lock_timeouts_2pl > 0) {
      contended++;
      if (out.lock_timeouts_mvcc >= out.lock_timeouts_2pl) {
        every_contended_improved = false;
      }
    }
    total_lock_timeouts_2pl += out.lock_timeouts_2pl;
    total_lock_timeouts_mvcc += out.lock_timeouts_mvcc;
    total_pruned += out.gc_pruned;
  }
  std::printf("# mvcc lowers the read-side failure rate on %d/5 "
              "strategies; lock-timeout aborts %llu -> %llu\n\n",
              wins,
              static_cast<unsigned long long>(total_lock_timeouts_2pl),
              static_cast<unsigned long long>(total_lock_timeouts_mvcc));

  // --- Gates.
  bool any_mvcc = false;
  for (size_t i = 0; i < results.size(); ++i) {
    if (outcomes[2 * i + 1].result.mvcc_enabled) any_mvcc = true;
  }
  if (!any_mvcc) {
    std::fprintf(stderr, "GATE: no cell actually ran under --cc=mvcc\n");
    exit_code = 1;
  }
  if (total_pruned == 0) {
    std::fprintf(stderr, "GATE: MVCC GC never pruned a version\n");
    exit_code = 1;
  }
  // The read-abort-improvement gates: snapshot reads cannot time out on
  // locks, so wherever 2PL produced read-side aborts MVCC must strictly
  // reduce them, and the cross-strategy total must strictly fall.
  if (contended == 0) {
    std::fprintf(stderr,
                 "GATE: 2PL produced no read-side aborts anywhere — the "
                 "workload is not contended enough to measure\n");
    exit_code = 1;
  }
  if (!every_contended_improved ||
      total_lock_timeouts_mvcc >= total_lock_timeouts_2pl) {
    std::fprintf(stderr,
                 "GATE: lock-timeout aborts did not strictly improve under "
                 "mvcc (%llu -> %llu)\n",
                 static_cast<unsigned long long>(total_lock_timeouts_2pl),
                 static_cast<unsigned long long>(total_lock_timeouts_mvcc));
    exit_code = 1;
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"scale\": \"%s\",\n  \"strategies\": [\n",
                 smoke ? "smoke" : "full");
    for (size_t i = 0; i < results.size(); ++i) {
      const StrategyOutcome& out = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"read_fail_2pl\": %.6f, "
          "\"read_fail_mvcc\": %.6f, \"fail_tail_2pl\": %.6f, "
          "\"fail_tail_mvcc\": %.6f, \"win\": %s, "
          "\"lock_timeouts_2pl\": %llu, \"lock_timeouts_mvcc\": %llu, "
          "\"write_conflicts_mvcc\": %llu, \"gc_pruned\": %llu}%s\n",
          out.name.c_str(), out.read_fail_2pl, out.read_fail_mvcc,
          out.fail_tail_2pl, out.fail_tail_mvcc,
          out.win ? "true" : "false",
          static_cast<unsigned long long>(out.lock_timeouts_2pl),
          static_cast<unsigned long long>(out.lock_timeouts_mvcc),
          static_cast<unsigned long long>(out.write_conflicts_mvcc),
          static_cast<unsigned long long>(out.gc_pruned),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"wins\": %d,\n  \"lock_timeouts_2pl\": %llu,\n"
        "  \"lock_timeouts_mvcc\": %llu\n}\n",
        wins, static_cast<unsigned long long>(total_lock_timeouts_2pl),
        static_cast<unsigned long long>(total_lock_timeouts_mvcc));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return exit_code;
}
