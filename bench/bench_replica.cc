// bench_replica: replica-aware repartitioning versus migration-only
// planning on a read-heavy paired workload, plus a crash-failover
// scenario.
//
// Workload: Zipf, 10% writes, with a stationary hub-pairing phase from
// interval 0: a fraction of transactions additionally read keys of a
// small hub of hot templates — shared reference data touched from every
// partition. Migration-only planning can collocate the hub with at most
// one of its reader partitions; replica-aware planning copies the hub's
// read-only keys to all of them. The headline metric is the tail
// distributed-transaction ratio: lower means more reads went local.
//
// For each of the five scheduling strategies the bench runs the same
// configuration twice — online planner with migrations only, then with
// replica-aware planning — and reports the pair. A final scenario crashes
// the node holding replicated primaries mid-run and checks that reads
// keep committing from surviving replicas while the primary is down.
//
//   bench_replica [--smoke] [--json PATH] [--threads N]
//
// --smoke shrinks the scale ~4x and relaxes the win gate to mechanical
// checks (replicas created, replica reads observed, promotions on crash)
// so CI can run it in seconds; the full run additionally requires the
// replica-aware plan to win on >= 3 of 5 strategies.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/flags.h"
#include "src/engine/flag_table.h"
#include "src/engine/parallel_runner.h"

namespace {

using namespace soap;

engine::ExperimentConfig BaseConfig(bool smoke) {
  engine::ExperimentConfig config;
  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(/*alpha=*/1.0);
  spec.num_templates = smoke ? 1'000 : 4'000;
  spec.num_keys = smoke ? 25'000 : 100'000;
  spec.write_fraction = 0.1;  // read-heavy: replicas stay cheap to keep
  // One stationary phase from interval 0: a pair_fraction of transactions
  // additionally read keys of a small hub of hot templates — shared
  // reference data co-accessed from every partition. A migration can
  // collocate the hub with at most one of its reader partitions; copies
  // can satisfy all of them, which is the structural gap this bench
  // measures.
  workload::DriftPhase pairing;
  pairing.start_interval = 0;
  pairing.rotation = 0;
  pairing.zipf_s = spec.zipf_s;
  pairing.pair_fraction = 0.35;
  pairing.pair_hub = smoke ? 40 : 100;
  spec.phases.push_back(pairing);
  config.workload_options.spec = spec;

  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.warmup_intervals = smoke ? 3 : 5;
  config.measured_intervals = smoke ? 15 : 40;
  config.seed = 42;
  config.planner_options.enabled = true;
  return config;
}

engine::ExperimentConfig WithReplicas(engine::ExperimentConfig config) {
  config.replicas.enabled = true;
  // The hub is read from every partition; let copies reach all of them.
  config.replicas.max_copies = config.cluster.num_nodes;
  return config;
}

struct StrategyOutcome {
  std::string name;
  double dist_tail_migration = 0.0;
  double dist_tail_replica = 0.0;
  double replica_read_frac = 0.0;
  uint64_t replica_creates = 0;
  uint64_t replicated_keys = 0;
  bool win = false;
};

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  engine::FlagTable table({
      {"smoke", engine::FlagType::kBool, "off",
       "CI scale: ~4x smaller, mechanical gates only", nullptr},
      {"json", engine::FlagType::kString, "",
       "write the outcome table as a JSON artifact", nullptr},
      {"threads", engine::FlagType::kInt, "1",
       "run cells on N parallel threads (identical results at any count)",
       nullptr},
      {"help", engine::FlagType::kBool, "", "this text", nullptr},
  });
  if (parsed->GetBool("help")) {
    std::printf("%s", table.Help("bench_replica",
                                 "replica-aware planning vs migration-only "
                                 "on a read-heavy paired workload")
                          .c_str());
    return 0;
  }
  if (Status s = table.CheckUnknown(*parsed); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const bool smoke = parsed->GetBool("smoke");
  const std::string json_path = parsed->GetString("json", "");
  const unsigned threads = engine::ParseThreadCount(
      parsed->GetString("threads", "").c_str());

  std::printf("==== bench_replica: replica-aware vs migration-only ====\n");
  std::printf("# scale: %s\n\n", smoke ? "SMOKE (~4x reduced)" : "full");

  // One cell per (strategy, mode): migration-only first, replicas second.
  std::vector<engine::ExperimentCell> cells;
  for (SchedulingStrategy strategy : bench::AllStrategies()) {
    engine::ExperimentConfig base = BaseConfig(smoke);
    base.deployment.strategy = strategy;
    engine::ExperimentConfig replicas = WithReplicas(base);
    bench::ApplyObsEnv(&base,
                       std::string(StrategyName(strategy)) + "_migration");
    bench::ApplyObsEnv(&replicas,
                       std::string(StrategyName(strategy)) + "_replicas");
    cells.push_back(engine::ExperimentCell{base});
    cells.push_back(engine::ExperimentCell{replicas});
  }
  engine::ParallelRunner runner(threads);
  std::vector<engine::CellOutcome> outcomes = runner.Run(
      std::move(cells), [&](const engine::CellOutcome& outcome) {
        const engine::ExperimentResult& r = outcome.result;
        std::printf("# ran %-9s %-10s: %.1fs wall, %s\n",
                    r.strategy_name.c_str(),
                    r.replicas_enabled ? "replicas" : "migration",
                    outcome.wall_seconds,
                    r.audit.ok() ? "audit ok" : r.audit.ToString().c_str());
        std::fflush(stdout);
      });

  int exit_code = 0;
  std::vector<StrategyOutcome> results;
  for (size_t i = 0; i < bench::AllStrategies().size(); ++i) {
    const engine::ExperimentResult& mig = outcomes[2 * i].result;
    const engine::ExperimentResult& rep = outcomes[2 * i + 1].result;
    if (!mig.audit.ok() || !rep.audit.ok()) exit_code = 1;
    StrategyOutcome out;
    out.name = mig.strategy_name;
    out.dist_tail_migration = mig.distributed_ratio.TailMean(10);
    out.dist_tail_replica = rep.distributed_ratio.TailMean(10);
    out.replica_read_frac =
        rep.reads_routed > 0 ? static_cast<double>(rep.replica_reads) /
                                   static_cast<double>(rep.reads_routed)
                             : 0.0;
    out.replica_creates = rep.planner_stats.replica_creates_emitted;
    out.replicated_keys = rep.replica_count_final;
    out.win = out.dist_tail_replica < out.dist_tail_migration;
    results.push_back(out);
  }

  std::printf("\n# %-9s %-14s %-14s %-8s %-16s %-8s %-10s\n", "strategy",
              "dist_migration", "dist_replica", "win", "replica_read_frac",
              "creates", "repl_keys");
  int wins = 0;
  uint64_t total_creates = 0;
  double max_replica_read_frac = 0.0;
  for (const StrategyOutcome& out : results) {
    std::printf("# %-9s %-14.4f %-14.4f %-8s %-16.4f %-8llu %-10llu\n",
                out.name.c_str(), out.dist_tail_migration,
                out.dist_tail_replica, out.win ? "yes" : "no",
                out.replica_read_frac,
                static_cast<unsigned long long>(out.replica_creates),
                static_cast<unsigned long long>(out.replicated_keys));
    wins += out.win ? 1 : 0;
    total_creates += out.replica_creates;
    if (out.replica_read_frac > max_replica_read_frac) {
      max_replica_read_frac = out.replica_read_frac;
    }
  }
  std::printf("# replica-aware planning wins %d/5 on tail distributed "
              "ratio\n\n", wins);

  // --- Crash-failover scenario: crash a replica-hosting primary node
  // mid-run; reads must keep committing from surviving replicas while it
  // is down (nonzero replica-read fraction during the outage intervals).
  engine::ExperimentConfig crash_config =
      WithReplicas(BaseConfig(smoke));
  crash_config.deployment.strategy = SchedulingStrategy::kHybrid;
  const uint32_t crash_interval = crash_config.warmup_intervals +
                                  (smoke ? 6 : 10);
  const long crash_at = static_cast<long>(crash_interval) * 20;
  const long down_for = 40;
  crash_config.fault_options.spec = "crash:node=2,at=" + std::to_string(crash_at) +
                            "s,down=" + std::to_string(down_for) + "s";
  bench::ApplyObsEnv(&crash_config, "hybrid_crash_failover");
  engine::ExperimentResult crash_run =
      engine::Experiment(crash_config).Run();
  // The outage spans two intervals starting at crash_interval.
  double outage_replica_reads = 0.0;
  for (uint32_t k = crash_interval;
       k < crash_interval + 2 &&
       k < static_cast<uint32_t>(crash_run.replica_read_ratio.size());
       ++k) {
    outage_replica_reads += crash_run.replica_read_ratio.values()[k];
  }
  std::printf("# crash scenario (node 2 down %lds at %lds): %s\n", down_for,
              crash_at, crash_run.Summary().c_str());
  std::printf("# outage replica-read fraction (2 intervals): %.4f, "
              "promotions=%llu\n\n",
              outage_replica_reads / 2.0,
              static_cast<unsigned long long>(
                  crash_run.replica_stats.promotions));
  if (!crash_run.audit.ok()) exit_code = 1;

  // --- Gates.
  if (total_creates == 0) {
    std::fprintf(stderr, "GATE: no replicas were ever created\n");
    exit_code = 1;
  }
  if (max_replica_read_frac <= 0.0) {
    std::fprintf(stderr, "GATE: no read was ever served by a replica\n");
    exit_code = 1;
  }
  if (crash_run.replica_stats.promotions == 0) {
    std::fprintf(stderr, "GATE: primary crash promoted no replica\n");
    exit_code = 1;
  }
  if (outage_replica_reads <= 0.0) {
    std::fprintf(stderr,
                 "GATE: no replica reads during the primary outage\n");
    exit_code = 1;
  }
  if (!smoke && wins < 3) {
    std::fprintf(stderr,
                 "GATE: replica-aware planning won only %d/5 strategies\n",
                 wins);
    exit_code = 1;
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"scale\": \"%s\",\n  \"strategies\": [\n",
                 smoke ? "smoke" : "full");
    for (size_t i = 0; i < results.size(); ++i) {
      const StrategyOutcome& out = results[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"dist_tail_migration\": %.6f, "
          "\"dist_tail_replica\": %.6f, \"win\": %s, "
          "\"replica_read_frac\": %.6f, \"replica_creates\": %llu}%s\n",
          out.name.c_str(), out.dist_tail_migration, out.dist_tail_replica,
          out.win ? "true" : "false", out.replica_read_frac,
          static_cast<unsigned long long>(out.replica_creates),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"wins\": %d,\n  \"crash\": {\"promotions\": %llu, "
        "\"outage_replica_read_frac\": %.6f, \"audit_ok\": %s}\n}\n",
        wins,
        static_cast<unsigned long long>(crash_run.replica_stats.promotions),
        outage_replica_reads / 2.0, crash_run.audit.ok() ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return exit_code;
}
