// Production-cardinality scaling sweep: runs the full online pipeline
// (planner + hybrid deployment, zipf + pair-hub drift) across
// {500k, 1M, 4M} tuples x {10, 64} nodes and reports, per cell, the
// wall-clock event rate and the end-of-run control-plane footprint
// (routing table + co-access graph + node tables, via the ApproxBytes
// estimators). Cells at or below the sketch threshold run the exact
// paper-scale paths; above it the stack flips to interval routing, lazy
// tables and the sketch/supernode graph — the point of the sweep is that
// the flip keeps memory near-flat and throughput near-constant while the
// keyspace grows 8x.
//
//   bench_scale                   full sweep, writes
//                                 bench_results/BENCH_scale.json and
//                                 enforces the scaling gates:
//                                   - control-plane bytes at 4M/64 nodes
//                                     <= 8x the 500k/64 figure
//                                   - steady-state events/s (simulation
//                                     phase, one-time load/audit
//                                     excluded) at 4M/64 >= 80% of 500k/64
//   bench_scale --smoke           one 1M x 16 cell with the threshold
//                                 lowered so the scale-out paths engage
//                                 (CI perf smoke; ~seconds, not minutes)
//   bench_scale --json path       override the output path
//   bench_scale --rss_limit_mb N  additionally fail when the process peak
//                                 RSS exceeds N MB (CI memory ceiling)

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

using soap::engine::ExperimentConfig;
using soap::engine::ExperimentResult;

double PeakRssMb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One sweep cell: the §4.1 zipf workload with a constant template count
/// across keyspace sizes (so per-cell work tracks the cluster, not the
/// keyspace), a pair-hub drift phase after warmup to keep the online
/// planner replanning, and a short horizon — the sweep measures scaling,
/// not convergence.
ExperimentConfig MakeScaleConfig(uint64_t num_keys, uint32_t nodes,
                                 uint64_t sketch_threshold) {
  ExperimentConfig config;
  config.workload_options.spec = soap::workload::WorkloadSpec::Zipf(/*alpha=*/1.0);
  config.workload_options.spec.num_keys = num_keys;
  config.cluster.num_nodes = nodes;
  config.workload_options.utilization = soap::workload::kHighLoadUtilization;
  config.deployment.strategy = soap::SchedulingStrategy::kHybrid;
  config.deployment.feedback.sp = 1.05;
  config.warmup_intervals = 2;
  config.measured_intervals = 4;
  config.planner_options.enabled = true;
  config.planner_options.replan_period = 2;
  config.scale.sketch_threshold = sketch_threshold;
  soap::workload::DriftPhase hub;
  hub.start_interval = 2;
  hub.zipf_s = config.workload_options.spec.zipf_s;
  hub.pair_fraction = 0.3;
  hub.pair_hub = 16;
  config.workload_options.spec.phases.push_back(hub);
  config.seed = 42;
  return config;
}

struct CellResult {
  uint64_t num_keys = 0;
  uint32_t nodes = 0;
  bool scale_out = false;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;  ///< whole Run(), setup and audit included
  /// Event rate over the simulation phase alone (wall minus the one-time
  /// O(keyspace) load and audit phases) — what a production-length
  /// horizon converges to, and what the throughput gate compares.
  double steady_events_per_sec = 0.0;
  double rss_peak_mb = 0.0;  ///< process peak after this cell (monotone)
  uint64_t control_plane_bytes = 0;
  ExperimentResult result;
};

CellResult RunCell(uint64_t num_keys, uint32_t nodes,
                   uint64_t sketch_threshold) {
  ExperimentConfig config =
      MakeScaleConfig(num_keys, nodes, sketch_threshold);
  CellResult cell;
  cell.num_keys = num_keys;
  cell.nodes = nodes;
  cell.scale_out = num_keys > sketch_threshold;
  const auto t0 = std::chrono::steady_clock::now();
  soap::engine::Experiment experiment(std::move(config));
  cell.result = experiment.Run();
  cell.wall_seconds = SecondsSince(t0);
  cell.events_per_sec =
      cell.wall_seconds > 0.0
          ? static_cast<double>(cell.result.events_executed) /
                cell.wall_seconds
          : 0.0;
  const double sim_seconds = cell.wall_seconds -
                             cell.result.load_wall_seconds -
                             cell.result.audit_wall_seconds;
  cell.steady_events_per_sec =
      sim_seconds > 0.0
          ? static_cast<double>(cell.result.events_executed) / sim_seconds
          : 0.0;
  cell.rss_peak_mb = PeakRssMb();
  cell.control_plane_bytes = cell.result.routing_bytes +
                             cell.result.graph_bytes +
                             cell.result.storage_bytes;
  std::printf(
      "# ran %7llu keys x %2u nodes (%s): %.1fs wall "
      "(load %.1f + audit %.1f), %llu events (%.0f/s steady), "
      "%llu committed, control-plane %.1f MB "
      "(routing %.2f + graph %.2f + tables %.2f), %llu rows "
      "materialized, peak RSS %.0f MB, %s\n",
      static_cast<unsigned long long>(num_keys), nodes,
      cell.scale_out ? "scale-out" : "exact", cell.wall_seconds,
      cell.result.load_wall_seconds, cell.result.audit_wall_seconds,
      static_cast<unsigned long long>(cell.result.events_executed),
      cell.steady_events_per_sec,
      static_cast<unsigned long long>(cell.result.counters.committed_normal),
      static_cast<double>(cell.control_plane_bytes) / 1e6,
      static_cast<double>(cell.result.routing_bytes) / 1e6,
      static_cast<double>(cell.result.graph_bytes) / 1e6,
      static_cast<double>(cell.result.storage_bytes) / 1e6,
      static_cast<unsigned long long>(
          cell.result.storage_materialized_rows),
      cell.rss_peak_mb,
      cell.result.audit.ok() ? "audit ok"
                             : cell.result.audit.ToString().c_str());
  std::fflush(stdout);
  return cell;
}

void AppendCellJson(std::ostringstream& json, const CellResult& cell,
                    bool last) {
  const ExperimentResult& r = cell.result;
  json << "    {\"num_keys\": " << cell.num_keys
       << ", \"nodes\": " << cell.nodes
       << ", \"scale_out\": " << (cell.scale_out ? "true" : "false")
       << ", \"wall_seconds\": " << cell.wall_seconds
       << ", \"load_wall_seconds\": " << r.load_wall_seconds
       << ", \"audit_wall_seconds\": " << r.audit_wall_seconds
       << ", \"events\": " << r.events_executed
       << ", \"events_per_sec\": " << cell.events_per_sec
       << ", \"steady_events_per_sec\": " << cell.steady_events_per_sec
       << ", \"committed_normal\": " << r.counters.committed_normal
       << ", \"distributed_ratio_tail\": "
       << r.distributed_ratio.TailMean(3)
       << ", \"plan_generations\": " << r.plan_generations
       << ", \"routing_bytes\": " << r.routing_bytes
       << ", \"routing_ranges\": " << r.routing_ranges
       << ", \"routing_exceptions\": " << r.routing_exceptions
       << ", \"graph_bytes\": " << r.graph_bytes
       << ", \"graph_vertices\": " << r.graph_vertices
       << ", \"storage_bytes\": " << r.storage_bytes
       << ", \"materialized_rows\": " << r.storage_materialized_rows
       << ", \"control_plane_bytes\": " << cell.control_plane_bytes
       << ", \"rss_peak_mb\": " << cell.rss_peak_mb << "}"
       << (last ? "\n" : ",\n");
}

const CellResult* FindCell(const std::vector<CellResult>& cells,
                           uint64_t num_keys, uint32_t nodes) {
  for (const CellResult& cell : cells) {
    if (cell.num_keys == num_keys && cell.nodes == nodes) return &cell;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "bench_results/BENCH_scale.json";
  double rss_limit_mb = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rss_limit_mb") == 0 && i + 1 < argc) {
      rss_limit_mb = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--smoke] [--json path] "
                   "[--rss_limit_mb N]\n");
      return 2;
    }
  }

  std::printf("==== bench_scale: production-cardinality scaling sweep ====\n");
  std::vector<CellResult> cells;
  if (smoke) {
    // One mid-size cell with the threshold lowered so every scale-out
    // path (interval routing stays shared, lazy tables, sketch graph)
    // actually engages at an affordable size.
    cells.push_back(RunCell(1'000'000, 16, /*sketch_threshold=*/500'000));
  } else {
    for (uint32_t nodes : {10u, 64u}) {
      for (uint64_t keys : {500'000ull, 1'000'000ull, 4'000'000ull}) {
        cells.push_back(RunCell(keys, nodes, /*sketch_threshold=*/1'000'000));
      }
    }
  }

  int exit_code = 0;
  for (const CellResult& cell : cells) {
    if (!cell.result.audit.ok()) {
      std::fprintf(stderr, "consistency audit FAILED at %llu keys: %s\n",
                   static_cast<unsigned long long>(cell.num_keys),
                   cell.result.audit.ToString().c_str());
      exit_code = 1;
    }
    if (cell.scale_out &&
        cell.result.storage_materialized_rows >= cell.num_keys) {
      std::fprintf(stderr,
                   "lazy tables did not engage: %llu rows materialized for "
                   "%llu keys\n",
                   static_cast<unsigned long long>(
                       cell.result.storage_materialized_rows),
                   static_cast<unsigned long long>(cell.num_keys));
      exit_code = 1;
    }
  }

  double memory_ratio = 0.0;
  double rate_ratio = 0.0;
  if (!smoke) {
    const CellResult* small = FindCell(cells, 500'000, 64);
    const CellResult* big = FindCell(cells, 4'000'000, 64);
    if (small != nullptr && big != nullptr &&
        small->control_plane_bytes > 0 &&
        small->steady_events_per_sec > 0.0) {
      memory_ratio = static_cast<double>(big->control_plane_bytes) /
                     static_cast<double>(small->control_plane_bytes);
      rate_ratio =
          big->steady_events_per_sec / small->steady_events_per_sec;
      std::printf("# gate control_plane_8x_memory   %.2fx (limit 8x)%s\n",
                  memory_ratio, memory_ratio > 8.0 ? "  REGRESSION" : "");
      std::printf("# gate events_rate_within_20pct %.2fx (floor 0.80x)%s\n",
                  rate_ratio, rate_ratio < 0.80 ? "  REGRESSION" : "");
      if (memory_ratio > 8.0 || rate_ratio < 0.80) exit_code = 1;
    }
  }
  const double peak_rss_mb = PeakRssMb();
  if (rss_limit_mb > 0.0) {
    std::printf("# gate rss_limit_mb             %.0f MB (limit %.0f)%s\n",
                peak_rss_mb, rss_limit_mb,
                peak_rss_mb > rss_limit_mb ? "  REGRESSION" : "");
    if (peak_rss_mb > rss_limit_mb) exit_code = 1;
  }

  std::ostringstream json;
  json.precision(6);
  json << "{\n"
       << "  \"schema\": \"soap-bench-scale-v1\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"peak_rss_mb\": " << peak_rss_mb << ",\n"
       << "  \"memory_ratio_4m_over_500k\": " << memory_ratio << ",\n"
       << "  \"events_rate_ratio_4m_over_500k\": " << rate_ratio << ",\n"
       << "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCellJson(json, cells[i], i + 1 == cells.size());
  }
  json << "  ]\n}\n";

  std::filesystem::path path(json_path);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path);
  out << json.str();
  out.close();
  std::printf("# wrote %s\n", json_path.c_str());
  return exit_code;
}
