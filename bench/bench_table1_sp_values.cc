// Reproduces Table 1: the SP values used by the Feedback and Hybrid
// experiments per (workload, load, alpha) cell, and verifies each cell by
// running it (at reduced scale by default — SOAP_TABLE1_FULL=1 for the
// full 45-minute horizon) and reporting the repartition/normal work ratio
// the controller actually achieved against its setpoint.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"

namespace {

using soap::SchedulingStrategy;
using soap::workload::PopularityDist;

void PrintConfiguredTable() {
  std::printf("==== Table 1: SP values for the experiments ====\n\n");
  std::printf("%-10s %-9s | %-8s %-8s %-8s | %-8s %-8s %-8s\n", "Algorithm",
              "Workload", "H a=100", "H a=60", "H a=20", "L a=100", "L a=60",
              "L a=20");
  for (SchedulingStrategy strategy :
       {SchedulingStrategy::kFeedback, SchedulingStrategy::kHybrid}) {
    for (PopularityDist dist :
         {PopularityDist::kZipf, PopularityDist::kUniform}) {
      std::printf("%-10s %-9s |", soap::StrategyName(strategy),
                  dist == PopularityDist::kZipf ? "Zipf" : "Uniform");
      for (bool high : {true, false}) {
        for (double alpha : {1.0, 0.6, 0.2}) {
          std::printf(" %-8.3f",
                      soap::bench::Table1Sp(strategy, dist, high, alpha));
        }
        std::printf(high ? " |" : "\n");
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintConfiguredTable();

  const bool full = std::getenv("SOAP_TABLE1_FULL") != nullptr;
  std::printf(
      "==== Verification: achieved repartition/normal work ratio ====\n");
  std::printf("# (controller PV vs SP-1 while the plan is in flight; %s)\n\n",
              full ? "full scale" : "reduced scale");
  std::printf("%-10s %-9s %-6s %-6s | %-10s %-12s %-10s\n", "algorithm",
              "workload", "load", "alpha", "SP-1", "achieved", "rep_done@");

  for (SchedulingStrategy strategy :
       {SchedulingStrategy::kFeedback, SchedulingStrategy::kHybrid}) {
    for (PopularityDist dist :
         {PopularityDist::kZipf, PopularityDist::kUniform}) {
      for (bool high : {true, false}) {
        for (double alpha : {1.0, 0.6, 0.2}) {
          soap::engine::ExperimentConfig config =
              soap::bench::MakeCellConfig(strategy, dist, high, alpha);
          if (!full) {
            config.workload_options.spec.num_templates /= 10;
            config.workload_options.spec.num_keys /= 10;
            config.warmup_intervals = 5;
            config.measured_intervals = 40;
          }
          soap::engine::ExperimentResult r =
              soap::engine::Experiment(config).Run();
          // Achieved PV: mean repartition/normal work ratio over the
          // intervals where the plan was actively deploying.
          double achieved = 0.0;
          int active = 0;
          for (size_t i = config.warmup_intervals;
               i < r.rep_work_ratio.size(); ++i) {
            if (r.rep_rate.at(i) >= 0.999) break;
            achieved += r.rep_work_ratio.at(i);
            ++active;
          }
          if (active > 0) achieved /= active;
          std::printf("%-10s %-9s %-6s %-6.0f | %-10.3f %-12.3f %-10d\n",
                      soap::StrategyName(strategy),
                      dist == PopularityDist::kZipf ? "Zipf" : "Uniform",
                      high ? "high" : "low", alpha * 100.0,
                      config.deployment.feedback.sp - 1.0, achieved,
                      r.RepartitionCompletedAt());
          std::fflush(stdout);
        }
      }
    }
  }
  return 0;
}
