file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptivity.dir/bench_ablation_adaptivity.cc.o"
  "CMakeFiles/bench_ablation_adaptivity.dir/bench_ablation_adaptivity.cc.o.d"
  "bench_ablation_adaptivity"
  "bench_ablation_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
