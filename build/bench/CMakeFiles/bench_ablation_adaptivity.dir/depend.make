# Empty dependencies file for bench_ablation_adaptivity.
# This may be replaced when dependencies are built.
