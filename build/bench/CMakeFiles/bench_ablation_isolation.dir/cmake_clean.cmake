file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_isolation.dir/bench_ablation_isolation.cc.o"
  "CMakeFiles/bench_ablation_isolation.dir/bench_ablation_isolation.cc.o.d"
  "bench_ablation_isolation"
  "bench_ablation_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
