# Empty dependencies file for bench_ablation_packaging.
# This may be replaced when dependencies are built.
