file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pid_gains.dir/bench_ablation_pid_gains.cc.o"
  "CMakeFiles/bench_ablation_pid_gains.dir/bench_ablation_pid_gains.cc.o.d"
  "bench_ablation_pid_gains"
  "bench_ablation_pid_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pid_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
