file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_piggyback_limit.dir/bench_ablation_piggyback_limit.cc.o"
  "CMakeFiles/bench_ablation_piggyback_limit.dir/bench_ablation_piggyback_limit.cc.o.d"
  "bench_ablation_piggyback_limit"
  "bench_ablation_piggyback_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_piggyback_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
