# Empty dependencies file for bench_ablation_piggyback_limit.
# This may be replaced when dependencies are built.
