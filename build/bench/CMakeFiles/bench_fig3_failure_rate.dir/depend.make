# Empty dependencies file for bench_fig3_failure_rate.
# This may be replaced when dependencies are built.
