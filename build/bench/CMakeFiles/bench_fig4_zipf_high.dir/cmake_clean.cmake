file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_zipf_high.dir/bench_fig4_zipf_high.cc.o"
  "CMakeFiles/bench_fig4_zipf_high.dir/bench_fig4_zipf_high.cc.o.d"
  "bench_fig4_zipf_high"
  "bench_fig4_zipf_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_zipf_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
