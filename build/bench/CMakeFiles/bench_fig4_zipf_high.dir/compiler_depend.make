# Empty compiler generated dependencies file for bench_fig4_zipf_high.
# This may be replaced when dependencies are built.
