file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_uniform_high.dir/bench_fig5_uniform_high.cc.o"
  "CMakeFiles/bench_fig5_uniform_high.dir/bench_fig5_uniform_high.cc.o.d"
  "bench_fig5_uniform_high"
  "bench_fig5_uniform_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_uniform_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
