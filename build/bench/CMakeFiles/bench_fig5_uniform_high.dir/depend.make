# Empty dependencies file for bench_fig5_uniform_high.
# This may be replaced when dependencies are built.
