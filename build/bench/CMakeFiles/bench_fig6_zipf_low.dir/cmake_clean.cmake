file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_zipf_low.dir/bench_fig6_zipf_low.cc.o"
  "CMakeFiles/bench_fig6_zipf_low.dir/bench_fig6_zipf_low.cc.o.d"
  "bench_fig6_zipf_low"
  "bench_fig6_zipf_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_zipf_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
