# Empty dependencies file for bench_fig6_zipf_low.
# This may be replaced when dependencies are built.
