# Empty dependencies file for bench_fig7_uniform_low.
# This may be replaced when dependencies are built.
