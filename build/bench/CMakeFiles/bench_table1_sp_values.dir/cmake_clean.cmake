file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sp_values.dir/bench_table1_sp_values.cc.o"
  "CMakeFiles/bench_table1_sp_values.dir/bench_table1_sp_values.cc.o.d"
  "bench_table1_sp_values"
  "bench_table1_sp_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sp_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
