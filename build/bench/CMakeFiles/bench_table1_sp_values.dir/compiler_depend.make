# Empty compiler generated dependencies file for bench_table1_sp_values.
# This may be replaced when dependencies are built.
