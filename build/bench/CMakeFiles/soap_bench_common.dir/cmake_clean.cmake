file(REMOVE_RECURSE
  "CMakeFiles/soap_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/soap_bench_common.dir/bench_common.cc.o.d"
  "libsoap_bench_common.a"
  "libsoap_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
