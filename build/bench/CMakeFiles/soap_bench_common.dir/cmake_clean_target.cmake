file(REMOVE_RECURSE
  "libsoap_bench_common.a"
)
