# Empty dependencies file for soap_bench_common.
# This may be replaced when dependencies are built.
