file(REMOVE_RECURSE
  "CMakeFiles/ha_replication.dir/ha_replication.cpp.o"
  "CMakeFiles/ha_replication.dir/ha_replication.cpp.o.d"
  "ha_replication"
  "ha_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
