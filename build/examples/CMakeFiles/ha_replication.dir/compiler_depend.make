# Empty compiler generated dependencies file for ha_replication.
# This may be replaced when dependencies are built.
