# Empty compiler generated dependencies file for workload_shift.
# This may be replaced when dependencies are built.
