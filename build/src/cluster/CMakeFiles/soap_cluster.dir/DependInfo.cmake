
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/soap_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/soap_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/soap_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/soap_cluster.dir/node.cc.o.d"
  "/root/repo/src/cluster/processing_queue.cc" "src/cluster/CMakeFiles/soap_cluster.dir/processing_queue.cc.o" "gcc" "src/cluster/CMakeFiles/soap_cluster.dir/processing_queue.cc.o.d"
  "/root/repo/src/cluster/transaction_manager.cc" "src/cluster/CMakeFiles/soap_cluster.dir/transaction_manager.cc.o" "gcc" "src/cluster/CMakeFiles/soap_cluster.dir/transaction_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/soap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/soap_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/soap_router.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
