file(REMOVE_RECURSE
  "CMakeFiles/soap_cluster.dir/cluster.cc.o"
  "CMakeFiles/soap_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/soap_cluster.dir/node.cc.o"
  "CMakeFiles/soap_cluster.dir/node.cc.o.d"
  "CMakeFiles/soap_cluster.dir/processing_queue.cc.o"
  "CMakeFiles/soap_cluster.dir/processing_queue.cc.o.d"
  "CMakeFiles/soap_cluster.dir/transaction_manager.cc.o"
  "CMakeFiles/soap_cluster.dir/transaction_manager.cc.o.d"
  "libsoap_cluster.a"
  "libsoap_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
