file(REMOVE_RECURSE
  "libsoap_cluster.a"
)
