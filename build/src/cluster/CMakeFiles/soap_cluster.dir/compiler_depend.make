# Empty compiler generated dependencies file for soap_cluster.
# This may be replaced when dependencies are built.
