file(REMOVE_RECURSE
  "CMakeFiles/soap_common.dir/flags.cc.o"
  "CMakeFiles/soap_common.dir/flags.cc.o.d"
  "CMakeFiles/soap_common.dir/histogram.cc.o"
  "CMakeFiles/soap_common.dir/histogram.cc.o.d"
  "CMakeFiles/soap_common.dir/logging.cc.o"
  "CMakeFiles/soap_common.dir/logging.cc.o.d"
  "CMakeFiles/soap_common.dir/random.cc.o"
  "CMakeFiles/soap_common.dir/random.cc.o.d"
  "CMakeFiles/soap_common.dir/series.cc.o"
  "CMakeFiles/soap_common.dir/series.cc.o.d"
  "CMakeFiles/soap_common.dir/status.cc.o"
  "CMakeFiles/soap_common.dir/status.cc.o.d"
  "libsoap_common.a"
  "libsoap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
