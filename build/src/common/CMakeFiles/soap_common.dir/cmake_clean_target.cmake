file(REMOVE_RECURSE
  "libsoap_common.a"
)
