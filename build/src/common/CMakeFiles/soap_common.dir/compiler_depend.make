# Empty compiler generated dependencies file for soap_common.
# This may be replaced when dependencies are built.
