
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basic_schedulers.cc" "src/core/CMakeFiles/soap_core.dir/basic_schedulers.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/basic_schedulers.cc.o.d"
  "/root/repo/src/core/feedback_scheduler.cc" "src/core/CMakeFiles/soap_core.dir/feedback_scheduler.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/feedback_scheduler.cc.o.d"
  "/root/repo/src/core/pid_controller.cc" "src/core/CMakeFiles/soap_core.dir/pid_controller.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/pid_controller.cc.o.d"
  "/root/repo/src/core/piggyback_scheduler.cc" "src/core/CMakeFiles/soap_core.dir/piggyback_scheduler.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/piggyback_scheduler.cc.o.d"
  "/root/repo/src/core/repartition_txn.cc" "src/core/CMakeFiles/soap_core.dir/repartition_txn.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/repartition_txn.cc.o.d"
  "/root/repo/src/core/repartitioner.cc" "src/core/CMakeFiles/soap_core.dir/repartitioner.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/repartitioner.cc.o.d"
  "/root/repo/src/core/txn_packager.cc" "src/core/CMakeFiles/soap_core.dir/txn_packager.cc.o" "gcc" "src/core/CMakeFiles/soap_core.dir/txn_packager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/soap_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/repartition/CMakeFiles/soap_repartition.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/soap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/soap_router.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/soap_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/soap_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
