file(REMOVE_RECURSE
  "CMakeFiles/soap_core.dir/basic_schedulers.cc.o"
  "CMakeFiles/soap_core.dir/basic_schedulers.cc.o.d"
  "CMakeFiles/soap_core.dir/feedback_scheduler.cc.o"
  "CMakeFiles/soap_core.dir/feedback_scheduler.cc.o.d"
  "CMakeFiles/soap_core.dir/pid_controller.cc.o"
  "CMakeFiles/soap_core.dir/pid_controller.cc.o.d"
  "CMakeFiles/soap_core.dir/piggyback_scheduler.cc.o"
  "CMakeFiles/soap_core.dir/piggyback_scheduler.cc.o.d"
  "CMakeFiles/soap_core.dir/repartition_txn.cc.o"
  "CMakeFiles/soap_core.dir/repartition_txn.cc.o.d"
  "CMakeFiles/soap_core.dir/repartitioner.cc.o"
  "CMakeFiles/soap_core.dir/repartitioner.cc.o.d"
  "CMakeFiles/soap_core.dir/txn_packager.cc.o"
  "CMakeFiles/soap_core.dir/txn_packager.cc.o.d"
  "libsoap_core.a"
  "libsoap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
