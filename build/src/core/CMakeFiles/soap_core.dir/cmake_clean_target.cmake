file(REMOVE_RECURSE
  "libsoap_core.a"
)
