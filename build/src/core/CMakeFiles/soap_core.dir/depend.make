# Empty dependencies file for soap_core.
# This may be replaced when dependencies are built.
