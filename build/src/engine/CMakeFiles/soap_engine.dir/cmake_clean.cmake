file(REMOVE_RECURSE
  "CMakeFiles/soap_engine.dir/experiment.cc.o"
  "CMakeFiles/soap_engine.dir/experiment.cc.o.d"
  "libsoap_engine.a"
  "libsoap_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
