file(REMOVE_RECURSE
  "libsoap_engine.a"
)
