# Empty compiler generated dependencies file for soap_engine.
# This may be replaced when dependencies are built.
