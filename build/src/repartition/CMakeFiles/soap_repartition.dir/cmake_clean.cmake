file(REMOVE_RECURSE
  "CMakeFiles/soap_repartition.dir/cost_model.cc.o"
  "CMakeFiles/soap_repartition.dir/cost_model.cc.o.d"
  "CMakeFiles/soap_repartition.dir/optimizer.cc.o"
  "CMakeFiles/soap_repartition.dir/optimizer.cc.o.d"
  "CMakeFiles/soap_repartition.dir/replication.cc.o"
  "CMakeFiles/soap_repartition.dir/replication.cc.o.d"
  "libsoap_repartition.a"
  "libsoap_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
