file(REMOVE_RECURSE
  "libsoap_repartition.a"
)
