# Empty compiler generated dependencies file for soap_repartition.
# This may be replaced when dependencies are built.
