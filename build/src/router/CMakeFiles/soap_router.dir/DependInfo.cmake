
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/query_parser.cc" "src/router/CMakeFiles/soap_router.dir/query_parser.cc.o" "gcc" "src/router/CMakeFiles/soap_router.dir/query_parser.cc.o.d"
  "/root/repo/src/router/query_router.cc" "src/router/CMakeFiles/soap_router.dir/query_router.cc.o" "gcc" "src/router/CMakeFiles/soap_router.dir/query_router.cc.o.d"
  "/root/repo/src/router/routing_table.cc" "src/router/CMakeFiles/soap_router.dir/routing_table.cc.o" "gcc" "src/router/CMakeFiles/soap_router.dir/routing_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/soap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/soap_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
