file(REMOVE_RECURSE
  "CMakeFiles/soap_router.dir/query_parser.cc.o"
  "CMakeFiles/soap_router.dir/query_parser.cc.o.d"
  "CMakeFiles/soap_router.dir/query_router.cc.o"
  "CMakeFiles/soap_router.dir/query_router.cc.o.d"
  "CMakeFiles/soap_router.dir/routing_table.cc.o"
  "CMakeFiles/soap_router.dir/routing_table.cc.o.d"
  "libsoap_router.a"
  "libsoap_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
