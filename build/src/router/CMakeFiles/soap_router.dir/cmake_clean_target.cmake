file(REMOVE_RECURSE
  "libsoap_router.a"
)
