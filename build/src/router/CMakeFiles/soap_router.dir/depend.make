# Empty dependencies file for soap_router.
# This may be replaced when dependencies are built.
