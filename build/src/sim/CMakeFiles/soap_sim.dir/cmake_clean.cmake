file(REMOVE_RECURSE
  "CMakeFiles/soap_sim.dir/network.cc.o"
  "CMakeFiles/soap_sim.dir/network.cc.o.d"
  "CMakeFiles/soap_sim.dir/simulator.cc.o"
  "CMakeFiles/soap_sim.dir/simulator.cc.o.d"
  "libsoap_sim.a"
  "libsoap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
