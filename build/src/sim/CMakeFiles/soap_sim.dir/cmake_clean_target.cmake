file(REMOVE_RECURSE
  "libsoap_sim.a"
)
