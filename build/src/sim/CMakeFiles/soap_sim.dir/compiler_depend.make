# Empty compiler generated dependencies file for soap_sim.
# This may be replaced when dependencies are built.
