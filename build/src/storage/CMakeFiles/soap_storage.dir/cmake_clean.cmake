file(REMOVE_RECURSE
  "CMakeFiles/soap_storage.dir/storage_engine.cc.o"
  "CMakeFiles/soap_storage.dir/storage_engine.cc.o.d"
  "CMakeFiles/soap_storage.dir/table.cc.o"
  "CMakeFiles/soap_storage.dir/table.cc.o.d"
  "CMakeFiles/soap_storage.dir/wal.cc.o"
  "CMakeFiles/soap_storage.dir/wal.cc.o.d"
  "libsoap_storage.a"
  "libsoap_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
