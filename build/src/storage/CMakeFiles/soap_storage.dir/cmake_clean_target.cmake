file(REMOVE_RECURSE
  "libsoap_storage.a"
)
