# Empty dependencies file for soap_storage.
# This may be replaced when dependencies are built.
