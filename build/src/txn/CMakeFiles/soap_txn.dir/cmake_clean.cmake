file(REMOVE_RECURSE
  "CMakeFiles/soap_txn.dir/lock_manager.cc.o"
  "CMakeFiles/soap_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/soap_txn.dir/two_phase_commit.cc.o"
  "CMakeFiles/soap_txn.dir/two_phase_commit.cc.o.d"
  "libsoap_txn.a"
  "libsoap_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
