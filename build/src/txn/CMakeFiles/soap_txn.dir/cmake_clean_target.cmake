file(REMOVE_RECURSE
  "libsoap_txn.a"
)
