# Empty dependencies file for soap_txn.
# This may be replaced when dependencies are built.
