
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/soap_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/soap_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/history.cc" "src/workload/CMakeFiles/soap_workload.dir/history.cc.o" "gcc" "src/workload/CMakeFiles/soap_workload.dir/history.cc.o.d"
  "/root/repo/src/workload/template_catalog.cc" "src/workload/CMakeFiles/soap_workload.dir/template_catalog.cc.o" "gcc" "src/workload/CMakeFiles/soap_workload.dir/template_catalog.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/soap_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/soap_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/soap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/soap_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
