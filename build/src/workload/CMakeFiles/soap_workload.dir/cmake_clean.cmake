file(REMOVE_RECURSE
  "CMakeFiles/soap_workload.dir/generator.cc.o"
  "CMakeFiles/soap_workload.dir/generator.cc.o.d"
  "CMakeFiles/soap_workload.dir/history.cc.o"
  "CMakeFiles/soap_workload.dir/history.cc.o.d"
  "CMakeFiles/soap_workload.dir/template_catalog.cc.o"
  "CMakeFiles/soap_workload.dir/template_catalog.cc.o.d"
  "CMakeFiles/soap_workload.dir/trace.cc.o"
  "CMakeFiles/soap_workload.dir/trace.cc.o.d"
  "libsoap_workload.a"
  "libsoap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
