file(REMOVE_RECURSE
  "libsoap_workload.a"
)
