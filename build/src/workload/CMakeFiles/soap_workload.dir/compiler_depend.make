# Empty compiler generated dependencies file for soap_workload.
# This may be replaced when dependencies are built.
