file(REMOVE_RECURSE
  "CMakeFiles/feedback_scheduler_test.dir/feedback_scheduler_test.cc.o"
  "CMakeFiles/feedback_scheduler_test.dir/feedback_scheduler_test.cc.o.d"
  "feedback_scheduler_test"
  "feedback_scheduler_test.pdb"
  "feedback_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
