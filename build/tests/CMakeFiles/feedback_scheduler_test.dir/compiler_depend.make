# Empty compiler generated dependencies file for feedback_scheduler_test.
# This may be replaced when dependencies are built.
