file(REMOVE_RECURSE
  "CMakeFiles/fuzz_executor_test.dir/fuzz_executor_test.cc.o"
  "CMakeFiles/fuzz_executor_test.dir/fuzz_executor_test.cc.o.d"
  "fuzz_executor_test"
  "fuzz_executor_test.pdb"
  "fuzz_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
