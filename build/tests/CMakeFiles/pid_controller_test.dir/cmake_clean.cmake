file(REMOVE_RECURSE
  "CMakeFiles/pid_controller_test.dir/pid_controller_test.cc.o"
  "CMakeFiles/pid_controller_test.dir/pid_controller_test.cc.o.d"
  "pid_controller_test"
  "pid_controller_test.pdb"
  "pid_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pid_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
