# Empty dependencies file for pid_controller_test.
# This may be replaced when dependencies are built.
