file(REMOVE_RECURSE
  "CMakeFiles/processing_queue_test.dir/processing_queue_test.cc.o"
  "CMakeFiles/processing_queue_test.dir/processing_queue_test.cc.o.d"
  "processing_queue_test"
  "processing_queue_test.pdb"
  "processing_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/processing_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
