# Empty dependencies file for processing_queue_test.
# This may be replaced when dependencies are built.
