
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repartition_registry_test.cc" "tests/CMakeFiles/repartition_registry_test.dir/repartition_registry_test.cc.o" "gcc" "tests/CMakeFiles/repartition_registry_test.dir/repartition_registry_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/soap_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repartition/CMakeFiles/soap_repartition.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/soap_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/soap_router.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/soap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/soap_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/soap_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
