file(REMOVE_RECURSE
  "CMakeFiles/repartition_registry_test.dir/repartition_registry_test.cc.o"
  "CMakeFiles/repartition_registry_test.dir/repartition_registry_test.cc.o.d"
  "repartition_registry_test"
  "repartition_registry_test.pdb"
  "repartition_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repartition_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
