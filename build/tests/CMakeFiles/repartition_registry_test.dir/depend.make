# Empty dependencies file for repartition_registry_test.
# This may be replaced when dependencies are built.
