file(REMOVE_RECURSE
  "CMakeFiles/repartitioner_test.dir/repartitioner_test.cc.o"
  "CMakeFiles/repartitioner_test.dir/repartitioner_test.cc.o.d"
  "repartitioner_test"
  "repartitioner_test.pdb"
  "repartitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repartitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
