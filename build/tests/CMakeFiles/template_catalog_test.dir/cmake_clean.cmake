file(REMOVE_RECURSE
  "CMakeFiles/template_catalog_test.dir/template_catalog_test.cc.o"
  "CMakeFiles/template_catalog_test.dir/template_catalog_test.cc.o.d"
  "template_catalog_test"
  "template_catalog_test.pdb"
  "template_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
