# Empty dependencies file for transaction_manager_test.
# This may be replaced when dependencies are built.
