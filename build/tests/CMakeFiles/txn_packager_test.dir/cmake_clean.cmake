file(REMOVE_RECURSE
  "CMakeFiles/txn_packager_test.dir/txn_packager_test.cc.o"
  "CMakeFiles/txn_packager_test.dir/txn_packager_test.cc.o.d"
  "txn_packager_test"
  "txn_packager_test.pdb"
  "txn_packager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_packager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
