# Empty dependencies file for txn_packager_test.
# This may be replaced when dependencies are built.
