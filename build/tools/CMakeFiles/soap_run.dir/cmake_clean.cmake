file(REMOVE_RECURSE
  "CMakeFiles/soap_run.dir/soap_run.cc.o"
  "CMakeFiles/soap_run.dir/soap_run.cc.o.d"
  "soap_run"
  "soap_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
