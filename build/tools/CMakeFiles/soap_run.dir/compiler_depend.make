# Empty compiler generated dependencies file for soap_run.
# This may be replaced when dependencies are built.
