// Extending SOAP: plugging a user-defined scheduling policy into the
// public API. This one implements "DeadlineScheduler": deploy the whole
// plan within a target number of intervals by submitting a fixed quota per
// interval at normal priority — a simpler, open-loop alternative to the
// PID controller that a downstream user might try first.
//
//   ./build/examples/custom_scheduler

#include <algorithm>
#include <cstdio>

#include "src/soap_api.h"

using namespace soap;

/// Open-loop pacing: plan_size / deadline_intervals transactions per tick.
class DeadlineScheduler : public core::Scheduler {
 public:
  explicit DeadlineScheduler(uint32_t deadline_intervals)
      : deadline_(deadline_intervals) {}

  std::string_view name() const override { return "Deadline"; }

  void OnPlanReady() override {
    quota_ = std::max<size_t>(1, env_.registry->size() / deadline_);
    std::printf("[deadline] plan of %zu txns, quota %zu per interval\n",
                env_.registry->size(), quota_);
  }

  void OnIntervalTick(const core::IntervalStats&) override {
    for (size_t i = 0; i < quota_; ++i) {
      core::RepartitionTxn* rt = env_.registry->NextPending();
      if (rt == nullptr) break;
      SubmitPending(rt, txn::TxnPriority::kNormal);
    }
  }

  void OnTxnComplete(const txn::Transaction& t) override {
    // Aborted repartition transactions went back to pending; the next
    // tick's quota picks them up again.
    (void)t;
  }

 private:
  uint32_t deadline_;
  size_t quota_ = 0;
};

int main() {
  // Assemble the stack manually (the engine's Experiment class accepts
  // only the built-in strategies; a custom policy wires in like this).
  sim::Simulator sim;
  cluster::ClusterConfig cluster_config;
  cluster_config.num_keys = 40'000;
  cluster::Cluster cluster(&sim, cluster_config);
  cluster::TransactionManager tm(&cluster);

  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(1.0);
  spec.num_templates = 2'000;
  spec.num_keys = 40'000;
  workload::TemplateCatalog catalog(spec, cluster.num_nodes());
  for (uint64_t key = 0; key < spec.num_keys; ++key) {
    storage::Tuple tuple;
    tuple.key = key;
    if (!cluster.LoadTuple(tuple, catalog.InitialPartitionOf(key)).ok()) {
      return 1;
    }
  }

  workload::WorkloadHistory history(spec.num_templates, 10);
  core::Repartitioner repartitioner(
      &cluster, &tm, &catalog, &history,
      std::make_unique<DeadlineScheduler>(/*deadline_intervals=*/10));
  tm.set_pre_execution_hook(
      [&](txn::Transaction* t) { repartitioner.OnBeforeExecute(t); });
  tm.set_completion_callback(
      [&](const txn::Transaction& t) { repartitioner.OnTxnComplete(t); });

  workload::WorkloadGenerator generator(&catalog, 5);
  const Duration interval = Seconds(20);
  Duration prev_normal = 0, prev_rep = 0;

  for (uint32_t k = 0; k < 25; ++k) {
    sim.At(static_cast<SimTime>(k) * interval, [&, k] {
      if (k == 3) repartitioner.StartRepartitioning();
      auto batch = generator.GenerateInterval(200.0 * 20.0);
      for (auto& t : batch) {
        repartitioner.InterceptNormalSubmission(t.get());
        tm.Submit(std::move(t));
      }
    });
    sim.At(static_cast<SimTime>(k + 1) * interval, [&, k] {
      core::IntervalStats stats;
      stats.index = k;
      stats.length = interval;
      const Duration normal =
          cluster.TotalBusyTime(cluster::WorkCategory::kNormal);
      const Duration rep =
          cluster.TotalBusyTime(cluster::WorkCategory::kRepartition);
      stats.normal_work = normal - prev_normal;
      stats.repartition_work = rep - prev_rep;
      prev_normal = normal;
      prev_rep = rep;
      repartitioner.OnIntervalTick(stats);
      std::printf("interval %2u: rep_rate=%.2f, rep_work_ratio=%.3f\n", k,
                  repartitioner.RepRate(
                      tm.counters().repartition_ops_applied),
                  stats.RepartitionWorkRatio());
    });
  }
  sim.Run();

  Status audit = cluster.CheckConsistency();
  std::printf("\n%s; audit %s\n",
              repartitioner.Finished() ? "plan deployed within deadline"
                                       : "plan incomplete",
              audit.ok() ? "ok" : audit.ToString().c_str());
  return audit.ok() && repartitioner.Finished() ? 0 : 1;
}
