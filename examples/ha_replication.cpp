// High-availability replication scenario: raise the replication factor of
// the hottest templates' tuples to 2 using the paper's NewReplicaCreation
// operations (§2.2), scheduled online by the Hybrid scheduler, then serve
// reads round-robin across the copies. Shows the replica ops end-to-end
// (the paper's evaluation only exercises migrations) plus FinishRound's
// multi-round lifecycle.
//
//   ./build/examples/ha_replication

#include <cstdio>

#include "src/soap_api.h"

using namespace soap;

int main() {
  sim::Simulator sim;
  cluster::ClusterConfig cluster_config;
  cluster_config.num_keys = 20'000;
  cluster::Cluster cluster(&sim, cluster_config);
  cluster::TransactionManager tm(&cluster);

  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(/*alpha=*/0.0);
  spec.num_templates = 1'000;
  spec.num_keys = 20'000;
  workload::TemplateCatalog catalog(spec, cluster.num_nodes());
  for (uint64_t key = 0; key < spec.num_keys; ++key) {
    storage::Tuple t;
    t.key = key;
    t.content = static_cast<int64_t>(key);
    if (!cluster.LoadTuple(t, catalog.InitialPartitionOf(key)).ok()) return 1;
  }
  cluster.CheckpointAll();

  workload::WorkloadHistory history(spec.num_templates, 10);
  core::Repartitioner repartitioner(
      &cluster, &tm, &catalog, &history,
      std::make_unique<core::HybridScheduler>());
  tm.set_pre_execution_hook(
      [&](txn::Transaction* t) { repartitioner.OnBeforeExecute(t); });
  tm.set_completion_callback(
      [&](const txn::Transaction& t) { repartitioner.OnTxnComplete(t); });

  // The hot head: the 50 most popular templates' tuples.
  std::vector<storage::TupleKey> hot_keys;
  for (uint32_t t = 0; t < 50; ++t) {
    const auto& tmpl = catalog.at(t);
    hot_keys.insert(hot_keys.end(), tmpl.keys.begin(), tmpl.keys.end());
  }

  repartition::ReplicaPlanner planner(cluster.num_nodes());
  auto plan = planner.PlanReplication(cluster.routing_table(), hot_keys,
                                      /*factor=*/2);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("replication plan: %zu NewReplicaCreation ops for %zu hot "
              "tuples\n",
              plan->size(), hot_keys.size());

  // Run normal traffic while the replication deploys online.
  workload::WorkloadGenerator gen(&catalog, 17);
  for (int k = 0; k < 10; ++k) {
    sim.At(static_cast<SimTime>(k) * Seconds(20), [&, k] {
      if (k == 2) repartitioner.StartRepartitioningWithPlan(*plan);
      auto batch = gen.GenerateInterval(250.0 * 20);
      for (auto& t : batch) {
        repartitioner.InterceptNormalSubmission(t.get());
        tm.Submit(std::move(t));
      }
    });
  }
  sim.Run();

  std::printf("replication %s; %llu ops applied (%llu piggybacked)\n",
              repartitioner.Finished() ? "complete" : "incomplete",
              static_cast<unsigned long long>(
                  tm.counters().repartition_ops_applied),
              static_cast<unsigned long long>(
                  tm.counters().piggybacked_ops_applied));

  // Verify the copies and show replica-aware read routing.
  uint64_t replicated = 0;
  for (storage::TupleKey key : hot_keys) {
    if (cluster.routing_table().GetPlacement(key)->copy_count() == 2) {
      ++replicated;
    }
  }
  std::printf("%llu / %zu hot tuples now have 2 copies\n",
              static_cast<unsigned long long>(replicated), hot_keys.size());

  router::QueryRouter rr_router(&cluster.routing_table(),
                                router::ReplicaPolicy::kRoundRobin);
  uint64_t reads_per_partition[8] = {0};
  for (int i = 0; i < 1000; ++i) {
    auto p = rr_router.RouteRead(hot_keys[static_cast<size_t>(i) %
                                          hot_keys.size()]);
    if (p.ok()) reads_per_partition[*p]++;
  }
  std::printf("round-robin reads of hot tuples per partition:");
  for (uint32_t p = 0; p < cluster.num_nodes(); ++p) {
    std::printf(" %llu",
                static_cast<unsigned long long>(reads_per_partition[p]));
  }
  std::printf("\n");

  Status audit = cluster.CheckConsistency();
  std::printf("audit: %s\n", audit.ToString().c_str());
  const bool done_round = repartitioner.FinishRound();
  std::printf("round retired: %s (ready for the next optimizer trigger)\n",
              done_round ? "yes" : "no");
  return audit.ok() && done_round ? 0 : 1;
}
