// Quickstart: build a 5-node cluster, run a Zipf OLTP workload at high
// load, repartition it online with the Hybrid scheduler, and print the
// per-interval series. A scaled-down version of the paper's experiment so
// it finishes in a couple of seconds.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/soap_api.h"

int main() {
  using namespace soap;

  engine::ExperimentConfig config;
  // Scaled-down workload: 2,000 Zipf templates over 50,000 tuples,
  // alpha = 100% (every template starts distributed).
  config.workload_options.spec = workload::WorkloadSpec::Zipf(/*alpha=*/1.0);
  config.workload_options.spec.num_templates = 2'000;
  config.workload_options.spec.num_keys = 50'000;
  config.workload_options.utilization = workload::kHighLoadUtilization;
  config.warmup_intervals = 5;
  config.measured_intervals = 40;
  config.deployment.strategy = SchedulingStrategy::kHybrid;
  config.deployment.feedback.sp = 1.05;  // Table 1, Zipf / HighLoad
  config.seed = 42;

  engine::Experiment experiment(config);
  engine::ExperimentResult result = experiment.Run();

  std::printf("%s\n\n", result.Summary().c_str());

  SeriesBundle bundle("Hybrid online repartitioning, Zipf high load");
  bundle.Insert("rep_rate", result.rep_rate);
  bundle.Insert("txn_per_min", result.throughput);
  bundle.Insert("latency_ms", result.latency_ms);
  bundle.Insert("failure", result.failure_rate);
  bundle.Insert("queue", result.queue_length);
  std::printf("%s\n", bundle.ToTable(/*stride=*/2).c_str());

  SeriesBundle tput_chart("Throughput, txn/min (the paper's Fig. 4d)");
  tput_chart.Insert("throughput", result.throughput);
  std::printf("%s\n", tput_chart.ToAsciiChart().c_str());

  std::printf("events executed: %llu, virtual end time: %.0f s\n",
              static_cast<unsigned long long>(result.events_executed),
              ToSeconds(result.end_time));
  return result.audit.ok() ? 0 : 1;
}
