// Head-to-head comparison of all five scheduling strategies on one
// scenario (Zipf, high load, alpha = 60%), printing a compact scoreboard —
// the quick way to see the paper's headline result: Hybrid combines
// ApplyAll-class deployment speed with AfterAll-class non-interference.
//
//   ./build/examples/scheduler_comparison

#include <cstdio>

#include "src/soap_api.h"

using namespace soap;

int main() {
  std::printf("strategy    done@  tail_tput/min  peak_lat_ms  tail_lat_ms  "
              "max_fail  tail_fail\n");
  for (auto strategy :
       {SchedulingStrategy::kApplyAll, SchedulingStrategy::kAfterAll,
        SchedulingStrategy::kFeedback, SchedulingStrategy::kPiggyback,
        SchedulingStrategy::kHybrid}) {
    engine::ExperimentConfig config;
    config.workload_options.spec = workload::WorkloadSpec::Zipf(/*alpha=*/0.6);
    config.workload_options.spec.num_templates = 3'000;
    config.workload_options.spec.num_keys = 60'000;
    config.workload_options.utilization = workload::kHighLoadUtilization;
    config.warmup_intervals = 5;
    config.measured_intervals = 45;
    config.deployment.strategy = strategy;
    config.deployment.feedback.sp = 1.05;
    config.seed = 2026;
    engine::ExperimentResult r = engine::Experiment(config).Run();
    std::printf("%-10s %5d  %13.0f  %11.0f  %11.0f  %8.3f  %9.3f\n",
                StrategyName(strategy), r.RepartitionCompletedAt(),
                r.throughput.TailMean(10), r.latency_ms.Max(),
                r.latency_ms.TailMean(10), r.failure_rate.Max(),
                r.failure_rate.TailMean(10));
  }
  std::printf(
      "\nReading guide: ApplyAll deploys instantly but spikes latency;\n"
      "AfterAll never interferes but never finishes under load; Hybrid\n"
      "finishes nearly as fast as ApplyAll at a fraction of the impact.\n");
  return 0;
}
