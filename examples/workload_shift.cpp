// Workload-shift scenario: the optimizer-triggered repartitioning loop.
//
// A cluster runs a well-partitioned workload; then the popular templates
// shift (the catalogue's placement no longer matches who is hot), and the
// repartitioner's optimizer notices the estimated utilisation crossing its
// threshold and deploys a corrective plan with the Hybrid scheduler —
// §2.2's "periodic database repartitioning" loop, driven by the
// MaybeStartRepartitioning() trigger rather than a fixed start interval.
//
//   ./build/examples/workload_shift

#include <cstdio>

#include "src/soap_api.h"

using namespace soap;

int main() {
  sim::Simulator sim;
  cluster::ClusterConfig cluster_config;
  cluster_config.num_nodes = 5;
  cluster_config.num_keys = 50'000;
  cluster::Cluster cluster(&sim, cluster_config);
  cluster::TransactionManager tm(&cluster);

  // Phase 1 workload: 2,000 templates, all collocated (alpha = 0) —
  // the database is already perfectly partitioned for it.
  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(/*alpha=*/0.0);
  spec.num_templates = 2'000;
  spec.num_keys = 50'000;
  workload::TemplateCatalog catalog(spec, cluster.num_nodes());
  for (uint64_t key = 0; key < spec.num_keys; ++key) {
    storage::Tuple tuple;
    tuple.key = key;
    tuple.content = static_cast<int64_t>(key);
    if (!cluster.LoadTuple(tuple, catalog.InitialPartitionOf(key)).ok()) {
      return 1;
    }
  }

  workload::WorkloadHistory history(spec.num_templates, /*window=*/5);
  repartition::OptimizerConfig opt_config;
  opt_config.utilization_threshold = 0.75;
  core::Repartitioner repartitioner(
      &cluster, &tm, &catalog, &history,
      std::make_unique<core::HybridScheduler>(), opt_config);

  tm.set_pre_execution_hook(
      [&](txn::Transaction* t) { repartitioner.OnBeforeExecute(t); });
  tm.set_completion_callback(
      [&](const txn::Transaction& t) { repartitioner.OnTxnComplete(t); });

  workload::WorkloadGenerator generator(&catalog, 123);
  Rng rng(7);

  // The "shift": after interval 8 we scramble the routing of the hot
  // templates' tuples across partitions — as if a schema migration or a
  // rebalancing gone wrong left the hot working set scattered. From then
  // on most hot transactions are distributed.
  auto scramble_hot_templates = [&]() {
    uint32_t moved = 0;
    for (uint32_t t = 0; t < 200; ++t) {  // the hot head of the catalogue
      const workload::TxnTemplate& tmpl = catalog.at(t);
      for (size_t i = 3; i < tmpl.keys.size(); ++i) {
        const storage::TupleKey key = tmpl.keys[i];
        const auto from = *cluster.routing_table().GetPrimary(key);
        const auto to = (from + 1 + rng.NextUint64(3)) %
                        cluster.num_nodes();
        if (from == to) continue;
        // Move data + routing directly (an external actor, not a txn).
        auto tuple = cluster.storage(from).Read(key);
        if (!tuple.ok()) continue;
        cluster.storage(to).BulkLoad(*tuple);
        (void)cluster.storage(from).ApplyErase(0, key);
        (void)cluster.routing_table().Migrate(key, from, to);
        ++moved;
      }
    }
    std::printf("-- shift: scattered %u hot tuples across partitions\n",
                moved);
  };

  const Duration interval = Seconds(20);
  const uint32_t total_intervals = 30;
  const double arrival_per_interval = 250.0 * 20.0;  // 250 txn/s

  core::IntervalStats prev_stats;
  Duration prev_normal = 0, prev_rep = 0;
  cluster::TmCounters prev_counters;

  for (uint32_t k = 0; k < total_intervals; ++k) {
    sim.At(static_cast<SimTime>(k) * interval, [&, k] {
      if (k == 8) scramble_hot_templates();
      auto batch = generator.GenerateInterval(arrival_per_interval);
      for (auto& t : batch) {
        repartitioner.InterceptNormalSubmission(t.get());
        tm.Submit(std::move(t));
      }
    });
    sim.At(static_cast<SimTime>(k + 1) * interval, [&, k] {
      const Duration normal =
          cluster.TotalBusyTime(cluster::WorkCategory::kNormal);
      const Duration rep =
          cluster.TotalBusyTime(cluster::WorkCategory::kRepartition);
      core::IntervalStats stats;
      stats.index = k;
      stats.length = interval;
      stats.normal_work = normal - prev_normal;
      stats.repartition_work = rep - prev_rep;
      prev_normal = normal;
      prev_rep = rep;
      const auto& c = tm.counters();
      const uint64_t committed =
          c.committed_normal - prev_counters.committed_normal;
      prev_counters = c;
      repartitioner.OnIntervalTick(stats);

      // The periodic optimizer check (§2.2): repartition when the
      // estimated utilisation crosses the threshold.
      const double estimate = repartitioner.optimizer().EstimateUtilization(
          history, cluster.routing_table());
      const bool started = repartitioner.MaybeStartRepartitioning();
      std::printf(
          "interval %2u: tput=%5llu txn/int, est_util=%.2f, rep_rate=%.2f%s\n",
          k, static_cast<unsigned long long>(committed), estimate,
          repartitioner.RepRate(c.repartition_ops_applied),
          started ? "  <-- optimizer triggered repartitioning" : "");
    });
  }
  sim.Run();

  Status audit = cluster.CheckConsistency();
  std::printf("\nfinal: %s, plan %zu ops, %s\n",
              repartitioner.Finished() ? "repartitioning complete"
                                       : "repartitioning incomplete",
              repartitioner.registry().total_ops(),
              audit.ok() ? "audit ok" : audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
