// Deliberate-corruption test hook (--check_break): mutation modes the
// transaction manager injects exactly once per run so tests can prove the
// checker actually detects each class of bug. Guards against a vacuously
// green checker. Lives in soap_check_core so the cluster layer can consume
// the enum without depending on the full check subsystem.

#ifndef SOAP_CHECK_BREAK_MODE_H_
#define SOAP_CHECK_BREAK_MODE_H_

#include <string>

namespace soap::check {

enum class BreakMode {
  kNone = 0,
  /// Skip one replica-path phase-2 write apply: the copy silently diverges
  /// from the primary (must trip replica_coherence / stale_read).
  kReplicaApply,
  /// Skip one migration source cleanup: the tuple stays stored on a
  /// partition the routing table no longer places it on (must trip the
  /// ownership invariant).
  kDoubleDeploy,
  /// Skip one primary write apply: a committed update never reaches
  /// storage (must trip final_state / stale_read).
  kLostWrite,
  /// Misreport one MVCC snapshot read as having observed a version other
  /// than the one visible at the reader's begin timestamp (must trip
  /// stale_snapshot_read). Only meaningful under --cc=mvcc.
  kStaleSnapshot,
  /// Half-apply one leader shift: retarget the primary without absorbing
  /// the target's replica entry or demoting the old primary, so the key
  /// briefly lists a partition twice and strands the old copy (must trip
  /// double_primary / ownership). Only meaningful under --lion.
  kDoublePrimary,
};

inline const char* BreakModeName(BreakMode mode) {
  switch (mode) {
    case BreakMode::kNone: return "none";
    case BreakMode::kReplicaApply: return "replica_apply";
    case BreakMode::kDoubleDeploy: return "double_deploy";
    case BreakMode::kLostWrite: return "lost_write";
    case BreakMode::kStaleSnapshot: return "stale_snapshot";
    case BreakMode::kDoublePrimary: return "double_primary";
  }
  return "none";
}

/// Parses a --check_break value; empty and "none" mean kNone. Returns
/// false on an unknown mode name.
inline bool ParseBreakMode(const std::string& text, BreakMode* mode) {
  if (text.empty() || text == "none") {
    *mode = BreakMode::kNone;
  } else if (text == "replica_apply") {
    *mode = BreakMode::kReplicaApply;
  } else if (text == "double_deploy") {
    *mode = BreakMode::kDoubleDeploy;
  } else if (text == "lost_write") {
    *mode = BreakMode::kLostWrite;
  } else if (text == "stale_snapshot") {
    *mode = BreakMode::kStaleSnapshot;
  } else if (text == "double_primary") {
    *mode = BreakMode::kDoublePrimary;
  } else {
    return false;
  }
  return true;
}

}  // namespace soap::check

#endif  // SOAP_CHECK_BREAK_MODE_H_
