#include "src/check/chaos.h"

#include <algorithm>
#include <vector>

#include "src/common/random.h"

namespace soap::check {

namespace {

SimTime SampleAt(Rng& rng, const ChaosDomain& d) {
  if (d.latest <= d.earliest) return d.earliest;
  return d.earliest + static_cast<SimTime>(rng.NextUint64(
                          static_cast<uint64_t>(d.latest - d.earliest)));
}

Duration SampleDuration(Rng& rng, Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  return lo +
         static_cast<Duration>(rng.NextUint64(static_cast<uint64_t>(hi - lo)));
}

}  // namespace

fault::FaultSpec SampleChaosSpec(uint64_t seed, const ChaosDomain& domain) {
  Rng rng(seed);
  fault::FaultSpec spec;
  spec.seed = seed == 0 ? 1 : seed;  // 0 means "derive", pin it instead

  const uint64_t num_crashes = rng.NextUint64(domain.max_crashes + 1);
  for (uint64_t i = 0; i < num_crashes; ++i) {
    fault::CrashEvent crash;
    crash.node = static_cast<uint32_t>(rng.NextUint64(domain.num_nodes));
    crash.at = SampleAt(rng, domain);
    crash.down = SampleDuration(rng, domain.min_down, domain.max_down);
    spec.crashes.push_back(crash);
  }
  // Deterministic event order keeps ToString() canonical.
  std::sort(spec.crashes.begin(), spec.crashes.end(),
            [](const fault::CrashEvent& a, const fault::CrashEvent& b) {
              return a.at < b.at;
            });

  auto sample_rules = [&](uint32_t max_rules, double max_p, Duration max_add,
                          std::vector<fault::MessageRule>* out) {
    const uint64_t n = rng.NextUint64(max_rules + 1);
    for (uint64_t i = 0; i < n; ++i) {
      fault::MessageRule rule;
      rule.p = rng.NextDouble() * max_p;
      if (rule.p <= 0.0) rule.p = max_p / 2;
      if (rng.NextBernoulli(0.5) && domain.num_nodes >= 2) {
        // Restrict half the rules to a random edge.
        const auto a = static_cast<uint32_t>(rng.NextUint64(domain.num_nodes));
        auto b = static_cast<uint32_t>(rng.NextUint64(domain.num_nodes - 1));
        if (b >= a) ++b;
        rule.edge_a = static_cast<int32_t>(std::min(a, b));
        rule.edge_b = static_cast<int32_t>(std::max(a, b));
      }
      if (max_add > 0) rule.add = SampleDuration(rng, Millis(1), max_add);
      out->push_back(rule);
    }
  };
  sample_rules(domain.max_drop_rules, domain.max_drop_p, 0, &spec.drops);
  sample_rules(domain.max_delay_rules, domain.max_delay_p,
               domain.max_delay_add, &spec.delays);
  sample_rules(domain.max_dup_rules, domain.max_dup_p, 0, &spec.dups);

  const uint64_t num_partitions = rng.NextUint64(domain.max_partitions + 1);
  for (uint64_t i = 0; i < num_partitions && domain.num_nodes >= 2; ++i) {
    fault::PartitionEvent part;
    part.at = SampleAt(rng, domain);
    part.duration = SampleDuration(rng, domain.min_partition_for,
                                   domain.max_partition_for);
    // A random proper, nonempty subset: 1..floor(n/2) nodes, so the
    // majority side keeps the coordinator quorum shape interesting.
    const uint64_t group_size =
        1 + rng.NextUint64(std::max<uint32_t>(1, domain.num_nodes / 2));
    std::vector<uint32_t> perm = rng.Permutation(domain.num_nodes);
    part.group.assign(perm.begin(), perm.begin() + group_size);
    std::sort(part.group.begin(), part.group.end());
    spec.partitions.push_back(part);
  }
  std::sort(spec.partitions.begin(), spec.partitions.end(),
            [](const fault::PartitionEvent& a, const fault::PartitionEvent& b) {
              return a.at < b.at;
            });

  if (spec.empty()) {
    // Never hand back a fault-free "chaos" schedule.
    fault::CrashEvent crash;
    crash.node = static_cast<uint32_t>(rng.NextUint64(domain.num_nodes));
    crash.at = SampleAt(rng, domain);
    crash.down = SampleDuration(rng, domain.min_down, domain.max_down);
    spec.crashes.push_back(crash);
  }
  return spec;
}

ShrinkResult ShrinkFailingSpec(const fault::FaultSpec& failing,
                               const ChaosRunFn& run, uint32_t budget) {
  ShrinkResult result;
  result.spec = failing;

  // One shrink candidate = the spec minus one component. Components are
  // indexed category-by-category so removals stay stable as vectors shrink.
  auto component_count = [](const fault::FaultSpec& s) {
    return s.crashes.size() + s.drops.size() + s.delays.size() +
           s.dups.size() + s.partitions.size();
  };
  auto without = [](const fault::FaultSpec& s, size_t index) {
    fault::FaultSpec out = s;
    auto drop_at = [&index](auto* vec) {
      if (index < vec->size()) {
        vec->erase(vec->begin() + static_cast<ptrdiff_t>(index));
        return true;
      }
      index -= vec->size();
      return false;
    };
    if (drop_at(&out.crashes)) return out;
    if (drop_at(&out.drops)) return out;
    if (drop_at(&out.delays)) return out;
    if (drop_at(&out.dups)) return out;
    drop_at(&out.partitions);
    return out;
  };

  bool progressed = true;
  while (progressed && result.runs < budget &&
         component_count(result.spec) > 1) {
    progressed = false;
    for (size_t i = 0; i < component_count(result.spec); ++i) {
      if (result.runs >= budget) break;
      fault::FaultSpec candidate = without(result.spec, i);
      result.runs++;
      if (!run(candidate).ok) {
        result.spec = candidate;
        result.removed++;
        progressed = true;
        break;  // restart the scan over the smaller spec
      }
    }
  }
  return result;
}

}  // namespace soap::check
