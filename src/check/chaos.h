// Chaos schedule search: seeded sampling of random fault schedules
// (crashes, message drops/delays/dups, network partitions), a verdict
// callback that runs the full system + checker against one schedule, and a
// greedy shrinker that reduces a failing schedule to a minimal reproducer.
//
// Everything is deterministic: SampleChaosSpec(seed, domain) is a pure
// function of its arguments, and the sampled spec carries `seed` as its
// fault-RNG seed, so a reproducer string replays the identical run.

#ifndef SOAP_CHECK_CHAOS_H_
#define SOAP_CHECK_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/time.h"
#include "src/fault/fault_spec.h"

namespace soap::check {

/// The sampling domain: how violent a schedule may get. Defaults are
/// matched to the standard 5-node experiment with a [30s, 150s) event
/// window — aggressive enough to exercise failover and recovery, bounded
/// enough that runs still drain.
struct ChaosDomain {
  uint32_t num_nodes = 5;
  /// Fault events land in [earliest, latest).
  SimTime earliest = Seconds(30);
  SimTime latest = Seconds(150);
  uint32_t max_crashes = 2;
  Duration min_down = Seconds(5);
  Duration max_down = Seconds(30);
  uint32_t max_drop_rules = 1;
  double max_drop_p = 0.01;
  uint32_t max_delay_rules = 1;
  double max_delay_p = 0.05;
  Duration max_delay_add = Millis(20);
  uint32_t max_dup_rules = 1;
  double max_dup_p = 0.02;
  uint32_t max_partitions = 1;
  Duration min_partition_for = Seconds(5);
  Duration max_partition_for = Seconds(20);
};

/// Draws one fault schedule from the domain. Deterministic per (seed,
/// domain); never returns an empty spec (a crash is forced if every
/// category samples zero), and sets spec.seed = seed so the fault layer's
/// probabilistic rules replay identically.
fault::FaultSpec SampleChaosSpec(uint64_t seed, const ChaosDomain& domain);

/// Outcome of running one schedule through the system under check.
struct ChaosVerdict {
  bool ok = true;
  std::string detail;  ///< first violation / failure reason when !ok
};

/// Runs the full pipeline (experiment + checker + invariants) against one
/// schedule. Supplied by the caller; must be deterministic.
using ChaosRunFn = std::function<ChaosVerdict(const fault::FaultSpec&)>;

struct ShrinkResult {
  fault::FaultSpec spec;   ///< minimal still-failing schedule
  uint32_t runs = 0;       ///< verdict evaluations spent shrinking
  uint32_t removed = 0;    ///< fault components eliminated
};

/// Greedily removes fault components (each crash, message rule and
/// partition individually) from a failing schedule, keeping a removal
/// whenever the smaller schedule still fails, looping to fixpoint or until
/// `budget` runs are spent. The input must fail under `run`; the result is
/// 1-minimal w.r.t. component removal when the budget sufficed.
ShrinkResult ShrinkFailingSpec(const fault::FaultSpec& failing,
                               const ChaosRunFn& run, uint32_t budget);

}  // namespace soap::check

#endif  // SOAP_CHECK_CHAOS_H_
