#include "src/check/checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace soap::check {

namespace {

/// Iterative Tarjan strongly-connected components. Returns the component
/// id per node; components with >= 2 nodes (or a self-loop) are cycles.
std::vector<uint32_t> StronglyConnected(
    const std::vector<std::vector<uint32_t>>& adj, uint32_t* num_components) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint32_t> component(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;
  uint32_t components = 0;

  struct Frame {
    uint32_t node;
    size_t edge;
  };
  std::vector<Frame> dfs;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const uint32_t v = frame.node;
      if (frame.edge < adj[v].size()) {
        const uint32_t w = adj[v][frame.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        while (true) {
          const uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component[w] = components;
          if (w == v) break;
        }
        components++;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const uint32_t parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  *num_components = components;
  return component;
}

/// Component ids whose member count is >= 2 — a dependency cycle.
std::vector<bool> CyclicComponents(const std::vector<uint32_t>& component,
                                   uint32_t num_components) {
  std::vector<uint32_t> size(num_components, 0);
  for (uint32_t c : component) size[c]++;
  std::vector<bool> cyclic(num_components, false);
  for (uint32_t c = 0; c < num_components; ++c) {
    cyclic[c] = size[c] >= 2;
  }
  return cyclic;
}

std::string SampleMembers(const std::vector<uint32_t>& component,
                          uint32_t target,
                          const std::vector<uint64_t>& txn_of) {
  std::ostringstream os;
  uint32_t listed = 0;
  for (uint32_t v = 0; v < component.size() && listed < 4; ++v) {
    if (component[v] != target) continue;
    if (listed > 0) os << ",";
    os << txn_of[v];
    listed++;
  }
  return os.str();
}

}  // namespace

std::string CheckReport::ToString() const {
  std::ostringstream os;
  os << "check[violations=" << violations.size()
     << " txns=" << txns_checked << " reads=" << reads_checked;
  if (mvcc_checked) os << " snapshot_reads=" << snapshot_reads_checked;
  os << " ww=" << ww_edges << " wr=" << wr_edges << " rw=" << rw_edges
     << " rw_cycles=" << rw_cycles
     << (serializable_checked ? " level=serializable" : " level=readcommitted");
  if (mvcc_checked) os << " cc=mvcc";
  os << "]";
  if (!violations.empty()) {
    os << " first: " << violations.front().check << " ("
       << violations.front().detail << ")";
  }
  return os.str();
}

CheckReport CheckHistory(const HistoryRecorder& history, bool serializable,
                         bool mvcc) {
  CheckReport report;
  report.serializable_checked = serializable;
  report.mvcc_checked = mvcc;
  const auto& chains = history.chains();
  const auto& committed = history.committed();
  const auto& aborted = history.aborted();
  report.txns_checked = static_cast<uint64_t>(committed.size());

  // (key, writer) -> chain index, plus chain sanity (writers committed,
  // commit times non-decreasing).
  std::unordered_map<storage::TupleKey,
                     std::unordered_map<uint64_t, size_t>>
      version_of;
  version_of.reserve(chains.size());
  for (const auto& [key, chain] : chains) {
    auto& per_key = version_of[key];
    per_key.reserve(chain.size());
    for (size_t i = 0; i < chain.size(); ++i) {
      per_key[chain[i].writer] = i;
      if (committed.find(chain[i].writer) == committed.end()) {
        report.violations.push_back(
            {"phantom_writer",
             "chain of key " + std::to_string(key) + " version " +
                 std::to_string(i) + " written by uncommitted txn " +
                 std::to_string(chain[i].writer),
             chain[i].commit_time});
      }
      if (i > 0 && chain[i].commit_time < chain[i - 1].commit_time) {
        report.violations.push_back(
            {"chain_order",
             "key " + std::to_string(key) + " version " + std::to_string(i) +
                 " committed before its predecessor",
             chain[i].commit_time});
      }
    }
  }

  // Dependency-graph nodes: committed transactions, indexed densely.
  std::unordered_map<uint64_t, uint32_t> node_of;
  std::vector<uint64_t> txn_of;
  auto node = [&](uint64_t txn) -> uint32_t {
    auto [it, inserted] =
        node_of.try_emplace(txn, static_cast<uint32_t>(txn_of.size()));
    if (inserted) txn_of.push_back(txn);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> ww_wr_edges;
  std::vector<std::pair<uint32_t, uint32_t>> rw_edge_list;

  // ww edges: chain adjacency per key.
  for (const auto& [key, chain] : chains) {
    (void)key;
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      if (chain[i].writer == chain[i + 1].writer) continue;
      ww_wr_edges.push_back({node(chain[i].writer), node(chain[i + 1].writer)});
      report.ww_edges++;
    }
  }

  // Reads: G1a/G1b, staleness, wr and rw edges. Reads by transactions
  // that did not commit carry no obligations.
  for (const ReadRecord& r : history.reads()) {
    if (committed.find(r.reader) == committed.end()) continue;
    report.reads_checked++;
    ptrdiff_t observed_index = -1;  // -1 = bulk-loaded initial version
    if (r.observed_writer != 0) {
      if (aborted.count(r.observed_writer) > 0) {
        report.violations.push_back(
            {"dirty_read",
             "txn " + std::to_string(r.reader) + " read key " +
                 std::to_string(r.key) + " from aborted txn " +
                 std::to_string(r.observed_writer) + " on partition " +
                 std::to_string(r.partition),
             r.at});
        continue;
      }
      if (committed.find(r.observed_writer) == committed.end()) {
        report.violations.push_back(
            {"dangling_read",
             "txn " + std::to_string(r.reader) + " read key " +
                 std::to_string(r.key) + " from unknown writer " +
                 std::to_string(r.observed_writer),
             r.at});
        continue;
      }
      auto key_it = version_of.find(r.key);
      auto ver_it = key_it == version_of.end()
                        ? decltype(key_it->second.begin()){}
                        : key_it->second.find(r.observed_writer);
      if (key_it == version_of.end() ||
          ver_it == key_it->second.end()) {
        report.violations.push_back(
            {"dangling_read",
             "txn " + std::to_string(r.reader) + " read key " +
                 std::to_string(r.key) + " from txn " +
                 std::to_string(r.observed_writer) +
                 " which committed no version of it",
             r.at});
        continue;
      }
      observed_index = static_cast<ptrdiff_t>(ver_it->second);
      if (r.observed_writer != r.reader) {
        ww_wr_edges.push_back({node(r.observed_writer), node(r.reader)});
        report.wr_edges++;
      }
    }
    auto chain_it = chains.find(r.key);
    if (chain_it == chains.end()) continue;
    const std::vector<VersionRecord>& chain = chain_it->second;
    const size_t next = static_cast<size_t>(observed_index + 1);
    if (next >= chain.size()) continue;
    const VersionRecord& newer = chain[next];
    // Every phase-2 apply precedes FinishCommit, so a version committed
    // strictly before the read was already applied on every live copy —
    // observing its predecessor is a stale read.
    if (newer.commit_time < r.at) {
      report.violations.push_back(
          {"stale_read",
           "txn " + std::to_string(r.reader) + " read key " +
               std::to_string(r.key) + " on partition " +
               std::to_string(r.partition) + " observing writer " +
               std::to_string(r.observed_writer) + " after txn " +
               std::to_string(newer.writer) + " committed at t=" +
               std::to_string(newer.commit_time),
           r.at});
    }
    if (newer.writer != r.reader) {
      rw_edge_list.push_back({node(r.reader), node(newer.writer)});
      report.rw_edges++;
    }
  }

  // MVCC snapshot reads: every committed reader must observe exactly the
  // newest version committed strictly before its begin timestamp, all of
  // one transaction's reads must share a single timestamp, and G1a holds
  // (the version store only ever serves committed versions, so a dirty or
  // dangling observation means the recorder and store disagree).
  std::unordered_map<uint64_t, SimTime> snapshot_of;
  for (const SnapshotReadRecord& r : history.snapshot_reads()) {
    if (committed.find(r.reader) == committed.end()) continue;
    report.snapshot_reads_checked++;
    auto [snap, fresh] = snapshot_of.try_emplace(r.reader, r.snapshot_ts);
    if (!fresh && snap->second != r.snapshot_ts) {
      report.violations.push_back(
          {"snapshot_fracture",
           "txn " + std::to_string(r.reader) + " read key " +
               std::to_string(r.key) + " at snapshot t=" +
               std::to_string(r.snapshot_ts) + " but its earlier reads used t=" +
               std::to_string(snap->second),
           r.at});
      continue;
    }
    if (r.observed_writer != 0) {
      if (aborted.count(r.observed_writer) > 0) {
        report.violations.push_back(
            {"dirty_read",
             "txn " + std::to_string(r.reader) + " snapshot-read key " +
                 std::to_string(r.key) + " from aborted txn " +
                 std::to_string(r.observed_writer),
             r.at});
        continue;
      }
      if (committed.find(r.observed_writer) == committed.end()) {
        report.violations.push_back(
            {"dangling_read",
             "txn " + std::to_string(r.reader) + " snapshot-read key " +
                 std::to_string(r.key) + " from unknown writer " +
                 std::to_string(r.observed_writer),
             r.at});
        continue;
      }
    }
    // The version visible at the snapshot: newest chain entry with
    // commit_time < snapshot_ts; writer 0 (the base) when none exists.
    uint64_t expected = 0;
    ptrdiff_t visible_index = -1;
    auto chain_it = chains.find(r.key);
    if (chain_it != chains.end()) {
      const std::vector<VersionRecord>& chain = chain_it->second;
      for (size_t i = chain.size(); i-- > 0;) {
        if (chain[i].commit_time < r.snapshot_ts) {
          expected = chain[i].writer;
          visible_index = static_cast<ptrdiff_t>(i);
          break;
        }
      }
    }
    if (r.observed_writer != expected) {
      report.violations.push_back(
          {"stale_snapshot_read",
           "txn " + std::to_string(r.reader) + " snapshot-read key " +
               std::to_string(r.key) + " at t=" +
               std::to_string(r.snapshot_ts) + " observing writer " +
               std::to_string(r.observed_writer) + " instead of " +
               std::to_string(expected),
           r.at});
      continue;
    }
    if (r.observed_writer != 0 && r.observed_writer != r.reader) {
      ww_wr_edges.push_back({node(r.observed_writer), node(r.reader)});
      report.wr_edges++;
    }
    if (chain_it != chains.end()) {
      const std::vector<VersionRecord>& chain = chain_it->second;
      const size_t next = static_cast<size_t>(visible_index + 1);
      if (next < chain.size() && chain[next].writer != r.reader) {
        rw_edge_list.push_back({node(r.reader), node(chain[next].writer)});
        report.rw_edges++;
      }
    }
  }

  // Write applies: from committed writers only, and in chain order per
  // (partition, key) — a partition may skip versions (it was down, the
  // catch-up sweep repairs it) but must never apply them out of order.
  std::vector<std::unordered_map<storage::TupleKey, size_t>> applied_up_to;
  std::unordered_map<storage::TupleKey, std::unordered_set<uint64_t>>
      applied_writers;
  for (const WriteApplyRecord& a : history.write_applies()) {
    applied_writers[a.key].insert(a.writer);
    if (committed.find(a.writer) == committed.end()) {
      report.violations.push_back(
          {"phantom_writer",
           "partition " + std::to_string(a.partition) + " applied key " +
               std::to_string(a.key) + " from uncommitted txn " +
               std::to_string(a.writer),
           a.at});
      continue;
    }
    auto key_it = version_of.find(a.key);
    if (key_it == version_of.end() ||
        key_it->second.find(a.writer) == key_it->second.end()) {
      report.violations.push_back(
          {"phantom_writer",
           "partition " + std::to_string(a.partition) + " applied key " +
               std::to_string(a.key) + " from txn " +
               std::to_string(a.writer) +
               " which committed no version of it",
           a.at});
      continue;
    }
    const size_t version = key_it->second.at(a.writer);
    if (a.partition >= applied_up_to.size()) {
      applied_up_to.resize(a.partition + 1);
    }
    auto [slot, inserted] =
        applied_up_to[a.partition].try_emplace(a.key, version);
    if (!inserted) {
      if (version <= slot->second) {
        report.violations.push_back(
            {"out_of_order_apply",
             "partition " + std::to_string(a.partition) + " applied key " +
                 std::to_string(a.key) + " version " +
                 std::to_string(version) + " after version " +
                 std::to_string(slot->second),
             a.at});
      }
      slot->second = std::max(slot->second, version);
    }
  }

  // Lost updates: the primary's phase-2 apply precedes FinishCommit (and a
  // down participant aborts the transaction), so every committed chain
  // version must have been applied somewhere — a version with no apply
  // record anywhere was silently dropped.
  for (const auto& [key, chain] : chains) {
    auto applied_it = applied_writers.find(key);
    for (size_t i = 0; i < chain.size(); ++i) {
      if (applied_it != applied_writers.end() &&
          applied_it->second.count(chain[i].writer) > 0) {
        continue;
      }
      report.violations.push_back(
          {"lost_write",
           "txn " + std::to_string(chain[i].writer) + " committed version " +
               std::to_string(i) + " of key " + std::to_string(key) +
               " but no partition applied it",
           chain[i].commit_time});
    }
  }

  // Cycle checks. First ww ∪ wr (G1c, an anomaly at every isolation
  // level), then the full graph with rw anti-dependencies.
  const uint32_t n = static_cast<uint32_t>(txn_of.size());
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& [from, to] : ww_wr_edges) adj[from].push_back(to);
  uint32_t num_components = 0;
  std::vector<uint32_t> component = StronglyConnected(adj, &num_components);
  std::vector<bool> g1c_cyclic =
      CyclicComponents(component, num_components);
  std::vector<bool> in_g1c_cycle(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    if (g1c_cyclic[component[v]]) in_g1c_cycle[v] = true;
  }
  for (uint32_t c = 0; c < num_components; ++c) {
    if (!g1c_cyclic[c]) continue;
    report.violations.push_back(
        {"g1c_cycle",
         "ww/wr dependency cycle through txns {" +
             SampleMembers(component, c, txn_of) + ",...}",
         0});
  }

  for (const auto& [from, to] : rw_edge_list) adj[from].push_back(to);
  uint32_t full_components = 0;
  std::vector<uint32_t> full = StronglyConnected(adj, &full_components);
  std::vector<bool> full_cyclic = CyclicComponents(full, full_components);
  for (uint32_t c = 0; c < full_components; ++c) {
    if (!full_cyclic[c]) continue;
    // Skip components already reported as G1c cycles.
    bool already = false;
    for (uint32_t v = 0; v < n && !already; ++v) {
      if (full[v] == c && in_g1c_cycle[v]) already = true;
    }
    if (already) continue;
    report.rw_cycles++;
    // Snapshot isolation permits write skew: under MVCC an rw-closed cycle
    // is informational even when the run asked for serializable reads.
    if (serializable && !mvcc) {
      report.violations.push_back(
          {"serialization_cycle",
           "dependency cycle (needs rw edges) through txns {" +
               SampleMembers(full, c, txn_of) + ",...}",
           0});
    }
  }

  return report;
}

}  // namespace soap::check
