// Offline consistency checker over a recorded history: reconstructs the
// transaction dependency graph (ww from per-key version chains, wr from
// read observations, rw anti-dependencies from read-to-next-version) and
// verifies the isolation level the run promised.
//
// At read committed the checker enforces Adya PL-2: G1a (no reads from
// aborted writers), G1b/dangling reads (no reads from phantom writers) and
// G1c (no cycles of ww/wr edges). Cycles that need an rw edge — write
// skew — are legal there and only counted. Under serializable isolation
// any dependency cycle is a violation (conflict-serializability).
//
// On top of the graph checks: stale reads (a read observing a version
// older than the latest one committed strictly before it — every phase-2
// apply precedes its FinishCommit, so the newer version was already on
// every live copy), write applies landing out of chain order on a
// partition, and applies from transactions that never committed.
//
// MVCC histories (--cc=mvcc) record snapshot reads instead of routed
// reads. The checker then verifies snapshot isolation: every read observes
// exactly the newest version committed strictly before the reader's begin
// timestamp (stale_snapshot_read), all of a transaction's reads share one
// timestamp (snapshot_fracture), and G1a still holds. Dependency cycles
// that need an rw edge — write skew — are legal under SI and only counted.

#ifndef SOAP_CHECK_CHECKER_H_
#define SOAP_CHECK_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/history_recorder.h"
#include "src/common/time.h"

namespace soap::check {

struct Violation {
  std::string check;   // e.g. "stale_read", "g1c_cycle", "ownership"
  std::string detail;  // human-readable specifics
  SimTime at = 0;      // virtual time of the offending event (0 = n/a)
};

struct CheckReport {
  std::vector<Violation> violations;
  uint64_t txns_checked = 0;
  uint64_t reads_checked = 0;
  /// MVCC snapshot reads verified against the version chains.
  uint64_t snapshot_reads_checked = 0;
  uint64_t ww_edges = 0;
  uint64_t wr_edges = 0;
  uint64_t rw_edges = 0;
  /// Dependency cycles that need an rw edge to close; violations only
  /// under serializable isolation, informational otherwise.
  uint64_t rw_cycles = 0;
  bool serializable_checked = false;
  /// True when the history was checked under MVCC snapshot-isolation
  /// rules (rw cycles are then informational even at serializable).
  bool mvcc_checked = false;

  bool ok() const { return violations.empty(); }
  /// One-line digest for run summaries.
  std::string ToString() const;
};

/// Runs every offline rule over the recorded history. `serializable` names
/// the isolation level the run executed under and gates whether rw cycles
/// are violations; `mvcc` switches reads to snapshot-isolation rules
/// (under which rw cycles are never violations — SI allows write skew).
CheckReport CheckHistory(const HistoryRecorder& history, bool serializable,
                         bool mvcc = false);

}  // namespace soap::check

#endif  // SOAP_CHECK_CHECKER_H_
