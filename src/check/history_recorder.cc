#include "src/check/history_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace soap::check {

using txn::OpKind;

uint64_t HistoryRecorder::ChainTailWriter(storage::TupleKey key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return 0;
  return it->second.back().writer;
}

std::unordered_map<storage::TupleKey, uint64_t>&
HistoryRecorder::PartitionMap(uint32_t partition) {
  if (partition >= last_writer_.size()) {
    last_writer_.resize(partition + 1);
  }
  return last_writer_[partition];
}

void HistoryRecorder::OnApplyInsert(uint32_t partition, uint64_t txn_id,
                                    const storage::Tuple& tuple) {
  // Inserts are always copies (migration / replica creation staged under
  // the key's exclusive lock), never new values: attribute the committed
  // chain tail, regardless of the inserting transaction's id.
  (void)txn_id;
  PartitionMap(partition)[tuple.key] = ChainTailWriter(tuple.key);
}

void HistoryRecorder::OnApplyUpdate(uint32_t partition, uint64_t txn_id,
                                    const storage::Tuple& tuple) {
  if (txn_id == 0) {
    // Catch-up refresh: the restarted node copies the primary's current
    // (committed) content.
    PartitionMap(partition)[tuple.key] = ChainTailWriter(tuple.key);
    return;
  }
  PartitionMap(partition)[tuple.key] = txn_id;
  write_applies_.push_back(
      {partition, tuple.key, txn_id, clock_ ? clock_() : 0});
}

void HistoryRecorder::OnApplyErase(uint32_t partition, uint64_t txn_id,
                                   storage::TupleKey key) {
  (void)txn_id;
  PartitionMap(partition).erase(key);
}

void HistoryRecorder::OnRead(uint64_t txn_id, storage::TupleKey key,
                             uint32_t partition, SimTime at) {
  uint64_t observed = 0;
  if (partition < last_writer_.size()) {
    auto it = last_writer_[partition].find(key);
    if (it != last_writer_[partition].end()) observed = it->second;
  }
  reads_.push_back({txn_id, key, partition, observed, at});
}

void HistoryRecorder::OnSnapshotRead(uint64_t txn_id, storage::TupleKey key,
                                     uint32_t partition,
                                     uint64_t observed_writer,
                                     SimTime snapshot_ts, SimTime at) {
  snapshot_reads_.push_back(
      {txn_id, key, partition, observed_writer, snapshot_ts, at});
}

void HistoryRecorder::OnCommit(const txn::Transaction& txn,
                               SimTime commit_time) {
  committed_[txn.id] = commit_time;
  // Final value per written key, preserving first-write chain position:
  // a transaction writing a key twice commits one version (the last
  // value), not two.
  for (size_t i = 0; i < txn.ops.size(); ++i) {
    const txn::Operation& op = txn.ops[i];
    if (op.kind != OpKind::kWrite) continue;
    bool last_for_key = true;
    for (size_t j = i + 1; j < txn.ops.size(); ++j) {
      if (txn.ops[j].kind == OpKind::kWrite && txn.ops[j].key == op.key) {
        last_for_key = false;
        break;
      }
    }
    if (!last_for_key) continue;
    chains_[op.key].push_back({txn.id, commit_time, op.write_value});
  }
}

void HistoryRecorder::OnAbort(const txn::Transaction& txn) {
  aborted_.insert(txn.id);
}

uint64_t HistoryRecorder::LastWriter(uint32_t partition,
                                     storage::TupleKey key) const {
  if (partition >= last_writer_.size()) return 0;
  auto it = last_writer_[partition].find(key);
  return it == last_writer_[partition].end() ? 0 : it->second;
}

bool HistoryRecorder::TailValue(storage::TupleKey key, int64_t* value) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return false;
  *value = it->second.back().value;
  return true;
}

Status HistoryRecorder::WriteHistoryFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Unavailable("cannot open " + path);
  std::ostringstream os;
  // Commits first (sorted by commit time then id for a deterministic
  // file), then reads in record order.
  std::vector<std::pair<SimTime, uint64_t>> order;
  order.reserve(committed_.size());
  for (const auto& [id, t] : committed_) order.push_back({t, id});
  std::sort(order.begin(), order.end());
  for (const auto& [t, id] : order) {
    os << "{\"kind\":\"commit\",\"txn\":" << id << ",\"t_us\":" << t
       << "}\n";
  }
  // Version chains, one line per key (keys sorted).
  std::vector<storage::TupleKey> keys;
  keys.reserve(chains_.size());
  for (const auto& [key, chain] : chains_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (storage::TupleKey key : keys) {
    const std::vector<VersionRecord>& chain = chains_.at(key);
    os << "{\"kind\":\"chain\",\"key\":" << key << ",\"versions\":[";
    for (size_t i = 0; i < chain.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"writer\":" << chain[i].writer
         << ",\"t_us\":" << chain[i].commit_time
         << ",\"value\":" << chain[i].value << "}";
    }
    os << "]}\n";
  }
  for (const ReadRecord& r : reads_) {
    os << "{\"kind\":\"read\",\"txn\":" << r.reader << ",\"key\":" << r.key
       << ",\"partition\":" << r.partition
       << ",\"observed\":" << r.observed_writer << ",\"t_us\":" << r.at
       << "}\n";
  }
  for (const SnapshotReadRecord& r : snapshot_reads_) {
    os << "{\"kind\":\"snapshot_read\",\"txn\":" << r.reader
       << ",\"key\":" << r.key << ",\"partition\":" << r.partition
       << ",\"observed\":" << r.observed_writer
       << ",\"snapshot_t_us\":" << r.snapshot_ts << ",\"t_us\":" << r.at
       << "}\n";
  }
  // Direct write applies, in apply order: which partition installed which
  // writer's version. Lets offline tooling reconstruct where a committed
  // write physically landed (reads and chains alone can't).
  for (const WriteApplyRecord& a : write_applies_) {
    os << "{\"kind\":\"apply\",\"txn\":" << a.writer << ",\"key\":" << a.key
       << ",\"partition\":" << a.partition << ",\"t_us\":" << a.at << "}\n";
  }
  out << os.str();
  if (!out) return Status::Unavailable("short write to " + path);
  return Status::OK();
}

}  // namespace soap::check
