// History recording for the offline consistency checker (src/check): a
// low-overhead recorder that captures, in virtual-time order, every
// committed write (the per-key version chain), every routed read with the
// version it observed, and the exact apply stream each partition saw
// (via storage::StorageObserver). Detached — the default — every hook is
// a nullptr check in the host, so runs without `--check` stay
// byte-identical to the seed.
//
// Observation model. Bulk-loaded initial versions are writer 0. Client
// writes apply under exclusive commit locks, and all of a transaction's
// phase-2 applies precede its FinishCommit, so the per-key chain (appended
// in FinishCommit order) is the serialization order of writers. Copy
// applies (kMigrateInsert / kReplicaCreate inserts, txn-0 catch-up
// refreshes) carry the chain-tail version at apply time: the repartition
// transaction holds the key's exclusive lock from staging to commit, so
// the tail cannot move underneath the copy. A carrier that writes a key
// it also deploys installs the copy first and then applies its own write
// on top of it, so the fresh copy's last writer is the carrier itself.

#ifndef SOAP_CHECK_HISTORY_RECORDER_H_
#define SOAP_CHECK_HISTORY_RECORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/storage/storage_observer.h"
#include "src/storage/tuple.h"
#include "src/txn/transaction.h"

namespace soap::check {

/// One committed version of a key, in commit (FinishCommit) order.
struct VersionRecord {
  uint64_t writer = 0;  // committing transaction id
  SimTime commit_time = 0;
  int64_t value = 0;
};

/// One routed read and the version (by last writer) it observed at its
/// serving partition. observed_writer 0 means the bulk-loaded initial
/// version.
struct ReadRecord {
  uint64_t reader = 0;
  storage::TupleKey key = 0;
  uint32_t partition = 0;
  uint64_t observed_writer = 0;
  SimTime at = 0;
};

/// One MVCC snapshot read (--cc=mvcc): the reader's begin timestamp and
/// the writer of the version the version store served. observed_writer 0
/// means the synthesized base version.
struct SnapshotReadRecord {
  uint64_t reader = 0;
  storage::TupleKey key = 0;
  uint32_t partition = 0;
  uint64_t observed_writer = 0;
  SimTime snapshot_ts = 0;
  SimTime at = 0;
};

/// One direct write apply (kWrite phase-2 / write-through) on a partition.
/// Copy applies and catch-up refreshes are folded into the last-writer map
/// but not listed here: only chain-resolvable applies participate in the
/// ordering check.
struct WriteApplyRecord {
  uint32_t partition = 0;
  storage::TupleKey key = 0;
  uint64_t writer = 0;
  SimTime at = 0;
};

class HistoryRecorder : public storage::StorageObserver {
 public:
  /// Optional virtual-clock source; when set, write-apply records carry
  /// their apply time (StorageObserver callbacks have no time parameter).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  // --- storage::StorageObserver ---
  void OnApplyInsert(uint32_t partition, uint64_t txn_id,
                     const storage::Tuple& tuple) override;
  void OnApplyUpdate(uint32_t partition, uint64_t txn_id,
                     const storage::Tuple& tuple) override;
  void OnApplyErase(uint32_t partition, uint64_t txn_id,
                    storage::TupleKey key) override;

  // --- transaction-manager hooks ---
  /// A read dispatched to `partition`; snapshots the last writer the
  /// recorder saw applied there.
  void OnRead(uint64_t txn_id, storage::TupleKey key, uint32_t partition,
              SimTime at);
  /// An MVCC snapshot read served from the version store at snapshot_ts;
  /// replaces OnRead under --cc=mvcc.
  void OnSnapshotRead(uint64_t txn_id, storage::TupleKey key,
                      uint32_t partition, uint64_t observed_writer,
                      SimTime snapshot_ts, SimTime at);
  /// A transaction reached kCommitted; appends its writes (final value per
  /// key, in op order) to the per-key chains.
  void OnCommit(const txn::Transaction& txn, SimTime commit_time);
  /// A transaction reached kAborted.
  void OnAbort(const txn::Transaction& txn);

  // --- checker access ---
  const std::unordered_map<storage::TupleKey, std::vector<VersionRecord>>&
  chains() const {
    return chains_;
  }
  const std::vector<ReadRecord>& reads() const { return reads_; }
  const std::vector<SnapshotReadRecord>& snapshot_reads() const {
    return snapshot_reads_;
  }
  const std::vector<WriteApplyRecord>& write_applies() const {
    return write_applies_;
  }
  /// Committed transaction id -> commit virtual time.
  const std::unordered_map<uint64_t, SimTime>& committed() const {
    return committed_;
  }
  const std::unordered_set<uint64_t>& aborted() const { return aborted_; }

  /// Last writer applied at (partition, key); 0 = initial version (or the
  /// partition never stored the key).
  uint64_t LastWriter(uint32_t partition, storage::TupleKey key) const;

  /// The committed chain-tail value of `key`, or the bulk-load placeholder
  /// when no write ever committed. Returns false when no chain exists.
  bool TailValue(storage::TupleKey key, int64_t* value) const;

  uint64_t txn_count() const {
    return static_cast<uint64_t>(committed_.size() + aborted_.size());
  }

  /// Dumps the history as JSONL (one commit/read record per line), for
  /// --history_out and offline tooling.
  Status WriteHistoryFile(const std::string& path) const;

 private:
  uint64_t ChainTailWriter(storage::TupleKey key) const;
  std::unordered_map<storage::TupleKey, uint64_t>& PartitionMap(
      uint32_t partition);

  std::unordered_map<storage::TupleKey, std::vector<VersionRecord>> chains_;
  std::vector<ReadRecord> reads_;
  std::vector<SnapshotReadRecord> snapshot_reads_;
  std::vector<WriteApplyRecord> write_applies_;
  std::unordered_map<uint64_t, SimTime> committed_;
  std::unordered_set<uint64_t> aborted_;
  /// Per partition: key -> last applied writer (chain-resolved).
  std::vector<std::unordered_map<storage::TupleKey, uint64_t>> last_writer_;
  std::function<SimTime()> clock_;
};

}  // namespace soap::check

#endif  // SOAP_CHECK_HISTORY_RECORDER_H_
