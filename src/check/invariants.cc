#include "src/check/invariants.h"

#include <string>

namespace soap::check {

void InvariantEngine::Violate(const std::string& check,
                              const std::string& detail, SimTime at) {
  violations_.push_back({check, detail, at});
  if (audit_ != nullptr) {
    obs::AuditRecord(audit_, "invariant", at)
        .Str("check", check)
        .Str("detail", detail);
  }
}

bool InvariantEngine::NodeDown(uint32_t node) const {
  return cluster_->node(node).down();
}

bool InvariantEngine::NodeStale(uint32_t node) const {
  return stale_probe_ && stale_probe_(node);
}

void InvariantEngine::SweepQuiescent(SimTime now) {
  auto& routing = cluster_->routing_table();
  const uint32_t num_nodes = cluster_->num_nodes();

  // Ownership, forward direction: every routed copy is stored where the
  // table says, and no placement lists a partition twice.
  checks_run_++;
  for (storage::TupleKey key = 0; key < routing.num_keys(); ++key) {
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok()) continue;  // never assigned (sparse bulk loads)
    std::vector<uint32_t> copies;
    copies.push_back(placement->primary);
    for (uint32_t r : placement->replicas) copies.push_back(r);
    for (size_t i = 0; i < copies.size(); ++i) {
      for (size_t j = i + 1; j < copies.size(); ++j) {
        if (copies[i] == copies[j]) {
          Violate("ownership",
                  "key " + std::to_string(key) + " placed twice on partition " +
                      std::to_string(copies[i]),
                  now);
        }
      }
      if (copies[i] >= num_nodes) {
        Violate("ownership",
                "key " + std::to_string(key) + " placed on unknown partition " +
                    std::to_string(copies[i]),
                now);
        continue;
      }
      if (NodeDown(copies[i])) continue;  // unreachable, not unowned
      if (!cluster_->storage(copies[i]).Contains(key)) {
        Violate("ownership",
                "key " + std::to_string(key) + " routed to partition " +
                    std::to_string(copies[i]) + " but not stored there",
                now);
      }
    }
  }

  // Ownership, reverse direction: no partition stores a tuple the routing
  // table does not place on it (orphans from a double-deployed migration).
  checks_run_++;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    cluster_->storage(p).table().ForEach([&](const storage::Tuple& tuple) {
      Result<router::Placement> placement = routing.GetPlacement(tuple.key);
      bool placed_here = placement.ok() && (placement->primary == p ||
                                            placement->HasReplicaOn(p));
      if (!placed_here) {
        Violate("ownership",
                "partition " + std::to_string(p) + " stores key " +
                    std::to_string(tuple.key) +
                    " the routing table does not place there",
                now);
      }
    });
  }

  // Lock table drained with the run.
  checks_run_++;
  const size_t locked = cluster_->lock_manager().LockedKeyCount();
  if (locked != 0) {
    Violate("lock_table_empty",
            std::to_string(locked) + " keys still locked after drain", now);
  }

  // WAL-replay idempotency on every live node.
  checks_run_++;
  for (uint32_t p = 0; p < num_nodes; ++p) {
    if (NodeDown(p)) continue;
    Status replay = cluster_->storage(p).VerifyRecoveryImage();
    if (!replay.ok()) {
      Violate("wal_idempotent",
              "node " + std::to_string(p) + ": " + replay.ToString(), now);
    }
  }

  // Replica coherence: live, caught-up replicas match the primary's
  // content byte for byte. Ordered streaming sweep — no materialized key
  // list, the placement arrives with each visited key.
  checks_run_++;
  routing.ForEachReplicated([&](storage::TupleKey key,
                                const router::Placement& placement) {
    if (placement.primary >= num_nodes || NodeDown(placement.primary)) {
      return;
    }
    Result<storage::Tuple> primary_copy =
        cluster_->storage(placement.primary).Read(key);
    if (!primary_copy.ok()) return;  // forward ownership already flagged
    for (uint32_t r : placement.replicas) {
      if (r >= num_nodes || NodeDown(r) || NodeStale(r)) continue;
      Result<storage::Tuple> replica_copy = cluster_->storage(r).Read(key);
      if (!replica_copy.ok()) continue;
      if (replica_copy->content != primary_copy->content) {
        Violate("replica_coherence",
                "key " + std::to_string(key) + " replica on partition " +
                    std::to_string(r) + " holds " +
                    std::to_string(replica_copy->content) +
                    " while primary partition " +
                    std::to_string(placement.primary) + " holds " +
                    std::to_string(primary_copy->content),
                now);
      }
    }
  });

  // Final state: the recorded chain tail is what the primary stores.
  if (history_ != nullptr) {
    checks_run_++;
    for (const auto& [key, chain] : history_->chains()) {
      (void)chain;
      int64_t expected = 0;
      if (!history_->TailValue(key, &expected)) continue;
      Result<uint32_t> primary = routing.GetPrimary(key);
      if (!primary.ok() || *primary >= num_nodes || NodeDown(*primary)) {
        continue;
      }
      Result<storage::Tuple> stored = cluster_->storage(*primary).Read(key);
      if (!stored.ok()) continue;  // ownership check owns this case
      if (stored->content != expected) {
        Violate("final_state",
                "key " + std::to_string(key) + " primary partition " +
                    std::to_string(*primary) + " stores " +
                    std::to_string(stored->content) +
                    " but the committed chain tail is " +
                    std::to_string(expected),
                now);
      }
    }
  }
}

void InvariantEngine::OnNodeRecovered(uint32_t node, SimTime now) {
  checks_run_++;
  if (NodeDown(node)) {
    Violate("wal_idempotent",
            "node " + std::to_string(node) +
                " reported recovered while still down",
            now);
    return;
  }
  Status replay = cluster_->storage(node).VerifyRecoveryImage();
  if (!replay.ok()) {
    Violate("wal_idempotent",
            "node " + std::to_string(node) + " after recovery: " +
                replay.ToString(),
            now);
  }
}

void InvariantEngine::OnPromotion(storage::TupleKey key, uint32_t new_primary,
                                  SimTime now) {
  checks_run_++;
  const uint64_t epoch = cluster_->routing_table().PlacementEpoch(key);
  auto [it, inserted] = last_epoch_.try_emplace(key, epoch);
  if (!inserted) {
    if (epoch <= it->second) {
      Violate("epoch_monotonic",
              "key " + std::to_string(key) + " promoted with epoch " +
                  std::to_string(epoch) + " not above the last observed " +
                  std::to_string(it->second),
              now);
    }
    it->second = epoch;
  }
  if (new_primary >= cluster_->num_nodes() || NodeDown(new_primary)) {
    Violate("promotion",
            "key " + std::to_string(key) + " promoted to partition " +
                std::to_string(new_primary) + " which is down",
            now);
    return;
  }
  if (!cluster_->storage(new_primary).Contains(key)) {
    Violate("promotion",
            "key " + std::to_string(key) + " promoted to partition " +
                std::to_string(new_primary) + " which stores no copy",
            now);
  }
}

void InvariantEngine::OnLeaderShift(storage::TupleKey key,
                                    uint32_t new_primary, SimTime now) {
  checks_run_++;
  auto& routing = cluster_->routing_table();
  Result<router::Placement> placement = routing.GetPlacement(key);
  if (!placement.ok()) {
    Violate("double_primary",
            "key " + std::to_string(key) +
                " shifted but has no placement at all",
            now);
    return;
  }
  if (placement->primary != new_primary) {
    Violate("double_primary",
            "key " + std::to_string(key) + " shifted to partition " +
                std::to_string(new_primary) +
                " but the routing table names partition " +
                std::to_string(placement->primary) + " primary",
            now);
  }
  // A half-applied swap leaves the new primary listed both as primary and
  // as a leftover replica — exactly two entries for one partition.
  std::vector<uint32_t> copies;
  copies.push_back(placement->primary);
  for (uint32_t r : placement->replicas) copies.push_back(r);
  for (size_t i = 0; i < copies.size(); ++i) {
    for (size_t j = i + 1; j < copies.size(); ++j) {
      if (copies[i] == copies[j]) {
        Violate("double_primary",
                "key " + std::to_string(key) +
                    " lists partition " + std::to_string(copies[i]) +
                    " twice after a leader shift",
                now);
      }
    }
  }
  const uint64_t epoch = routing.PlacementEpoch(key);
  auto [it, inserted] = last_epoch_.try_emplace(key, epoch);
  if (!inserted) {
    if (epoch <= it->second) {
      Violate("epoch_monotonic",
              "key " + std::to_string(key) + " shifted with epoch " +
                  std::to_string(epoch) + " not above the last observed " +
                  std::to_string(it->second),
              now);
    }
    it->second = epoch;
  }
  if (new_primary >= cluster_->num_nodes() || NodeDown(new_primary)) return;
  if (!cluster_->storage(new_primary).Contains(key)) {
    Violate("double_primary",
            "key " + std::to_string(key) + " shifted to partition " +
                std::to_string(new_primary) + " which stores no copy",
            now);
  }
}

}  // namespace soap::check
