// Online invariant engine: cheap always-on assertions evaluated at
// quiescent points (post-drain) and at lifecycle events (node recovery,
// replica promotion). Passive — it schedules no simulator events and costs
// nothing while no sweep runs, so enabling it never perturbs the run.
//
// Quiescent-point sweep:
//   * ownership           every routed copy is stored, every stored tuple
//                         is routed, no partition appears twice in a
//                         placement
//   * lock_table_empty    no key is locked once the run has drained
//   * wal_idempotent      replaying checkpoint + WAL reproduces the live
//                         table on every live node
//   * replica_coherence   live, caught-up replicas carry the primary's
//                         content
//   * final_state         the recorded chain tail of every written key is
//                         what the primary actually stores
// Lifecycle hooks:
//   * OnNodeRecovered     WAL-replay idempotency right after a restart
//   * OnPromotion         placement epochs advance monotonically and the
//                         promoted copy exists on a live node
//
// Violations accumulate on the engine and are mirrored into the decision
// audit log as {"type":"invariant","check":...,"detail":...} records.

#ifndef SOAP_CHECK_INVARIANTS_H_
#define SOAP_CHECK_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/checker.h"
#include "src/check/history_recorder.h"
#include "src/cluster/cluster.h"
#include "src/obs/audit_log.h"

namespace soap::check {

class InvariantEngine {
 public:
  /// `history` may be nullptr (final_state is then skipped).
  InvariantEngine(cluster::Cluster* cluster, const HistoryRecorder* history)
      : cluster_(cluster), history_(history) {}

  /// Mirrors violations into the decision audit log; nullptr detaches.
  void set_audit(obs::AuditLog* audit) { audit_ = audit; }

  /// Staleness probe: returns true while `node`'s replica copies may
  /// legitimately lag (crashed and not yet caught up). Content-coherence
  /// checks skip such nodes; detection-latency is the price of crash
  /// tolerance, divergence is not.
  void set_stale_probe(std::function<bool(uint32_t)> probe) {
    stale_probe_ = std::move(probe);
  }

  /// Runs every quiescent-point check. Call after the drain barrier.
  void SweepQuiescent(SimTime now);

  /// Node `node` finished WAL replay: its recovery image must match the
  /// replayed state.
  void OnNodeRecovered(uint32_t node, SimTime now);

  /// Key `key` failed over to `new_primary`: the placement epoch must have
  /// advanced past the last one this engine saw for the key, and the
  /// promoted copy must be stored on a live node.
  void OnPromotion(storage::TupleKey key, uint32_t new_primary, SimTime now);

  /// Key `key` completed a planner leader shift onto `new_primary`: the
  /// routing table must now name exactly that partition as primary, no
  /// partition may appear twice in the placement (a half-applied swap
  /// leaves the new primary doubled — the double_primary violation), and
  /// the new primary must store a copy.
  void OnLeaderShift(storage::TupleKey key, uint32_t new_primary,
                     SimTime now);

  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t checks_run() const { return checks_run_; }
  bool ok() const { return violations_.empty(); }

 private:
  void Violate(const std::string& check, const std::string& detail,
               SimTime at);
  bool NodeDown(uint32_t node) const;
  bool NodeStale(uint32_t node) const;

  cluster::Cluster* cluster_;
  const HistoryRecorder* history_;
  obs::AuditLog* audit_ = nullptr;
  std::function<bool(uint32_t)> stale_probe_;
  std::vector<Violation> violations_;
  uint64_t checks_run_ = 0;
  /// Last placement epoch observed per promoted key.
  std::unordered_map<storage::TupleKey, uint64_t> last_epoch_;
};

}  // namespace soap::check

#endif  // SOAP_CHECK_INVARIANTS_H_
