#include "src/cluster/cluster.h"

#include <string>

namespace soap::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterConfig& config)
    : sim_(sim),
      config_(config),
      network_(sim, config.network, config.seed ^ 0xA5A5A5A5ULL),
      tpc_(sim, &network_),
      routing_table_(config.num_keys),
      router_(&routing_table_) {
  nodes_.reserve(config_.num_nodes);
  storage_.reserve(config_.num_nodes);
  // Size the hash maps from the config's cardinalities up front: tables see
  // ~num_keys/num_nodes rows (replication adds slack), and the lock table
  // sees at most max_inflight concurrent transactions touching a handful of
  // keys each. Avoids rehash stalls mid-run.
  // In lazy mode the base stays virtual, so reserving num_keys/num_nodes
  // buckets would defeat the point; materialised rows grow on demand.
  const size_t rows_per_node =
      config_.num_nodes == 0 || config_.lazy_tables
          ? 0
          : (static_cast<size_t>(config_.num_keys) / config_.num_nodes) * 2;
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(sim_, i, config_.workers_per_node));
    storage_.push_back(std::make_unique<storage::StorageEngine>(i));
    if (config_.lazy_tables) {
      storage_.back()->SetLazyBase(config_.num_keys, config_.num_nodes);
    } else {
      storage_.back()->Reserve(rows_per_node);
    }
  }
  lock_manager_.Reserve(static_cast<size_t>(config_.max_inflight) * 8,
                        static_cast<size_t>(config_.max_inflight) * 2);
  if (config_.cc == mvcc::ConcurrencyControl::kMvcc) {
    snapshots_ = std::make_unique<mvcc::SnapshotManager>();
    versions_ = std::make_unique<mvcc::VersionStore>(snapshots_.get());
  }
}

Status Cluster::LoadTuple(const storage::Tuple& tuple, uint32_t partition) {
  if (partition >= config_.num_nodes) {
    return Status::InvalidArgument("partition " + std::to_string(partition) +
                                   " out of range");
  }
  storage_[partition]->BulkLoad(tuple);
  return routing_table_.SetPrimary(tuple.key, partition);
}

void Cluster::CheckpointAll() {
  for (auto& engine : storage_) engine->Checkpoint();
}

Duration Cluster::TotalBusyTime(WorkCategory category) const {
  Duration total = 0;
  for (const auto& node : nodes_) total += node->busy_time(category);
  return total;
}

Status Cluster::CheckConsistency() const {
  // One pass per partition instead of the historical per-key sweep over
  // the whole keyspace (which paid two locked lookups and a Placement
  // vector allocation per key — the dominant audit cost at production
  // cardinality). Two facts together imply the old check exactly:
  //   (1) every stored tuple is placed on its partition (stored ⊆ placed,
  //       per-tuple, allocation-free), and
  //   (2) per partition, the stored-row count equals the number of keys
  //       routing places there (O(1) maintained counters).
  // An inclusion between finite sets of equal size is an equality, so
  // every placed key — primary or replica — is also stored where routing
  // says, which is what the per-key pass verified.
  for (uint32_t p = 0; p < config_.num_nodes; ++p) {
    Status status = Status::OK();
    storage_[p]->table().ForEach([&](const storage::Tuple& tuple) {
      if (!status.ok()) return;
      if (!routing_table_.IsPlacedOn(tuple.key, p)) {
        status = Status::Corruption(
            "partition " + std::to_string(p) + " stores unrouted key " +
            std::to_string(tuple.key));
      }
    });
    SOAP_RETURN_NOT_OK(status);
    const uint64_t placed = routing_table_.CountPrimaries(p) +
                            routing_table_.CountReplicas(p);
    const uint64_t stored = storage_[p]->table().size();
    if (stored != placed) {
      return Status::Corruption(
          "partition " + std::to_string(p) + " stores " +
          std::to_string(stored) + " tuples but routing places " +
          std::to_string(placed) + " there");
    }
  }
  return Status::OK();
}

}  // namespace soap::cluster
