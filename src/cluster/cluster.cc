#include "src/cluster/cluster.h"

#include <string>

namespace soap::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterConfig& config)
    : sim_(sim),
      config_(config),
      network_(sim, config.network, config.seed ^ 0xA5A5A5A5ULL),
      tpc_(sim, &network_),
      routing_table_(config.num_keys),
      router_(&routing_table_) {
  nodes_.reserve(config_.num_nodes);
  storage_.reserve(config_.num_nodes);
  // Size the hash maps from the config's cardinalities up front: tables see
  // ~num_keys/num_nodes rows (replication adds slack), and the lock table
  // sees at most max_inflight concurrent transactions touching a handful of
  // keys each. Avoids rehash stalls mid-run.
  const size_t rows_per_node =
      config_.num_nodes == 0
          ? 0
          : (static_cast<size_t>(config_.num_keys) / config_.num_nodes) * 2;
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(sim_, i, config_.workers_per_node));
    storage_.push_back(std::make_unique<storage::StorageEngine>(i));
    storage_.back()->Reserve(rows_per_node);
  }
  lock_manager_.Reserve(static_cast<size_t>(config_.max_inflight) * 8,
                        static_cast<size_t>(config_.max_inflight) * 2);
}

Status Cluster::LoadTuple(const storage::Tuple& tuple, uint32_t partition) {
  if (partition >= config_.num_nodes) {
    return Status::InvalidArgument("partition " + std::to_string(partition) +
                                   " out of range");
  }
  storage_[partition]->BulkLoad(tuple);
  return routing_table_.SetPrimary(tuple.key, partition);
}

void Cluster::CheckpointAll() {
  for (auto& engine : storage_) engine->Checkpoint();
}

Duration Cluster::TotalBusyTime(WorkCategory category) const {
  Duration total = 0;
  for (const auto& node : nodes_) total += node->busy_time(category);
  return total;
}

Status Cluster::CheckConsistency() const {
  // Every routed key must be present on its primary partition.
  for (uint64_t key = 0; key < config_.num_keys; ++key) {
    Result<router::PartitionId> primary = routing_table_.GetPrimary(key);
    if (!primary.ok()) continue;  // key not loaded
    if (!storage_[*primary]->Contains(key)) {
      return Status::Corruption(
          "key " + std::to_string(key) + " routed to partition " +
          std::to_string(*primary) + " but not stored there");
    }
    Result<router::Placement> placement = routing_table_.GetPlacement(key);
    for (router::PartitionId rep : placement->replicas) {
      if (!storage_[rep]->Contains(key)) {
        return Status::Corruption("replica of key " + std::to_string(key) +
                                  " missing on partition " +
                                  std::to_string(rep));
      }
    }
  }
  // No partition may store a tuple the routing table doesn't place there.
  for (uint32_t p = 0; p < config_.num_nodes; ++p) {
    Status status = Status::OK();
    storage_[p]->table().ForEach([&](const storage::Tuple& tuple) {
      if (!status.ok()) return;
      Result<router::Placement> placement =
          routing_table_.GetPlacement(tuple.key);
      if (!placement.ok() || !placement->HasReplicaOn(p)) {
        status = Status::Corruption(
            "partition " + std::to_string(p) + " stores unrouted key " +
            std::to_string(tuple.key));
      }
    });
    SOAP_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

}  // namespace soap::cluster
