// Cluster wiring: N data nodes (paper: 5), their storage engines, one
// logical lock table, the routing table + query router, the network and
// the 2PC driver, all on one simulator.

#ifndef SOAP_CLUSTER_CLUSTER_H_
#define SOAP_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/mvcc/cc_mode.h"
#include "src/mvcc/snapshot_manager.h"
#include "src/mvcc/version_store.h"
#include "src/router/query_router.h"
#include "src/router/routing_table.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/storage/storage_engine.h"
#include "src/txn/lock_manager.h"
#include "src/txn/two_phase_commit.h"
#include "src/cluster/node.h"

namespace soap::cluster {

/// Service-time model for node work. Defaults are calibrated (see
/// EXPERIMENTS.md) so that a distributed transaction costs ~2x a collocated
/// one, matching the paper's cost model (§3.1), and so a 5-node cluster
/// saturates around the paper's observed ~2.5e4 txn/min.
struct ExecutionCosts {
  Duration begin = Millis(1);          ///< transaction start, coordinator
  Duration read_query = Millis(3);     ///< one single-tuple read
  Duration write_query = Millis(3);    ///< one single-tuple write
  Duration local_commit = Millis(2);   ///< single-partition commit
  Duration prepare = Millis(4);        ///< 2PC phase 1, per participant
  Duration commit_apply = Millis(4);   ///< 2PC phase 2, per participant
  Duration abort_cleanup = Millis(1);  ///< rollback work, per participant
  Duration migrate_insert = Millis(15);  ///< copy one tuple into dest
  Duration migrate_delete = Millis(3);   ///< drop one tuple at source
  Duration replica_create = Millis(15);
  Duration replica_delete = Millis(3);
  /// Swap primary/replica roles for one key (no data copied; the target
  /// already holds the bytes, so this is metadata + a WAL refresh record).
  Duration leader_shift = Millis(3);
  /// Abort a lock wait after this long (PostgreSQL lock_timeout analogue;
  /// also the backstop for distributed deadlocks).
  Duration lock_timeout = Seconds(30);
  /// End-to-end transaction deadline (the JTA transaction timeout in the
  /// paper's Bitronix stack): a normal transaction still queued this long
  /// after submission is aborted instead of dispatched. Repartition
  /// transactions never expire; their schedulers own their fate.
  Duration txn_timeout = Seconds(180);
  /// WAL-replay cost charged when a crashed node restarts (fault
  /// injection only): fixed startup plus a per-WAL-record scan term.
  Duration recovery_fixed = Millis(50);
  Duration recovery_per_record = Micros(2);
};

/// Transaction isolation level at the data nodes. The paper's prototype
/// runs PostgreSQL at read committed and notes a higher level "will
/// decrease the system concurrency and hence lower the system's capacity.
/// But it will not affect the performance of our algorithms" — the
/// isolation ablation bench validates exactly that claim.
enum class IsolationLevel : uint8_t {
  /// Reads are lock-free (MVCC); writes lock for the commit window.
  kReadCommitted,
  /// Reads take shared locks at execution, held to commit (S2PL); the
  /// write set upgrades them to exclusive at commit.
  kSerializable,
};

struct ClusterConfig {
  uint32_t num_nodes = 5;
  uint32_t workers_per_node = 2;
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
  /// Total transactions executing concurrently (TM-side admission; the
  /// paper's PostgreSQL nodes cap at 100 connections each, hence 500).
  uint32_t max_inflight = 500;
  /// Concurrent low-priority (AfterAll) transactions admitted during an
  /// idle window.
  uint32_t low_priority_max_inflight = 10;
  uint64_t num_keys = 500'000;
  /// Production-cardinality mode: nodes declare their seed base lazily
  /// (Table::SetLazyBase) instead of materialising num_keys rows, and skip
  /// the up-front hash reserve. Requires the bulk loader to use
  /// AssignRoundRobin + override eviction instead of per-key LoadTuple.
  bool lazy_tables = false;
  /// Concurrency-control engine (--cc). k2PL is the seed pipeline and the
  /// default; kMvcc adds versioned storage + lock-free snapshot reads.
  mvcc::ConcurrencyControl cc = mvcc::ConcurrencyControl::k2PL;
  ExecutionCosts costs;
  sim::NetworkConfig network;
  uint64_t seed = 1;
};

/// Owns every per-node component. Partitions map 1:1 onto nodes, as in the
/// paper's testbed.
class Cluster {
 public:
  Cluster(sim::Simulator* sim, const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  sim::Simulator* simulator() { return sim_; }
  sim::Network& network() { return network_; }
  txn::LockManager& lock_manager() { return lock_manager_; }
  txn::TwoPhaseCommitDriver& tpc() { return tpc_; }
  router::RoutingTable& routing_table() { return routing_table_; }
  router::QueryRouter& router() { return router_; }

  uint32_t num_nodes() const { return config_.num_nodes; }
  Node& node(uint32_t i) { return *nodes_[i]; }
  storage::StorageEngine& storage(uint32_t i) { return *storage_[i]; }

  /// MVCC engine state; allocated only under --cc=mvcc (the accessors
  /// below must not be called otherwise). The store is cluster-global —
  /// see version_store.h for why migrations need not move chains.
  bool mvcc_enabled() const { return versions_ != nullptr; }
  mvcc::VersionStore& versions() { return *versions_; }
  mvcc::SnapshotManager& snapshots() { return *snapshots_; }

  /// Bulk-loads a tuple onto a partition and routes it there.
  Status LoadTuple(const storage::Tuple& tuple, uint32_t partition);

  /// Checkpoints every node's storage (call once after bulk load, and
  /// periodically if WAL growth matters); seals the un-logged load base
  /// so CrashAndRecover() is exact.
  void CheckpointAll();

  /// Total worker-time spent, per category, across all nodes.
  Duration TotalBusyTime(WorkCategory category) const;

  /// Aggregate capacity in worker-microseconds per second of virtual time
  /// (= number of workers): utilisation = busy_time / (elapsed * workers).
  uint32_t TotalWorkers() const {
    return config_.num_nodes * config_.workers_per_node;
  }

  /// Publishes the shared components' metrics (lock manager, 2PC driver,
  /// network) into `registry`; nullptr detaches. Per-node busy-time gauges
  /// are exported by the experiment engine, which owns interval timing.
  void BindMetrics(obs::MetricsRegistry* registry) {
    network_.BindMetrics(registry);
    lock_manager_.BindMetrics(registry);
    tpc_.BindMetrics(registry);
  }

  /// Forwards a lifecycle tracer to the 2PC driver (nullptr detaches).
  void set_tracer(obs::TxnTracer* tracer) { tpc_.set_tracer(tracer); }

  /// Verifies cross-component invariants: every routed key's primary
  /// partition actually stores the tuple, and no tuple is stored on a
  /// partition the routing table does not know about. Used by tests and
  /// the engine's end-of-run audit.
  Status CheckConsistency() const;

 private:
  sim::Simulator* sim_;
  ClusterConfig config_;
  sim::Network network_;
  txn::LockManager lock_manager_;
  txn::TwoPhaseCommitDriver tpc_;
  router::RoutingTable routing_table_;
  router::QueryRouter router_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<storage::StorageEngine>> storage_;
  std::unique_ptr<mvcc::SnapshotManager> snapshots_;
  std::unique_ptr<mvcc::VersionStore> versions_;
};

}  // namespace soap::cluster

#endif  // SOAP_CLUSTER_CLUSTER_H_
