#include "src/cluster/node.h"

#include <cassert>
#include <utility>

namespace soap::cluster {

void Node::RunJob(Duration service, WorkCategory category,
                  JobClass job_class, sim::InlineFn done) {
  assert(service >= 0);
  if (down_) {
    ++jobs_dropped_;
    return;
  }
  Job job{service, category, std::move(done)};
  if (free_workers_ > 0) {
    StartJob(std::move(job));
  } else if (job_class == JobClass::kUrgent) {
    urgent_queue_.push_back(std::move(job));
  } else {
    bulk_queue_.push_back(std::move(job));
  }
}

void Node::StartJob(Job job) {
  assert(free_workers_ > 0);
  --free_workers_;
  busy_time_[static_cast<int>(job.category)] += job.service;
  ++jobs_run_;
  const uint64_t job_id = next_job_id_++;
  running_.emplace_back(job_id, std::move(job.done));
  sim_->After(job.service, [this, job_id]() { OnJobDone(job_id); });
}

void Node::OnJobDone(uint64_t job_id) {
  // Extract the callback (swap-erase) before anything else: starting the
  // next queued job below may grow `running_` and invalidate references.
  sim::InlineFn done;
  bool found = false;
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].first != job_id) continue;
    done = std::move(running_[i].second);
    running_[i] = std::move(running_.back());
    running_.pop_back();
    found = true;
    break;
  }
  if (!found) return;  // job vaporised by a crash
  ++free_workers_;
  if (!urgent_queue_.empty()) {
    Job next = std::move(urgent_queue_.front());
    urgent_queue_.pop_front();
    StartJob(std::move(next));
  } else if (!bulk_queue_.empty()) {
    Job next = std::move(bulk_queue_.front());
    bulk_queue_.pop_front();
    StartJob(std::move(next));
  }
  done();
}

void Node::Crash() {
  jobs_dropped_ += bulk_queue_.size() + urgent_queue_.size();
  bulk_queue_.clear();
  urgent_queue_.clear();
  // Vaporise running jobs: their completion events will find no entry.
  running_.clear();
  free_workers_ = workers_;
  down_ = true;
}

}  // namespace soap::cluster
