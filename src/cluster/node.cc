#include "src/cluster/node.h"

#include <cassert>
#include <utility>

namespace soap::cluster {

void Node::RunJob(Duration service, WorkCategory category,
                  JobClass job_class, std::function<void()> done) {
  assert(service >= 0);
  if (down_) {
    ++jobs_dropped_;
    return;
  }
  Job job{service, category, std::move(done)};
  if (free_workers_ > 0) {
    StartJob(std::move(job));
  } else if (job_class == JobClass::kUrgent) {
    urgent_queue_.push_back(std::move(job));
  } else {
    bulk_queue_.push_back(std::move(job));
  }
}

void Node::StartJob(Job job) {
  assert(free_workers_ > 0);
  --free_workers_;
  busy_time_[static_cast<int>(job.category)] += job.service;
  ++jobs_run_;
  auto done = std::move(job.done);
  sim_->After(job.service, [this, epoch = epoch_,
                            done = std::move(done)]() {
    if (epoch != epoch_) return;  // job vaporised by a crash
    ++free_workers_;
    if (!urgent_queue_.empty()) {
      Job next = std::move(urgent_queue_.front());
      urgent_queue_.pop_front();
      StartJob(std::move(next));
    } else if (!bulk_queue_.empty()) {
      Job next = std::move(bulk_queue_.front());
      bulk_queue_.pop_front();
      StartJob(std::move(next));
    }
    done();
  });
}

void Node::Crash() {
  jobs_dropped_ += bulk_queue_.size() + urgent_queue_.size();
  bulk_queue_.clear();
  urgent_queue_.clear();
  free_workers_ = workers_;
  ++epoch_;
  down_ = true;
}

}  // namespace soap::cluster
