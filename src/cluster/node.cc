#include "src/cluster/node.h"

#include <cassert>
#include <utility>

namespace soap::cluster {

void Node::RunJob(Duration service, WorkCategory category,
                  JobClass job_class, std::function<void()> done) {
  assert(service >= 0);
  Job job{service, category, std::move(done)};
  if (free_workers_ > 0) {
    StartJob(std::move(job));
  } else if (job_class == JobClass::kUrgent) {
    urgent_queue_.push_back(std::move(job));
  } else {
    bulk_queue_.push_back(std::move(job));
  }
}

void Node::StartJob(Job job) {
  assert(free_workers_ > 0);
  --free_workers_;
  busy_time_[static_cast<int>(job.category)] += job.service;
  ++jobs_run_;
  auto done = std::move(job.done);
  sim_->After(job.service, [this, done = std::move(done)]() {
    ++free_workers_;
    if (!urgent_queue_.empty()) {
      Job next = std::move(urgent_queue_.front());
      urgent_queue_.pop_front();
      StartJob(std::move(next));
    } else if (!bulk_queue_.empty()) {
      Job next = std::move(bulk_queue_.front());
      bulk_queue_.pop_front();
      StartJob(std::move(next));
    }
    done();
  });
}

}  // namespace soap::cluster
