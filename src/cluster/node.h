// A data node: worker slots that consume virtual time. Each PostgreSQL
// instance in the paper's testbed is one Node here; query execution, 2PC
// prepare/apply work and migration copies all occupy a worker for their
// service time, which is what makes capacity finite and queues real.

#ifndef SOAP_CLUSTER_NODE_H_
#define SOAP_CLUSTER_NODE_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace soap::cluster {

/// Attribution of node work, for the cost ratio the feedback controller
/// stabilises (§3.3) and for the reports. kExternal models interference
/// from other tenants on the same machine (§3.3: the system's capacity
/// "is subject to variations caused by external factors") — it consumes
/// workers but belongs to neither side of the controller's ratio.
enum class WorkCategory : uint8_t {
  kNormal = 0,
  kRepartition = 1,
  kExternal = 2,
};

/// Two service classes at each node. Commit-path work (prepare, apply,
/// local commit) is kUrgent: databases finish commits promptly — short
/// critical sections, group commit — so a backlog of queries must not
/// stretch the window during which commit-time locks are held. Query
/// execution and migration copies are kBulk.
enum class JobClass : uint8_t { kBulk = 0, kUrgent = 1 };

class Node {
 public:
  Node(sim::Simulator* sim, sim::NodeId id, uint32_t workers)
      : sim_(sim), id_(id), free_workers_(workers), workers_(workers) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  sim::NodeId id() const { return id_; }
  uint32_t workers() const { return workers_; }

  /// Queues `service` time of work; `done` fires when a worker has spent
  /// that long on it. kUrgent jobs are served before kBulk; FIFO within a
  /// class. While the node is down, jobs are silently discarded (their
  /// `done` never fires — the fault layer aborts the owning transaction).
  void RunJob(Duration service, WorkCategory category, JobClass job_class,
              sim::InlineFn done);

  /// Crash semantics: discards queued jobs, vaporises running ones (their
  /// completion events still fire but find no running-job entry and do
  /// nothing — modelling work lost mid-flight), frees all workers and
  /// refuses new jobs until Restart().
  void Crash();
  void Restart() { down_ = false; }
  bool down() const { return down_; }
  uint64_t jobs_dropped() const { return jobs_dropped_; }

  /// Virtual time workers have spent busy, per category.
  Duration busy_time(WorkCategory category) const {
    return busy_time_[static_cast<int>(category)];
  }
  Duration total_busy_time() const {
    return busy_time_[0] + busy_time_[1] + busy_time_[2];
  }

  uint32_t free_workers() const { return free_workers_; }
  size_t queued_jobs() const {
    return bulk_queue_.size() + urgent_queue_.size();
  }
  uint64_t jobs_run() const { return jobs_run_; }

 private:
  struct Job {
    Duration service;
    WorkCategory category;
    sim::InlineFn done;
  };

  void StartJob(Job job);
  void OnJobDone(uint64_t job_id);

  sim::Simulator* sim_;
  sim::NodeId id_;
  uint32_t free_workers_;
  uint32_t workers_;
  std::deque<Job> bulk_queue_;
  std::deque<Job> urgent_queue_;
  Duration busy_time_[3] = {0, 0, 0};
  uint64_t jobs_run_ = 0;
  bool down_ = false;
  uint64_t jobs_dropped_ = 0;
  /// Completion callbacks of currently running jobs, keyed by job id (at
  /// most `workers_` entries, so a flat vector beats a hash map). Keeping
  /// the InlineFn here instead of inside the completion closure keeps that
  /// closure within InlineFn's inline buffer — no allocation per job.
  /// Crash() clears the table; a completion event whose id is gone knows
  /// its job was vaporised and leaves the worker accounting alone.
  std::vector<std::pair<uint64_t, sim::InlineFn>> running_;
  uint64_t next_job_id_ = 1;
};

}  // namespace soap::cluster

#endif  // SOAP_CLUSTER_NODE_H_
