#include "src/cluster/processing_queue.h"

#include <algorithm>
#include <cassert>

namespace soap::cluster {

void ProcessingQueue::Push(std::unique_ptr<txn::Transaction> t) {
  assert(t != nullptr);
  t->state = txn::TxnState::kQueued;
  fifos_[static_cast<int>(t->priority)].push_back(std::move(t));
  max_size_seen_ = std::max<uint64_t>(max_size_seen_, Size());
}

std::unique_ptr<txn::Transaction> ProcessingQueue::Pop() {
  for (int p = 2; p >= 0; --p) {
    if (!fifos_[p].empty()) {
      std::unique_ptr<txn::Transaction> t = std::move(fifos_[p].front());
      fifos_[p].pop_front();
      return t;
    }
  }
  return nullptr;
}

std::unique_ptr<txn::Transaction> ProcessingQueue::Extract(txn::TxnId id) {
  for (auto& fifo : fifos_) {
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
      if ((*it)->id == id) {
        std::unique_ptr<txn::Transaction> t = std::move(*it);
        fifo.erase(it);
        return t;
      }
    }
  }
  return nullptr;
}

txn::TxnPriority ProcessingQueue::PeekPriority() const {
  for (int p = 2; p >= 0; --p) {
    if (!fifos_[p].empty()) return static_cast<txn::TxnPriority>(p);
  }
  assert(false && "PeekPriority on empty queue");
  return txn::TxnPriority::kLow;
}

}  // namespace soap::cluster
