#include "src/cluster/processing_queue.h"

#include <algorithm>
#include <cassert>

namespace soap::cluster {

void ProcessingQueue::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_pushes_ = nullptr;
    m_depth_ = nullptr;
    for (auto& g : m_depth_by_priority_) g = nullptr;
    return;
  }
  m_pushes_ = registry->GetCounter("soap_queue_pushes_total");
  m_depth_ = registry->GetGauge("soap_queue_depth");
  for (int p = 0; p < 3; ++p) {
    m_depth_by_priority_[p] = registry->GetGauge(
        "soap_queue_depth_by_priority",
        std::string("priority=\"") +
            txn::PriorityName(static_cast<txn::TxnPriority>(p)) + "\"");
  }
  UpdateDepthGauges();
}

void ProcessingQueue::UpdateDepthGauges() {
  if (m_depth_ == nullptr) return;
  m_depth_->Set(static_cast<double>(Size()));
  for (int p = 0; p < 3; ++p) {
    m_depth_by_priority_[p]->Set(static_cast<double>(fifos_[p].size()));
  }
}

void ProcessingQueue::Push(std::unique_ptr<txn::Transaction> t) {
  assert(t != nullptr);
  t->state = txn::TxnState::kQueued;
  fifos_[static_cast<int>(t->priority)].push_back(std::move(t));
  max_size_seen_ = std::max<uint64_t>(max_size_seen_, Size());
  if (m_pushes_) {
    m_pushes_->Increment();
    UpdateDepthGauges();
  }
}

std::unique_ptr<txn::Transaction> ProcessingQueue::Pop() {
  for (int p = 2; p >= 0; --p) {
    if (!fifos_[p].empty()) {
      std::unique_ptr<txn::Transaction> t = std::move(fifos_[p].front());
      fifos_[p].pop_front();
      if (m_depth_) UpdateDepthGauges();
      return t;
    }
  }
  return nullptr;
}

std::unique_ptr<txn::Transaction> ProcessingQueue::Extract(txn::TxnId id) {
  for (auto& fifo : fifos_) {
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
      if ((*it)->id == id) {
        std::unique_ptr<txn::Transaction> t = std::move(*it);
        fifo.erase(it);
        if (m_depth_) UpdateDepthGauges();
        return t;
      }
    }
  }
  return nullptr;
}

txn::TxnPriority ProcessingQueue::PeekPriority() const {
  for (int p = 2; p >= 0; --p) {
    if (!fifos_[p].empty()) return static_cast<txn::TxnPriority>(p);
  }
  assert(false && "PeekPriority on empty queue");
  return txn::TxnPriority::kLow;
}

}  // namespace soap::cluster
