// The processing queue of §2.1: "higher-priority transactions will be
// executed first, while the FIFO policy will be applied to break the tie."
// With exactly three priority levels, one FIFO per level implements that
// policy in O(1).

#ifndef SOAP_CLUSTER_PROCESSING_QUEUE_H_
#define SOAP_CLUSTER_PROCESSING_QUEUE_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "src/obs/metrics.h"
#include "src/txn/transaction.h"

namespace soap::cluster {

/// Priority queue of pending transactions. Owns the transactions while
/// they wait. Not thread-safe (simulator-driven).
class ProcessingQueue {
 public:
  void Push(std::unique_ptr<txn::Transaction> t);

  /// Highest-priority, oldest transaction; nullptr if empty.
  std::unique_ptr<txn::Transaction> Pop();

  /// Priority of the transaction Pop would return next. Queue must be
  /// non-empty.
  txn::TxnPriority PeekPriority() const;

  bool Empty() const { return Size() == 0; }
  size_t Size() const {
    return fifos_[0].size() + fifos_[1].size() + fifos_[2].size();
  }
  size_t CountByPriority(txn::TxnPriority p) const {
    return fifos_[static_cast<int>(p)].size();
  }
  /// Pending transactions with priority >= kNormal (the "is any normal
  /// work waiting" test the idle rule for low-priority dispatch needs).
  size_t NormalOrHigherCount() const {
    return fifos_[1].size() + fifos_[2].size();
  }

  /// Removes a queued transaction by id (the repartitioner "manipulates
  /// the processing queue", §2.2 — e.g. to promote a low-priority
  /// repartition transaction). Returns nullptr if not queued.
  std::unique_ptr<txn::Transaction> Extract(txn::TxnId id);

  uint64_t max_size_seen() const { return max_size_seen_; }

  /// Publishes depth gauges (total and per priority class) and a push
  /// counter into `registry` (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  void UpdateDepthGauges();

  // Index = static_cast<int>(TxnPriority): 0 low, 1 normal, 2 high.
  std::deque<std::unique_ptr<txn::Transaction>> fifos_[3];
  uint64_t max_size_seen_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_pushes_ = nullptr;
  obs::Gauge* m_depth_ = nullptr;
  obs::Gauge* m_depth_by_priority_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace soap::cluster

#endif  // SOAP_CLUSTER_PROCESSING_QUEUE_H_
