#include "src/cluster/transaction_manager.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "src/common/logging.h"

namespace soap::cluster {

using txn::AbortReason;
using txn::OpKind;
using txn::Operation;
using txn::Transaction;
using txn::TxnPriority;
using txn::TxnState;

/// Per-transaction execution context. Kept alive by the callbacks that
/// reference it; destroyed after completion.
struct TransactionManager::Exec {
  std::unique_ptr<Transaction> txn;
  size_t op_index = 0;
  uint32_t coordinator = 0;
  /// Distinct partitions touched so far (2PC participant set).
  std::vector<uint32_t> participants;
  /// Tuples captured at migrate/replicate execution time, inserted at the
  /// destination during phase 2.
  std::unordered_map<storage::TupleKey, storage::Tuple> staged;
  /// Repartition operation ids found stale at execution (already applied
  /// by someone else); all their ops are skipped.
  std::unordered_set<uint64_t> skipped_rep_ops;
  /// Sorted unique keys this transaction locks exclusively: its buffered
  /// writes plus (for piggyback carriers) the piggybacked repartition
  /// keys. Acquired as one sorted chain — at the piggyback boundary for
  /// carriers, at commit for plain transactions — so every transaction in
  /// the system follows one global lock order and deadlocks cannot form.
  std::vector<storage::TupleKey> commit_lock_keys;
  size_t commit_lock_index = 0;
  bool lock_set_built = false;
  sim::EventId timeout_event = sim::kInvalidEventId;
  bool done = false;
  /// Partitions whose phase-2 apply already ran, so redelivered or resent
  /// commit messages are idempotent.
  std::unordered_set<uint32_t> applied_partitions;
  /// MVCC snapshot timestamp (execution start); 0 under 2PL.
  SimTime begin_ts = 0;

  void AddParticipant(uint32_t p) {
    if (std::find(participants.begin(), participants.end(), p) ==
        participants.end()) {
      participants.push_back(p);
    }
  }
};

TransactionManager::TransactionManager(Cluster* cluster)
    : cluster_(cluster), sim_(cluster->simulator()) {}

void TransactionManager::BindMetrics(obs::MetricsRegistry* registry) {
  queue_.BindMetrics(registry);
  if (registry == nullptr) {
    m_queue_wait_seconds_ = nullptr;
    m_lock_wait_seconds_ = nullptr;
    m_lock_timeouts_ = nullptr;
    m_latency_committed_ = nullptr;
    m_latency_aborted_ = nullptr;
    for (obs::Counter*& c : m_aborts_by_reason_) c = nullptr;
    return;
  }
  m_queue_wait_seconds_ = registry->GetHistogram("soap_txn_queue_wait_seconds");
  m_lock_wait_seconds_ = registry->GetHistogram("soap_lock_wait_seconds");
  m_lock_timeouts_ = registry->GetCounter("soap_lock_timeouts_total");
  m_latency_committed_ = registry->GetHistogram("soap_txn_latency_seconds",
                                                "outcome=\"committed\"");
  m_latency_aborted_ = registry->GetHistogram("soap_txn_latency_seconds",
                                              "outcome=\"aborted\"");
  // One labeled counter per abort reason, so per-CC abort decomposition
  // (write_conflict vs lock_timeout) is scrapeable without result diffs.
  for (AbortReason reason :
       {AbortReason::kDeadlock, AbortReason::kLockTimeout,
        AbortReason::kQueueTimeout, AbortReason::kVoteAbort,
        AbortReason::kInjected, AbortReason::kNodeCrash,
        AbortReason::kShutdown, AbortReason::kWriteConflict}) {
    m_aborts_by_reason_[static_cast<size_t>(reason)] = registry->GetCounter(
        "soap_txn_aborts_total",
        obs::MetricsRegistry::Label("reason", txn::AbortReasonName(reason)));
  }
}

txn::TxnId TransactionManager::Submit(std::unique_ptr<Transaction> t) {
  assert(t != nullptr);
  if (t->id == 0) t->id = ids_.Next();
  if (t->submit_time == 0) t->submit_time = sim_->Now();
  t->attempt++;
  if (t->is_repartition) {
    counters_.submitted_repartition++;
  } else {
    counters_.submitted_normal++;
  }
  const txn::TxnId id = t->id;
  if (Traced(*t)) tracer_->Begin(id, obs::SpanKind::kQueued, sim_->Now());
  queue_.Push(std::move(t));
  MaybeDispatch();
  return id;
}

bool TransactionManager::PromoteQueued(txn::TxnId id,
                                       TxnPriority priority) {
  std::unique_ptr<Transaction> t = queue_.Extract(id);
  if (t == nullptr) return false;
  t->priority = priority;
  queue_.Push(std::move(t));
  MaybeDispatch();
  return true;
}

bool TransactionManager::IdleForLowPriority() const {
  return queue_.NormalOrHigherCount() == 0 &&
         inflight_normal_or_high_ == 0 &&
         inflight_low_ < cluster_->config().low_priority_max_inflight;
}

void TransactionManager::MaybeDispatch() {
  while (inflight_.size() < cluster_->config().max_inflight &&
         !queue_.Empty()) {
    if (queue_.PeekPriority() == TxnPriority::kLow && !IdleForLowPriority()) {
      break;
    }
    std::unique_ptr<Transaction> t = queue_.Pop();
    // Deadline check (the JTA transaction timeout): normal transactions
    // that rotted in the queue past their deadline are failed, not run.
    if (!t->is_repartition &&
        sim_->Now() - t->submit_time > cluster_->config().costs.txn_timeout) {
      t->state = TxnState::kAborted;
      t->abort_reason = AbortReason::kQueueTimeout;
      t->finish_time = sim_->Now();
      counters_.aborted_normal++;
      counters_.aborts_queue_timeout++;
      CountAbortMetric(AbortReason::kQueueTimeout);
      if (t->has_piggyback()) counters_.piggyback_carrier_aborts++;
      if (m_latency_aborted_) {
        m_latency_aborted_->RecordMicros(t->finish_time - t->submit_time);
      }
      if (Traced(*t)) {
        tracer_->FinishTxn(t->id, t->submit_time, t->finish_time, 0, false,
                         KindOf(*t));
      }
      if (completion_cb_) completion_cb_(*t);
      continue;
    }
    StartTransaction(std::move(t));
  }
}

void TransactionManager::StartTransaction(std::unique_ptr<Transaction> t) {
  if (pre_execution_hook_ && !t->is_repartition) {
    pre_execution_hook_(t.get());
  }
  auto e = std::make_shared<Exec>();
  e->txn = std::move(t);
  Transaction& txn = *e->txn;
  txn.state = TxnState::kRunning;
  txn.start_time = sim_->Now();
  if (cluster_->mvcc_enabled()) {
    // Snapshot begins at execution start; ends when the txn completes.
    e->begin_ts = txn.start_time;
    cluster_->snapshots().Begin(txn.id, e->begin_ts);
  }
  // Attempt 1 only: on resubmission submit_time is the original submit,
  // not this queue entry, and would inflate the queue-wait histogram.
  if (m_queue_wait_seconds_ && txn.attempt == 1) {
    m_queue_wait_seconds_->RecordMicros(txn.start_time - txn.submit_time);
  }
  if (Traced(txn)) {
    tracer_->End(txn.id, obs::SpanKind::kQueued, txn.start_time);
    tracer_->Begin(txn.id, obs::SpanKind::kExecute, txn.start_time);
  }
  if (txn.priority == TxnPriority::kLow) {
    inflight_low_++;
  } else {
    inflight_normal_or_high_++;
  }
  inflight_[txn.id] = e;

  // Coordinator: the node of the first operation (router's choice for
  // normal queries, the plan's source partition for repartition ops).
  if (!txn.ops.empty() || !txn.piggyback_ops.empty()) {
    const Operation& first =
        txn.ops.empty() ? txn.piggyback_ops.front() : txn.ops.front();
    if (first.kind == OpKind::kRead && replica_aware_) {
      // Replica-aware mode: coordinate a read-leading transaction from a
      // live copy, so a crashed primary does not doom read-only work that
      // replicas could serve.
      Result<router::PartitionId> pick = cluster_->router().PickReadPartition(
          first.key, router::QueryRouter::kNoPreference);
      e->coordinator = pick.ok() ? *pick : 0;
    } else if (first.kind == OpKind::kRead || first.kind == OpKind::kWrite) {
      Result<router::PartitionId> primary =
          cluster_->routing_table().GetPrimary(first.key);
      e->coordinator = primary.ok() ? *primary : 0;
    } else {
      e->coordinator = first.source_partition;
    }
  }

  // A down coordinator cannot run the begin job (it would be silently
  // discarded); fail the transaction. Deferred so the abort's completion
  // callback does not re-enter the MaybeDispatch loop that called us.
  if (cluster_->node(e->coordinator).down()) {
    sim_->After(0, [this, e]() {
      if (!e->done) AbortTransaction(e, AbortReason::kNodeCrash);
    });
    return;
  }

  cluster_->node(e->coordinator)
      .RunJob(cluster_->config().costs.begin, OverheadCategory(e),
              JobClass::kBulk, [this, e]() { ExecuteNextOp(e); });
}

size_t TransactionManager::TotalOps(const ExecPtr& e) const {
  return e->txn->ops.size() + e->txn->piggyback_ops.size();
}

Operation& TransactionManager::OpAt(const ExecPtr& e, size_t index) {
  Transaction& txn = *e->txn;
  if (index < txn.ops.size()) return txn.ops[index];
  return txn.piggyback_ops[index - txn.ops.size()];
}

WorkCategory TransactionManager::CategoryFor(const ExecPtr& e,
                                             const Operation& op) const {
  if (e->txn->is_repartition || txn::IsRepartitionOp(op.kind)) {
    return WorkCategory::kRepartition;
  }
  return WorkCategory::kNormal;
}

WorkCategory TransactionManager::OverheadCategory(const ExecPtr& e) const {
  return e->txn->is_repartition ? WorkCategory::kRepartition
                                : WorkCategory::kNormal;
}

void TransactionManager::ExecuteNextOp(const ExecPtr& e) {
  if (e->done) return;
  if (e->op_index >= TotalOps(e)) {
    AcquireCommitLocks(e);
    return;
  }
  // Piggyback boundary: before the injected repartition operations run,
  // take the whole exclusive lock set (piggyback keys + the carrier's own
  // write set) in sorted order. Migrated keys are usually also written
  // keys; locking them in op order here and commit order in siblings
  // would deadlock.
  if (!e->lock_set_built && e->op_index >= e->txn->ops.size()) {
    BuildLockSet(e);
    AcquireLockChain(e, [this, e]() { ExecuteNextOp(e); });
    return;
  }
  Operation& op = OpAt(e, e->op_index);
  const size_t index = e->op_index;
  if (op.kind == OpKind::kRead) {
    // Read committed: lock-free. Serializable under 2PL: shared lock at
    // execution, held to commit. Under MVCC reads never lock — they are
    // served from the version chain at the transaction's begin timestamp,
    // which is what flattens the read-side failure-rate curve.
    if (cluster_->config().isolation == IsolationLevel::kSerializable &&
        !cluster_->mvcc_enabled()) {
      AcquireLock(e, op.key, txn::LockMode::kShared,
                  [this, e, index]() { RunOp(e, index); });
    } else {
      RunOp(e, index);
    }
  } else if (op.kind == OpKind::kWrite) {
    // Writes are buffered and take their exclusive locks at commit time.
    RunOp(e, index);
  } else {
    // Repartition primitives lock at execution: the tuple must not change
    // while it is being copied between partitions. For carriers the
    // boundary chain above already holds these; for pure repartition
    // transactions ops are emitted in sorted key order.
    AcquireLock(e, op.key, txn::LockMode::kExclusive,
                [this, e, index]() { RunOp(e, index); });
  }
}

void TransactionManager::BuildLockSet(const ExecPtr& e) {
  assert(!e->lock_set_built);
  e->lock_set_built = true;
  for (const Operation& op : e->txn->ops) {
    if (op.kind == OpKind::kWrite) e->commit_lock_keys.push_back(op.key);
  }
  for (const Operation& op : e->txn->piggyback_ops) {
    e->commit_lock_keys.push_back(op.key);
  }
  std::sort(e->commit_lock_keys.begin(), e->commit_lock_keys.end());
  e->commit_lock_keys.erase(
      std::unique(e->commit_lock_keys.begin(), e->commit_lock_keys.end()),
      e->commit_lock_keys.end());
}

void TransactionManager::AcquireLockChain(const ExecPtr& e,
                                          std::function<void()> next) {
  if (e->done) return;
  if (e->commit_lock_index >= e->commit_lock_keys.size()) {
    next();
    return;
  }
  const storage::TupleKey key = e->commit_lock_keys[e->commit_lock_index];
  e->commit_lock_index++;
  auto shared_next = std::make_shared<std::function<void()>>(std::move(next));
  AcquireLock(e, key, txn::LockMode::kExclusive, [this, e, shared_next]() {
    AcquireLockChain(e, *shared_next);
  });
}

void TransactionManager::AcquireLock(const ExecPtr& e,
                                     storage::TupleKey key,
                                     txn::LockMode mode,
                                     std::function<void()> next) {
  const txn::TxnId id = e->txn->id;
  const SimTime wait_start = sim_->Now();
  auto shared_next = std::make_shared<std::function<void()>>(std::move(next));
  auto outcome = cluster_->lock_manager().Acquire(
      id, key, mode, [this, e, wait_start, shared_next]() {
        // Granted later: cancel the timeout and proceed.
        if (e->done) return;
        if (e->timeout_event != sim::kInvalidEventId) {
          sim_->Cancel(e->timeout_event);
          e->timeout_event = sim::kInvalidEventId;
        }
        if (m_lock_wait_seconds_) {
          m_lock_wait_seconds_->RecordMicros(sim_->Now() - wait_start);
        }
        if (Traced(*e->txn)) {
          tracer_->End(e->txn->id, obs::SpanKind::kLockWait, sim_->Now());
        }
        (*shared_next)();
      });
  switch (outcome) {
    case txn::AcquireOutcome::kGranted:
      (*shared_next)();
      break;
    case txn::AcquireOutcome::kQueued:
      if (Traced(*e->txn)) {
        tracer_->Begin(id, obs::SpanKind::kLockWait, wait_start);
      }
      e->timeout_event = sim_->After(
          cluster_->config().costs.lock_timeout, [this, e]() {
            e->timeout_event = sim::kInvalidEventId;
            if (e->done) return;
            // The grant may have raced this event at the same timestamp.
            if (!cluster_->lock_manager().CancelWait(e->txn->id)) return;
            if (m_lock_timeouts_) m_lock_timeouts_->Increment();
            AbortTransaction(e, AbortReason::kLockTimeout);
          });
      break;
    case txn::AcquireOutcome::kDeadlock:
      AbortTransaction(e, AbortReason::kDeadlock);
      break;
  }
}

void TransactionManager::AcquireCommitLocks(const ExecPtr& e) {
  if (e->done) return;
  if (!e->lock_set_built) BuildLockSet(e);
  AcquireLockChain(e, [this, e]() {
    // MVCC first-updater-wins: with the write locks held, abort if any
    // write key gained a version after this transaction's snapshot. The
    // locks serialize installs, so the probe cannot race a commit.
    if (cluster_->mvcc_enabled() && HasWriteConflict(e)) {
      AbortTransaction(e, AbortReason::kWriteConflict);
      return;
    }
    BeginCommit(e);
  });
}

bool TransactionManager::HasWriteConflict(const ExecPtr& e) const {
  for (const Operation& op : e->txn->ops) {
    if (op.kind != OpKind::kWrite) continue;
    if (cluster_->versions().CommittedSince(op.key, e->begin_ts)) return true;
  }
  return false;
}

void TransactionManager::RunOp(const ExecPtr& e, size_t op_index) {
  if (e->done) return;
  Operation& op = OpAt(e, op_index);
  const ExecutionCosts& costs = cluster_->config().costs;
  router::RoutingTable& routing = cluster_->routing_table();
  auto advance = [this, e]() {
    e->op_index++;
    ExecuteNextOp(e);
  };

  switch (op.kind) {
    case OpKind::kRead: {
      // Replica-aware mode prefers the copy on the coordinator (turning
      // would-be distributed reads into local ones) and fails over to a
      // live replica when the primary is down.
      Result<router::PartitionId> primary =
          replica_aware_
              ? cluster_->router().RouteReadNear(op.key, e->coordinator)
              : cluster_->router().RouteRead(op.key);
      const uint32_t p = primary.ok() ? *primary : e->coordinator;
      if (cluster_->node(p).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      op.source_partition = p;
      e->AddParticipant(p);
      if (history_ != nullptr) {
        if (cluster_->mvcc_enabled()) {
          // Snapshot read: observe the version visible at begin_ts. Only
          // computed while a recorder is attached (the break mode implies
          // --check, so the recorder is always set when a break is armed).
          mvcc::VersionRead vr =
              cluster_->versions().ReadAsOf(op.key, e->begin_ts);
          uint64_t observed = vr.writer;
          if (check_break_ == check::BreakMode::kStaleSnapshot &&
              check_breaks_fired_ == 0) {
            // Only consume the break on a key with committed history —
            // an injected misreport on a chainless key would be
            // indistinguishable from a correct base read.
            uint64_t stale = 0;
            if (cluster_->versions().StaleObservation(op.key, e->begin_ts,
                                                      &stale)) {
              check_breaks_fired_++;
              observed = stale;
            }
          }
          history_->OnSnapshotRead(e->txn->id, op.key, p, observed,
                                   e->begin_ts, sim_->Now());
        } else {
          history_->OnRead(e->txn->id, op.key, p, sim_->Now());
        }
      }
      cluster_->node(p).RunJob(costs.read_query, CategoryFor(e, op),
                               JobClass::kBulk, advance);
      return;
    }
    case OpKind::kWrite: {
      Result<router::PartitionId> primary =
          cluster_->router().RouteWrite(op.key);
      const uint32_t p = primary.ok() ? *primary : e->coordinator;
      if (cluster_->node(p).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      op.source_partition = p;
      e->AddParticipant(p);
      cluster_->node(p).RunJob(costs.write_query, CategoryFor(e, op),
                               JobClass::kBulk, advance);
      return;
    }
    case OpKind::kMigrateInsert: {
      // Stale-plan guard: if the tuple already moved (another transaction
      // applied this plan unit), skip the whole repartition operation.
      // A degenerate self-migration (source == target, which no sane plan
      // emits) is likewise a no-op — applying it would erase the tuple's
      // only copy at commit.
      Result<router::PartitionId> primary = routing.GetPrimary(op.key);
      if (!primary.ok() || *primary != op.source_partition ||
          op.source_partition == op.target_partition) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      Result<storage::Tuple> tuple =
          cluster_->storage(op.source_partition).Read(op.key);
      if (!tuple.ok()) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      const uint32_t src = op.source_partition;
      const uint32_t dst = op.target_partition;
      if (cluster_->node(src).down() || cluster_->node(dst).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      e->staged[op.key] = *tuple;
      e->AddParticipant(src);
      e->AddParticipant(dst);
      const WorkCategory cat = CategoryFor(e, op);
      const Duration service = costs.migrate_insert;
      cluster_->network().SendWithFailure(
          src, dst, storage::Tuple::kWireSize,
          [this, e, dst, cat, service, advance]() {
            if (e->done) return;
            // The destination may have crashed while the copy was in
            // flight.
            if (cluster_->node(dst).down()) {
              AbortTransaction(e, AbortReason::kNodeCrash);
              return;
            }
            cluster_->node(dst).RunJob(service, cat, JobClass::kBulk, advance);
          },
          [this, e]() {
            if (!e->done) AbortTransaction(e, AbortReason::kNodeCrash);
          });
      return;
    }
    case OpKind::kMigrateDelete: {
      if (e->skipped_rep_ops.count(op.repartition_op_id) > 0) {
        advance();
        return;
      }
      if (cluster_->node(op.source_partition).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      e->AddParticipant(op.source_partition);
      cluster_->node(op.source_partition)
          .RunJob(costs.migrate_delete, CategoryFor(e, op),
                  JobClass::kBulk, advance);
      return;
    }
    case OpKind::kReplicaCreate: {
      Result<router::Placement> placement = routing.GetPlacement(op.key);
      if (!placement.ok() || placement->HasReplicaOn(op.target_partition)) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      Result<storage::Tuple> tuple =
          cluster_->storage(placement->primary).Read(op.key);
      if (!tuple.ok()) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      op.source_partition = placement->primary;
      const uint32_t dst = op.target_partition;
      if (cluster_->node(op.source_partition).down() ||
          cluster_->node(dst).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      e->staged[op.key] = *tuple;
      e->AddParticipant(op.source_partition);
      e->AddParticipant(dst);
      const WorkCategory cat = CategoryFor(e, op);
      cluster_->network().SendWithFailure(
          op.source_partition, dst, storage::Tuple::kWireSize,
          [this, e, dst, cat, advance]() {
            if (e->done) return;
            if (cluster_->node(dst).down()) {
              AbortTransaction(e, AbortReason::kNodeCrash);
              return;
            }
            cluster_->node(dst).RunJob(
                cluster_->config().costs.replica_create, cat,
                JobClass::kBulk, advance);
          },
          [this, e]() {
            if (!e->done) AbortTransaction(e, AbortReason::kNodeCrash);
          });
      return;
    }
    case OpKind::kReplicaDelete: {
      Result<router::Placement> placement = routing.GetPlacement(op.key);
      if (!placement.ok() ||
          placement->primary == op.source_partition ||
          !placement->HasReplicaOn(op.source_partition)) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      if (cluster_->node(op.source_partition).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      e->AddParticipant(op.source_partition);
      cluster_->node(op.source_partition)
          .RunJob(costs.replica_delete, CategoryFor(e, op),
                  JobClass::kBulk, advance);
      return;
    }
    case OpKind::kLeaderShift: {
      // Stale-plan guards: the source must still be the primary and the
      // target must still hold the replica being promoted; anything else
      // means another transaction raced this plan unit (a concurrent
      // migration, drop, or failover promotion) and the swap is skipped.
      Result<router::Placement> placement = routing.GetPlacement(op.key);
      if (!placement.ok() || placement->primary != op.source_partition ||
          !placement->HasReplicaOn(op.target_partition) ||
          op.source_partition == op.target_partition) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      Result<storage::Tuple> tuple =
          cluster_->storage(op.source_partition).Read(op.key);
      if (!tuple.ok()) {
        e->skipped_rep_ops.insert(op.repartition_op_id);
        advance();
        return;
      }
      const uint32_t src = op.source_partition;
      const uint32_t dst = op.target_partition;
      if (cluster_->node(src).down() || cluster_->node(dst).down()) {
        AbortTransaction(e, AbortReason::kNodeCrash);
        return;
      }
      // No data moves — the target already stores the bytes. The primary's
      // current content is staged so phase 2 can write a WAL refresh
      // record at the new leader, making the swap crash-safe: replaying
      // the target's WAL reproduces the promoted copy exactly.
      e->staged[op.key] = *tuple;
      e->AddParticipant(src);
      e->AddParticipant(dst);
      cluster_->node(dst).RunJob(costs.leader_shift, CategoryFor(e, op),
                                 JobClass::kBulk, advance);
      return;
    }
  }
}

void TransactionManager::BeginCommit(const ExecPtr& e) {
  Transaction& txn = *e->txn;
  const ExecutionCosts& costs = cluster_->config().costs;

  // The write set is exclusively locked from here until release, so no
  // migration can move these tuples anymore — but one may have moved them
  // between query execution and now. Re-resolve each write's partition so
  // the commit applies at the tuple's current home (and joins it to the
  // participant set).
  for (Operation& op : txn.ops) {
    if (op.kind != OpKind::kWrite) continue;
    if (replica_aware_) {
      // Synchronous log shipping: every live replica holder of a written
      // key joins the participant set and applies the write in phase 2,
      // so copies commit in lockstep with the primary. Down replicas are
      // skipped — they catch up from the primary on restart.
      Result<router::Placement> placement =
          cluster_->routing_table().GetPlacement(op.key);
      if (placement.ok()) {
        if (placement->primary != op.source_partition) {
          op.source_partition = placement->primary;
          e->AddParticipant(placement->primary);
        }
        for (router::PartitionId rep : placement->replicas) {
          if (!cluster_->node(rep).down()) e->AddParticipant(rep);
        }
      }
      continue;
    }
    Result<router::PartitionId> primary =
        cluster_->routing_table().GetPrimary(op.key);
    if (primary.ok() && *primary != op.source_partition) {
      op.source_partition = *primary;
      e->AddParticipant(*primary);
    }
  }

  if (e->participants.size() <= 1) {
    // Collocated: one-phase local commit on the coordinator.
    const uint32_t p =
        e->participants.empty() ? e->coordinator : e->participants[0];
    if (cluster_->node(p).down()) {
      AbortTransaction(e, AbortReason::kNodeCrash);
      return;
    }
    txn.state = TxnState::kCommitting;
    if (Traced(txn)) {
      tracer_->End(txn.id, obs::SpanKind::kExecute, sim_->Now());
      tracer_->Begin(txn.id, obs::SpanKind::kCommit, sim_->Now());
    }
    cluster_->node(p).RunJob(costs.local_commit, OverheadCategory(e),
                             JobClass::kUrgent, [this, e, p]() {
                               Status s = ApplyAtPartition(e, p);
                               if (!s.ok()) {
                                 SOAP_LOG(kWarn)
                                     << "apply anomaly: " << s.ToString();
                               }
                               FinishCommit(e);
                             });
    return;
  }

  // Distributed: full 2PC across every touched partition. A down
  // coordinator cannot drive the protocol — presume abort up front.
  if (cluster_->node(e->coordinator).down()) {
    AbortTransaction(e, AbortReason::kNodeCrash);
    return;
  }
  // Prepare/commit-round spans are emitted by the 2PC driver, which owns
  // the phase transitions.
  txn.state = TxnState::kPreparing;
  if (Traced(txn)) {
    tracer_->End(txn.id, obs::SpanKind::kExecute, sim_->Now());
  }
  std::vector<txn::TpcParticipant> participants;
  participants.reserve(e->participants.size());
  for (uint32_t p : e->participants) {
    txn::TpcParticipant tp;
    tp.node = p;
    tp.prepare = [this, e, p](std::function<void(bool)> vote) {
      const bool veto =
          vote_abort_injector_ && vote_abort_injector_(*e->txn, p);
      cluster_->node(p).RunJob(cluster_->config().costs.prepare,
                               OverheadCategory(e), JobClass::kUrgent,
                               [vote = std::move(vote), veto]() {
                                 vote(!veto);
                               });
    };
    tp.commit = [this, e, p](std::function<void()> ack) {
      cluster_->node(p).RunJob(cluster_->config().costs.commit_apply,
                               OverheadCategory(e), JobClass::kUrgent,
                               [this, e, p, ack = std::move(ack)]() {
                                 Status s = ApplyAtPartition(e, p);
                                 if (!s.ok()) {
                                   SOAP_LOG(kWarn) << "apply anomaly: "
                                                   << s.ToString();
                                 }
                                 ack();
                               });
    };
    tp.abort = [this, e, p](std::function<void()> ack) {
      cluster_->node(p).RunJob(cluster_->config().costs.abort_cleanup,
                               OverheadCategory(e), JobClass::kUrgent,
                               std::move(ack));
    };
    participants.push_back(std::move(tp));
  }
  cluster_->tpc().Run(txn.id, e->coordinator, std::move(participants),
                      [this, e](bool committed) {
                        // A node-crash abort may have completed the exec
                        // before the protocol resolved.
                        if (e->done) return;
                        if (committed) {
                          e->txn->state = TxnState::kCommitting;
                          FinishCommit(e);
                        } else {
                          AbortTransaction(e, AbortReason::kVoteAbort);
                        }
                      });
}

Status TransactionManager::ApplyAtPartition(const ExecPtr& e,
                                            uint32_t partition) {
  if (!e->applied_partitions.insert(partition).second) return Status::OK();
  Transaction& txn = *e->txn;
  Status first_error = Status::OK();
  auto note = [&first_error](Status s) {
    if (!s.ok() && first_error.ok()) first_error = std::move(s);
  };
  const size_t total = TotalOps(e);
  auto skipped = [&e](const Operation& op) {
    return op.repartition_op_id != 0 &&
           e->skipped_rep_ops.count(op.repartition_op_id) > 0;
  };
  // Does this transaction itself deploy a copy of `key` onto this
  // partition (piggybacked migrate / replica-create)? A carrier can both
  // write a key and carry that key's deployment; the staged copy was
  // captured before the carrier's buffered write existed anywhere, so the
  // copy installs first (pass 1) and the write must then land on the
  // fresh copy too (pass 2) — otherwise the carrier's own committed write
  // would survive only on the about-to-be-erased source.
  auto deploys_copy_here = [&](storage::TupleKey key) {
    for (size_t i = 0; i < total; ++i) {
      const Operation& op = OpAt(e, i);
      if (skipped(op)) continue;
      if ((op.kind == OpKind::kMigrateInsert ||
           op.kind == OpKind::kReplicaCreate) &&
          op.key == key && op.target_partition == partition) {
        return true;
      }
    }
    return false;
  };
  // Pass 1: install staged copies at migrate / replica-create targets.
  for (size_t i = 0; i < total; ++i) {
    Operation& op = OpAt(e, i);
    if (skipped(op)) continue;
    if (op.kind != OpKind::kMigrateInsert &&
        op.kind != OpKind::kReplicaCreate) {
      continue;
    }
    if (op.target_partition != partition) continue;
    // Deliberate-corruption hook: drop the staged copy install, so
    // routing registers a replica whose holder stores nothing.
    if (op.kind == OpKind::kReplicaCreate &&
        FireBreak(check::BreakMode::kReplicaApply)) {
      continue;
    }
    auto staged = e->staged.find(op.key);
    if (staged == e->staged.end()) {
      note(Status::Internal("no staged tuple for key " +
                            std::to_string(op.key)));
      continue;
    }
    note(cluster_->storage(partition).ApplyInsert(txn.id, staged->second));
  }
  // Leader shifts: write a WAL refresh record at the new leader with the
  // content staged from the old primary. The target already stores the
  // bytes (shift requires a live replica there), so this is storage-level
  // a no-op refresh — but it makes the promotion durable: WAL replay at
  // the new leader reproduces the promoted copy without consulting the
  // demoted one. ApplyUpdate is idempotent under replay. The refresh
  // applies as txn 0 (the catch-up-refresh convention): the carrier
  // commits no version of the key, so history attribution must stay on
  // the committed chain tail, which cannot move while the carrier holds
  // the key's exclusive lock.
  for (size_t i = 0; i < total; ++i) {
    Operation& op = OpAt(e, i);
    if (skipped(op) || op.kind != OpKind::kLeaderShift) continue;
    if (op.target_partition != partition) continue;
    auto staged = e->staged.find(op.key);
    if (staged == e->staged.end()) {
      note(Status::Internal("no staged tuple for shifted key " +
                            std::to_string(op.key)));
      continue;
    }
    Status s = cluster_->storage(partition)
                   .ApplyUpdate(0, op.key, staged->second.content,
                                cluster_->mvcc_enabled() ? sim_->Now() : 0);
    if (!s.ok() && !s.IsNotFound()) note(std::move(s));
  }
  // Pass 2: direct write applies. kMigrateDelete / kReplicaDelete are
  // deferred to ApplyRoutingUpdates so the tuple stays reachable until
  // the routing flip (Zephyr-style late source cleanup).
  for (size_t i = 0; i < total; ++i) {
    Operation& op = OpAt(e, i);
    if (skipped(op) || op.kind != OpKind::kWrite) continue;
    bool applies_here = op.source_partition == partition;
    if (!applies_here) applies_here = deploys_copy_here(op.key);
    if (!applies_here && replica_aware_) {
      // Shipped log apply: a replica holder applies the write during
      // its own phase 2 (write-through in ApplyRoutingUpdates skips
      // partitions that already applied).
      Result<router::Placement> placement =
          cluster_->routing_table().GetPlacement(op.key);
      applies_here = placement.ok() && placement->primary != partition &&
                     placement->HasReplicaOn(partition);
    }
    if (!applies_here) continue;
    // Deliberate-corruption hooks: drop this one apply on the
    // primary (lost update) or on a replica (silent divergence).
    const bool primary_apply = op.source_partition == partition;
    if (primary_apply ? FireBreak(check::BreakMode::kLostWrite)
                      : FireBreak(check::BreakMode::kReplicaApply)) {
      continue;
    }
    Status s = cluster_->storage(partition)
                   .ApplyUpdate(txn.id, op.key, op.write_value,
                                cluster_->mvcc_enabled() ? sim_->Now() : 0);
    // Updating a vanished row affects 0 rows; not an anomaly.
    if (!s.ok() && !s.IsNotFound()) note(std::move(s));
  }
  return first_error;
}

obs::TxnKind TransactionManager::KindOf(const txn::Transaction& t) {
  if (t.is_repartition) {
    for (const txn::Operation& op : t.ops) {
      if (op.kind == txn::OpKind::kMigrateInsert ||
          op.kind == txn::OpKind::kMigrateDelete ||
          op.kind == txn::OpKind::kLeaderShift) {
        return obs::TxnKind::kRepartition;
      }
    }
    return obs::TxnKind::kReplicaApply;
  }
  if (t.has_piggyback() || t.piggyback_source != 0) {
    return obs::TxnKind::kCarrier;
  }
  return obs::TxnKind::kClient;
}

void TransactionManager::ApplyRoutingUpdates(const ExecPtr& e) {
  Transaction& txn = *e->txn;
  router::RoutingTable& routing = cluster_->routing_table();
  const size_t total = TotalOps(e);
  for (size_t i = 0; i < total; ++i) {
    Operation& op = OpAt(e, i);
    if (op.repartition_op_id != 0 &&
        e->skipped_rep_ops.count(op.repartition_op_id) > 0) {
      continue;
    }
    switch (op.kind) {
      case OpKind::kRead:
        break;
      case OpKind::kWrite: {
        // Write-through to any HA replicas so copies stay identical.
        Result<router::Placement> placement = routing.GetPlacement(op.key);
        if (placement.ok() && !placement->replicas.empty()) {
          for (router::PartitionId rep : placement->replicas) {
            if (replica_aware_) {
              // Live replicas already applied in their phase 2; down
              // replicas must not be touched — their divergence is
              // repaired by the restart catch-up sweep.
              if (e->applied_partitions.count(rep) > 0) continue;
              if (cluster_->node(rep).down()) continue;
            }
            Status s = cluster_->storage(rep).ApplyUpdate(
                txn.id, op.key, op.write_value,
                cluster_->mvcc_enabled() ? sim_->Now() : 0);
            (void)s;  // replica divergence is surfaced by CheckConsistency
          }
        }
        break;
      }
      case OpKind::kMigrateInsert: {
        Status s =
            routing.Migrate(op.key, op.source_partition,
                            op.target_partition);
        if (!s.ok()) {
          SOAP_LOG(kWarn) << "routing flip failed: " << s.ToString();
        } else if (flows_ != nullptr) {
          flows_->OnMigration(op.source_partition, op.target_partition);
        }
        break;
      }
      case OpKind::kMigrateDelete: {
        // Deliberate-corruption hook: skip the source cleanup, leaving the
        // tuple deployed twice (stored where routing no longer places it).
        if (FireBreak(check::BreakMode::kDoubleDeploy)) break;
        Status s = cluster_->storage(op.source_partition)
                       .ApplyErase(txn.id, op.key);
        if (!s.ok()) {
          SOAP_LOG(kWarn) << "migration source cleanup failed: "
                          << s.ToString();
        }
        break;
      }
      case OpKind::kReplicaCreate: {
        Status s = routing.AddReplica(op.key, op.target_partition);
        if (!s.ok()) {
          SOAP_LOG(kWarn) << "replica registration failed: " << s.ToString();
        } else if (flows_ != nullptr) {
          flows_->OnReplicaCreate(op.target_partition);
        }
        break;
      }
      case OpKind::kReplicaDelete: {
        Status s = routing.RemoveReplica(op.key, op.source_partition);
        if (s.ok()) {
          if (flows_ != nullptr) flows_->OnReplicaDrop(op.source_partition);
          s = cluster_->storage(op.source_partition)
                  .ApplyErase(txn.id, op.key);
        }
        if (!s.ok()) {
          SOAP_LOG(kWarn) << "replica removal failed: " << s.ToString();
        }
        break;
      }
      case OpKind::kLeaderShift: {
        // Deliberate-corruption hook: retarget the primary without the
        // swap — the target stays listed as a replica (doubled in the
        // placement) and the old primary strands its copy (must trip
        // double_primary / ownership).
        if (FireBreak(check::BreakMode::kDoublePrimary)) {
          Status s = routing.SetPrimary(op.key, op.target_partition);
          (void)s;
        } else {
          Status s = routing.Promote(op.key, op.target_partition);
          if (!s.ok()) {
            SOAP_LOG(kWarn) << "leader shift flip failed: " << s.ToString();
            break;
          }
          counters_.leader_shifts_applied++;
          if (flows_ != nullptr) flows_->OnLeaderShift(op.target_partition);
        }
        if (leader_shift_hook_) {
          leader_shift_hook_(op.key, op.target_partition);
        }
        break;
      }
    }
  }
}

void TransactionManager::InstallVersions(const ExecPtr& e,
                                         SimTime commit_ts) {
  // Final value per key, mirroring the history recorder's commit rule:
  // the last write to a key is the version the transaction publishes.
  const std::vector<Operation>& ops = e->txn->ops;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != OpKind::kWrite) continue;
    bool overwritten = false;
    for (size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[j].kind == OpKind::kWrite && ops[j].key == ops[i].key) {
        overwritten = true;
        break;
      }
    }
    if (overwritten) continue;
    cluster_->versions().Install(ops[i].key, e->txn->id, ops[i].write_value,
                                 commit_ts);
  }
}

void TransactionManager::FinishCommit(const ExecPtr& e) {
  Transaction& txn = *e->txn;
  ApplyRoutingUpdates(e);

  // Count applied repartition operations (distinct plan units).
  std::unordered_set<uint64_t> applied_main;
  for (const Operation& op : txn.ops) {
    if (op.repartition_op_id != 0 &&
        e->skipped_rep_ops.count(op.repartition_op_id) == 0) {
      applied_main.insert(op.repartition_op_id);
    }
  }
  std::unordered_set<uint64_t> applied_piggyback;
  for (const Operation& op : txn.piggyback_ops) {
    if (op.repartition_op_id != 0 &&
        e->skipped_rep_ops.count(op.repartition_op_id) == 0) {
      applied_piggyback.insert(op.repartition_op_id);
    }
  }
  counters_.repartition_ops_applied +=
      applied_main.size() + applied_piggyback.size();
  counters_.piggybacked_ops_applied += applied_piggyback.size();

  // Install committed versions while the write locks are still held —
  // released waiters run synchronously from ReleaseAll, and their
  // first-updater-wins probes must already see these versions.
  if (cluster_->mvcc_enabled()) InstallVersions(e, sim_->Now());
  cluster_->lock_manager().ReleaseAll(txn.id);
  txn.state = TxnState::kCommitted;
  txn.finish_time = sim_->Now();
  if (history_ != nullptr) history_->OnCommit(txn, txn.finish_time);
  if (txn.is_repartition) {
    counters_.committed_repartition++;
  } else {
    counters_.committed_normal++;
    // Distributed iff the txn's own queries spanned >1 partition
    // (piggybacked repartition ops don't count against the workload).
    uint32_t span_partitions[8];
    uint32_t span = 0;
    for (const Operation& op : txn.ops) {
      if (op.repartition_op_id != 0) continue;
      bool seen = false;
      for (uint32_t i = 0; i < span; ++i) {
        if (span_partitions[i] == op.source_partition) {
          seen = true;
          break;
        }
      }
      if (!seen && span < 8) span_partitions[span++] = op.source_partition;
    }
    if (span > 1) counters_.committed_normal_distributed++;
    // Write distribution: a committed write is "distributed" when its
    // writes fan out to more than one storage site (another partition's
    // query, or write-through to HA replicas). Leader shifting exists to
    // drive this toward zero for write-hot keys.
    uint32_t wspan_partitions[8];
    uint32_t wspan = 0;
    bool has_write = false;
    auto note_wp = [&](uint32_t p) {
      for (uint32_t i = 0; i < wspan; ++i) {
        if (wspan_partitions[i] == p) return;
      }
      if (wspan < 8) wspan_partitions[wspan++] = p;
    };
    for (const Operation& op : txn.ops) {
      if (op.repartition_op_id != 0 || op.kind != OpKind::kWrite) continue;
      has_write = true;
      note_wp(op.source_partition);
      Result<router::Placement> placement =
          cluster_->routing_table().GetPlacement(op.key);
      if (placement.ok()) {
        for (router::PartitionId rep : placement->replicas) note_wp(rep);
      }
    }
    if (has_write) {
      counters_.committed_normal_with_writes++;
      if (wspan > 1) counters_.committed_normal_distributed_writes++;
    }
  }
  if (m_latency_committed_) {
    m_latency_committed_->RecordMicros(txn.finish_time - txn.submit_time);
  }
  if (Traced(txn)) {
    tracer_->FinishTxn(txn.id, txn.submit_time, txn.finish_time,
                       e->coordinator, true, KindOf(txn));
  }
  CompleteTransaction(e);
}

void TransactionManager::AbortTransaction(const ExecPtr& e,
                                          AbortReason reason) {
  Transaction& txn = *e->txn;
  if (e->timeout_event != sim::kInvalidEventId) {
    sim_->Cancel(e->timeout_event);
    e->timeout_event = sim::kInvalidEventId;
  }
  cluster_->lock_manager().ReleaseAll(txn.id);
  txn.state = TxnState::kAborted;
  txn.abort_reason = reason;
  txn.finish_time = sim_->Now();
  if (history_ != nullptr) history_->OnAbort(txn);
  if (txn.is_repartition) {
    counters_.aborted_repartition++;
  } else {
    counters_.aborted_normal++;
    if (txn.has_piggyback()) counters_.piggyback_carrier_aborts++;
  }
  switch (reason) {
    case AbortReason::kDeadlock:
      counters_.aborts_deadlock++;
      break;
    case AbortReason::kLockTimeout:
      counters_.aborts_lock_timeout++;
      break;
    case AbortReason::kQueueTimeout:
      counters_.aborts_queue_timeout++;
      break;
    case AbortReason::kVoteAbort:
    case AbortReason::kInjected:
      counters_.aborts_vote++;
      break;
    case AbortReason::kNodeCrash:
      counters_.aborts_node_crash++;
      break;
    case AbortReason::kShutdown:
      counters_.aborts_shutdown++;
      break;
    case AbortReason::kWriteConflict:
      counters_.aborts_write_conflict++;
      break;
    case AbortReason::kNone:
      break;
  }
  CountAbortMetric(reason);
  if (m_latency_aborted_) {
    m_latency_aborted_->RecordMicros(txn.finish_time - txn.submit_time);
  }
  if (Traced(txn)) {
    tracer_->FinishTxn(txn.id, txn.submit_time, txn.finish_time,
                       e->coordinator, false, KindOf(txn));
  }
  CompleteTransaction(e);
}

void TransactionManager::OnNodeCrash(uint32_t node) {
  std::vector<ExecPtr> victims;
  for (const auto& [id, e] : inflight_) {
    if (e->done) continue;
    const TxnState state = e->txn->state;
    // From the prepare round on the 2PC driver owns the outcome: it
    // aborts undecided instances of a dead coordinator and completes
    // decided ones through its retry path. One-phase commits (a single
    // participant, no protocol) are ours to abort — their vaporized
    // local-commit job would otherwise never call back.
    if (state == TxnState::kPreparing) continue;
    if (state == TxnState::kCommitting && e->participants.size() > 1) {
      continue;
    }
    bool involved = e->coordinator == node;
    for (uint32_t p : e->participants) {
      if (p == node) involved = true;
    }
    if (involved) victims.push_back(e);
  }
  // inflight_ iteration order is unspecified; sort for determinism.
  std::sort(victims.begin(), victims.end(),
            [](const ExecPtr& a, const ExecPtr& b) {
              return a->txn->id < b->txn->id;
            });
  for (const ExecPtr& e : victims) {
    if (!e->done) AbortTransaction(e, AbortReason::kNodeCrash);
  }
}

void TransactionManager::DrainQueue(txn::AbortReason reason) {
  // Completion callbacks may push fresh transactions; keep popping until
  // the queue stays empty.
  while (!queue_.Empty()) {
    std::unique_ptr<Transaction> t = queue_.Pop();
    t->state = TxnState::kAborted;
    t->abort_reason = reason;
    t->finish_time = sim_->Now();
    if (history_ != nullptr) history_->OnAbort(*t);
    if (t->is_repartition) {
      counters_.aborted_repartition++;
    } else {
      counters_.aborted_normal++;
      if (t->has_piggyback()) counters_.piggyback_carrier_aborts++;
    }
    if (reason == AbortReason::kShutdown) {
      counters_.aborts_shutdown++;
    } else if (reason == AbortReason::kNodeCrash) {
      counters_.aborts_node_crash++;
    }
    CountAbortMetric(reason);
    if (m_latency_aborted_) {
      m_latency_aborted_->RecordMicros(t->finish_time - t->submit_time);
    }
    if (Traced(*t)) {
      tracer_->FinishTxn(t->id, t->submit_time, t->finish_time, 0, false,
                         KindOf(*t));
    }
    if (completion_cb_) completion_cb_(*t);
  }
}

void TransactionManager::CompleteTransaction(const ExecPtr& e) {
  assert(!e->done);
  e->done = true;
  Transaction& txn = *e->txn;
  if (cluster_->mvcc_enabled()) cluster_->snapshots().End(txn.id);
  if (txn.priority == TxnPriority::kLow) {
    assert(inflight_low_ > 0);
    inflight_low_--;
  } else {
    assert(inflight_normal_or_high_ > 0);
    inflight_normal_or_high_--;
  }
  inflight_.erase(txn.id);
  if (completion_cb_) completion_cb_(txn);
  MaybeDispatch();
}

}  // namespace soap::cluster
