// Transaction manager (§2.1): admits transactions from the processing
// queue, drives their execution as a per-transaction state machine over the
// simulator (routing -> locking -> per-query node work -> 2PC), and reports
// completions. Repartition side effects (storage moves + routing updates)
// are applied atomically with the owning transaction's commit.

#ifndef SOAP_CLUSTER_TRANSACTION_MANAGER_H_
#define SOAP_CLUSTER_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/check/break_mode.h"
#include "src/check/history_recorder.h"
#include "src/cluster/cluster.h"
#include "src/cluster/processing_queue.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/txn_tracer.h"
#include "src/storage/tuple.h"
#include "src/txn/transaction.h"

namespace soap::cluster {

/// Cumulative counters the experiment engine diffs per interval.
struct TmCounters {
  uint64_t submitted_normal = 0;
  uint64_t committed_normal = 0;
  /// Committed normal transactions whose own queries (piggybacked ops
  /// excluded) spanned more than one partition — the numerator of the
  /// distributed-transaction ratio the planner drives down.
  uint64_t committed_normal_distributed = 0;
  uint64_t aborted_normal = 0;
  uint64_t submitted_repartition = 0;
  uint64_t committed_repartition = 0;
  uint64_t aborted_repartition = 0;
  /// Repartition operations (plan units) applied, standalone or
  /// piggybacked.
  uint64_t repartition_ops_applied = 0;
  /// Committed kLeaderShift ops (primary/replica role swaps).
  uint64_t leader_shifts_applied = 0;
  /// Committed normal transactions that performed at least one write, and
  /// the subset whose *writes* spanned more than one partition (replica
  /// fan-out included) — the numerator of the distributed-write ratio
  /// leader shifting drives down.
  uint64_t committed_normal_with_writes = 0;
  uint64_t committed_normal_distributed_writes = 0;
  /// The subset of the above that rode on normal transactions (§3.4).
  uint64_t piggybacked_ops_applied = 0;
  /// Aborts of normal transactions that carried piggybacked ops.
  uint64_t piggyback_carrier_aborts = 0;
  /// Aborts by reason, all transaction kinds.
  uint64_t aborts_deadlock = 0;
  uint64_t aborts_lock_timeout = 0;
  uint64_t aborts_queue_timeout = 0;
  uint64_t aborts_vote = 0;
  uint64_t aborts_node_crash = 0;
  uint64_t aborts_shutdown = 0;
  /// MVCC first-updater-wins write-write conflicts (--cc=mvcc only).
  uint64_t aborts_write_conflict = 0;

  uint64_t total_submitted() const {
    return submitted_normal + submitted_repartition;
  }
  uint64_t total_aborted() const {
    return aborted_normal + aborted_repartition;
  }
};

class TransactionManager {
 public:
  /// Called once per transaction when it reaches kCommitted or kAborted.
  /// The transaction is destroyed after the callback returns; callbacks
  /// may re-submit fresh transactions (Algorithm 2's resubmission path).
  using CompletionCallback = std::function<void(const txn::Transaction&)>;

  explicit TransactionManager(Cluster* cluster);

  /// Enqueues a transaction. Assigns its global id (if unset) and
  /// submit_time (on first attempt). Returns the id.
  txn::TxnId Submit(std::unique_ptr<txn::Transaction> t);

  void set_completion_callback(CompletionCallback cb) {
    completion_cb_ = std::move(cb);
  }

  /// Changes the priority of a still-queued transaction and requeues it
  /// (FIFO position resets within the new priority class). Returns false
  /// if the transaction already left the queue.
  bool PromoteQueued(txn::TxnId id, txn::TxnPriority priority);

  /// Invoked right before a dequeued transaction starts executing (§2.2:
  /// "the repartitioner may need to modify the normal transactions by
  /// inserting additional repartition operations"). The hook may append
  /// piggyback_ops; it must not change `ops`.
  using PreExecutionHook = std::function<void(txn::Transaction*)>;
  void set_pre_execution_hook(PreExecutionHook hook) {
    pre_execution_hook_ = std::move(hook);
  }

  /// Turns on replica-aware execution (the soap::replica subsystem):
  /// reads route to the nearest live copy with the coordinator as the
  /// collocation hint, and writes to replicated keys ship synchronously —
  /// every live replica holder joins the 2PC participant set and applies
  /// the write in phase 2, while down replicas are skipped (they catch up
  /// on restart). Off by default; when off, execution takes exactly the
  /// pre-replication code paths.
  void EnableReplicaAwareness() { replica_aware_ = true; }
  bool replica_aware() const { return replica_aware_; }

  /// Attaches the consistency checker's history recorder: reads, commits
  /// and aborts are reported to it (storage applies flow in separately via
  /// storage::StorageObserver). nullptr (default) detaches — every hook is
  /// one branch, so detached runs are byte-identical.
  void set_history(check::HistoryRecorder* history) { history_ = history; }

  /// Deliberate-corruption hook (--check_break): the chosen mutation is
  /// injected exactly once per run so tests can prove the checker detects
  /// it. kNone (default) injects nothing.
  void set_check_break(check::BreakMode mode) { check_break_ = mode; }
  /// How many deliberate corruptions actually fired (0 or 1).
  uint64_t check_breaks_fired() const { return check_breaks_fired_; }

  /// Test hook: a participant votes abort in 2PC when this returns true.
  void set_vote_abort_injector(
      std::function<bool(const txn::Transaction&, uint32_t partition)> fn) {
    vote_abort_injector_ = std::move(fn);
  }

  /// Publishes execution metrics (queue-wait, lock-wait and end-to-end
  /// latency histograms, abort counters) into `registry`, and binds the
  /// processing queue's depth gauges (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches a lifecycle tracer; sampled transactions get spans for
  /// queue residence, execution, lock waits and the commit protocol.
  /// nullptr (default) detaches.
  void set_tracer(obs::TxnTracer* tracer) { tracer_ = tracer; }

  /// Attaches the timeline's per-partition flow counters; committed
  /// routing changes (migrations, replica creates/drops, leader shifts)
  /// tick them. nullptr (default) detaches.
  void set_partition_flows(obs::PartitionFlows* flows) { flows_ = flows; }

  /// Fired after a kLeaderShift's routing flip commits, with the key and
  /// the new primary partition; the consistency checker uses it to assert
  /// a shifted key still has exactly one primary. nullptr (default)
  /// detaches — one branch on the shift path only.
  using LeaderShiftHook = std::function<void(storage::TupleKey, uint32_t)>;
  void set_leader_shift_hook(LeaderShiftHook hook) {
    leader_shift_hook_ = std::move(hook);
  }

  /// What kind of transaction this is, for trace tagging and audit
  /// reports: pure repartition work splits into migration-bearing
  /// (repartition) vs replica-maintenance-only (replica-apply); normal
  /// transactions carrying piggybacked ops are carriers.
  static obs::TxnKind KindOf(const txn::Transaction& t);

  const TmCounters& counters() const { return counters_; }
  const ProcessingQueue& queue() const { return queue_; }
  size_t inflight() const { return inflight_.size(); }
  size_t inflight_normal_or_high() const { return inflight_normal_or_high_; }
  size_t inflight_low() const { return inflight_low_; }

  /// True when a low-priority transaction would be admitted right now
  /// (the "system is idle" condition of the AfterAll strategy, §3.2).
  bool IdleForLowPriority() const;

  /// Reacts to a node crash: in-flight transactions touching `node` abort
  /// with kNodeCrash. Transactions already inside the commit protocol are
  /// left to the 2PC driver, which owns their outcome from the decision
  /// point on.
  void OnNodeCrash(uint32_t node);

  /// Completes every still-queued transaction with an abort (used at
  /// experiment shutdown so queued-but-never-dispatched transactions do
  /// not leak their callbacks).
  void DrainQueue(txn::AbortReason reason);

 private:
  struct Exec;
  using ExecPtr = std::shared_ptr<Exec>;

  void MaybeDispatch();
  void StartTransaction(std::unique_ptr<txn::Transaction> t);
  void ExecuteNextOp(const ExecPtr& e);
  void RunOp(const ExecPtr& e, size_t op_index);
  /// Acquires a lock in the given mode, then runs `next`; handles
  /// queuing with timeout and deadlock aborts.
  void AcquireLock(const ExecPtr& e, storage::TupleKey key,
                   txn::LockMode mode, std::function<void()> next);
  /// Collects the transaction's exclusive lock set (write keys + any
  /// piggybacked repartition keys), sorted and deduplicated.
  void BuildLockSet(const ExecPtr& e);
  /// Acquires the remaining keys of the lock set in order, then `next`.
  void AcquireLockChain(const ExecPtr& e, std::function<void()> next);
  /// Commit-time locking: takes the transaction's lock set in sorted key
  /// order (one global order across all transactions: deadlock-free),
  /// then starts the commit protocol. Buffered writes + commit-window
  /// locks keep read-committed semantics while bounding hold times.
  void AcquireCommitLocks(const ExecPtr& e);
  void BeginCommit(const ExecPtr& e);
  void FinishCommit(const ExecPtr& e);
  /// MVCC first-updater-wins probe, run after the commit locks are held:
  /// true when some write key already has a version committed at or after
  /// this transaction's begin timestamp.
  bool HasWriteConflict(const ExecPtr& e) const;
  /// MVCC commit: installs the transaction's final value per written key
  /// into the version store. Must run before its write locks release so a
  /// racing first-updater-wins probe cannot miss the conflict.
  void InstallVersions(const ExecPtr& e, SimTime commit_ts);
  void AbortTransaction(const ExecPtr& e, txn::AbortReason reason);
  void CompleteTransaction(const ExecPtr& e);

  txn::Operation& OpAt(const ExecPtr& e, size_t index);
  size_t TotalOps(const ExecPtr& e) const;
  /// Applies one participant's buffered effects to storage (2PC phase 2).
  Status ApplyAtPartition(const ExecPtr& e, uint32_t partition);
  /// Post-commit routing flips + deferred source deletes for migrations.
  void ApplyRoutingUpdates(const ExecPtr& e);
  WorkCategory CategoryFor(const ExecPtr& e, const txn::Operation& op) const;
  WorkCategory OverheadCategory(const ExecPtr& e) const;

  /// True when `t` is sampled by the attached tracer (one branch when
  /// tracing is off).
  bool Traced(const txn::Transaction& t) const {
    return tracer_ != nullptr && tracer_->Sampled(t.id);
  }

  Cluster* cluster_;
  sim::Simulator* sim_;
  ProcessingQueue queue_;
  txn::TxnIdGenerator ids_;
  TmCounters counters_;
  obs::TxnTracer* tracer_ = nullptr;
  obs::PartitionFlows* flows_ = nullptr;
  // Observability hooks; nullptr when disabled.
  obs::LatencyHistogram* m_queue_wait_seconds_ = nullptr;
  obs::LatencyHistogram* m_lock_wait_seconds_ = nullptr;
  obs::Counter* m_lock_timeouts_ = nullptr;
  obs::LatencyHistogram* m_latency_committed_ = nullptr;
  obs::LatencyHistogram* m_latency_aborted_ = nullptr;
  /// Abort counters labeled by reason (soap_txn_aborts_total), indexed by
  /// the AbortReason enum value; all null when metrics are off.
  obs::Counter* m_aborts_by_reason_[16] = {};
  CompletionCallback completion_cb_;
  PreExecutionHook pre_execution_hook_;
  LeaderShiftHook leader_shift_hook_;
  std::function<bool(const txn::Transaction&, uint32_t)>
      vote_abort_injector_;
  std::unordered_map<txn::TxnId, ExecPtr> inflight_;
  size_t inflight_normal_or_high_ = 0;
  size_t inflight_low_ = 0;
  bool dispatch_scheduled_ = false;
  bool replica_aware_ = false;
  check::HistoryRecorder* history_ = nullptr;
  check::BreakMode check_break_ = check::BreakMode::kNone;
  uint64_t check_breaks_fired_ = 0;

  /// True (exactly once) when the armed corruption mode matches `mode`.
  bool FireBreak(check::BreakMode mode) {
    if (check_break_ != mode || check_breaks_fired_ > 0) return false;
    check_breaks_fired_++;
    return true;
  }

  /// Bumps the reason-labeled abort counter (one branch when metrics off).
  void CountAbortMetric(txn::AbortReason reason) {
    obs::Counter* c = m_aborts_by_reason_[static_cast<size_t>(reason)];
    if (c != nullptr) c->Increment();
  }
};

}  // namespace soap::cluster

#endif  // SOAP_CLUSTER_TRANSACTION_MANAGER_H_
