#include "src/common/flags.h"

#include <cstdlib>

namespace soap {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a flag");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; boolean
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v.empty();
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

std::vector<std::string> Flags::UnconsumedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (consumed_.find(name) == consumed_.end()) unused.push_back(name);
  }
  return unused;
}

}  // namespace soap
