// Minimal command-line flag parsing for the tools: --key=value and
// --key value forms, typed getters with defaults, unknown-flag detection.

#ifndef SOAP_COMMON_FLAGS_H_
#define SOAP_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace soap {

class Flags {
 public:
  /// Parses argv. Flags look like --name=value or --name value; a flag
  /// without a value is boolean true. Non-flag arguments become
  /// positional. Fails on malformed input (e.g. "--" alone or "--=x").
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& name, int64_t fallback = 0) const;
  double GetDouble(const std::string& name, double fallback = 0.0) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of every flag that was parsed, sorted (map order) — the input
  /// to table-driven unknown-flag validation.
  std::vector<std::string> Names() const;

  /// Names of flags that were parsed but never read through a getter —
  /// for catching typos after configuration is consumed.
  std::vector<std::string> UnconsumedFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace soap

#endif  // SOAP_COMMON_FLAGS_H_
