#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

namespace soap {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(uint64_t value) {
  if (value <= 1) return 0;
  return static_cast<size_t>(64 - std::countl_zero(value - 1));
}

uint64_t Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return (1ULL << (bucket - 1)) + 1;
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 1;
  if (bucket >= 64) return UINT64_MAX;
  return 1ULL << bucket;
}

void Histogram::Record(uint64_t value) {
  const size_t b = BucketFor(value);
  assert(b < buckets_.size());
  buckets_[b]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    const uint64_t next = cumulative + buckets_[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(
          std::max(BucketLowerBound(b), min_));
      const double hi = static_cast<double>(std::min(BucketUpperBound(b),
                                                     max_));
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[b]);
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max_;
  return os.str();
}

}  // namespace soap
