// Latency histogram with exponential buckets, in the spirit of RocksDB's
// HistogramImpl: O(1) record, approximate quantiles, mergeable.

#ifndef SOAP_COMMON_HISTOGRAM_H_
#define SOAP_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace soap {

/// Records non-negative integer samples (e.g. latencies in microseconds)
/// into exponentially sized buckets and answers count / mean / min / max /
/// percentile queries. Not thread-safe; each worker keeps its own and
/// merges.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;

  /// Approximate p-quantile (p in [0, 100]); linear interpolation within
  /// the containing bucket.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }

  /// One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

  /// Number of buckets (for tests).
  static constexpr size_t kNumBuckets = 64 + 1;

  /// Raw bucket access for exporters (e.g. Prometheus cumulative
  /// `_bucket` lines): samples in bucket `b` and its inclusive upper
  /// bound (UINT64_MAX for the overflow bucket).
  uint64_t bucket_count(size_t bucket) const { return buckets_[bucket]; }
  static uint64_t BucketUpperBound(size_t bucket);

 private:
  /// Bucket index for a value: bucket b covers [2^(b-1), 2^b) with bucket 0
  /// holding value 0 and 1.
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketLowerBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace soap

#endif  // SOAP_COMMON_HISTOGRAM_H_
