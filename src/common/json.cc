#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace soap::json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

const Value* Value::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double Value::GetDouble(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

uint64_t Value::GetUint64(std::string_view key, uint64_t fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsUint64() : fallback;
}

std::string Value::GetString(std::string_view key,
                             const std::string& fallback) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    Result<Value> v = ParseValue();
    if (!v.ok()) return v;
    SkipWhitespace();
    if (at_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(at_));
  }

  void SkipWhitespace() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  bool Consume(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  Result<Value> ParseValue() {
    if (at_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[at_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value::String(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return Value::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Value::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Value::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++at_;  // '{'
    std::vector<Member> members;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (at_ >= text_.size() || text_[at_] != '"') {
        return Error("expected object key");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      members.emplace_back(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++at_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      SkipWhitespace();
      Result<Value> value = ParseValue();
      if (!value.ok()) return value;
      items.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++at_;  // '"'
    std::string out;
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument(
            "json: raw control character in string at offset " +
            std::to_string(at_ - 1));
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_ >= text_.size()) break;
      const char esc = text_[at_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (at_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("json: bad \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are not recombined; our
          // producers never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Status::InvalidArgument("json: bad escape character");
      }
    }
    return Status::InvalidArgument("json: unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = at_;
    if (Consume('-')) {
    }
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    if (at_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      at_ = start;
      return Error("bad number");
    }
    return Value::Number(d);
  }

  std::string_view text_;
  size_t at_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<std::vector<Value>> ParseLines(std::string_view text) {
  std::vector<Value> out;
  size_t line_number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    ++line_number;
    std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    // Skip blank lines (including a trailing newline's empty tail).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) {
      if (end == text.size()) break;
      continue;
    }
    Result<Value> v = Parse(line);
    if (!v.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + v.status().ToString());
    }
    out.push_back(std::move(v).value());
    if (end == text.size()) break;
  }
  return out;
}

}  // namespace soap::json
