// Minimal JSON support with zero external dependencies: a string escaper
// shared by every JSONL producer (metrics, audit log, timeline) and a
// recursive-descent parser for the offline consumers (soap_report, tests).
// The parser covers the full JSON grammar we emit — objects, arrays,
// strings with escapes, numbers, booleans, null — and rejects everything
// else with a positioned error. Numbers are held as double (every value we
// serialise fits in 53 bits) plus the raw text for exact integer reads.

#ifndef SOAP_COMMON_JSON_H_
#define SOAP_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace soap::json {

/// Escapes a string for inclusion inside JSON double quotes: backslash,
/// quote, and all control characters (\n, \t, ... as short escapes, the
/// rest as \u00XX).
std::string Escape(std::string_view s);

class Value;

/// Object members keep insertion order (deterministic re-serialisation);
/// lookup is linear — our records have at most a couple dozen members.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt64() const { return static_cast<int64_t>(number_); }
  uint64_t AsUint64() const { return static_cast<uint64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::vector<Member>& AsObject() const { return members_; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Typed conveniences over Find with a fallback: the common pattern of
  /// optional record fields.
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  uint64_t GetUint64(std::string_view key, uint64_t fallback = 0) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value String(std::string s);
  static Value Array(std::vector<Value> items);
  static Value Object(std::vector<Member> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> members_;
};

/// Parses exactly one JSON value; trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

/// Parses a JSONL document: one value per non-empty line. The first
/// malformed line fails the whole load, with its 1-based line number in
/// the error message.
Result<std::vector<Value>> ParseLines(std::string_view text);

}  // namespace soap::json

#endif  // SOAP_COMMON_JSON_H_
