#include "src/common/logging.h"

#include <cstdio>
#include <mutex>

namespace soap {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> guard(SinkMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() {
  Logger::Instance().Write(level_, stream_.str());
}

}  // namespace internal

}  // namespace soap
