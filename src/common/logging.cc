#include "src/common/logging.h"

#include <cstdio>
#include <mutex>

namespace soap {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

thread_local Logger::ClockFn Logger::clock_;

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> guard(SinkMutex());
  if (clock_) {
    const int64_t t = clock_();
    std::fprintf(stderr, "[%s] [vt=%lld.%06llds] %s\n", LevelName(level),
                 static_cast<long long>(t / 1'000'000),
                 static_cast<long long>(t % 1'000'000), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Component = the source directory under src/ (or the file's immediate
  // parent), so lines read "[txn] lock_manager.cc:42".
  const char* base = file;
  const char* parent = nullptr;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      parent = base;
      base = p + 1;
    }
  }
  if (parent != nullptr) {
    stream_ << '[';
    for (const char* p = parent; *p != '/'; ++p) stream_ << *p;
    stream_ << "] ";
  }
  stream_ << base << ":" << line << " ";
}

LogMessage::~LogMessage() {
  Logger::Instance().Write(level_, stream_.str());
}

}  // namespace internal

}  // namespace soap
