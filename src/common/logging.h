// Minimal leveled logger. Logging is off by default in benches/tests (level
// kWarn) and can be raised for debugging a simulation run.

#ifndef SOAP_COMMON_LOGGING_H_
#define SOAP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace soap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide log sink writing to stderr. Thread-safe.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

namespace internal {

/// Collects one log line and flushes it to the Logger on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SOAP_LOG(level)                                              \
  if (!::soap::Logger::Instance().Enabled(::soap::LogLevel::level)) \
    ;                                                                \
  else                                                               \
    ::soap::internal::LogMessage(::soap::LogLevel::level, __FILE__, __LINE__)

}  // namespace soap

#endif  // SOAP_COMMON_LOGGING_H_
