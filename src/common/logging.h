// Minimal leveled logger. Logging is off by default in benches/tests (level
// kWarn) and can be raised for debugging a simulation run (`--log_level
// debug` on the tools). When a clock hook is installed (the experiment
// engine injects the simulator's), every line is stamped with the virtual
// time it was emitted at, and each line carries the component (source
// directory) it came from:
//
//   [INFO] [vt=12.345678s] [cluster] transaction_manager.cc:42 ...

#ifndef SOAP_COMMON_LOGGING_H_
#define SOAP_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace soap {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug"/"info"/"warn"/"error" (case-sensitive) to a level; nullopt for
/// anything else. For wiring --log_level flags.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// Process-wide log sink writing to stderr. Thread-safe.
class Logger {
 public:
  /// Returns the current virtual time in microseconds.
  using ClockFn = std::function<int64_t()>;

  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Installs (or, with nullptr, removes) the virtual-time stamp source.
  /// The experiment engine points this at its simulator for the duration
  /// of a run; whoever installs a clock must remove it before the clock's
  /// referent dies. The hook is thread-local: experiments running on
  /// parallel threads (engine::ParallelRunner) each stamp their own lines
  /// with their own simulator's virtual time.
  void set_clock(ClockFn clock) { clock_ = std::move(clock); }

  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  static thread_local ClockFn clock_;
};

namespace internal {

/// Collects one log line and flushes it to the Logger on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink that turns a LogMessage expression into
/// void, so SOAP_LOG can be a single ternary expression.
struct Voidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal

// A single expression (no if/else), so `if (x) SOAP_LOG(...) << ...;
// else ...` binds the else to the user's if instead of silently attaching
// to a hidden one inside the macro.
#define SOAP_LOG(level)                                                 \
  (!::soap::Logger::Instance().Enabled(::soap::LogLevel::level))        \
      ? (void)0                                                         \
      : ::soap::internal::Voidify() &                                   \
            ::soap::internal::LogMessage(::soap::LogLevel::level,       \
                                         __FILE__, __LINE__)

}  // namespace soap

#endif  // SOAP_COMMON_LOGGING_H_
