#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace soap {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int64_t Rng::NextPoisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 500.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double prod = 1.0;
    int64_t k = 0;
    do {
      ++k;
      prod *= NextDouble();
    } while (prod > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double draw = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  return draw < 0.0 ? 0 : static_cast<int64_t>(draw);
}

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(NextUint64(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

// ---------------------------------------------------------------------------
// ZipfSampler (Hörmann & Derflinger rejection-inversion, 1996), following
// the formulation used by Apache Commons RNG's
// RejectionInversionZipfSampler. Ranks are sampled over [1, n] and shifted
// to [0, n) on return.
// ---------------------------------------------------------------------------

namespace {

// Antiderivative H(x) = (x^{1-s} - 1) / (1-s), via expm1 for stability;
// log(x) when s == 1.
double HIntegral(double x, double s) {
  const double log_x = std::log(x);
  if (std::abs(1.0 - s) < 1e-12) return log_x;
  return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

// Inverse of HIntegral: (1 + x*(1-s))^{1/(1-s)}, via log1p; exp(x) at s==1.
double HIntegralInverse(double x, double s) {
  if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
  double t = x * (1.0 - s);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  return std::exp(std::log1p(t) / (1.0 - s));
}

// The density h(x) = x^{-s}.
double HDensity(double x, double s) {
  return std::exp(-s * std::log(x));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  assert(s > 0.0);
  h_x1_ = HIntegral(1.5, s_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_);
  threshold_ =
      2.0 - HIntegralInverse(HIntegral(2.5, s_) - HDensity(2.0, s_), s_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, s_); }

double ZipfSampler::HInverse(double x) const {
  return HIntegralInverse(x, s_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= threshold_ || u >= H(k + 0.5) - HDensity(k, s_)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

double ZipfSampler::Pmf(uint64_t k) const {
  assert(k < n_);
  if (normalizer_ == 0.0) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) sum += std::pow(i, -s_);
    normalizer_ = sum;
  }
  return std::pow(static_cast<double>(k + 1), -s_) / normalizer_;
}

}  // namespace soap
