// Seedable random number generation for workloads and the simulator:
// xoshiro256** as the base engine plus Zipf (rejection-inversion), Poisson,
// uniform and Bernoulli samplers. Everything is deterministic given a seed.

#ifndef SOAP_COMMON_RANDOM_H_
#define SOAP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace soap {

/// xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality 64-bit PRNG.
/// Seeded through SplitMix64 so any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0. Uses Lemire's multiply-shift with
  /// rejection to avoid modulo bias.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a normal approximation above 500 (error far below the
  /// granularity any experiment here can observe).
  int64_t NextPoisson(double mean);

  /// Exponentially distributed duration with the given mean.
  double NextExponential(double mean);

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double NextGaussian();

  /// Fisher–Yates shuffle of [0, n) indices; returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent s, where
/// rank 0 is the most popular item: P(k) ∝ 1 / (k+1)^s.
///
/// Uses Hörmann's rejection-inversion method ("Rejection-inversion to
/// generate variates from monotone discrete distributions", W. Hörmann and
/// G. Derflinger, 1996): O(1) per sample with no O(n) table, which matters
/// for the paper's 23,457-transaction Zipf catalogue and the 500,000-tuple
/// table.
class ZipfSampler {
 public:
  /// n: number of items (> 0); s: exponent (> 0, != 1 handled too).
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the hottest.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Exact probability of rank k under this distribution (O(n) the first
  /// call per sampler to compute the normalizer; for tests).
  double Pmf(uint64_t k) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
  mutable double normalizer_ = 0.0;  // lazily computed for Pmf()
};

}  // namespace soap

#endif  // SOAP_COMMON_RANDOM_H_
