// Result<T>: a value or a Status, in the style of arrow::Result /
// absl::StatusOr. Used by APIs that produce a value but can fail.

#ifndef SOAP_COMMON_RESULT_H_
#define SOAP_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace soap {

/// Holds either a successfully produced T or the Status explaining why no
/// value could be produced. Accessing the value of an errored Result is a
/// programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define SOAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define SOAP_ASSIGN_OR_RETURN(lhs, expr)                                     \
  SOAP_ASSIGN_OR_RETURN_IMPL(SOAP_CONCAT_(_soap_result_, __LINE__), lhs, expr)

#define SOAP_CONCAT_INNER_(a, b) a##b
#define SOAP_CONCAT_(a, b) SOAP_CONCAT_INNER_(a, b)

}  // namespace soap

#endif  // SOAP_COMMON_RESULT_H_
