#include "src/common/series.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <numeric>
#include <sstream>

namespace soap {

double Series::Max() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

double Series::Min() const {
  return values_.empty() ? 0.0
                         : *std::min_element(values_.begin(), values_.end());
}

double Series::Mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Series::TailMean(size_t n) const {
  if (values_.empty()) return 0.0;
  const size_t start = values_.size() > n ? values_.size() - n : 0;
  double sum = 0.0;
  for (size_t i = start; i < values_.size(); ++i) sum += values_[i];
  return sum / static_cast<double>(values_.size() - start);
}

int Series::FirstIndexAtLeast(double threshold) const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] >= threshold) return static_cast<int>(i);
  }
  return -1;
}

Series& SeriesBundle::Add(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return series_[it->second];
  index_[name] = series_.size();
  series_.emplace_back(name);
  return series_.back();
}

Series& SeriesBundle::Insert(const std::string& name, const Series& values) {
  Series& slot = Add(name);
  slot = Series(name);
  for (double v : values.values()) slot.Append(v);
  return slot;
}

const Series* SeriesBundle::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &series_[it->second];
}

std::string SeriesBundle::ToTable(size_t stride) const {
  if (stride == 0) stride = 1;
  std::ostringstream os;
  os << "# " << title_ << "\n";
  os << std::left << std::setw(10) << "interval";
  for (const auto& s : series_) os << std::right << std::setw(16) << s.name();
  os << "\n";
  size_t rows = 0;
  for (const auto& s : series_) rows = std::max(rows, s.size());
  for (size_t i = 0; i < rows; i += stride) {
    os << std::left << std::setw(10) << i;
    for (const auto& s : series_) {
      if (i < s.size()) {
        os << std::right << std::setw(16) << std::fixed
           << std::setprecision(3) << s.at(i);
      } else {
        os << std::right << std::setw(16) << "-";
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string SeriesBundle::ToAsciiChart(size_t height, bool log_scale) const {
  if (height < 2) height = 2;
  size_t cols = 0;
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const auto& s : series_) {
    cols = std::max(cols, s.size());
    for (double v : s.values()) {
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (cols == 0) return "# " + title_ + " (empty)\n";
  auto transform = [&](double v) {
    return log_scale ? std::log10(std::max(v, 1.0)) : v;
  };
  const double t_lo = transform(lo);
  const double t_hi = transform(hi);
  const double span = t_hi - t_lo;

  std::vector<std::string> grid(height, std::string(cols, ' '));
  for (size_t i = 0; i < series_.size(); ++i) {
    const char mark = static_cast<char>('A' + (i % 26));
    const auto& values = series_[i].values();
    for (size_t x = 0; x < values.size(); ++x) {
      double frac =
          span > 0 ? (transform(values[x]) - t_lo) / span : 0.0;
      auto row = static_cast<size_t>(frac * static_cast<double>(height - 1) +
                                     0.5);
      grid[height - 1 - row][x] = mark;
    }
  }

  std::ostringstream os;
  os << "# " << title_ << (log_scale ? " (log scale)" : "") << "\n";
  char label[64];
  for (size_t r = 0; r < height; ++r) {
    const double frac =
        static_cast<double>(height - 1 - r) / static_cast<double>(height - 1);
    double value = log_scale ? std::pow(10.0, t_lo + frac * span)
                             : lo + frac * span;
    std::snprintf(label, sizeof(label), "%12.4g |", value);
    os << label << grid[r] << "\n";
  }
  os << std::string(14, ' ') << std::string(cols, '-') << "\n";
  os << std::string(14, ' ') << "0";
  if (cols > 8) {
    os << std::string(cols - 1 - std::to_string(cols - 1).size(), ' ')
       << (cols - 1);
  }
  os << "  (interval)\n# legend:";
  for (size_t i = 0; i < series_.size(); ++i) {
    os << " " << static_cast<char>('A' + (i % 26)) << "="
       << series_[i].name();
  }
  os << "\n";
  return os.str();
}

Status SeriesBundle::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << "interval";
  for (const auto& s : series_) out << "," << s.name();
  out << "\n";
  size_t rows = 0;
  for (const auto& s : series_) rows = std::max(rows, s.size());
  for (size_t i = 0; i < rows; ++i) {
    out << i;
    for (const auto& s : series_) {
      out << ",";
      if (i < s.size()) out << s.at(i);
    }
    out << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("short write to " + path);
}

}  // namespace soap
