// Named time series used by the experiment engine and the figure benches:
// one value per 20-second interval, printable as the rows the paper plots
// and dumpable to CSV for external plotting.

#ifndef SOAP_COMMON_SERIES_H_
#define SOAP_COMMON_SERIES_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace soap {

/// One per-interval series (e.g. "Hybrid throughput, alpha=100%").
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}

  void Append(double value) { values_.push_back(value); }

  const std::string& name() const { return name_; }
  const std::vector<double>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  double at(size_t i) const { return values_.at(i); }

  double Max() const;
  double Min() const;
  double Mean() const;
  /// Mean of the last `n` points (or all, if fewer).
  double TailMean(size_t n) const;
  /// First index where the series reaches `threshold` (>=), or -1.
  int FirstIndexAtLeast(double threshold) const;

 private:
  std::string name_;
  std::vector<double> values_;
};

/// A bundle of series sharing an x axis (interval number), e.g. one figure
/// panel: five algorithms' throughput curves.
class SeriesBundle {
 public:
  explicit SeriesBundle(std::string title) : title_(std::move(title)) {}

  Series& Add(const std::string& name);
  /// Copies an existing series in under a (possibly different) name.
  Series& Insert(const std::string& name, const Series& values);
  const Series* Find(const std::string& name) const;

  const std::string& title() const { return title_; }
  const std::vector<Series>& series() const { return series_; }

  /// Renders the bundle as an aligned text table: one row per interval,
  /// one column per series. `stride` selects every n-th interval to keep
  /// output readable.
  std::string ToTable(size_t stride = 1) const;

  /// Writes "interval,<name1>,<name2>,..." CSV to the given path.
  Status WriteCsv(const std::string& path) const;

  /// Renders the bundle as an ASCII line chart (one letter per series,
  /// rows = value buckets, columns = intervals) — a terminal rendition of
  /// the paper's figures. `height` rows; `log_scale` for latency panels.
  std::string ToAsciiChart(size_t height = 12, bool log_scale = false) const;

 private:
  std::string title_;
  std::vector<Series> series_;
  std::map<std::string, size_t> index_;
};

}  // namespace soap

#endif  // SOAP_COMMON_SERIES_H_
