#include "src/common/status.h"

namespace soap {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

void Status::Materialize() const {
  switch (lazy_) {
    case LazyMsg::kTuple:
      message_ = "tuple " + std::to_string(lazy_arg_);
      break;
    case LazyMsg::kNone:
      break;
  }
  lazy_ = LazyMsg::kNone;
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message().empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace soap
