// Status: lightweight error signalling without exceptions, in the style of
// RocksDB/Arrow. Every fallible public API in SOAP returns a Status (or a
// Result<T>, see result.h) instead of throwing.

#ifndef SOAP_COMMON_STATUS_H_
#define SOAP_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace soap {

/// Error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kAborted,          ///< transaction aborted (deadlock, timeout, vote-abort)
  kTimedOut,         ///< lock or message wait exceeded its deadline
  kResourceExhausted,///< connection / worker / queue capacity exceeded
  kFailedPrecondition,
  kCorruption,       ///< WAL or storage integrity violation
  kUnavailable,      ///< node or partition not reachable
  kInternal,
};

/// Human-readable name of a StatusCode ("Ok", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: either OK or a code plus message.
///
/// The class is cheap to copy for the OK case (no allocation) and cheap to
/// move always. Use the factory functions (Status::NotFound(...) etc.) to
/// construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// Lazy-message factories for hot miss paths: the "tuple <key>" text is
  /// only assembled if someone actually reads message()/ToString(). A miss
  /// Status that is merely branched on (the common case in the transaction
  /// manager's stale-plan guards) never allocates.
  static Status NotFoundTuple(uint64_t key) {
    return Status(StatusCode::kNotFound, LazyMsg::kTuple, key);
  }
  static Status AlreadyExistsTuple(uint64_t key) {
    return Status(StatusCode::kAlreadyExists, LazyMsg::kTuple, key);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const {
    if (lazy_ != LazyMsg::kNone) Materialize();
    return message_;
  }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message() == other.message();
  }

 private:
  /// Deferred message recipes; kNone means message_ is authoritative.
  enum class LazyMsg : uint8_t { kNone = 0, kTuple };

  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}
  Status(StatusCode code, LazyMsg lazy, uint64_t arg)
      : code_(code), lazy_(lazy), lazy_arg_(arg) {}

  /// Renders the deferred message into message_. Not thread-safe, like the
  /// rest of Status; a Status is owned by one simulation thread.
  void Materialize() const;

  StatusCode code_ = StatusCode::kOk;
  mutable LazyMsg lazy_ = LazyMsg::kNone;
  uint64_t lazy_arg_ = 0;
  mutable std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Mirrors the RocksDB / Arrow
/// RETURN_NOT_OK idiom.
#define SOAP_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::soap::Status _soap_status = (expr);        \
    if (!_soap_status.ok()) return _soap_status; \
  } while (false)

}  // namespace soap

#endif  // SOAP_COMMON_STATUS_H_
