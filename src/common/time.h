// Virtual time types used throughout the simulator. All experiment time is
// virtual: the discrete-event engine advances a 64-bit microsecond clock, so
// the paper's 45-minute EC2 runs replay deterministically in seconds.

#ifndef SOAP_COMMON_TIME_H_
#define SOAP_COMMON_TIME_H_

#include <cstdint>

namespace soap {

/// A point in virtual time, in microseconds since simulation start.
using SimTime = int64_t;

/// A span of virtual time, in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;

constexpr Duration Micros(int64_t n) { return n * kMicrosecond; }
constexpr Duration Millis(int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(int64_t n) { return n * kSecond; }
constexpr Duration Minutes(int64_t n) { return n * kMinute; }

constexpr double ToMillis(Duration d) {
  return static_cast<double>(d) / kMillisecond;
}
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / kSecond;
}

}  // namespace soap

#endif  // SOAP_COMMON_TIME_H_
