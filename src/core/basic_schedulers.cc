#include "src/core/basic_schedulers.h"

namespace soap::core {

namespace {

/// Submits every pending repartition transaction at the given priority,
/// in benefit-density order.
void SubmitAllPending(Scheduler* scheduler, RepartitionRegistry* registry,
                      cluster::TransactionManager* tm,
                      txn::TxnPriority priority) {
  (void)scheduler;
  while (RepartitionTxn* rt = registry->NextPending()) {
    auto t = RepartitionRegistry::MakeTransaction(*rt, priority);
    const txn::TxnId id = tm->Submit(std::move(t));
    registry->MarkSubmitted(rt->rid, id);
  }
}

}  // namespace

void ApplyAllScheduler::OnPlanReady() {
  SubmitAllPending(this, env_.registry, env_.tm, txn::TxnPriority::kHigh);
}

void ApplyAllScheduler::OnTxnComplete(const txn::Transaction& t) {
  // Aborted repartition transactions were reverted to pending by the
  // repartitioner; push them right back at high priority.
  if (t.is_repartition && t.aborted()) {
    SubmitAllPending(this, env_.registry, env_.tm, txn::TxnPriority::kHigh);
  }
}

void AfterAllScheduler::OnPlanReady() {
  SubmitAllPending(this, env_.registry, env_.tm, txn::TxnPriority::kLow);
}

void AfterAllScheduler::OnTxnComplete(const txn::Transaction& t) {
  if (t.is_repartition && t.aborted()) {
    SubmitAllPending(this, env_.registry, env_.tm, txn::TxnPriority::kLow);
  }
}

}  // namespace soap::core
