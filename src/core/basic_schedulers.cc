#include "src/core/basic_schedulers.h"

namespace soap::core {

void ApplyAllScheduler::OnPlanReady() {
  SubmitAllPending(txn::TxnPriority::kHigh);
}

void ApplyAllScheduler::OnTxnComplete(const txn::Transaction& t) {
  // Aborted repartition transactions were reverted to pending by the
  // repartitioner; push them right back at high priority.
  if (t.is_repartition && t.aborted()) {
    SubmitAllPending(txn::TxnPriority::kHigh);
  }
}

void ApplyAllScheduler::OnIntervalTick(const IntervalStats& stats) {
  (void)stats;
  // Retries transactions whose backoff window elapsed (no-op without
  // faults: the pending list empties synchronously on plan-ready/abort).
  SubmitAllPending(txn::TxnPriority::kHigh);
}

void ApplyAllScheduler::OnResume() {
  SubmitAllPending(txn::TxnPriority::kHigh);
}

void AfterAllScheduler::OnPlanReady() {
  SubmitAllPending(txn::TxnPriority::kLow);
}

void AfterAllScheduler::OnTxnComplete(const txn::Transaction& t) {
  if (t.is_repartition && t.aborted()) {
    SubmitAllPending(txn::TxnPriority::kLow);
  }
}

void AfterAllScheduler::OnIntervalTick(const IntervalStats& stats) {
  (void)stats;
  SubmitAllPending(txn::TxnPriority::kLow);
}

void AfterAllScheduler::OnResume() {
  SubmitAllPending(txn::TxnPriority::kLow);
}

}  // namespace soap::core
