// The two baseline strategies of §3.2.
//
// ApplyAll: submit every repartition transaction immediately with a
// priority higher than the normal transactions — fastest deployment,
// pauses normal processing.
//
// AfterAll: submit everything with a priority lower than the normal
// transactions — repartitioning only uses idle capacity (the Sword-style
// lazy strategy), so it can starve under high load.

#ifndef SOAP_CORE_BASIC_SCHEDULERS_H_
#define SOAP_CORE_BASIC_SCHEDULERS_H_

#include "src/core/scheduler.h"

namespace soap::core {

class ApplyAllScheduler : public Scheduler {
 public:
  std::string_view name() const override { return "ApplyAll"; }
  void OnPlanReady() override;
  void OnTxnComplete(const txn::Transaction& t) override;
  void OnIntervalTick(const IntervalStats& stats) override;
  void OnResume() override;
};

class AfterAllScheduler : public Scheduler {
 public:
  std::string_view name() const override { return "AfterAll"; }
  void OnPlanReady() override;
  void OnTxnComplete(const txn::Transaction& t) override;
  void OnIntervalTick(const IntervalStats& stats) override;
  void OnResume() override;
};

}  // namespace soap::core

#endif  // SOAP_CORE_BASIC_SCHEDULERS_H_
