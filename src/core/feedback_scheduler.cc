#include "src/core/feedback_scheduler.h"

#include <algorithm>
#include <cmath>

namespace soap::core {

FeedbackScheduler::FeedbackScheduler(FeedbackConfig config)
    : config_(config), pid_(config.gains) {
  // The output is a work ratio; negative makes no sense and the cap
  // bounds the top anyway. 4x normal work is a generous ceiling.
  pid_.SetOutputLimits(0.0, 4.0);
}

void FeedbackScheduler::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_p_term_ = nullptr;
    m_i_term_ = nullptr;
    m_d_term_ = nullptr;
    m_error_ = nullptr;
    m_output_ = nullptr;
    m_scheduled_ = nullptr;
    m_promotions_ = nullptr;
    return;
  }
  m_p_term_ = registry->GetGauge("soap_pid_p_term");
  m_i_term_ = registry->GetGauge("soap_pid_i_term");
  m_d_term_ = registry->GetGauge("soap_pid_d_term");
  m_error_ = registry->GetGauge("soap_pid_error");
  m_output_ = registry->GetGauge("soap_pid_output");
  m_scheduled_ = registry->GetCounter("soap_feedback_scheduled_txns_total");
  m_promotions_ = registry->GetCounter("soap_feedback_promotions_total");
}

void FeedbackScheduler::OnPlanReady() {
  pid_.Reset();
  scheduled_work_since_tick_ = 0.0;
  if (env_.registry->size() > 0) {
    double total_cost = 0.0;
    double total_op_cost = 0.0;
    size_t total_ops = 0;
    for (uint64_t rid = 1; rid <= env_.registry->size(); ++rid) {
      const RepartitionTxn* rt = env_.registry->Get(rid);
      total_cost += rt->cost;
      for (const repartition::RepartitionOp& op : rt->ops) {
        total_op_cost +=
            static_cast<double>(env_.cost_model->PiggybackedOpCost(op));
        ++total_ops;
      }
    }
    avg_rep_cost_ =
        std::max(1.0, total_cost / static_cast<double>(env_.registry->size()));
    if (total_ops > 0) {
      avg_piggyback_op_cost_ =
          std::max(1.0, total_op_cost / static_cast<double>(total_ops));
    }
  }
  RefillLowWindow();
}

void FeedbackScheduler::RefillLowWindow() {
  // Drop entries whose transactions already left the queue (dispatched,
  // committed or promoted): their registry state moved past kSubmitted or
  // their carrier changed.
  while (!low_queue_.empty()) {
    const auto& [rid, carrier] = low_queue_.front();
    const RepartitionTxn* rt = env_.registry->Get(rid);
    if (rt != nullptr && rt->state == RepartitionTxn::State::kSubmitted &&
        rt->carrier == carrier) {
      break;
    }
    low_queue_.pop_front();
  }
  if (paused()) return;
  // Fill from the COLD end of the ranked list: idle capacity is best
  // spent on data that transactions rarely visit (§3.5), and claiming the
  // hot head here would lock it away from the piggyback module and the
  // controller while the transaction sits at low priority.
  while (low_queue_.size() < config_.low_priority_window) {
    RepartitionTxn* rt = env_.registry->LastPending(Now());
    if (rt == nullptr) break;
    auto t =
        RepartitionRegistry::MakeTransaction(*rt, txn::TxnPriority::kLow);
    const txn::TxnId id = env_.tm->Submit(std::move(t));
    env_.registry->MarkSubmitted(rt->rid, id);
    low_queue_.emplace_back(rt->rid, id);
  }
}

uint32_t FeedbackScheduler::ScheduleAtNormalPriority(uint32_t n) {
  if (paused()) return 0;
  uint32_t scheduled = 0;
  // Submit the densest pending transactions at normal priority — the
  // ranked order of Algorithm 1.
  while (scheduled < n) {
    RepartitionTxn* rt = env_.registry->NextPending(Now());
    if (rt == nullptr) break;
    if (!SubmitPending(rt, txn::TxnPriority::kNormal)) break;
    scheduled_work_since_tick_ += rt->cost;
    ++scheduled;
    ++submitted_normal_priority_total_;
  }
  // If the pending pool is exhausted, promote queued low-priority ones
  // (the repartitioner "manipulates the processing queue", §2.2); the
  // back of the cold-first window holds the densest of them.
  while (scheduled < n && !low_queue_.empty()) {
    const auto [rid, carrier] = low_queue_.back();
    low_queue_.pop_back();
    const RepartitionTxn* rt = env_.registry->Get(rid);
    if (rt == nullptr || rt->state != RepartitionTxn::State::kSubmitted ||
        rt->carrier != carrier) {
      continue;  // stale entry
    }
    if (env_.tm->PromoteQueued(carrier, txn::TxnPriority::kNormal)) {
      ++scheduled;
      ++promoted_total_;
      if (m_promotions_) m_promotions_->Increment();
      scheduled_work_since_tick_ += rt->cost;
    }
    // If promotion failed the transaction is already executing; it no
    // longer occupies the low window either way.
  }
  if (m_scheduled_) m_scheduled_->Increment(scheduled);
  return scheduled;
}

void FeedbackScheduler::OnIntervalTick(const IntervalStats& stats) {
  if (Finished()) return;
  const double dt = ToSeconds(stats.length);
  if (dt <= 0.0) return;
  // PV: work this module scheduled since the last tick plus the
  // piggybacked work actually applied (the §3.5 coupling), relative to
  // the normal work processed. See the header for why scheduled — not
  // executed — standalone work enters the loop.
  const double piggy_work = static_cast<double>(stats.piggybacked_ops_applied) *
                            avg_piggyback_op_cost_;
  const double normal_work =
      std::max(1.0, static_cast<double>(stats.normal_work));
  const double pv = (scheduled_work_since_tick_ + piggy_work) / normal_work;
  scheduled_work_since_tick_ = 0.0;
  const double setpoint = config_.sp - 1.0;
  const double u = pid_.Update(setpoint - pv, dt);
  last_output_ = u;
  if (m_output_) {
    m_error_->Set(setpoint - pv);
    m_p_term_->Set(pid_.last_p_term());
    m_i_term_->Set(pid_.last_i_term());
    m_d_term_->Set(pid_.last_d_term());
    m_output_->Set(u);
  }

  // Translate the commanded work ratio into a transaction count for the
  // coming interval, bounded by the per-interval cap.
  const double target_work =
      u * std::max<double>(static_cast<double>(stats.normal_work), 0.0);
  auto n = static_cast<uint32_t>(
      std::clamp(std::floor(target_work / avg_rep_cost_), 0.0,
                 static_cast<double>(config_.max_txns_per_interval)));
  ScheduleAtNormalPriority(n);
  RefillLowWindow();
}

void FeedbackScheduler::OnTxnComplete(const txn::Transaction& t) {
  if (t.is_repartition) {
    // Keep idle capacity covered; aborted ones (now pending again) will be
    // reconsidered by the next tick or this refill.
    RefillLowWindow();
  }
}

void FeedbackScheduler::OnResume() { RefillLowWindow(); }

}  // namespace soap::core
