// Feedback-based scheduling (§3.3): AfterAll's low-priority stream plus a
// PID-controlled number of "high-priority" repartition transactions (same
// priority as normal transactions) per interval. The controller stabilises
// the ratio of repartition work to normal work at the setpoint; a hard
// per-interval cap bounds the damage while the controller settles.

#ifndef SOAP_CORE_FEEDBACK_SCHEDULER_H_
#define SOAP_CORE_FEEDBACK_SCHEDULER_H_

#include <deque>
#include <utility>

#include "src/core/pid_controller.h"
#include "src/core/scheduler.h"

namespace soap::core {

struct FeedbackConfig {
  /// Table 1's SP: target ratio of total (normal + repartition) cost to
  /// normal cost. The controller's internal setpoint is sp - 1 (the
  /// repartition/normal work ratio).
  double sp = 1.05;
  PidGains gains{1.0, 0.0, 0.0};  ///< the paper's Kp=1, Ki=0, Kd=0
  /// Hard cap on repartition transactions enforced per interval (§3.3,
  /// last paragraph).
  uint32_t max_txns_per_interval = 200;
  /// How many low-priority (AfterAll-style) repartition transactions are
  /// kept in the processing queue at any time.
  uint32_t low_priority_window = 32;
};

class FeedbackScheduler : public Scheduler {
 public:
  explicit FeedbackScheduler(FeedbackConfig config = {});

  std::string_view name() const override { return "Feedback"; }
  void OnPlanReady() override;
  void OnIntervalTick(const IntervalStats& stats) override;
  void OnTxnComplete(const txn::Transaction& t) override;
  void OnResume() override;
  /// Exports the controller internals: soap_pid_{p,i,d}_term,
  /// soap_pid_error, soap_pid_output (gauges, refreshed each tick) and
  /// soap_feedback_scheduled_txns_total / soap_feedback_promotions_total.
  void BindMetrics(obs::MetricsRegistry* registry) override;

  const FeedbackConfig& config() const { return config_; }
  /// Last controller output (repartition/normal work ratio commanded).
  double last_output() const { return last_output_; }
  uint64_t promoted_total() const { return promoted_total_; }
  uint64_t submitted_normal_priority_total() const {
    return submitted_normal_priority_total_;
  }

 private:
  /// Keeps the low-priority window full (oldest entries are the densest).
  void RefillLowWindow();
  /// Schedules up to `n` repartition transactions at normal priority:
  /// first by promoting queued low-priority ones, then by submitting
  /// fresh pending ones. Returns how many were scheduled.
  uint32_t ScheduleAtNormalPriority(uint32_t n);

  FeedbackConfig config_;
  PidController pid_;
  double avg_rep_cost_ = 1.0;      // microseconds, from the ranked registry
  double avg_piggyback_op_cost_ = 1.0;  // microseconds per plan unit
  /// Cost of the standalone transactions scheduled since the last tick.
  /// The PV is built from *scheduled* work (plus piggybacked applied
  /// work): with a deep backlog, scheduled transactions execute much
  /// later, and controlling on executed work would put that queueing
  /// delay inside the control loop as dead time, destabilising it.
  double scheduled_work_since_tick_ = 0.0;
  double last_output_ = 0.0;
  uint64_t promoted_total_ = 0;
  uint64_t submitted_normal_priority_total_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Gauge* m_p_term_ = nullptr;
  obs::Gauge* m_i_term_ = nullptr;
  obs::Gauge* m_d_term_ = nullptr;
  obs::Gauge* m_error_ = nullptr;
  obs::Gauge* m_output_ = nullptr;
  obs::Counter* m_scheduled_ = nullptr;
  obs::Counter* m_promotions_ = nullptr;
  /// (rid, carrier TM id) of transactions sitting at low priority.
  std::deque<std::pair<uint64_t, txn::TxnId>> low_queue_;
};

}  // namespace soap::core

#endif  // SOAP_CORE_FEEDBACK_SCHEDULER_H_
