// Hybrid scheduling (§3.5): the piggyback module plus the feedback module
// over one shared registry. The feedback controller's PV counts both the
// standalone repartition transactions and the piggybacked operations (the
// node-work attribution does this automatically), so when piggybacking
// covers more of the plan the controller submits fewer transactions, and
// vice versa.

#ifndef SOAP_CORE_HYBRID_SCHEDULER_H_
#define SOAP_CORE_HYBRID_SCHEDULER_H_

#include "src/core/feedback_scheduler.h"
#include "src/core/piggyback_scheduler.h"
#include "src/core/scheduler.h"

namespace soap::core {

struct HybridConfig {
  FeedbackConfig feedback;
  PiggybackConfig piggyback;
};

class HybridScheduler : public Scheduler {
 public:
  explicit HybridScheduler(HybridConfig config = {})
      : feedback_(config.feedback), piggyback_(config.piggyback) {}

  std::string_view name() const override { return "Hybrid"; }

  void OnPlanReady() override {
    feedback_.Bind(env_);
    piggyback_.Bind(env_);
    feedback_.OnPlanReady();
  }
  void OnIntervalTick(const IntervalStats& stats) override {
    feedback_.OnIntervalTick(stats);
  }
  void OnNormalTxnSubmission(txn::Transaction* t) override {
    piggyback_.OnNormalTxnSubmission(t);
  }
  void OnTxnComplete(const txn::Transaction& t) override {
    feedback_.OnTxnComplete(t);
  }
  void BindMetrics(obs::MetricsRegistry* registry) override {
    feedback_.BindMetrics(registry);
    piggyback_.BindMetrics(registry);
  }
  // The children hold their own pause flags; forward so a fault-layer
  // pause reaches both modules.
  void set_paused(bool paused) override {
    Scheduler::set_paused(paused);
    feedback_.set_paused(paused);
    piggyback_.set_paused(paused);
  }
  void OnResume() override { feedback_.OnResume(); }

  const FeedbackScheduler& feedback() const { return feedback_; }
  const PiggybackScheduler& piggyback() const { return piggyback_; }

 private:
  FeedbackScheduler feedback_;
  PiggybackScheduler piggyback_;
};

}  // namespace soap::core

#endif  // SOAP_CORE_HYBRID_SCHEDULER_H_
