#include "src/core/pid_controller.h"

#include <algorithm>
#include <cassert>

namespace soap::core {

void PidController::SetOutputLimits(double lo, double hi) {
  assert(lo <= hi);
  out_lo_ = lo;
  out_hi_ = hi;
}

double PidController::Update(double error, double dt) {
  assert(dt > 0.0);
  const double proposed_integral = integral_ + error * dt;
  double derivative = 0.0;
  if (last_error_.has_value()) {
    derivative = (error - *last_error_) / dt;
  }
  last_error_ = error;

  last_p_ = gains_.kp * error;
  last_i_ = gains_.ki * proposed_integral;
  last_d_ = gains_.kd * derivative;
  double u = last_p_ + last_i_ + last_d_;

  if (out_lo_.has_value() || out_hi_.has_value()) {
    const double lo = out_lo_.value_or(u);
    const double hi = out_hi_.value_or(u);
    const double clamped = std::clamp(u, lo, hi);
    // Anti-windup: only absorb the integral step while unsaturated, or
    // when it drives the output back toward the allowed range.
    if (clamped == u || (u > hi && error < 0.0) || (u < lo && error > 0.0)) {
      integral_ = proposed_integral;
    }
    last_output_ = clamped;
    return clamped;
  }
  integral_ = proposed_integral;
  last_output_ = u;
  return u;
}

void PidController::Reset() {
  integral_ = 0.0;
  last_error_.reset();
  last_p_ = 0.0;
  last_i_ = 0.0;
  last_d_ = 0.0;
  last_output_ = 0.0;
}

}  // namespace soap::core
