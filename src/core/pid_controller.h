// Discrete PID controller (§3.3, eq. 1):
//   u(t) = Kp e(t) + Ki ∫ e dτ + Kd de/dt
// with the Ziegler–Nichols [19] tuning rules the paper references. The
// feedback scheduler samples once per 20-second interval.

#ifndef SOAP_CORE_PID_CONTROLLER_H_
#define SOAP_CORE_PID_CONTROLLER_H_

#include <optional>

namespace soap::core {

struct PidGains {
  double kp = 1.0;
  double ki = 0.0;
  double kd = 0.0;
};

/// Ziegler–Nichols closed-loop tuning: given the ultimate gain Ku (the
/// proportional gain at which the loop oscillates steadily) and the
/// oscillation period Tu, produce gains for the chosen controller type.
struct ZieglerNichols {
  static PidGains P(double ku) { return {0.5 * ku, 0.0, 0.0}; }
  static PidGains PI(double ku, double tu) {
    return {0.45 * ku, 0.54 * ku / tu, 0.0};
  }
  static PidGains Classic(double ku, double tu) {
    return {0.6 * ku, 1.2 * ku / tu, 0.075 * ku * tu};
  }
};

/// Textbook discrete PID with optional output clamping and anti-windup
/// (integration pauses while the output saturates).
class PidController {
 public:
  explicit PidController(PidGains gains) : gains_(gains) {}

  void set_gains(PidGains gains) { gains_ = gains; }
  const PidGains& gains() const { return gains_; }

  /// Clamps the output to [lo, hi] and enables anti-windup.
  void SetOutputLimits(double lo, double hi);

  /// One control step: `error` = SP - PV, `dt` = seconds since the last
  /// step. Returns the controller output u.
  double Update(double error, double dt);

  void Reset();

  double integral() const { return integral_; }
  double last_error() const { return last_error_.value_or(0.0); }

  /// Individual terms of the last Update (pre-clamp decomposition of u):
  /// what the observability layer exports as soap_pid_{p,i,d}_term.
  double last_p_term() const { return last_p_; }
  double last_i_term() const { return last_i_; }
  double last_d_term() const { return last_d_; }
  double last_output() const { return last_output_; }

 private:
  PidGains gains_;
  double integral_ = 0.0;
  std::optional<double> last_error_;
  std::optional<double> out_lo_;
  std::optional<double> out_hi_;
  double last_p_ = 0.0;
  double last_i_ = 0.0;
  double last_d_ = 0.0;
  double last_output_ = 0.0;
};

}  // namespace soap::core

#endif  // SOAP_CORE_PID_CONTROLLER_H_
