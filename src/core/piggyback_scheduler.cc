#include "src/core/piggyback_scheduler.h"

namespace soap::core {

void PiggybackScheduler::OnNormalTxnSubmission(txn::Transaction* t) {
  if (paused()) return;
  if (t->is_repartition || t->has_piggyback()) return;
  RepartitionTxn* rt =
      env_.registry->FindPendingByTemplate(t->template_id, Now());
  if (rt == nullptr) return;
  if (rt->ops.size() > config_.max_ops_per_carrier) return;
  RepartitionRegistry::InjectInto(*rt, t);
  env_.registry->MarkPiggybacked(rt->rid, /*carrier=*/0);
  ++injections_;
}

}  // namespace soap::core
