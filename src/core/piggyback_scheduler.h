// Piggyback-based scheduling (§3.4, Algorithm 2): repartition operations
// ride on incoming normal transactions that access the same objects,
// sharing their locks and commit — repartition-on-demand. Carriers that
// abort are resubmitted without the piggybacked operations (lines 13-15)
// and the repartition transaction returns to the pending pool.

#ifndef SOAP_CORE_PIGGYBACK_SCHEDULER_H_
#define SOAP_CORE_PIGGYBACK_SCHEDULER_H_

#include "src/core/scheduler.h"

namespace soap::core {

struct PiggybackConfig {
  /// Maximum repartition operations (plan units) injected into one normal
  /// transaction (§3.4: limiting unnecessary aborts from overlong
  /// carriers).
  uint32_t max_ops_per_carrier = 4;
};

class PiggybackScheduler : public Scheduler {
 public:
  explicit PiggybackScheduler(PiggybackConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "Piggyback"; }
  void OnNormalTxnSubmission(txn::Transaction* t) override;

  const PiggybackConfig& config() const { return config_; }
  uint64_t injections() const { return injections_; }

 private:
  PiggybackConfig config_;
  uint64_t injections_ = 0;
};

}  // namespace soap::core

#endif  // SOAP_CORE_PIGGYBACK_SCHEDULER_H_
