#include "src/core/repartition_txn.h"

#include <algorithm>
#include <cassert>

#include "src/sim/simulator.h"

namespace soap::core {

void RepartitionRegistry::Init(std::vector<RepartitionTxn> ranked) {
  txns_ = std::move(ranked);
  pending_.clear();
  by_template_.clear();
  total_ops_ = 0;
  done_count_ = 0;
  for (size_t i = 0; i < txns_.size(); ++i) {
    RepartitionTxn& rt = txns_[i];
    rt.rid = i + 1;
    rt.state = RepartitionTxn::State::kPending;
    total_ops_ += rt.ops.size();
    pending_.insert({rt.density, rt.rid});
    by_template_[rt.beneficiary_template] = rt.rid;
  }
}

RepartitionTxn* RepartitionRegistry::Get(uint64_t rid) {
  if (rid == 0 || rid > txns_.size()) return nullptr;
  return &txns_[rid - 1];
}

const RepartitionTxn* RepartitionRegistry::Get(uint64_t rid) const {
  if (rid == 0 || rid > txns_.size()) return nullptr;
  return &txns_[rid - 1];
}

RepartitionTxn* RepartitionRegistry::NextPending() {
  if (pending_.empty()) return nullptr;
  return Get(pending_.begin()->rid);
}

RepartitionTxn* RepartitionRegistry::LastPending() {
  if (pending_.empty()) return nullptr;
  return Get(pending_.rbegin()->rid);
}

RepartitionTxn* RepartitionRegistry::NextPending(SimTime now) {
  for (const RankOrder& rank : pending_) {
    RepartitionTxn* rt = Get(rank.rid);
    if (rt->not_before <= now) return rt;
  }
  return nullptr;
}

RepartitionTxn* RepartitionRegistry::LastPending(SimTime now) {
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    RepartitionTxn* rt = Get(it->rid);
    if (rt->not_before <= now) return rt;
  }
  return nullptr;
}

RepartitionTxn* RepartitionRegistry::FindPendingByTemplate(
    uint32_t template_id) {
  auto it = by_template_.find(template_id);
  if (it == by_template_.end()) return nullptr;
  RepartitionTxn* rt = Get(it->second);
  if (rt == nullptr || rt->state != RepartitionTxn::State::kPending) {
    return nullptr;
  }
  return rt;
}

RepartitionTxn* RepartitionRegistry::FindPendingByTemplate(
    uint32_t template_id, SimTime now) {
  RepartitionTxn* rt = FindPendingByTemplate(template_id);
  if (rt == nullptr || rt->not_before > now) return nullptr;
  return rt;
}

void RepartitionRegistry::BindAudit(obs::AuditLog* audit,
                                    const sim::Simulator* sim) {
  audit_ = audit;
  sim_ = sim;
}

void RepartitionRegistry::AuditDeploy(const char* event,
                                      const RepartitionTxn& rt) {
  if (audit_ == nullptr) return;
  const SimTime now = sim_ != nullptr ? sim_->Now() : 0;
  obs::AuditRecord rec(audit_, "deploy", now);
  rec.Str("event", event)
      .U64("plan", audit_round_)
      .U64("rid", rt.rid)
      .U64("txn", rt.carrier)
      .U64("attempt", rt.attempts)
      .U64("ops", rt.ops.size());
  if (rt.first_submitted_at > 0) {
    rec.I64("latency_us", now - rt.first_submitted_at);
  }
}

void RepartitionRegistry::MarkSubmitted(uint64_t rid, txn::TxnId carrier) {
  RepartitionTxn* rt = Get(rid);
  assert(rt != nullptr && rt->state == RepartitionTxn::State::kPending);
  pending_.erase({rt->density, rt->rid});
  rt->state = RepartitionTxn::State::kSubmitted;
  rt->carrier = carrier;
  rt->attempts++;
  if (rt->first_submitted_at == 0 && sim_ != nullptr) {
    rt->first_submitted_at = sim_->Now();
  }
  AuditDeploy("submit", *rt);
}

void RepartitionRegistry::MarkPiggybacked(uint64_t rid, txn::TxnId carrier) {
  RepartitionTxn* rt = Get(rid);
  assert(rt != nullptr && rt->state == RepartitionTxn::State::kPending);
  pending_.erase({rt->density, rt->rid});
  rt->state = RepartitionTxn::State::kPiggybacked;
  rt->carrier = carrier;
  rt->attempts++;
  if (rt->first_submitted_at == 0 && sim_ != nullptr) {
    rt->first_submitted_at = sim_->Now();
  }
  AuditDeploy("piggyback", *rt);
}

void RepartitionRegistry::MarkDone(uint64_t rid) {
  RepartitionTxn* rt = Get(rid);
  assert(rt != nullptr);
  if (rt->state == RepartitionTxn::State::kDone) return;
  if (rt->state == RepartitionTxn::State::kPending) {
    pending_.erase({rt->density, rt->rid});
  }
  AuditDeploy("apply", *rt);
  rt->state = RepartitionTxn::State::kDone;
  rt->carrier = 0;
  done_count_++;
}

void RepartitionRegistry::MarkPending(uint64_t rid) {
  RepartitionTxn* rt = Get(rid);
  assert(rt != nullptr && rt->state != RepartitionTxn::State::kDone);
  // Audited only as a *retry* (submitted/piggybacked -> pending after an
  // abort); the initial Init() transition never lands here.
  if (rt->state != RepartitionTxn::State::kPending) {
    AuditDeploy("retry", *rt);
    pending_.insert({rt->density, rt->rid});
  }
  rt->state = RepartitionTxn::State::kPending;
  rt->carrier = 0;
}

namespace {

void AppendOps(const RepartitionTxn& rt, std::vector<txn::Operation>* out) {
  // Lock acquisition follows operation order; emitting plan units sorted
  // by key puts every transaction in the system — normal transactions
  // take their commit locks in sorted key order too — under one global
  // lock order, which prevents deadlocks between carriers, repartition
  // transactions and normal commits.
  std::vector<const repartition::PlacementAction*> ordered;
  ordered.reserve(rt.ops.size());
  for (const repartition::PlacementAction& op : rt.ops) ordered.push_back(&op);
  std::sort(ordered.begin(), ordered.end(),
            [](const repartition::PlacementAction* a,
               const repartition::PlacementAction* b) {
              return a->key < b->key;
            });
  for (const repartition::PlacementAction* op_ptr : ordered) {
    const repartition::PlacementAction& op = *op_ptr;
    switch (op.kind) {
      case repartition::PlacementKind::kMigrate: {
        txn::Operation insert;
        insert.kind = txn::OpKind::kMigrateInsert;
        insert.key = op.key;
        insert.source_partition = op.source_partition;
        insert.target_partition = op.target_partition;
        insert.repartition_op_id = op.id;
        out->push_back(insert);
        txn::Operation erase;
        erase.kind = txn::OpKind::kMigrateDelete;
        erase.key = op.key;
        erase.source_partition = op.source_partition;
        erase.target_partition = op.target_partition;
        erase.repartition_op_id = op.id;
        out->push_back(erase);
        break;
      }
      case repartition::PlacementKind::kReplicaCreate: {
        txn::Operation create;
        create.kind = txn::OpKind::kReplicaCreate;
        create.key = op.key;
        create.source_partition = op.source_partition;
        create.target_partition = op.target_partition;
        create.repartition_op_id = op.id;
        out->push_back(create);
        break;
      }
      case repartition::PlacementKind::kReplicaDrop: {
        txn::Operation del;
        del.kind = txn::OpKind::kReplicaDelete;
        del.key = op.key;
        del.source_partition = op.source_partition;
        del.repartition_op_id = op.id;
        out->push_back(del);
        break;
      }
      case repartition::PlacementKind::kLeaderShift: {
        txn::Operation shift;
        shift.kind = txn::OpKind::kLeaderShift;
        shift.key = op.key;
        shift.source_partition = op.source_partition;
        shift.target_partition = op.target_partition;
        shift.repartition_op_id = op.id;
        out->push_back(shift);
        break;
      }
    }
  }
}

}  // namespace

std::unique_ptr<txn::Transaction> RepartitionRegistry::MakeTransaction(
    const RepartitionTxn& rt, txn::TxnPriority priority) {
  auto t = std::make_unique<txn::Transaction>();
  t->is_repartition = true;
  t->priority = priority;
  t->template_id = rt.beneficiary_template;
  t->piggyback_source = rt.rid;  // registry back-pointer
  AppendOps(rt, &t->ops);
  return t;
}

void RepartitionRegistry::InjectInto(const RepartitionTxn& rt,
                                     txn::Transaction* t) {
  assert(!t->is_repartition);
  t->piggyback_source = rt.rid;
  AppendOps(rt, &t->piggyback_ops);
}

}  // namespace soap::core
