// Repartition transactions (§3.1) and their registry. Algorithm 1 groups
// the plan's operations into one transaction per benefiting normal
// transaction template, ranks them by benefit density, and every scheduler
// draws from this shared registry (the paper's LRep list + TRep map).

#ifndef SOAP_CORE_REPARTITION_TXN_H_
#define SOAP_CORE_REPARTITION_TXN_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/obs/audit_log.h"
#include "src/repartition/operation.h"
#include "src/txn/transaction.h"

namespace soap::sim {
class Simulator;
}  // namespace soap::sim

namespace soap::core {

/// One packaged repartition transaction r_i.
struct RepartitionTxn {
  enum class State : uint8_t {
    kPending,      ///< not yet scheduled anywhere
    kSubmitted,    ///< standalone transaction in the TM (any priority)
    kPiggybacked,  ///< riding on a normal transaction (§3.4)
    kDone,         ///< committed; ops applied
  };

  uint64_t rid = 0;  ///< registry id, 1-based
  /// The normal transaction template that benefits (Algorithm 1's t_i).
  uint32_t beneficiary_template = 0;
  std::vector<repartition::RepartitionOp> ops;
  double benefit = 0.0;   ///< T_benefit value for the group
  double cost = 0.0;      ///< Cost(r_i, O), node-work microseconds
  double density = 0.0;   ///< benefit / cost (cpr_i)
  State state = State::kPending;
  /// TM transaction id of the in-flight realisation (standalone txn or
  /// piggyback carrier), 0 when pending/done.
  txn::TxnId carrier = 0;
  uint32_t attempts = 0;
  /// Fault-aware retry state: a failed attempt re-ranks the transaction
  /// into the pending list but holds it back until `not_before` (set by
  /// the repartitioner's exponential backoff; 0 = immediately eligible).
  SimTime not_before = 0;
  uint32_t failures = 0;
  /// Virtual time of the first submit/piggyback attempt (0 = never tried);
  /// the audit log's apply-latency baseline.
  SimTime first_submitted_at = 0;
};

/// Owns the ranked list; hands out pending transactions in density order
/// and tracks their life cycle. Shared by the hybrid scheduler's piggyback
/// and feedback modules.
class RepartitionRegistry {
 public:
  RepartitionRegistry() = default;

  /// Takes the ranked output of Algorithm 1 (density descending).
  void Init(std::vector<RepartitionTxn> ranked);

  size_t size() const { return txns_.size(); }
  bool empty() const { return txns_.empty(); }
  size_t total_ops() const { return total_ops_; }
  size_t pending_count() const { return pending_.size(); }
  size_t done_count() const { return done_count_; }
  bool AllDone() const { return done_count_ == txns_.size(); }

  RepartitionTxn* Get(uint64_t rid);
  const RepartitionTxn* Get(uint64_t rid) const;

  /// Highest-density pending transaction, or nullptr (the head of LRep).
  RepartitionTxn* NextPending();

  /// Lowest-density pending transaction, or nullptr (the tail of LRep) —
  /// the cold data an idle-time filler should move first, leaving the hot
  /// head available for piggybacking and controller-paced scheduling.
  RepartitionTxn* LastPending();

  /// The pending repartition transaction benefiting `template_id`
  /// (Algorithm 2's TRep lookup); nullptr if none or not pending.
  RepartitionTxn* FindPendingByTemplate(uint32_t template_id);

  /// Backoff-aware variants: skip pending transactions still held back by
  /// a retry delay (rt->not_before > now).
  RepartitionTxn* NextPending(SimTime now);
  RepartitionTxn* LastPending(SimTime now);
  RepartitionTxn* FindPendingByTemplate(uint32_t template_id, SimTime now);

  /// State transitions. MarkPending is the abort path (resubmission).
  /// Every transition emits one `deploy` audit record when a log is bound
  /// — the registry is the single choke point all five schedulers go
  /// through, so the audit trail covers every strategy uniformly.
  void MarkSubmitted(uint64_t rid, txn::TxnId carrier);
  void MarkPiggybacked(uint64_t rid, txn::TxnId carrier);
  void MarkDone(uint64_t rid);
  void MarkPending(uint64_t rid);

  /// Attaches the deployment audit log; `sim` supplies virtual
  /// timestamps. nullptr detaches.
  void BindAudit(obs::AuditLog* audit, const sim::Simulator* sim);

  /// The plan/round id stamped on subsequent deploy records (the
  /// repartitioner sets it when a round starts).
  void set_audit_round(uint64_t round) { audit_round_ = round; }

  /// Builds the executable form of a repartition transaction: one
  /// MigrateInsert+MigrateDelete pair per migration unit (etc.), tagged
  /// with plan-unit ids for RepRate accounting.
  static std::unique_ptr<txn::Transaction> MakeTransaction(
      const RepartitionTxn& rt, txn::TxnPriority priority);

  /// Appends `rt`'s operations to a normal transaction's piggyback list
  /// (Algorithm 2 line 5).
  static void InjectInto(const RepartitionTxn& rt, txn::Transaction* t);

 private:
  /// Rank index ordered by (density desc, rid asc) for NextPending.
  struct RankOrder {
    double density;
    uint64_t rid;
    bool operator<(const RankOrder& other) const {
      if (density != other.density) return density > other.density;
      return rid < other.rid;
    }
  };

  /// Emits one `deploy` record; no-op when no log is bound.
  void AuditDeploy(const char* event, const RepartitionTxn& rt);

  std::vector<RepartitionTxn> txns_;  // index = rid - 1
  std::set<RankOrder> pending_;
  std::unordered_map<uint32_t, uint64_t> by_template_;
  size_t total_ops_ = 0;
  size_t done_count_ = 0;
  // Deployment audit sink; nullptr when observability is off.
  obs::AuditLog* audit_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
  uint64_t audit_round_ = 0;
};

}  // namespace soap::core

#endif  // SOAP_CORE_REPARTITION_TXN_H_
