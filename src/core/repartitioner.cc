#include "src/core/repartitioner.h"

#include <algorithm>
#include <cassert>

namespace soap::core {

Repartitioner::Repartitioner(cluster::Cluster* cluster,
                             cluster::TransactionManager* tm,
                             const workload::TemplateCatalog* catalog,
                             workload::WorkloadHistory* history,
                             std::unique_ptr<Scheduler> scheduler,
                             repartition::OptimizerConfig optimizer_config,
                             PackagingMode packaging)
    : cluster_(cluster),
      tm_(tm),
      catalog_(catalog),
      history_(history),
      cost_model_(cluster->config().costs, catalog->spec().queries_per_txn),
      optimizer_(catalog, &cost_model_, cluster->TotalWorkers(),
                 optimizer_config),
      packager_(&cost_model_),
      scheduler_(std::move(scheduler)),
      packaging_(packaging) {
  assert(scheduler_ != nullptr);
  SchedulerEnv env;
  env.tm = tm_;
  env.registry = &registry_;
  env.cost_model = &cost_model_;
  env.sim = cluster->simulator();
  scheduler_->Bind(env);
}

void Repartitioner::InterceptNormalSubmission(txn::Transaction* t) {
  assert(!t->is_repartition);
  history_->Record(t->template_id);
}

void Repartitioner::OnBeforeExecute(txn::Transaction* t) {
  assert(!t->is_repartition);
  if (active_ && !registry_.AllDone()) {
    scheduler_->OnNormalTxnSubmission(t);
  }
}

void Repartitioner::OnTxnComplete(const txn::Transaction& t) {
  if (!active_) return;
  const uint64_t rid = t.piggyback_source;
  if (rid != 0) {
    RepartitionTxn* rt = registry_.Get(rid);
    if (rt != nullptr && rt->state != RepartitionTxn::State::kDone) {
      if (t.committed()) {
        registry_.MarkDone(rid);
      } else {
        registry_.MarkPending(rid);
        if (m_retries_total_ != nullptr) m_retries_total_->Increment();
        if (fault_aware_) ApplyBackoff(rt);
        if (audit_ != nullptr) {
          // One `abort` record per failed system-transaction attempt —
          // low volume (client aborts only appear aggregated in run_end).
          obs::AuditRecord rec(audit_, "abort",
                               cluster_->simulator()->Now());
          rec.U64("plan", rounds_started_)
              .U64("rid", rid)
              .U64("txn", t.id)
              .Str("kind", t.is_repartition ? "repartition" : "carrier")
              .Str("reason", txn::AbortReasonName(t.abort_reason))
              .U64("attempt", t.attempt)
              .U64("failures", rt->failures);
          if (rt->not_before > 0) rec.U64("not_before_us", rt->not_before);
        }
        if (!t.is_repartition && !shutting_down_) {
          ResubmitStripped(t);  // Algorithm 2, l.14-15
        }
      }
    }
  }
  if (!shutting_down_) scheduler_->OnTxnComplete(t);
}

void Repartitioner::ResubmitStripped(const txn::Transaction& t) {
  auto fresh = std::make_unique<txn::Transaction>();
  fresh->priority = t.priority;
  fresh->template_id = t.template_id;
  fresh->partner_template = t.partner_template;
  fresh->ops = t.ops;  // without the piggybacked repartition operations
  fresh->submit_time = t.submit_time;
  fresh->attempt = t.attempt;
  ++stripped_resubmissions_;
  if (m_stripped_total_ != nullptr) m_stripped_total_->Increment();
  tm_->Submit(std::move(fresh));
}

void Repartitioner::BindMetrics(obs::MetricsRegistry* registry) {
  scheduler_->BindMetrics(registry);
  if (registry == nullptr) {
    m_ops_applied_ = nullptr;
    m_ops_remaining_ = nullptr;
    m_rep_rate_ = nullptr;
    m_active_ = nullptr;
    m_retries_total_ = nullptr;
    m_backoffs_total_ = nullptr;
    m_stripped_total_ = nullptr;
    return;
  }
  m_ops_applied_ = registry->GetGauge("soap_repartition_ops_applied");
  m_ops_remaining_ = registry->GetGauge("soap_repartition_ops_remaining");
  m_rep_rate_ = registry->GetGauge("soap_repartition_rep_rate");
  m_active_ = registry->GetGauge("soap_repartition_active");
  m_retries_total_ = registry->GetCounter("soap_repartition_retries_total");
  m_backoffs_total_ = registry->GetCounter("soap_repartition_backoffs_total");
  m_stripped_total_ =
      registry->GetCounter("soap_repartition_stripped_resubmissions_total");
}

void Repartitioner::BindAudit(obs::AuditLog* audit) {
  audit_ = audit;
  registry_.BindAudit(audit, cluster_->simulator());
}

void Repartitioner::PublishMetrics(uint64_t ops_applied) {
  if (m_ops_applied_ == nullptr) return;
  const uint64_t total = active_ ? registry_.total_ops() : 0;
  const uint64_t in_round = ops_applied > ops_applied_at_round_start_
                                ? ops_applied - ops_applied_at_round_start_
                                : 0;
  const uint64_t applied = std::min(in_round, total);
  m_ops_applied_->Set(static_cast<double>(applied));
  m_ops_remaining_->Set(static_cast<double>(total - applied));
  m_rep_rate_->Set(RepRate(ops_applied));
  m_active_->Set(active_ ? 1.0 : 0.0);
}

void Repartitioner::OnIntervalTick(const IntervalStats& stats) {
  if (history_ != nullptr) history_->CloseInterval(stats.length);
  if (active_ && !registry_.AllDone()) {
    scheduler_->OnIntervalTick(stats);
  }
}

bool Repartitioner::StartRepartitioning() {
  if (active_) return false;
  repartition::RepartitionPlan plan =
      optimizer_.DerivePlan(cluster_->routing_table(), &op_ids_);
  if (plan.empty()) return false;
  return StartRepartitioningWithPlan(plan);
}

bool Repartitioner::StartRepartitioningWithPlan(
    const repartition::RepartitionPlan& plan) {
  if (active_ || plan.empty()) return false;
  std::vector<RepartitionTxn> ranked = packager_.PackageAndRank(
      plan, *history_, optimizer_, cluster_->routing_table(), packaging_);
  registry_.Init(std::move(ranked));
  active_ = true;
  ++rounds_started_;
  registry_.set_audit_round(rounds_started_);
  ops_applied_at_round_start_ = tm_->counters().repartition_ops_applied;
  if (audit_ != nullptr) {
    obs::AuditRecord rec(audit_, "round", cluster_->simulator()->Now());
    rec.U64("plan", rounds_started_)
        .U64("txns", registry_.size())
        .U64("ops", registry_.total_ops());
  }
  scheduler_->OnPlanReady();
  return true;
}

bool Repartitioner::FinishRound() {
  if (!active_ || !registry_.AllDone()) return false;
  active_ = false;
  registry_.Init({});
  return true;
}

void Repartitioner::EnableFaultHandling(uint64_t seed) {
  fault_aware_ = true;
  backoff_rng_ = Rng(seed);
}

void Repartitioner::OnNodeCrash(uint32_t node) {
  if (!fault_aware_) return;
  down_nodes_.insert(node);
  scheduler_->set_paused(true);
}

void Repartitioner::OnNodeRestart(uint32_t node) {
  if (!fault_aware_) return;
  down_nodes_.erase(node);
  if (!down_nodes_.empty() || shutting_down_) return;
  scheduler_->set_paused(false);
  if (active_ && !registry_.AllDone()) scheduler_->OnResume();
}

void Repartitioner::BeginShutdown() {
  shutting_down_ = true;
  scheduler_->set_paused(true);
}

void Repartitioner::ApplyBackoff(RepartitionTxn* rt) {
  ++rt->failures;
  Duration d = backoff_base_;
  for (uint32_t i = 1; i < rt->failures && d < backoff_cap_; ++i) d *= 2;
  if (d > backoff_cap_) d = backoff_cap_;
  d += static_cast<Duration>(backoff_rng_.NextUint64(
      static_cast<uint64_t>(backoff_base_ / 4 + 1)));
  const SimTime now = cluster_->simulator()->Now();
  rt->not_before = now + d;
  ++backoffs_;
  if (m_backoffs_total_ != nullptr) m_backoffs_total_->Increment();
}

bool Repartitioner::MaybeStartRepartitioning() {
  if (active_) return false;
  if (!optimizer_.ShouldRepartition(*history_, cluster_->routing_table())) {
    return false;
  }
  return StartRepartitioning();
}

}  // namespace soap::core
