// The repartitioner (§2.2): SOAP's new system component. Watches the
// workload history, asks the optimizer for a plan when performance drops
// (or on demand), packages and ranks the plan with Algorithm 1, and drives
// the configured scheduling strategy. It also owns Algorithm 2's carrier
// bookkeeping: committed carriers retire their repartition transaction,
// aborted carriers are resubmitted stripped of the piggybacked operations.

#ifndef SOAP_CORE_REPARTITIONER_H_
#define SOAP_CORE_REPARTITIONER_H_

#include <memory>
#include <set>

#include "src/cluster/cluster.h"
#include "src/cluster/transaction_manager.h"
#include "src/common/random.h"
#include "src/core/repartition_txn.h"
#include "src/core/scheduler.h"
#include "src/core/txn_packager.h"
#include "src/repartition/cost_model.h"
#include "src/repartition/optimizer.h"
#include "src/workload/history.h"
#include "src/workload/template_catalog.h"

namespace soap::core {

class Repartitioner {
 public:
  Repartitioner(cluster::Cluster* cluster, cluster::TransactionManager* tm,
                const workload::TemplateCatalog* catalog,
                workload::WorkloadHistory* history,
                std::unique_ptr<Scheduler> scheduler,
                repartition::OptimizerConfig optimizer_config = {},
                PackagingMode packaging = PackagingMode::kPerBenefitingTemplate);

  /// Hook for every normal transaction right before TM submission:
  /// records it in the workload history.
  void InterceptNormalSubmission(txn::Transaction* t);

  /// Hook for every normal transaction right before it starts executing
  /// (wire through TransactionManager::set_pre_execution_hook): offers it
  /// to the scheduler as a piggyback carrier. Injection happens at
  /// dispatch, not submission, so transactions that expire in the queue
  /// never strand repartition operations.
  void OnBeforeExecute(txn::Transaction* t);

  /// Must be invoked from the TM's completion callback (the experiment
  /// engine chains it).
  void OnTxnComplete(const txn::Transaction& t);

  /// One interval closed; stats computed by the engine.
  void OnIntervalTick(const IntervalStats& stats);

  /// Derives, packages and ranks a plan from the current placement and
  /// starts the scheduler. Returns false if no repartitioning is needed
  /// (plan empty) or one is already active.
  bool StartRepartitioning();

  /// Packages and starts an externally supplied plan (e.g. from
  /// repartition::ReplicaPlanner) instead of deriving one.
  bool StartRepartitioningWithPlan(const repartition::RepartitionPlan& plan);

  /// Retires a completed round so the next optimizer trigger can start a
  /// fresh one (§2.2's *periodic* repartitioning). Returns false while a
  /// round is still in flight.
  bool FinishRound();

  /// Starts only if the optimizer's performance estimate warrants it.
  bool MaybeStartRepartitioning();

  /// Turns on the self-healing deployment behavior: exponential backoff
  /// for aborted repartition/carrier transactions and pause/resume of the
  /// scheduler around node crashes. Off by default so fault-free runs
  /// stay byte-identical.
  void EnableFaultHandling(uint64_t seed);
  /// Backoff parameters for aborted repartition transactions (defaults
  /// 500ms doubling, capped at 30s).
  void set_backoff(Duration base, Duration cap) {
    backoff_base_ = base;
    backoff_cap_ = cap;
  }
  /// A node went down: pause deployment until every down node recovered.
  void OnNodeCrash(uint32_t node);
  /// A node finished WAL replay; resumes the scheduler once no node is
  /// down any more.
  void OnNodeRestart(uint32_t node);
  /// The experiment is draining; stop resubmitting aborted carriers and
  /// stop handing new work to the scheduler.
  void BeginShutdown();

  uint64_t backoffs() const { return backoffs_; }

  bool active() const { return active_; }
  bool Finished() const {
    return active_ && registry_.AllDone();
  }

  /// Fraction of plan units applied so far (the RepRate series of
  /// Figures 4-7); `ops_applied` comes from the TM counters (cumulative
  /// across rounds — applications before the current round started are
  /// subtracted, so every generation's RepRate climbs 0 → 1).
  double RepRate(uint64_t ops_applied) const {
    if (!active_ || registry_.total_ops() == 0) return 0.0;
    const uint64_t in_round = ops_applied > ops_applied_at_round_start_
                                  ? ops_applied - ops_applied_at_round_start_
                                  : 0;
    const double rate = static_cast<double>(in_round) /
                        static_cast<double>(registry_.total_ops());
    return rate > 1.0 ? 1.0 : rate;
  }

  /// Publishes repartition-progress gauges (soap_repartition_ops_applied,
  /// soap_repartition_ops_remaining, soap_repartition_rep_rate,
  /// soap_repartition_active) and forwards to the scheduler's
  /// BindMetrics; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Refreshes the progress gauges. The experiment engine calls this when
  /// closing each interval, with the TM's cumulative ops-applied counter.
  void PublishMetrics(uint64_t ops_applied);

  /// Attaches the decision audit log to the repartitioner and its
  /// registry: round starts, system-transaction aborts (with backoff) and
  /// every deploy lifecycle transition get records. nullptr detaches.
  void BindAudit(obs::AuditLog* audit);

  const RepartitionRegistry& registry() const { return registry_; }
  RepartitionRegistry& mutable_registry() { return registry_; }
  Scheduler& scheduler() { return *scheduler_; }
  const repartition::CostModel& cost_model() const { return cost_model_; }
  const repartition::Optimizer& optimizer() const { return optimizer_; }
  uint64_t stripped_resubmissions() const { return stripped_resubmissions_; }

  /// The run-wide op-id source every plan generation draws from (the
  /// optimizer's internal plans and the online planner share it, so op
  /// ids stay unique across generations).
  repartition::OpIdAllocator& op_ids() { return op_ids_; }
  /// Rounds started so far (one per deployed plan generation).
  uint64_t rounds_started() const { return rounds_started_; }

 private:
  void ResubmitStripped(const txn::Transaction& t);
  /// Pushes rt->not_before out by base * 2^(failures-1) (capped) plus a
  /// deterministic jitter draw, so a struggling transaction stops churning
  /// the cluster while the fault persists.
  void ApplyBackoff(RepartitionTxn* rt);

  cluster::Cluster* cluster_;
  cluster::TransactionManager* tm_;
  const workload::TemplateCatalog* catalog_;
  workload::WorkloadHistory* history_;
  repartition::CostModel cost_model_;
  repartition::Optimizer optimizer_;
  TxnPackager packager_;
  RepartitionRegistry registry_;
  std::unique_ptr<Scheduler> scheduler_;
  PackagingMode packaging_;
  repartition::OpIdAllocator op_ids_;
  bool active_ = false;
  uint64_t rounds_started_ = 0;
  /// TM's cumulative repartition_ops_applied when the current round
  /// started; RepRate counts only in-round applications.
  uint64_t ops_applied_at_round_start_ = 0;
  uint64_t stripped_resubmissions_ = 0;
  // Fault-handling state; dormant unless EnableFaultHandling ran.
  bool fault_aware_ = false;
  bool shutting_down_ = false;
  std::set<uint32_t> down_nodes_;
  Rng backoff_rng_{1};
  Duration backoff_base_ = Millis(500);
  Duration backoff_cap_ = Seconds(30);
  uint64_t backoffs_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Gauge* m_ops_applied_ = nullptr;
  obs::Gauge* m_ops_remaining_ = nullptr;
  obs::Gauge* m_rep_rate_ = nullptr;
  obs::Gauge* m_active_ = nullptr;
  obs::Counter* m_retries_total_ = nullptr;
  obs::Counter* m_backoffs_total_ = nullptr;
  obs::Counter* m_stripped_total_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
};

}  // namespace soap::core

#endif  // SOAP_CORE_REPARTITIONER_H_
