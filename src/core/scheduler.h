// Scheduler interface for online repartition scheduling (§3). Concrete
// strategies: ApplyAll and AfterAll (§3.2, the two baselines), Feedback
// (§3.3, PID-controlled), Piggyback (§3.4, Algorithm 2) and Hybrid (§3.5).

#ifndef SOAP_CORE_SCHEDULER_H_
#define SOAP_CORE_SCHEDULER_H_

#include <cstdint>
#include <limits>
#include <string_view>

#include "src/cluster/transaction_manager.h"
#include "src/core/repartition_txn.h"
#include "src/repartition/cost_model.h"
#include "src/sim/simulator.h"

namespace soap::core {

/// Everything a scheduler knows about one closed 20-second interval;
/// produced by the experiment engine from TM counters and node busy-time
/// diffs.
struct IntervalStats {
  uint32_t index = 0;
  Duration length = 0;
  /// Node work spent on normal queries + their overheads this interval.
  Duration normal_work = 0;
  /// Node work spent on repartition ops (standalone or piggybacked) +
  /// repartition transaction overheads this interval.
  Duration repartition_work = 0;
  uint64_t normal_submitted = 0;
  uint64_t normal_committed = 0;
  uint64_t normal_aborted = 0;
  uint64_t repartition_committed = 0;
  uint64_t repartition_aborted = 0;
  /// Piggybacked plan units applied this interval (for the hybrid PV).
  uint64_t piggybacked_ops_applied = 0;

  /// The PV the feedback controller stabilises: repartition work relative
  /// to normal work (paper Table 1 expresses its SP as the ratio of
  /// *total* to normal cost, i.e. 1 + this value).
  double RepartitionWorkRatio() const {
    if (normal_work <= 0) return repartition_work > 0 ? 1.0 : 0.0;
    return static_cast<double>(repartition_work) /
           static_cast<double>(normal_work);
  }
};

/// Wiring handed to a scheduler by the repartitioner.
struct SchedulerEnv {
  cluster::TransactionManager* tm = nullptr;
  RepartitionRegistry* registry = nullptr;
  const repartition::CostModel* cost_model = nullptr;
  /// For backoff eligibility checks; may be nullptr (tests), in which
  /// case every pending transaction is considered eligible.
  sim::Simulator* sim = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  void Bind(const SchedulerEnv& env) { env_ = env; }

  /// The registry has been initialised with the ranked plan; scheduling
  /// may begin.
  virtual void OnPlanReady() {}

  /// One interval closed. Called every interval once the plan is active.
  virtual void OnIntervalTick(const IntervalStats& stats) { (void)stats; }

  /// A normal transaction is about to be submitted; piggyback-capable
  /// schedulers may inject repartition operations into it (§3.4).
  virtual void OnNormalTxnSubmission(txn::Transaction* t) { (void)t; }

  /// A transaction completed. The registry has already been updated by
  /// the repartitioner (done / reverted-to-pending); schedulers apply
  /// their resubmission policy here.
  virtual void OnTxnComplete(const txn::Transaction& t) { (void)t; }

  /// Publishes strategy-internal metrics (e.g. the feedback controller's
  /// term gauges) into `registry`; nullptr detaches. Default: nothing.
  virtual void BindMetrics(obs::MetricsRegistry* registry) {
    (void)registry;
  }

  bool Finished() const {
    return env_.registry != nullptr && env_.registry->AllDone();
  }

  /// Pauses deployment (fault layer: a plan node is down). A paused
  /// scheduler submits nothing; composite schedulers forward to their
  /// children.
  virtual void set_paused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }

  /// All paused nodes recovered; schedulers that only act on external
  /// events (plan ready, txn complete) use this to restart deployment.
  virtual void OnResume() {}

 protected:
  /// Builds, submits and registers one pending repartition transaction.
  /// Returns false (submitting nothing) while paused.
  bool SubmitPending(RepartitionTxn* rt, txn::TxnPriority priority) {
    if (paused_) return false;
    auto t = RepartitionRegistry::MakeTransaction(*rt, priority);
    const txn::TxnId id = env_.tm->Submit(std::move(t));
    env_.registry->MarkSubmitted(rt->rid, id);
    return true;
  }

  /// Submits every currently eligible pending transaction (head-first).
  /// Returns the number submitted; stops early when paused.
  size_t SubmitAllPending(txn::TxnPriority priority) {
    size_t n = 0;
    while (RepartitionTxn* rt = env_.registry->NextPending(Now())) {
      if (!SubmitPending(rt, priority)) break;
      ++n;
    }
    return n;
  }

  /// Current virtual time, or "the end of time" with no simulator bound
  /// (making every backed-off transaction eligible, i.e. the pre-fault
  /// behaviour).
  SimTime Now() const {
    return env_.sim != nullptr ? env_.sim->Now()
                               : std::numeric_limits<SimTime>::max();
  }

  SchedulerEnv env_;
  bool paused_ = false;
};

}  // namespace soap::core

#endif  // SOAP_CORE_SCHEDULER_H_
