// Umbrella header: the SOAP public API. Including this gives you the whole
// stack — simulator, cluster, workload generation, repartition planning,
// and the five scheduling strategies. See examples/quickstart.cpp.

#ifndef SOAP_CORE_SOAP_H_
#define SOAP_CORE_SOAP_H_

#include "src/cluster/cluster.h"                  // IWYU pragma: export
#include "src/cluster/transaction_manager.h"      // IWYU pragma: export
#include "src/core/basic_schedulers.h"            // IWYU pragma: export
#include "src/core/feedback_scheduler.h"          // IWYU pragma: export
#include "src/core/hybrid_scheduler.h"            // IWYU pragma: export
#include "src/core/piggyback_scheduler.h"         // IWYU pragma: export
#include "src/core/pid_controller.h"              // IWYU pragma: export
#include "src/core/repartitioner.h"               // IWYU pragma: export
#include "src/core/scheduler.h"                   // IWYU pragma: export
#include "src/core/txn_packager.h"                // IWYU pragma: export
#include "src/repartition/cost_model.h"           // IWYU pragma: export
#include "src/repartition/optimizer.h"            // IWYU pragma: export
#include "src/sim/simulator.h"                    // IWYU pragma: export
#include "src/workload/generator.h"               // IWYU pragma: export
#include "src/workload/history.h"                 // IWYU pragma: export
#include "src/workload/template_catalog.h"        // IWYU pragma: export

namespace soap {

/// The five strategies of §3, for configuration surfaces.
enum class SchedulingStrategy {
  kApplyAll,
  kAfterAll,
  kFeedback,
  kPiggyback,
  kHybrid,
};

inline const char* StrategyName(SchedulingStrategy s) {
  switch (s) {
    case SchedulingStrategy::kApplyAll:
      return "ApplyAll";
    case SchedulingStrategy::kAfterAll:
      return "AfterAll";
    case SchedulingStrategy::kFeedback:
      return "Feedback";
    case SchedulingStrategy::kPiggyback:
      return "Piggyback";
    case SchedulingStrategy::kHybrid:
      return "Hybrid";
  }
  return "?";
}

}  // namespace soap

#endif  // SOAP_CORE_SOAP_H_
