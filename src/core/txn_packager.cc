#include "src/core/txn_packager.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace soap::core {

std::vector<RepartitionTxn> TxnPackager::PackageExtreme(
    const repartition::RepartitionPlan& plan,
    const workload::WorkloadHistory& history,
    const repartition::Optimizer& optimizer,
    const router::RoutingTable& routing, PackagingMode mode) const {
  // Per-op benefit, as in Algorithm 1 lines 1-9, so the ablation modes
  // still rank sensibly.
  auto benefit_of = [&](const repartition::RepartitionOp& op) {
    double benefit = 0.0;
    for (uint32_t t : op.affected_templates) {
      const Duration gain = optimizer.TemplateGain(t, routing);
      if (gain > 0) benefit += history.FrequencyOf(t) * static_cast<double>(gain);
    }
    return benefit;
  };
  std::vector<RepartitionTxn> result;
  if (mode == PackagingMode::kSingleGiantTxn) {
    if (plan.empty()) return result;
    RepartitionTxn rt;
    rt.beneficiary_template =
        plan.ops[0].affected_templates.empty()
            ? 0
            : plan.ops[0].affected_templates[0];
    for (const auto& op : plan.ops) {
      rt.benefit += benefit_of(op);
      rt.ops.push_back(op);
    }
    rt.cost = static_cast<double>(cost_model_->RepartitionTxnCost(rt.ops));
    rt.density = rt.cost > 0 ? rt.benefit / rt.cost : 0.0;
    result.push_back(std::move(rt));
    return result;
  }
  // kPerOperation.
  result.reserve(plan.size());
  for (const auto& op : plan.ops) {
    RepartitionTxn rt;
    rt.beneficiary_template =
        op.affected_templates.empty() ? 0 : op.affected_templates[0];
    rt.benefit = benefit_of(op);
    rt.ops.push_back(op);
    rt.cost = static_cast<double>(cost_model_->RepartitionTxnCost(rt.ops));
    rt.density = rt.cost > 0 ? rt.benefit / rt.cost : 0.0;
    result.push_back(std::move(rt));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const RepartitionTxn& a, const RepartitionTxn& b) {
                     return a.density > b.density;
                   });
  return result;
}

std::vector<RepartitionTxn> TxnPackager::PackageGrouped(
    const repartition::RepartitionPlan& plan,
    const workload::WorkloadHistory& history,
    const repartition::Optimizer& optimizer,
    const router::RoutingTable& routing, PackagingMode mode) const {
  auto benefit_of = [&](const repartition::RepartitionOp& op) {
    double benefit = 0.0;
    for (uint32_t t : op.affected_templates) {
      const Duration gain = optimizer.TemplateGain(t, routing);
      if (gain > 0) {
        benefit += history.FrequencyOf(t) * static_cast<double>(gain);
      }
    }
    return benefit;
  };

  // Order plan units by key so range runs are maximal.
  std::vector<const repartition::RepartitionOp*> ordered;
  ordered.reserve(plan.size());
  for (const auto& op : plan.ops) ordered.push_back(&op);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->key < b->key; });

  constexpr uint64_t kHashBuckets = 64;
  auto group_of = [&](const repartition::RepartitionOp& op,
                      const repartition::RepartitionOp* prev,
                      uint64_t prev_group) -> uint64_t {
    if (mode == PackagingMode::kPerHashBucket) {
      // Splitmix-style avalanche on the key.
      uint64_t h = op.key * 0x9E3779B97F4A7C15ULL;
      h ^= h >> 32;
      return h % kHashBuckets;
    }
    // kPerKeyRange: same group while keys are contiguous and the move has
    // the same endpoints.
    if (prev != nullptr && op.key == prev->key + 1 &&
        op.source_partition == prev->source_partition &&
        op.target_partition == prev->target_partition) {
      return prev_group;
    }
    return prev_group + 1;
  };

  std::map<uint64_t, std::vector<const repartition::RepartitionOp*>> groups;
  const repartition::RepartitionOp* prev = nullptr;
  uint64_t current_group = 0;
  for (const auto* op : ordered) {
    current_group = group_of(*op, prev, current_group);
    groups[current_group].push_back(op);
    prev = op;
  }

  std::vector<RepartitionTxn> result;
  result.reserve(groups.size());
  for (const auto& [group, ops] : groups) {
    RepartitionTxn rt;
    rt.beneficiary_template = ops[0]->affected_templates.empty()
                                  ? 0
                                  : ops[0]->affected_templates[0];
    for (const auto* op : ops) {
      rt.benefit += benefit_of(*op);
      rt.ops.push_back(*op);
    }
    rt.cost = static_cast<double>(cost_model_->RepartitionTxnCost(rt.ops));
    rt.density = rt.cost > 0 ? rt.benefit / rt.cost : 0.0;
    result.push_back(std::move(rt));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const RepartitionTxn& a, const RepartitionTxn& b) {
                     return a.density > b.density;
                   });
  return result;
}

std::vector<RepartitionTxn> TxnPackager::PackageAndRank(
    const repartition::RepartitionPlan& plan,
    const workload::WorkloadHistory& history,
    const repartition::Optimizer& optimizer,
    const router::RoutingTable& routing, PackagingMode mode) const {
  if (mode == PackagingMode::kPerKeyRange ||
      mode == PackagingMode::kPerHashBucket) {
    return PackageGrouped(plan, history, optimizer, routing, mode);
  }
  if (mode != PackagingMode::kPerBenefitingTemplate) {
    return PackageExtreme(plan, history, optimizer, routing, mode);
  }
  // --- Lines 1-5: Top maps each benefiting template t_i to the plan
  // operations that modify objects it accesses (only when the new plan
  // actually improves it: Ci(O) - Ci(P) > 0).
  std::unordered_map<uint32_t, std::vector<size_t>> top;
  std::unordered_map<uint32_t, Duration> gain_cache;
  auto gain_of = [&](uint32_t t) {
    auto it = gain_cache.find(t);
    if (it != gain_cache.end()) return it->second;
    const Duration g = optimizer.TemplateGain(t, routing);
    gain_cache.emplace(t, g);
    return g;
  };
  for (size_t k = 0; k < plan.ops.size(); ++k) {
    for (uint32_t t : plan.ops[k].affected_templates) {
      if (gain_of(t) > 0) top[t].push_back(k);
    }
  }

  // --- Lines 6-9: spread each template's benefit f_i * (Ci(O) - Ci(P))
  // evenly over the operations it depends on.
  std::vector<double> op_benefit(plan.ops.size(), 0.0);
  for (const auto& [t, op_indices] : top) {
    if (op_indices.empty()) continue;
    const double fi = history.FrequencyOf(t);
    const double benefit = fi * static_cast<double>(gain_of(t)) /
                           static_cast<double>(op_indices.size());
    for (size_t k : op_indices) op_benefit[k] += benefit;
  }

  // --- Lines 10-15: total benefit per group, sorted descending.
  std::vector<std::pair<uint32_t, double>> group_benefit;
  group_benefit.reserve(top.size());
  for (const auto& [t, op_indices] : top) {
    double benefit = 0.0;
    for (size_t k : op_indices) benefit += op_benefit[k];
    group_benefit.emplace_back(t, benefit);
  }
  std::sort(group_benefit.begin(), group_benefit.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  // --- Lines 16-26: walk groups in benefit order; each operation joins
  // exactly one repartition transaction (the first group that claims it),
  // and claimed operations are deducted from later groups' benefits.
  std::vector<bool> claimed(plan.ops.size(), false);
  std::vector<RepartitionTxn> result;
  result.reserve(group_benefit.size());
  for (const auto& [t, benefit_in] : group_benefit) {
    double benefit = benefit_in;
    std::vector<repartition::RepartitionOp> ops;
    for (size_t k : top[t]) {
      if (claimed[k]) {
        benefit -= op_benefit[k];  // line 20
        continue;
      }
      claimed[k] = true;
      repartition::RepartitionOp op = plan.ops[k];
      op.benefit = op_benefit[k];
      ops.push_back(std::move(op));
    }
    if (ops.empty()) continue;  // everything claimed by earlier groups
    RepartitionTxn rt;
    rt.beneficiary_template = t;
    rt.benefit = benefit;
    rt.cost = static_cast<double>(cost_model_->RepartitionTxnCost(ops));
    rt.ops = std::move(ops);
    rt.density = rt.cost > 0.0 ? rt.benefit / rt.cost : 0.0;
    result.push_back(std::move(rt));
  }

  // Plan units benefiting no tracked template (e.g. cold templates with
  // zero gain) must still be executed: package the leftovers one
  // transaction per affected template so the plan always completes.
  std::unordered_map<uint32_t, std::vector<repartition::RepartitionOp>>
      leftovers;
  for (size_t k = 0; k < plan.ops.size(); ++k) {
    if (claimed[k]) continue;
    const auto& op = plan.ops[k];
    const uint32_t t =
        op.affected_templates.empty() ? 0 : op.affected_templates[0];
    leftovers[t].push_back(op);
  }
  for (auto& [t, ops] : leftovers) {
    RepartitionTxn rt;
    rt.beneficiary_template = t;
    rt.benefit = 0.0;
    rt.cost = static_cast<double>(cost_model_->RepartitionTxnCost(ops));
    rt.ops = std::move(ops);
    rt.density = 0.0;
    result.push_back(std::move(rt));
  }

  // --- Line 27: final ranking by benefit density, descending.
  std::stable_sort(result.begin(), result.end(),
                   [](const RepartitionTxn& a, const RepartitionTxn& b) {
                     if (a.density != b.density) return a.density > b.density;
                     return a.beneficiary_template < b.beneficiary_template;
                   });
  return result;
}

}  // namespace soap::core
