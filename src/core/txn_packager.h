// Algorithm 1 (§3.1): "Generating and Ranking Repartition Transactions".
// Groups the plan's repartition operations by the normal transaction
// template they benefit (so each repartition transaction pays for itself),
// computes per-group benefits from workload-history frequencies and the
// cost model, and returns the groups as repartition transactions sorted by
// benefit density Bj/Cj, descending.

#ifndef SOAP_CORE_TXN_PACKAGER_H_
#define SOAP_CORE_TXN_PACKAGER_H_

#include <vector>

#include "src/core/repartition_txn.h"
#include "src/repartition/cost_model.h"
#include "src/repartition/operation.h"
#include "src/repartition/optimizer.h"
#include "src/router/routing_table.h"
#include "src/workload/history.h"

namespace soap::core {

/// How repartition operations are grouped into transactions. §3.1 frames
/// kPerBenefitingTemplate (Algorithm 1's heuristic) against two extremes,
/// kept here for the packaging ablation study: one giant transaction
/// (maximal lock footprint) and one transaction per operation (maximal
/// per-transaction overhead). §2.2 additionally names coarser plan
/// granularities — "moving individual tuple or tuples within some ranges
/// or with some hash keys on their attributes" — realised as grouping by
/// contiguous key range and by hash bucket.
enum class PackagingMode {
  kPerBenefitingTemplate,
  kSingleGiantTxn,
  kPerOperation,
  /// One transaction per maximal run of key-contiguous operations sharing
  /// a (source, target) pair.
  kPerKeyRange,
  /// One transaction per hash bucket of the key (64 buckets).
  kPerHashBucket,
};

class TxnPackager {
 public:
  explicit TxnPackager(const repartition::CostModel* cost_model)
      : cost_model_(cost_model) {}

  /// Runs Algorithm 1 (or one of the ablation extremes). `optimizer`
  /// supplies Ci(O) - Ci(P) per template against the current placement in
  /// `routing`; `history` supplies the frequencies f_i. The result is
  /// ready for RepartitionRegistry::Init.
  std::vector<RepartitionTxn> PackageAndRank(
      const repartition::RepartitionPlan& plan,
      const workload::WorkloadHistory& history,
      const repartition::Optimizer& optimizer,
      const router::RoutingTable& routing,
      PackagingMode mode = PackagingMode::kPerBenefitingTemplate) const;

 private:
  std::vector<RepartitionTxn> PackageGrouped(
      const repartition::RepartitionPlan& plan,
      const workload::WorkloadHistory& history,
      const repartition::Optimizer& optimizer,
      const router::RoutingTable& routing, PackagingMode mode) const;
  std::vector<RepartitionTxn> PackageExtreme(
      const repartition::RepartitionPlan& plan,
      const workload::WorkloadHistory& history,
      const repartition::Optimizer& optimizer,
      const router::RoutingTable& routing, PackagingMode mode) const;

  const repartition::CostModel* cost_model_;
};

}  // namespace soap::core

#endif  // SOAP_CORE_TXN_PACKAGER_H_
