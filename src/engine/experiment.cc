#include "src/engine/experiment.h"

#include <cassert>
#include <chrono>
#include <sstream>

#include "src/check/history_recorder.h"
#include "src/check/invariants.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/fault/fault_injector.h"
#include "src/lion/provisioner.h"
#include "src/workload/trace.h"

namespace soap::engine {

std::unique_ptr<core::Scheduler> MakeScheduler(
    SchedulingStrategy strategy, const core::FeedbackConfig& feedback,
    const core::PiggybackConfig& piggyback) {
  switch (strategy) {
    case SchedulingStrategy::kApplyAll:
      return std::make_unique<core::ApplyAllScheduler>();
    case SchedulingStrategy::kAfterAll:
      return std::make_unique<core::AfterAllScheduler>();
    case SchedulingStrategy::kFeedback:
      return std::make_unique<core::FeedbackScheduler>(feedback);
    case SchedulingStrategy::kPiggyback:
      return std::make_unique<core::PiggybackScheduler>(piggyback);
    case SchedulingStrategy::kHybrid: {
      core::HybridConfig config;
      config.feedback = feedback;
      config.piggyback = piggyback;
      return std::make_unique<core::HybridScheduler>(config);
    }
  }
  return nullptr;
}

Status ExperimentConfig::Validate() const {
  if (interval_length <= 0) {
    return Status::InvalidArgument("interval_length must be positive");
  }
  if (workload_options.utilization <= 0.0) {
    return Status::InvalidArgument("utilization must be positive");
  }
  if (workload_options.history_window == 0) {
    return Status::InvalidArgument("history_window must be at least 1");
  }
  // Trace machinery: replaying fixes the arrival stream, so configuring
  // drift phases alongside it would silently have no effect.
  if (!workload_options.replay_trace_path.empty() &&
      !workload_options.spec.phases.empty()) {
    return Status::InvalidArgument(
        "replay_trace_path replays a fixed arrival stream; drift phases "
        "would be ignored — clear one of them");
  }
  if (!workload_options.replay_trace_path.empty() &&
      !workload_options.record_trace_path.empty()) {
    return Status::InvalidArgument(
        "record_trace_path and replay_trace_path are mutually exclusive");
  }
  if (!obs.trace_out.empty() && obs.trace_sample == 0) {
    return Status::InvalidArgument(
        "trace_out is set but trace_sample=0 disables tracing — nothing "
        "would be written");
  }
  if (!obs.timeline_out.empty() && obs.timeline_interval == 0) {
    return Status::InvalidArgument(
        "timeline_out is set but timeline_interval=0 disables timeline "
        "snapshots — nothing would be written");
  }
  if (fault_options.disturbance.enabled) {
    const Disturbance& d = fault_options.disturbance;
    if (d.fraction <= 0.0 || d.fraction > 1.0) {
      return Status::InvalidArgument(
          "disturbance.fraction must be in (0, 1]");
    }
    if (d.start_interval >= d.end_interval) {
      return Status::InvalidArgument(
          "disturbance window is empty (start_interval >= end_interval)");
    }
    if (d.node >= cluster.num_nodes) {
      return Status::InvalidArgument("disturbance.node is out of range");
    }
  }
  if (!fault_options.spec.empty()) {
    Result<fault::FaultSpec> parsed = fault::FaultSpec::Parse(
        fault_options.spec);
    if (!parsed.ok()) return parsed.status();
  }
  if (replicas.enabled) {
    if (replicas.max_copies < 2) {
      return Status::InvalidArgument(
          "replicas.max_copies counts the primary; at least 2 is needed "
          "for one replica");
    }
    if (replicas.max_copies > cluster.num_nodes) {
      return Status::InvalidArgument(
          "replicas.max_copies exceeds the cluster size");
    }
    if (replicas.min_read_write_ratio <= 0.0) {
      return Status::InvalidArgument(
          "replicas.min_read_write_ratio must be positive");
    }
    if (replicas.split_threshold <= 0.0 || replicas.split_threshold >= 1.0) {
      return Status::InvalidArgument(
          "replicas.split_threshold must be in (0, 1)");
    }
    if (replicas.promotion_delay < 0) {
      return Status::InvalidArgument(
          "replicas.promotion_delay must be non-negative");
    }
  } else if (planner_options.builder.replicate_read_heavy) {
    return Status::InvalidArgument(
        "planner.builder.replicate_read_heavy requires replicas.enabled "
        "(the transaction layer must be replica-aware to maintain copies)");
  }
  if (lion.replica_budget < 0) {
    return Status::InvalidArgument("lion.replica_budget must be >= 0");
  }
  {
    lion::EvictPolicy policy = lion::EvictPolicy::kLru;
    if (!lion::ParseEvictPolicy(lion.evict, &policy)) {
      return Status::InvalidArgument("unknown lion.evict policy: " +
                                     lion.evict + " (expected lru or heat)");
    }
  }
  if (lion.shift_threshold <= 0.0 || lion.shift_threshold > 1.0) {
    return Status::InvalidArgument(
        "lion.shift_threshold must be in (0, 1]");
  }
  if (lion.enabled) {
    if (!replicas.enabled) {
      return Status::InvalidArgument(
          "lion requires replicas.enabled (adaptive provisioning manages "
          "replica copies)");
    }
    if (!planner_options.enabled) {
      return Status::InvalidArgument(
          "lion requires planner.enabled (provisioning decisions ride the "
          "online replan cycle)");
    }
  }
  if (!check.break_mode.empty()) {
    check::BreakMode mode = check::BreakMode::kNone;
    if (!check::ParseBreakMode(check.break_mode, &mode)) {
      return Status::InvalidArgument("unknown --check_break mode: " +
                                     check.break_mode);
    }
    if (mode == check::BreakMode::kReplicaApply && !replicas.enabled) {
      return Status::InvalidArgument(
          "--check_break=replica_apply needs replicas enabled: without them "
          "there is no replica apply path to corrupt");
    }
    if (mode == check::BreakMode::kStaleSnapshot &&
        cluster.cc != mvcc::ConcurrencyControl::kMvcc) {
      return Status::InvalidArgument(
          "--check_break=stale_snapshot needs --cc=mvcc: without snapshot "
          "reads there is no snapshot observation to corrupt");
    }
    if (mode == check::BreakMode::kDoublePrimary && !lion.enabled) {
      return Status::InvalidArgument(
          "--check_break=double_primary needs --lion: without leader "
          "shifts there is no primary swap to corrupt");
    }
  }
  return Status::OK();
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)) {}

ExperimentResult Experiment::Run() {
  assert(!ran_ && "an Experiment may only run once");
  ran_ = true;

  ExperimentResult result;
  result.strategy_name = StrategyName(config_.deployment.strategy);
  if (Status v = config_.Validate(); !v.ok()) {
    SOAP_LOG(kError) << "invalid experiment config: " << v.ToString();
    result.audit = std::move(v);
    return result;
  }

  // --- Build the stack.
  const auto load_t0 = std::chrono::steady_clock::now();
  sim::Simulator sim;
  // Stamp log lines with this run's virtual time while it is in scope.
  Logger::Instance().set_clock([&sim]() { return sim.Now(); });
  struct LogClockGuard {
    ~LogClockGuard() { Logger::Instance().set_clock(nullptr); }
  } log_clock_guard;
  cluster::ClusterConfig cluster_config = config_.cluster;
  cluster_config.num_keys = config_.workload_options.spec.num_keys;
  cluster_config.seed = config_.seed;
  // Production-cardinality runs flip the stack to its sublinear
  // representations (lazy storage bases + sketch-backed planner graph).
  // At or below the threshold everything is the exact paper-scale path.
  const bool scale_out =
      config_.workload_options.spec.num_keys > config_.scale.sketch_threshold;
  cluster_config.lazy_tables = scale_out;
  cluster::Cluster cluster(&sim, cluster_config);
  cluster::TransactionManager tm(&cluster);

  workload::TemplateCatalog catalog(config_.workload_options.spec, cluster.num_nodes());
  // Routing base: num_nodes round-robin ranges cover the whole keyspace
  // (key % nodes — the catalog's default placement); only keys whose
  // initial partition differs end up as point exceptions.
  {
    Status base = cluster.routing_table().AssignRoundRobin(
        0, config_.workload_options.spec.num_keys, cluster.num_nodes());
    assert(base.ok());
    (void)base;
  }
  if (!scale_out) {
    // Exact bulk load, tuple by tuple. SetPrimary absorbs keys that sit on
    // their round-robin partition, so the routing table ends up with the
    // same placements as the historical dense load.
    for (uint64_t key = 0; key < config_.workload_options.spec.num_keys; ++key) {
      storage::Tuple tuple;
      tuple.key = key;
      tuple.content = static_cast<int64_t>(key);
      Status s = cluster.LoadTuple(tuple, catalog.InitialPartitionOf(key));
      assert(s.ok());
      (void)s;
    }
  } else {
    // Lazy bulk load: each node's round-robin base is already virtually
    // present (Table::SetLazyBase), so only the catalog's overrides move —
    // evict from the arithmetic home, land on the assigned partition.
    catalog.ForEachInitialOverride(
        [&](storage::TupleKey key, uint32_t partition) {
          cluster.storage(static_cast<uint32_t>(key % cluster.num_nodes()))
              .BulkEvict(key);
          storage::Tuple tuple;
          tuple.key = key;
          tuple.content = static_cast<int64_t>(key);
          Status s = cluster.LoadTuple(tuple, partition);
          assert(s.ok());
          (void)s;
        });
  }
  cluster.CheckpointAll();  // seal the load base: WALs stay replayable
  result.load_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_t0)
          .count();

  // --- Consistency checking (off by default; see CheckOptions). The
  // recorder observes every storage apply and TM lifecycle event; the
  // invariant engine sweeps cluster-wide structure at quiescent points.
  // With check off no observer or hook is installed, so the run stays
  // byte-identical to an unchecked build.
  const bool check_on = config_.check.Enabled();
  std::unique_ptr<check::HistoryRecorder> recorder;
  std::unique_ptr<check::InvariantEngine> invariants;
  if (check_on) {
    result.check_enabled = true;
    recorder = std::make_unique<check::HistoryRecorder>();
    recorder->set_clock([&sim]() { return sim.Now(); });
    for (uint32_t p = 0; p < cluster.num_nodes(); ++p) {
      cluster.storage(p).set_observer(recorder.get());
    }
    tm.set_history(recorder.get());
    check::BreakMode mode = check::BreakMode::kNone;
    check::ParseBreakMode(config_.check.break_mode, &mode);  // validated
    tm.set_check_break(mode);
    cluster.routing_table().EnableEpochTracking();
    invariants =
        std::make_unique<check::InvariantEngine>(&cluster, recorder.get());
  }

  workload::WorkloadHistory history(
      static_cast<uint32_t>(catalog.size()), config_.workload_options.history_window);
  core::Repartitioner repartitioner(
      &cluster, &tm, &catalog, &history,
      MakeScheduler(config_.deployment.strategy, config_.deployment.feedback, config_.deployment.piggyback),
      repartition::OptimizerConfig{}, config_.deployment.packaging);

  // --- Primary-copy replication (off by default; with it the TM ships
  // writes to replica holders, reads route to the nearest live copy, and
  // crashes trigger the failover/catch-up protocol in ReplicaManager).
  std::unique_ptr<replica::ReplicaManager> replica_mgr;
  if (config_.replicas.enabled) {
    result.replicas_enabled = true;
    tm.EnableReplicaAwareness();
    cluster.router().set_policy(router::ReplicaPolicy::kNearestLive);
    replica::ReplicaManagerConfig rc;
    rc.promotion_delay = config_.replicas.promotion_delay;
    rc.catchup_fixed = config_.replicas.catchup_fixed;
    rc.catchup_per_tuple = config_.replicas.catchup_per_tuple;
    replica_mgr = std::make_unique<replica::ReplicaManager>(&cluster, rc);
    // A restarted node's surviving replicas may lag the primary until its
    // catch-up sweep finishes; routing such nodes as down keeps reads on
    // copies that are at least as fresh. (The node's own primaries are
    // exact — WAL replay restored them — so writes are unaffected, and
    // the router falls back to the primary if every replica is out.)
    cluster.router().set_down_probe(
        [&cluster, rm = replica_mgr.get()](router::PartitionId p) {
          return cluster.node(p).down() || rm->IsStale(p);
        });
    if (check_on) {
      invariants->set_stale_probe([rm = replica_mgr.get()](uint32_t n) {
        return rm->IsStale(n);
      });
      replica_mgr->set_promotion_hook(
          [&sim, inv = invariants.get()](storage::TupleKey key, uint32_t np) {
            inv->OnPromotion(key, np, sim.Now());
          });
    }
  }

  // --- Online planner (off by default; with it the one-shot optimizer
  // plan is replaced by continuous co-access-graph replanning).
  std::unique_ptr<planner::Planner> online_planner;
  if (config_.planner_options.enabled) {
    planner::PlannerConfig pc = config_.planner_options;
    if (pc.first_plan_interval == 0) {
      pc.first_plan_interval = config_.warmup_intervals;
    }
    if (pc.replan_period == 0) pc.replan_period = 1;
    // Scale knobs flow into the co-access graph; at paper scale
    // (num_keys <= threshold) the graph stays on its exact path.
    pc.graph.num_keys = config_.workload_options.spec.num_keys;
    pc.graph.sketch_threshold = config_.scale.sketch_threshold;
    pc.graph.sketch_topk = config_.scale.sketch_topk;
    pc.graph.supernode_ranges = config_.scale.supernode_ranges;
    if (config_.replicas.enabled) {
      // The planner proposes replicas instead of migrations for read-heavy
      // keys; thresholds come from the replica options so one knob governs
      // planner and manager alike.
      pc.builder.replicate_read_heavy = true;
      pc.builder.max_copies = config_.replicas.max_copies;
      pc.builder.min_read_write_ratio = config_.replicas.min_read_write_ratio;
      pc.builder.replica_split_threshold = config_.replicas.split_threshold;
      pc.builder.drop_stale_replicas = config_.replicas.drop_stale_replicas;
    }
    if (config_.lion.enabled) {
      // Lion rides the replica-aware replan cycle: one candidate pool per
      // clustered key, budgeted creations, leader shifts onto
      // write-dominant replica holders.
      result.lion_enabled = true;
      pc.builder.lion.enabled = true;
      pc.builder.lion.replica_budget = config_.lion.replica_budget;
      lion::ParseEvictPolicy(config_.lion.evict,
                             &pc.builder.lion.evict);  // validated above
      pc.builder.lion.shift_threshold = config_.lion.shift_threshold;
    }
    online_planner = std::make_unique<planner::Planner>(
        &catalog, &cluster.routing_table(), &repartitioner, pc);
  }
  if (check_on && config_.lion.enabled) {
    // Every applied leader shift is checked on the spot: exactly one
    // primary, no doubled placement entry, epoch advanced.
    tm.set_leader_shift_hook(
        [&sim, inv = invariants.get()](storage::TupleKey key, uint32_t np) {
          inv->OnLeaderShift(key, np, sim.Now());
        });
  }

  // --- Observability (off by default; see ObsOptions).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TxnTracer> tracer;
  std::ostringstream metrics_jsonl;
  if (config_.obs.MetricsEnabled()) {
    metrics = std::make_shared<obs::MetricsRegistry>();
    cluster.BindMetrics(metrics.get());
    tm.BindMetrics(metrics.get());
    repartitioner.BindMetrics(metrics.get());
    if (online_planner != nullptr) online_planner->BindMetrics(metrics.get());
    if (replica_mgr != nullptr) replica_mgr->BindMetrics(metrics.get());
  }
  if (config_.obs.TraceEnabled()) {
    obs::TxnTracer::Config tracer_config;
    tracer_config.sample_every = config_.obs.trace_sample;
    tracer = std::make_shared<obs::TxnTracer>(tracer_config);
    tm.set_tracer(tracer.get());
    cluster.set_tracer(tracer.get());
  }
  if (metrics != nullptr) cluster.router().BindMetrics(metrics.get());
  std::shared_ptr<obs::AuditLog> audit_log;
  if (config_.obs.AuditEnabled()) {
    audit_log = std::make_shared<obs::AuditLog>();
    repartitioner.BindAudit(audit_log.get());
    if (online_planner != nullptr) {
      online_planner->BindAudit(audit_log.get(), &sim);
    }
    if (replica_mgr != nullptr) replica_mgr->set_audit(audit_log.get());
    if (invariants != nullptr) invariants->set_audit(audit_log.get());
    // Header record: enough run context to read the file standalone.
    obs::AuditRecord rec(audit_log.get(), "run_meta", sim.Now());
    rec.U64("seed", config_.seed)
        .Str("strategy", StrategyName(config_.deployment.strategy))
        .U64("nodes", cluster.num_nodes())
        .U64("keys", config_.workload_options.spec.num_keys)
        .U64("warmup_intervals", config_.warmup_intervals)
        .U64("measured_intervals", config_.measured_intervals)
        .I64("interval_us", config_.interval_length)
        .Bool("planner", config_.planner_options.enabled)
        .Bool("replicas", config_.replicas.enabled);
  }
  std::shared_ptr<obs::Timeline> timeline;
  obs::HistogramWindow lock_wait_window;
  std::vector<Duration> prev_node_busy;
  obs::PartitionFlows prev_flows;
  SimTime timeline_prev_tick = 0;
  if (config_.obs.TimelineEnabled()) {
    timeline = std::make_shared<obs::Timeline>();
    timeline->flows()->Resize(cluster.num_nodes());
    tm.set_partition_flows(timeline->flows());
    prev_node_busy.assign(cluster.num_nodes(), 0);
    prev_flows.Resize(cluster.num_nodes());
  }

  // --- Fault injection (off unless a spec was given; with no spec the run
  // schedules no fault events and draws no fault randomness, so it stays
  // byte-identical to a build without the fault layer).
  std::unique_ptr<fault::FaultInjector> injector;
  // Per-node recovery generation: a node that crashes again while its
  // recovery replay is still in flight invalidates that replay — the new
  // restart runs replay again from the checkpoint image, and only the
  // completion whose epoch matches fires the restart hooks. (The replay
  // job itself is vaporised by Crash(); the epoch makes the protocol
  // robust even if a completion were ever delivered late.)
  std::vector<uint64_t> recovery_epoch(cluster.num_nodes(), 0);
  if (!config_.fault_options.spec.empty()) {
    Result<fault::FaultSpec> spec =
        fault::FaultSpec::Parse(config_.fault_options.spec);
    if (!spec.ok()) {
      SOAP_LOG(kError) << "bad --fault_spec: " << spec.status().ToString();
      result.audit = spec.status();
      return result;
    }
    // Separate streams for message faults, 2PC jitter and repartition
    // backoff so changing one spec clause does not shift the others.
    const uint64_t fseed =
        spec->seed != 0 ? spec->seed
                        : config_.seed * 6364136223846793005ULL +
                              1442695040888963407ULL;
    injector = std::make_unique<fault::FaultInjector>(&sim, *spec, fseed);
    cluster.network().set_fault_hooks(injector.get());

    txn::TpcFaultConfig tpc_cfg;
    tpc_cfg.enabled = true;
    tpc_cfg.prepare_timeout = spec->tpc.prepare_timeout;
    tpc_cfg.ack_timeout = spec->tpc.ack_timeout;
    tpc_cfg.max_resends = spec->tpc.max_resends;
    tpc_cfg.backoff = spec->tpc.backoff;
    tpc_cfg.jitter = spec->tpc.jitter;
    tpc_cfg.seed = fseed ^ 0x9e3779b97f4a7c15ULL;
    cluster.tpc().EnableFaultHandling(tpc_cfg);
    // Decision-retry giveup heuristic: a decided 2PC outcome keeps being
    // re-sent while it could still be lost (down-but-returning
    // coordinator, live unacked participant) instead of finalizing with
    // its applies missing.
    cluster.tpc().set_down_probe([inj = injector.get()](sim::NodeId n) {
      return inj->NodeDown(n);
    });
    cluster.tpc().set_gone_probe([inj = injector.get()](sim::NodeId n) {
      return inj->NeverRestarts(n);
    });

    repartitioner.EnableFaultHandling(fseed ^ 0x2545f4914f6cdd1dULL);
    repartitioner.set_backoff(spec->retry.base, spec->retry.cap);

    injector->set_on_crash([&](sim::NodeId n) {
      const auto node = static_cast<uint32_t>(n);
      ++recovery_epoch[node];
      cluster.node(node).Crash();
      cluster.tpc().OnNodeCrash(n);
      tm.OnNodeCrash(node);
      repartitioner.OnNodeCrash(node);
      if (replica_mgr != nullptr) replica_mgr->OnNodeCrash(node);
    });
    injector->set_on_restart([&](sim::NodeId n) {
      const auto node = static_cast<uint32_t>(n);
      // The checkpoint image plus the WAL suffix reproduce the committed
      // table; the replay job charges the node for that scan before it
      // takes new work.
      Status s = cluster.storage(node).CrashAndRecover();
      if (!s.ok()) {
        SOAP_LOG(kError) << "node " << node
                         << " recovery failed: " << s.ToString();
      }
      const auto wal_records =
          static_cast<Duration>(cluster.storage(node).wal().size());
      cluster.node(node).Restart();
      const Duration replay = config_.cluster.costs.recovery_fixed +
                              config_.cluster.costs.recovery_per_record *
                                  wal_records;
      const uint64_t epoch = recovery_epoch[node];
      cluster.node(node).RunJob(
          replay, cluster::WorkCategory::kExternal,
          cluster::JobClass::kUrgent, [&, node, replay, epoch]() {
            if (recovery_epoch[node] != epoch) return;  // re-crashed
            if (metrics) {
              metrics->GetHistogram("soap_node_recovery_seconds")
                  ->Record(replay);
            }
            repartitioner.OnNodeRestart(node);
            if (replica_mgr != nullptr) replica_mgr->OnNodeRestart(node);
            if (invariants != nullptr) {
              invariants->OnNodeRecovered(node, sim.Now());
            }
          });
    });
    if (metrics) injector->BindMetrics(metrics.get());
    injector->Start();
  }

  workload::WorkloadGenerator generator(&catalog, config_.seed * 7919 + 13);
  workload::WorkloadTrace record_trace;
  workload::WorkloadTrace replay_trace;
  const bool replaying = !config_.workload_options.replay_trace_path.empty();
  if (replaying) {
    Result<workload::WorkloadTrace> loaded =
        workload::WorkloadTrace::LoadFromFile(config_.workload_options.replay_trace_path);
    if (!loaded.ok()) {
      SOAP_LOG(kError) << "trace replay failed: "
                       << loaded.status().ToString();
      result.audit = loaded.status();
      return result;
    }
    replay_trace = std::move(loaded).value();
  }
  repartition::CostModel cost_model(cluster_config.costs,
                                    config_.workload_options.spec.queries_per_txn);
  workload::CapacityModel capacity;
  capacity.collocated_cost = cost_model.CollocatedTxnCost();
  capacity.distributed_cost = cost_model.DistributedTxnCost(2);
  capacity.total_workers = cluster.TotalWorkers();
  const double arrival_rate = workload::WorkloadGenerator::CalibrateArrivalRate(
      catalog, capacity, config_.workload_options.utilization);
  result.arrival_rate_txn_s = arrival_rate;
  result.capacity_txn_s =
      static_cast<double>(capacity.total_workers) * 1e6 /
      static_cast<double>(capacity.collocated_cost);
  const double per_interval_mean =
      arrival_rate * ToSeconds(config_.interval_length);

  // --- Per-interval bookkeeping.
  struct IntervalAccum {
    double latency_sum_ms = 0.0;
    uint64_t latency_count = 0;
    Histogram latency_histogram;  // microseconds
  } accum;
  cluster::TmCounters prev_counters;
  Duration prev_normal_work = 0;
  Duration prev_rep_work = 0;
  SimTime prev_boundary = 0;
  uint64_t prev_reads_routed = 0;
  uint64_t prev_replica_reads = 0;

  tm.set_pre_execution_hook(
      [&](txn::Transaction* t) { repartitioner.OnBeforeExecute(t); });
  tm.set_completion_callback([&](const txn::Transaction& t) {
    if (!t.is_repartition && t.committed()) {
      accum.latency_sum_ms += ToMillis(t.Latency());
      accum.latency_count++;
      accum.latency_histogram.Record(
          static_cast<uint64_t>(t.Latency()));
    }
    repartitioner.OnTxnComplete(t);
    if (online_planner != nullptr) online_planner->OnTxnComplete(t);
  });

  const uint32_t total_intervals =
      config_.warmup_intervals + config_.measured_intervals;

  auto close_interval = [&](uint32_t index) {
    const cluster::TmCounters& now = tm.counters();
    const Duration normal_work =
        cluster.TotalBusyTime(cluster::WorkCategory::kNormal);
    const Duration rep_work =
        cluster.TotalBusyTime(cluster::WorkCategory::kRepartition);

    core::IntervalStats stats;
    stats.index = index;
    stats.length = sim.Now() - prev_boundary;
    stats.normal_work = normal_work - prev_normal_work;
    stats.repartition_work = rep_work - prev_rep_work;
    stats.normal_submitted = now.submitted_normal -
                             prev_counters.submitted_normal;
    stats.normal_committed = now.committed_normal -
                             prev_counters.committed_normal;
    stats.normal_aborted = now.aborted_normal - prev_counters.aborted_normal;
    stats.repartition_committed = now.committed_repartition -
                                  prev_counters.committed_repartition;
    stats.repartition_aborted = now.aborted_repartition -
                                prev_counters.aborted_repartition;
    stats.piggybacked_ops_applied = now.piggybacked_ops_applied -
                                    prev_counters.piggybacked_ops_applied;

    // The paper's four series.
    result.rep_rate.Append(
        repartitioner.RepRate(now.repartition_ops_applied));
    const double minutes = ToSeconds(stats.length) / 60.0;
    result.throughput.Append(
        minutes > 0 ? static_cast<double>(stats.normal_committed) / minutes
                    : 0.0);
    result.latency_ms.Append(accum.latency_count > 0
                                 ? accum.latency_sum_ms /
                                       static_cast<double>(accum.latency_count)
                                 : 0.0);
    result.latency_p99_ms.Append(
        accum.latency_histogram.Percentile(99.0) / 1000.0);
    const uint64_t submitted =
        (now.total_submitted() - prev_counters.total_submitted());
    const uint64_t aborted = (now.total_aborted() - prev_counters.total_aborted());
    result.failure_rate.Append(
        submitted > 0
            ? static_cast<double>(aborted) / static_cast<double>(submitted)
            : 0.0);
    result.queue_length.Append(static_cast<double>(tm.queue().Size()));
    result.rep_work_ratio.Append(stats.RepartitionWorkRatio());
    const uint64_t committed_distributed =
        now.committed_normal_distributed -
        prev_counters.committed_normal_distributed;
    const double distributed_ratio_window =
        stats.normal_committed > 0
            ? static_cast<double>(committed_distributed) /
                  static_cast<double>(stats.normal_committed)
            : 0.0;
    result.distributed_ratio.Append(distributed_ratio_window);
    const uint64_t w_committed = now.committed_normal_with_writes -
                                 prev_counters.committed_normal_with_writes;
    const uint64_t w_distributed =
        now.committed_normal_distributed_writes -
        prev_counters.committed_normal_distributed_writes;
    result.distributed_write_ratio.Append(
        w_committed > 0 ? static_cast<double>(w_distributed) /
                              static_cast<double>(w_committed)
                        : 0.0);
    const double worker_time =
        ToSeconds(stats.length) * capacity.total_workers;
    result.utilization.Append(
        worker_time > 0
            ? ToSeconds(stats.normal_work + stats.repartition_work) /
                  worker_time
            : 0.0);

    if (replica_mgr != nullptr) {
      const uint64_t reads =
          cluster.router().reads_routed() - prev_reads_routed;
      const uint64_t from_replicas =
          cluster.router().replica_reads() - prev_replica_reads;
      result.replica_read_ratio.Append(
          reads > 0 ? static_cast<double>(from_replicas) /
                          static_cast<double>(reads)
                    : 0.0);
      prev_reads_routed = cluster.router().reads_routed();
      prev_replica_reads = cluster.router().replica_reads();
      replica_mgr->PublishGauges();
    }

    // Timeline snapshot: every timeline_interval-th closed interval, one
    // tick with per-partition load, queue depth, windowed lock-wait p99
    // and the routing-change flow counters accumulated by the TM.
    if (timeline != nullptr &&
        (index + 1) % config_.obs.timeline_interval == 0) {
      obs::TimelineTick tick;
      tick.t_us = sim.Now();
      tick.interval = index;
      tick.queue_depth = tm.queue().Size();
      tick.distributed_ratio = distributed_ratio_window;
      const obs::LatencyHistogram* lock_hist =
          metrics->FindHistogram("soap_lock_wait_seconds");
      tick.lock_wait_p99_ms =
          lock_hist != nullptr
              ? lock_wait_window.WindowPercentileMs(lock_hist->histogram(),
                                                    99.0)
              : 0.0;
      const SimTime window = sim.Now() - timeline_prev_tick;
      const double worker_window =
          ToSeconds(window) *
          static_cast<double>(cluster_config.workers_per_node);
      const router::RoutingTable& routing = cluster.routing_table();
      obs::PartitionFlows* flows = timeline->flows();
      tick.partitions.reserve(cluster.num_nodes());
      for (uint32_t p = 0; p < cluster.num_nodes(); ++p) {
        obs::TimelinePartitionRow row;
        row.partition = p;
        const Duration busy = cluster.node(p).total_busy_time();
        row.load = worker_window > 0
                       ? ToSeconds(busy - prev_node_busy[p]) / worker_window
                       : 0.0;
        prev_node_busy[p] = busy;
        row.queued_jobs = cluster.node(p).queued_jobs();
        row.primaries = routing.CountPrimaries(p);
        row.replicas = routing.CountReplicas(p);
        row.migrations_in =
            flows->migrations_in[p] - prev_flows.migrations_in[p];
        row.migrations_out =
            flows->migrations_out[p] - prev_flows.migrations_out[p];
        row.replica_creates =
            flows->replica_creates[p] - prev_flows.replica_creates[p];
        row.replica_drops =
            flows->replica_drops[p] - prev_flows.replica_drops[p];
        tick.partitions.push_back(row);
      }
      prev_flows = *flows;
      timeline_prev_tick = sim.Now();
      timeline->Record(std::move(tick));
    }

    accum = IntervalAccum{};
    prev_counters = now;
    prev_normal_work = normal_work;
    prev_rep_work = rep_work;
    prev_boundary = sim.Now();

    repartitioner.OnIntervalTick(stats);
    if (online_planner != nullptr) online_planner->OnIntervalTick(index);

    // Snapshot AFTER the tick so the controller gauges reflect the
    // decision just taken for the coming interval.
    if (metrics) {
      repartitioner.PublishMetrics(now.repartition_ops_applied);
      metrics->GetGauge("soap_interval_index")
          ->Set(static_cast<double>(index));
      for (uint32_t i = 0; i < cluster.num_nodes(); ++i) {
        metrics
            ->GetGauge("soap_node_busy_seconds",
                       "node=\"" + std::to_string(i) + "\"")
            ->Set(ToSeconds(cluster.node(i).total_busy_time()));
      }
      metrics->GetGauge("soap_cluster_normal_work_seconds")
          ->Set(ToSeconds(normal_work));
      metrics->GetGauge("soap_cluster_repartition_work_seconds")
          ->Set(ToSeconds(rep_work));
      if (cluster.mvcc_enabled()) {
        metrics->GetGauge("soap_mvcc_versions_live")
            ->Set(static_cast<double>(cluster.versions().versions_live()));
        metrics->GetGauge("soap_mvcc_gc_pruned_total")
            ->Set(static_cast<double>(cluster.versions().pruned_total()));
      }
      if (!config_.obs.metrics_jsonl_out.empty()) {
        metrics_jsonl << metrics->ToJsonLine(sim.Now(), index) << '\n';
      }
    }
  };

  // --- Capacity disturbance (external tenant stealing worker time).
  // Emitted as a dense train of short external jobs so the theft is
  // spread across the disturbance window instead of arriving in bursts.
  if (config_.fault_options.disturbance.enabled) {
    const Disturbance& d = config_.fault_options.disturbance;
    const Duration slice = Millis(100);
    const SimTime from =
        static_cast<SimTime>(d.start_interval) * config_.interval_length;
    const SimTime to =
        static_cast<SimTime>(d.end_interval) * config_.interval_length;
    const uint32_t workers = cluster_config.workers_per_node;
    for (SimTime at = from; at < to; at += slice) {
      sim.At(at, [&cluster, &d, slice, workers]() {
        // One slice-train per worker so `fraction` scales the node's
        // whole capacity.
        for (uint32_t w = 0; w < workers; ++w) {
          cluster.node(d.node).RunJob(
              static_cast<Duration>(d.fraction * static_cast<double>(slice)),
              cluster::WorkCategory::kExternal, cluster::JobClass::kUrgent,
              []() {});
        }
      });
    }
  }

  // --- Drive the intervals.
  for (uint32_t k = 0; k < total_intervals; ++k) {
    const SimTime start = static_cast<SimTime>(k) * config_.interval_length;
    sim.At(start, [&, k]() {
      // With the online planner the one-shot plan never deploys; the
      // planner emits its first generation at the same boundary.
      if (k == config_.warmup_intervals && online_planner == nullptr) {
        const bool started = repartitioner.StartRepartitioning();
        if (!started) {
          SOAP_LOG(kWarn) << "no repartitioning needed (empty plan)";
        }
      }
      std::vector<std::unique_ptr<txn::Transaction>> batch =
          replaying ? replay_trace.ReplayInterval(k, catalog)
                    : generator.GenerateInterval(per_interval_mean, k);
      for (auto& t : batch) {
        if (!config_.workload_options.record_trace_path.empty()) {
          int64_t value = 0;
          for (const txn::Operation& op : t->ops) {
            if (op.kind == txn::OpKind::kWrite) {
              value = op.write_value;
              break;
            }
          }
          const int phase = config_.workload_options.spec.PhaseIndexAt(k);
          record_trace.Record(k, t->template_id, value,
                              phase < 0 ? 0 : static_cast<uint32_t>(phase),
                              t->partner_template);
        }
        repartitioner.InterceptNormalSubmission(t.get());
        tm.Submit(std::move(t));
      }
    });
    const SimTime end =
        static_cast<SimTime>(k + 1) * config_.interval_length;
    sim.At(end, [&, k]() { close_interval(k); });
  }

  const SimTime run_end =
      static_cast<SimTime>(total_intervals) * config_.interval_length;
  sim.RunUntil(run_end);

  // --- Drain and audit.
  if (config_.drain_and_audit) {
    const SimTime drain_deadline = run_end + config_.drain_cap;
    while (sim.Now() < drain_deadline &&
           (tm.inflight() > 0 || !tm.queue().Empty())) {
      if (!sim.Step()) break;
    }
    result.drained = tm.inflight() == 0 && tm.queue().Empty();
    if (!result.drained && tm.inflight() == 0) {
      // Nothing is executing but transactions are still queued (e.g. the
      // drain cap hit while a node was down). They will never dispatch;
      // complete their callbacks with an abort so no submitter hangs.
      repartitioner.BeginShutdown();
      tm.DrainQueue(txn::AbortReason::kShutdown);
      result.drained = tm.inflight() == 0 && tm.queue().Empty();
    }
    const auto audit_t0 = std::chrono::steady_clock::now();
    result.audit = cluster.CheckConsistency();
    result.audit_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      audit_t0)
            .count();
    if (result.audit.ok() && cluster.lock_manager().LockedKeyCount() != 0) {
      result.audit = Status::Internal(
          "locks leaked after drain: " +
          std::to_string(cluster.lock_manager().LockedKeyCount()) +
          " keys still locked");
    }
  }

  if (!config_.workload_options.record_trace_path.empty()) {
    Status s = record_trace.SaveToFile(config_.workload_options.record_trace_path,
                                       static_cast<uint32_t>(catalog.size()));
    if (!s.ok()) {
      SOAP_LOG(kError) << "trace save failed: " << s.ToString();
    }
  }

  result.plan_ops_total = repartitioner.registry().total_ops();
  result.plan_ops_applied = tm.counters().repartition_ops_applied;
  result.piggybacked_ops = tm.counters().piggybacked_ops_applied;
  result.counters = tm.counters();
  result.lock_stats = cluster.lock_manager().stats();
  result.tpc_stats = cluster.tpc().stats();
  if (injector != nullptr) {
    result.faults_crashes = injector->stats().crashes;
    result.faults_msgs_dropped = injector->stats().msgs_dropped;
    result.faults_msgs_parked = injector->stats().msgs_parked;
  }
  result.plan_completed = repartitioner.Finished();
  result.plan_generations = repartitioner.rounds_started();
  if (online_planner != nullptr) {
    result.planner_stats = online_planner->stats();
  }
  if (replica_mgr != nullptr) {
    result.replica_stats = replica_mgr->stats();
    result.reads_routed = cluster.router().reads_routed();
    result.replica_reads = cluster.router().replica_reads();
    result.replica_count_final = cluster.routing_table().replicated_key_count();
  }
  result.end_time = sim.Now();
  result.events_executed = sim.events_executed();
  result.routing_bytes = cluster.routing_table().ApproxBytes();
  result.routing_ranges = cluster.routing_table().range_count();
  result.routing_exceptions = cluster.routing_table().exception_count();
  if (online_planner != nullptr) {
    result.graph_bytes = online_planner->graph().ApproxBytes();
    result.graph_vertices = online_planner->graph().vertex_count();
  }
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const storage::Table& table = cluster.storage(n).table();
    result.storage_bytes += table.ApproxBytes();
    result.storage_materialized_rows += table.materialized_size();
  }
  result.mvcc_enabled = cluster.mvcc_enabled();
  if (cluster.mvcc_enabled()) {
    result.mvcc_versions_live = cluster.versions().versions_live();
    result.mvcc_gc_pruned = cluster.versions().pruned_total();
  }

  // --- Consistency verdict: offline history audit plus the quiescent
  // invariant sweep (the sweep's preconditions — empty lock table, settled
  // routing — only hold once the drain succeeded).
  if (check_on) {
    if (invariants != nullptr && result.drained) {
      invariants->SweepQuiescent(sim.Now());
    }
    result.check_report = check::CheckHistory(
        *recorder,
        config_.cluster.isolation == cluster::IsolationLevel::kSerializable,
        cluster.mvcc_enabled());
    if (audit_log != nullptr) {
      // Mirror the offline checker's violations as audit records (the
      // invariant engine already wrote its own as they fired).
      for (const check::Violation& v : result.check_report.violations) {
        obs::AuditRecord rec(audit_log.get(), "invariant", v.at);
        rec.Str("check", v.check).Str("detail", v.detail);
      }
    }
    for (const check::Violation& v : invariants->violations()) {
      result.check_report.violations.push_back(v);
    }
    result.invariant_checks = invariants->checks_run();
    result.check_breaks_fired = tm.check_breaks_fired();
    if (audit_log != nullptr) {
      obs::AuditRecord rec(audit_log.get(), "check_summary", sim.Now());
      rec.U64("violations", result.check_report.violations.size())
          .U64("txns", result.check_report.txns_checked)
          .U64("reads", result.check_report.reads_checked)
          .U64("ww", result.check_report.ww_edges)
          .U64("wr", result.check_report.wr_edges)
          .U64("rw", result.check_report.rw_edges)
          .U64("rw_cycles", result.check_report.rw_cycles)
          .U64("invariant_checks", result.invariant_checks)
          .U64("breaks_fired", result.check_breaks_fired)
          .Bool("ok", result.check_report.ok());
    }
  }

  if (audit_log != nullptr) {
    // Trailer record: final counters so a truncated run is detectable and
    // the file summarises itself without the metrics export.
    const cluster::TmCounters& c = tm.counters();
    obs::AuditRecord rec(audit_log.get(), "run_end", sim.Now());
    rec.U64("events", sim.events_executed())
        .U64("committed_normal", c.committed_normal)
        .U64("committed_repartition", c.committed_repartition)
        .U64("repartition_ops_applied", c.repartition_ops_applied)
        .U64("piggybacked_ops_applied", c.piggybacked_ops_applied)
        .U64("rounds", repartitioner.rounds_started())
        .U64("aborts_deadlock", c.aborts_deadlock)
        .U64("aborts_lock_timeout", c.aborts_lock_timeout)
        .U64("aborts_queue_timeout", c.aborts_queue_timeout)
        .U64("aborts_vote", c.aborts_vote)
        .U64("aborts_node_crash", c.aborts_node_crash)
        .U64("aborts_shutdown", c.aborts_shutdown);
    // Only under --cc=mvcc, so 2PL audit files stay byte-identical.
    if (c.aborts_write_conflict > 0) {
      rec.U64("aborts_write_conflict", c.aborts_write_conflict);
    }
    rec.Bool("drained", result.drained);
  }

  // --- Observability exports.
  auto note_export = [&result](Status s) {
    if (!s.ok()) {
      SOAP_LOG(kError) << "observability export failed: " << s.ToString();
      if (result.obs_export.ok()) result.obs_export = std::move(s);
    }
  };
  if (tracer != nullptr) {
    result.critical_path = tracer->AggregateCriticalPath();
    if (!config_.obs.trace_out.empty()) {
      note_export(tracer->WriteChromeJson(config_.obs.trace_out));
    }
  }
  if (metrics != nullptr) {
    if (!config_.obs.metrics_out.empty()) {
      note_export(metrics->WriteFile(config_.obs.metrics_out,
                                     metrics->ToPrometheusText()));
    }
    if (!config_.obs.metrics_jsonl_out.empty()) {
      note_export(metrics->WriteFile(config_.obs.metrics_jsonl_out,
                                     metrics_jsonl.str()));
    }
  }
  if (audit_log != nullptr && !config_.obs.audit_out.empty()) {
    note_export(audit_log->WriteFile(config_.obs.audit_out));
  }
  if (recorder != nullptr && !config_.check.history_out.empty()) {
    note_export(recorder->WriteHistoryFile(config_.check.history_out));
  }
  if (timeline != nullptr && !config_.obs.timeline_out.empty()) {
    note_export(timeline->WriteFile(config_.obs.timeline_out));
  }
  result.metrics = std::move(metrics);
  result.tracer = std::move(tracer);
  result.audit_log = std::move(audit_log);
  result.timeline = std::move(timeline);
  return result;
}

std::string ExperimentResult::Summary() const {
  std::ostringstream os;
  os << strategy_name << ": arrival=" << arrival_rate_txn_s
     << " txn/s, capacity(collocated)=" << capacity_txn_s
     << " txn/s, plan=" << plan_ops_total << " ops, applied="
     << plan_ops_applied << " (piggybacked=" << piggybacked_ops
     << "), committed=" << counters.committed_normal
     << ", aborted=" << counters.aborted_normal
     << " normal txns, rep txns committed="
     << counters.committed_repartition
     << ", repartition complete @ interval " << RepartitionCompletedAt()
     << ", aborts[deadlock=" << counters.aborts_deadlock
     << " lock_timeout=" << counters.aborts_lock_timeout
     << " queue_timeout=" << counters.aborts_queue_timeout
     << " vote=" << counters.aborts_vote;
  if (counters.aborts_node_crash > 0 || counters.aborts_shutdown > 0) {
    os << " node_crash=" << counters.aborts_node_crash
       << " shutdown=" << counters.aborts_shutdown;
  }
  if (counters.aborts_write_conflict > 0) {
    os << " write_conflict=" << counters.aborts_write_conflict;
  }
  os << "]";
  if (mvcc_enabled) {
    os << ", mvcc[versions_live=" << mvcc_versions_live
       << " gc_pruned=" << mvcc_gc_pruned << "]";
  }
  if (faults_crashes > 0 || faults_msgs_dropped > 0 ||
      faults_msgs_parked > 0) {
    os << ", faults[crashes=" << faults_crashes
       << " msgs_dropped=" << faults_msgs_dropped
       << " msgs_parked=" << faults_msgs_parked
       << " 2pc_resends=" << tpc_stats.resends
       << " prepare_timeouts=" << tpc_stats.prepare_timeouts << "]";
  }
  if (planner_stats.txns_observed > 0) {
    os << ", planner[plans=" << planner_stats.plans_emitted
       << " ops=" << planner_stats.ops_emitted
       << " cut=" << planner_stats.last_cut_weight
       << " internal=" << planner_stats.last_internal_weight
       << " graph=" << planner_stats.last_graph_vertices << "v/"
       << planner_stats.last_graph_edges
       << "e skipped_active=" << planner_stats.replans_skipped_active
       << " skipped_small=" << planner_stats.replans_skipped_small
       << " dist_ratio_tail=" << distributed_ratio.TailMean(5) << "]";
  }
  if (replicas_enabled) {
    const double frac =
        reads_routed > 0 ? static_cast<double>(replica_reads) /
                               static_cast<double>(reads_routed)
                         : 0.0;
    os << ", replicas[creates=" << planner_stats.replica_creates_emitted
       << " drops=" << planner_stats.replica_drops_emitted
       << " replicated_keys=" << replica_count_final
       << " replica_read_frac=" << frac
       << " promotions=" << replica_stats.promotions
       << " failovers=" << replica_stats.failovers
       << " catchup_refreshed=" << replica_stats.catchup_refreshed
       << " catchup_dropped=" << replica_stats.catchup_dropped << "]";
  }
  if (lion_enabled) {
    os << ", lion[shifts_emitted=" << planner_stats.leader_shifts_emitted
       << " shifts_applied=" << counters.leader_shifts_applied
       << " evicted=" << planner_stats.replicas_evicted_budget
       << " denials=" << planner_stats.replica_budget_denials
       << " predictive=" << planner_stats.predictive_creates
       << " dist_write_tail=" << distributed_write_ratio.TailMean(5) << "]";
  }
  if (check_enabled) {
    os << ", check[violations=" << check_report.violations.size()
       << " txns=" << check_report.txns_checked
       << " reads=" << check_report.reads_checked
       << " ww=" << check_report.ww_edges << " wr=" << check_report.wr_edges
       << " rw=" << check_report.rw_edges
       << " invariant_checks=" << invariant_checks;
    if (check_breaks_fired > 0) {
      os << " breaks_fired=" << check_breaks_fired;
    }
    os << "]";
  }
  os << ", audit=" << audit.ToString();
  return os.str();
}

}  // namespace soap::engine
