// Experiment engine: reproduces the paper's evaluation procedure (§4.1).
// Time is divided into 20-second intervals; a Poisson number of normal
// transactions is submitted at the beginning of each interval; the system
// warms up for 10 intervals, then the repartitioning starts; the run lasts
// 45 minutes of virtual time. Per interval it records the four series the
// paper plots: RepRate, throughput (txn/min), processing latency (ms) and
// transaction failure rate.

#ifndef SOAP_ENGINE_EXPERIMENT_H_
#define SOAP_ENGINE_EXPERIMENT_H_

#include <memory>
#include <string>

#include "src/check/break_mode.h"
#include "src/check/checker.h"
#include "src/common/series.h"
#include "src/common/status.h"
#include "src/core/soap.h"
#include "src/obs/audit_log.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/txn_tracer.h"
#include "src/planner/planner.h"
#include "src/replica/replica_manager.h"
#include "src/txn/two_phase_commit.h"

namespace soap::engine {

/// Mid-run capacity disturbance: an external tenant steals `fraction` of
/// one node's workers between two interval boundaries. Exercises the
/// §3.3 adaptivity story — the feedback controller must absorb capacity
/// variations it cannot predict.
struct Disturbance {
  bool enabled = false;
  uint32_t node = 0;
  uint32_t start_interval = 0;
  uint32_t end_interval = 0;
  /// Fraction of the node's total worker capacity consumed (0, 1].
  double fraction = 0.5;
};

/// Observability outputs (see EXPERIMENTS.md, "Observability"). All off by
/// default; a disabled run takes no instrumentation path beyond cheap
/// null-pointer checks, so its results are identical to the seed's.
struct ObsOptions {
  /// Keep a MetricsRegistry on the result even without file outputs
  /// (tests and benches inspect it directly).
  bool collect_metrics = false;
  /// Keep the TxnTracer on the result even without trace_out.
  bool collect_trace = false;
  /// Prometheus text dump written once after the run (empty: off).
  std::string metrics_out;
  /// Per-interval JSONL snapshots, one object per closed interval
  /// (empty: off).
  std::string metrics_jsonl_out;
  /// Chrome trace-event JSON, loadable by Perfetto / chrome://tracing
  /// (empty: off).
  std::string trace_out;
  /// Trace every n-th transaction id (1 = all). Applies whenever tracing
  /// is on; 0 disables tracing even if trace_out is set.
  uint32_t trace_sample = 1;
  /// Keep the decision AuditLog on the result even without audit_out.
  bool collect_audit = false;
  /// Keep the per-partition Timeline on the result even without
  /// timeline_out.
  bool collect_timeline = false;
  /// Decision audit log (planner replans, per-candidate plan ops, deploy
  /// lifecycle, promotions/catch-ups, system-txn aborts) as JSONL
  /// (empty: off). Virtual-time only: byte-identical across thread
  /// counts and machines.
  std::string audit_out;
  /// Per-partition timeline snapshots as JSONL (empty: off). Implies
  /// metrics collection (the lock-wait window needs the TM histogram).
  std::string timeline_out;
  /// Snapshot every n-th closed interval (1 = every interval; 0 is
  /// rejected by Validate when a timeline is requested).
  uint32_t timeline_interval = 1;

  bool TraceEnabled() const {
    return trace_sample > 0 && (collect_trace || !trace_out.empty());
  }
  bool AuditEnabled() const { return collect_audit || !audit_out.empty(); }
  bool TimelineEnabled() const {
    return timeline_interval > 0 &&
           (collect_timeline || !timeline_out.empty());
  }
  bool MetricsEnabled() const {
    return collect_metrics || !metrics_out.empty() ||
           !metrics_jsonl_out.empty() || TimelineEnabled();
  }
};

/// Workload sub-config: what arrives, how much of it, and the trace
/// machinery that can capture or replace the generated stream.
struct WorkloadOptions {
  workload::WorkloadSpec spec = workload::WorkloadSpec::Zipf(1.0);
  /// Offered load relative to pre-repartitioning capacity: 1.30 HighLoad,
  /// 0.65 LowLoad (§4.1).
  double utilization = workload::kHighLoadUtilization;
  /// Sliding window (intervals) for the optimizer's frequency estimates.
  uint32_t history_window = 10;
  /// Record the generated arrival stream to this trace file (empty: off).
  std::string record_trace_path;
  /// Replay arrivals from this trace file instead of generating them
  /// (empty: generate). The trace must fit the catalog's template count.
  std::string replay_trace_path;
};

/// Deployment sub-config: which of the five strategies schedules the
/// repartition plan and how it is tuned.
struct DeploymentOptions {
  SchedulingStrategy strategy = SchedulingStrategy::kHybrid;
  core::FeedbackConfig feedback;      ///< SP per Table 1
  core::PiggybackConfig piggyback;
  /// Algorithm 1's grouping by default; the extremes for the ablation.
  core::PackagingMode packaging = core::PackagingMode::kPerBenefitingTemplate;
};

/// Fault sub-config: injected failures plus the capacity disturbance.
struct FaultOptions {
  /// Fault-injection spec (see src/fault/fault_spec.h for the grammar;
  /// EXPERIMENTS.md "Fault injection" for examples). Empty disables the
  /// fault layer entirely: the run is byte-identical to one built without
  /// it.
  std::string spec;
  Disturbance disturbance;
};

/// End-to-end consistency checking (src/check/). Off by default; off means
/// no recorder is attached, every hook in the hot path is one untaken
/// branch, and the run stays byte-identical to the seed. On, the run
/// records its full read/write history, verifies it offline after the
/// drain (serializability rules per the configured isolation level), and
/// sweeps the online invariants at the quiescent point.
struct CheckOptions {
  bool enabled = false;
  /// JSONL dump of the recorded history (empty: off; implies enabled).
  std::string history_out;
  /// Deliberate-corruption mode ("replica_apply", "double_deploy",
  /// "lost_write", "stale_snapshot"; empty/"none": off; implies enabled).
  /// Used by tests to prove the checker detects each bug class.
  std::string break_mode;

  bool Enabled() const {
    return enabled || !history_out.empty() ||
           (!break_mode.empty() && break_mode != "none");
  }
};

/// Online co-access-graph planner (src/planner/). Disabled by default:
/// the planner is then never constructed, the one-shot optimizer plan
/// deploys at the end of warmup as always, and the run stays
/// byte-identical to the static pipeline.
using PlannerOptions = planner::PlannerConfig;

/// Primary-copy replication (src/replica/). Off by default; off means no
/// replica is ever created, every replica-aware branch is a no-op, and
/// the run is byte-identical to a build without the subsystem.
struct ReplicaOptions {
  bool enabled = false;
  /// Total copies (primary included) the planner may give one key.
  uint32_t max_copies = 2;
  /// A key is replicated (instead of migrated) when its windowed reads
  /// exceed this ratio times its windowed writes.
  double min_read_write_ratio = 3.0;
  /// Share of a key's co-access pull a second partition must hold before
  /// the planner replicates instead of migrating (split fan-in test; see
  /// planner::PlanBuilderConfig::replica_split_threshold).
  double split_threshold = 0.2;
  /// Drop replicas whose key went cold, write-heavy or single-reader.
  bool drop_stale_replicas = true;
  /// Failure-detection delay before crashed primaries fail over to a
  /// surviving replica. During the window reads are served by replicas
  /// (kNearestLive routing); writes to the dead primary abort.
  Duration promotion_delay = Millis(500);
  /// Catch-up sweep cost on a restarted node (fixed + per stored tuple).
  Duration catchup_fixed = Millis(50);
  Duration catchup_per_tuple = Millis(3);
};

/// Lion-style adaptive replica provisioning (src/lion/): replica placement
/// treated as a budgeted cache, plus leader shifting so write-hot keys
/// converge to a single node. Off by default; off means the provisioner is
/// never constructed and the run is byte-identical to static replica-aware
/// planning. Requires `replicas.enabled` and `planner_options.enabled`.
struct LionOptions {
  bool enabled = false;
  /// Per-partition cap on planner-created replica copies. Must be >= 0;
  /// 0 admits no creations (shifting and dropping still run).
  int64_t replica_budget = 1024;
  /// Eviction policy applied when the budget is full: "lru" (least
  /// recently planner-touched copy) or "heat" (coldest key by the
  /// planner's heat estimate).
  std::string evict = "lru";
  /// Share of a key's windowed write mass a replica-holding partition
  /// must issue before the planner shifts leadership onto it. Must be
  /// in (0, 1].
  double shift_threshold = 0.6;
};

/// Production-cardinality scale-out knobs. Below the threshold everything
/// runs the exact paper-scale paths (byte-identical to the seed); above
/// it the stack flips to its sublinear representations: lazy storage
/// bases, a sketch-backed co-access graph, and supernode aggregation of
/// the cold tail.
struct ScaleOptions {
  /// Keyspaces up to this many tuples stay fully exact. 0 forces sketch
  /// mode at any size (testing only).
  uint64_t sketch_threshold = 1'000'000;
  /// Hot tuples tracked exactly by the planner in sketch mode.
  uint32_t sketch_topk = 4096;
  /// Cold-tail supernode ranges in sketch mode.
  uint32_t supernode_ranges = 1024;
};

/// Full configuration of one experiment run, grouped into cohesive
/// sub-structs. (The pre-split flat field names were reference aliases
/// for one release; all call sites now address the sub-structs.)
struct ExperimentConfig {
  WorkloadOptions workload_options;
  cluster::ClusterConfig cluster;
  uint32_t warmup_intervals = 10;
  uint32_t measured_intervals = 125;  ///< 10 + 125 intervals = 45 min
  Duration interval_length = Seconds(20);
  DeploymentOptions deployment;
  FaultOptions fault_options;
  PlannerOptions planner_options;
  ReplicaOptions replicas;
  LionOptions lion;
  ScaleOptions scale;
  CheckOptions check;
  ObsOptions obs;
  /// After the last interval: stop submitting and run the system dry, then
  /// audit storage/routing consistency.
  bool drain_and_audit = true;
  Duration drain_cap = Minutes(30);
  uint64_t seed = 1;

  /// Rejects inconsistent combinations (replaying a trace while drift
  /// phases are configured, tracing to a file with sampling off, replica
  /// settings that cannot fit the cluster, malformed fault specs, ...)
  /// instead of silently misbehaving. Run() validates; CLI frontends call
  /// this early to fail before building the stack.
  Status Validate() const;
};

struct ExperimentResult {
  std::string strategy_name;
  /// Per-interval series over all intervals (warmup included; the
  /// repartitioning starts at interval `warmup_intervals`).
  Series rep_rate{"rep_rate"};
  Series throughput{"throughput_txn_min"};    ///< committed normal txn/min
  Series latency_ms{"latency_ms"};            ///< mean, committed normal
  Series latency_p99_ms{"latency_p99_ms"};    ///< p99, committed normal
  Series failure_rate{"failure_rate"};        ///< aborted / submitted
  Series queue_length{"queue_length"};        ///< TM queue at interval end
  Series utilization{"utilization"};          ///< worker busy fraction
  /// Repartition work / normal work per interval — the PV the feedback
  /// controller stabilises (§3.3); compare against Table 1's SP - 1.
  Series rep_work_ratio{"rep_work_ratio"};
  /// Fraction of committed normal transactions whose queries spanned >1
  /// partition — the objective the (online or one-shot) plan minimises.
  Series distributed_ratio{"distributed_ratio"};
  /// Fraction of committed writing transactions whose writes fanned out to
  /// more than one storage site (remote query or HA write-through) — the
  /// metric lion's leader shifting drives down for write-hot keys.
  Series distributed_write_ratio{"distributed_write_ratio"};

  double arrival_rate_txn_s = 0.0;   ///< calibrated Poisson rate
  double capacity_txn_s = 0.0;       ///< collocated-only capacity
  uint64_t plan_ops_total = 0;
  uint64_t plan_ops_applied = 0;
  uint64_t piggybacked_ops = 0;
  cluster::TmCounters counters;      ///< final cumulative counters
  txn::LockStats lock_stats;
  /// Fault-layer tallies; all zero unless `fault_spec` was set.
  uint64_t faults_crashes = 0;
  uint64_t faults_msgs_dropped = 0;
  uint64_t faults_msgs_parked = 0;
  txn::TpcStats tpc_stats;
  /// Online-planner tallies; all zero unless `planner.enabled` was set.
  planner::PlannerStats planner_stats;
  /// True when lion adaptive provisioning ran (`lion.enabled`).
  bool lion_enabled = false;
  /// Replication tallies; all zero unless `replicas.enabled` was set.
  bool replicas_enabled = false;
  replica::ReplicaStats replica_stats;
  uint64_t reads_routed = 0;          ///< read queries routed (replica mode)
  uint64_t replica_reads = 0;         ///< of those, served by a non-primary
  uint64_t replica_count_final = 0;   ///< keys with >=1 replica at end of run
  /// Per-interval fraction of routed reads served by replicas.
  Series replica_read_ratio{"replica_read_ratio"};
  /// Plan generations deployed (1 for the static one-shot pipeline).
  uint64_t plan_generations = 0;
  /// Consistency-checker outputs; defaults unless `check` was enabled.
  bool check_enabled = false;
  /// Offline history verdict merged with the online invariant sweep.
  check::CheckReport check_report;
  /// Online invariant checks evaluated (sweeps + lifecycle hooks).
  uint64_t invariant_checks = 0;
  /// Deliberate corruptions injected by --check_break (0 or 1).
  uint64_t check_breaks_fired = 0;
  /// MVCC engine tallies (--cc=mvcc); all zero under 2PL.
  bool mvcc_enabled = false;
  uint64_t mvcc_versions_live = 0;
  uint64_t mvcc_gc_pruned = 0;
  Status audit = Status::OK();       ///< end-of-run consistency audit
  bool drained = false;
  bool plan_completed = false;
  SimTime end_time = 0;
  uint64_t events_executed = 0;
  /// Wall-clock spent in the two one-time O(keyspace) phases of Run():
  /// stack construction through bulk load + checkpoint, and the end-of-run
  /// consistency audit. Purely observational (never fed back into the
  /// simulation); lets scaling benches separate steady-state event rate
  /// from setup/teardown that a long horizon amortises away.
  double load_wall_seconds = 0.0;
  double audit_wall_seconds = 0.0;
  /// End-of-run control-plane footprint (rough heap estimates for the
  /// scaling reports, not allocator-exact): the routing table, the online
  /// planner's co-access graph (0 when the planner is off), and the sum
  /// over all node tables, plus their cardinalities.
  uint64_t routing_bytes = 0;
  uint64_t routing_ranges = 0;
  uint64_t routing_exceptions = 0;
  uint64_t graph_bytes = 0;
  uint64_t graph_vertices = 0;
  uint64_t storage_bytes = 0;
  /// Rows actually held in memory; lazy tables synthesize the rest.
  uint64_t storage_materialized_rows = 0;

  /// Observability artifacts; null unless the matching ObsOptions switch
  /// was on. shared_ptr because results get copied into panel vectors.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::TxnTracer> tracer;
  std::shared_ptr<obs::AuditLog> audit_log;
  std::shared_ptr<obs::Timeline> timeline;
  /// Aggregated phase times of the traced transactions (zeros when
  /// tracing was off).
  obs::CriticalPathBreakdown critical_path;
  /// First failure among the metrics/trace file writes (OK when all
  /// succeeded or nothing was written).
  Status obs_export = Status::OK();

  /// Interval index at which RepRate first reached ~1 (-1 if never).
  int RepartitionCompletedAt() const {
    return rep_rate.FirstIndexAtLeast(0.999);
  }
  /// Human-readable one-paragraph summary.
  std::string Summary() const;
};

/// Builds the full stack for one configuration and runs it to completion.
/// Deterministic given the config (including seed).
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Runs the experiment; may be called once.
  ExperimentResult Run();

  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  bool ran_ = false;
};

/// Convenience: builds the scheduler for a strategy.
std::unique_ptr<core::Scheduler> MakeScheduler(
    SchedulingStrategy strategy, const core::FeedbackConfig& feedback,
    const core::PiggybackConfig& piggyback);

}  // namespace soap::engine

#endif  // SOAP_ENGINE_EXPERIMENT_H_
