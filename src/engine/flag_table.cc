#include "src/engine/flag_table.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/mvcc/cc_mode.h"

namespace soap::engine {

namespace {

std::string TypeName(FlagType type) {
  switch (type) {
    case FlagType::kBool: return "";
    case FlagType::kInt: return "N";
    case FlagType::kDouble: return "F";
    case FlagType::kString: return "S";
  }
  return "";
}

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string FlagTable::Help(std::string_view program,
                            std::string_view tagline) const {
  size_t width = 0;
  for (const FlagDef& def : defs_) {
    if (def.hidden) continue;
    const std::string arg = TypeName(def.type);
    width = std::max(width, def.name.size() + (arg.empty() ? 0 : 1 + arg.size()));
  }
  std::ostringstream os;
  os << program << " — " << tagline << "\n";
  // Fixed subsystem order; a heading prints only when its group has
  // visible rows, rows keep their table order inside each group, and
  // groups the order does not know about (frontend Add()s) trail it.
  std::vector<std::string> order = {"cluster", "workload", "deployment",
                                    "planner", "replica", "lion",
                                    "obs",     "check",    "faults",
                                    "general"};
  for (const FlagDef& def : defs_) {
    const std::string g = def.group.empty() ? "general" : def.group;
    if (std::find(order.begin(), order.end(), g) == order.end()) {
      order.push_back(g);
    }
  }
  for (const std::string& group : order) {
    bool heading = false;
    for (const FlagDef& def : defs_) {
      if (def.hidden) continue;
      const std::string g = def.group.empty() ? "general" : def.group;
      if (g != group) continue;
      if (!heading) {
        os << "\n" << group << ":\n";
        heading = true;
      }
      std::string left = "--" + def.name;
      const std::string arg = TypeName(def.type);
      if (!arg.empty()) left += " " + arg;
      os << "  " << left << std::string(width + 4 - left.size() + 2, ' ')
         << def.help;
      if (!def.default_text.empty()) os << "  (" << def.default_text << ")";
      os << "\n";
    }
  }
  return os.str();
}

Status FlagTable::CheckUnknown(const Flags& flags) const {
  for (const std::string& name : flags.Names()) {
    bool known = false;
    for (const FlagDef& def : defs_) {
      if (def.name == name) {
        known = true;
        break;
      }
    }
    if (known) continue;
    // Near-miss: smallest edit distance <= 2, or a prefix relation (the
    // common "--replica" for "--replicas" class of typo).
    const FlagDef* best = nullptr;
    size_t best_distance = 3;
    for (const FlagDef& def : defs_) {
      size_t d = EditDistance(name, def.name);
      if (def.name.rfind(name, 0) == 0 || name.rfind(def.name, 0) == 0) {
        d = std::min(d, static_cast<size_t>(1));
      }
      if (d < best_distance) {
        best_distance = d;
        best = &def;
      }
    }
    std::string message = "unknown flag --" + name;
    if (best != nullptr) {
      message += " (did you mean --" + best->name + "?)";
    } else {
      message += " (see --help)";
    }
    return Status::InvalidArgument(message);
  }
  return Status::OK();
}

Status CheckEnumValue(const std::string& flag, const std::string& value,
                      const std::vector<std::string>& allowed) {
  for (const std::string& a : allowed) {
    if (value == a) return Status::OK();
  }
  std::string message = "unknown --" + flag + " value '" + value + "'";
  const std::string* best = nullptr;
  size_t best_distance = 3;
  for (const std::string& a : allowed) {
    const size_t d = EditDistance(value, a);
    if (d < best_distance) {
      best_distance = d;
      best = &a;
    }
  }
  if (best != nullptr) {
    message += " (did you mean " + *best + "?)";
  } else {
    std::string list;
    for (const std::string& a : allowed) {
      if (!list.empty()) list += "|";
      list += a;
    }
    message += " (one of " + list + ")";
  }
  return Status::InvalidArgument(message);
}

Status FlagTable::Apply(const Flags& flags, ExperimentConfig* config) const {
  for (const FlagDef& def : defs_) {
    if (!def.bind) continue;
    if (Status s = def.bind(flags, config); !s.ok()) return s;
  }
  return Status::OK();
}

FlagTable ExperimentFlagTable() {
  using F = const Flags&;
  using C = ExperimentConfig*;
  std::vector<FlagDef> defs;

  defs.push_back({"strategy", FlagType::kString, "hybrid",
                  "applyall|afterall|feedback|piggyback|hybrid",
                  [](F f, C c) -> Status {
                    const std::string v = f.GetString("strategy", "hybrid");
                    if (Status s = CheckEnumValue(
                            "strategy", v,
                            {"applyall", "afterall", "feedback", "piggyback",
                             "hybrid"});
                        !s.ok()) {
                      return s;
                    }
                    if (v == "applyall") {
                      c->deployment.strategy = SchedulingStrategy::kApplyAll;
                    } else if (v == "afterall") {
                      c->deployment.strategy = SchedulingStrategy::kAfterAll;
                    } else if (v == "feedback") {
                      c->deployment.strategy = SchedulingStrategy::kFeedback;
                    } else if (v == "piggyback") {
                      c->deployment.strategy = SchedulingStrategy::kPiggyback;
                    } else {
                      c->deployment.strategy = SchedulingStrategy::kHybrid;
                    }
                    return Status::OK();
                  }});
  defs.push_back({"alpha", FlagType::kDouble, "1.0",
                  "fraction of templates starting distributed", nullptr});
  defs.push_back({"workload", FlagType::kString, "zipf", "zipf|uniform",
                  [](F f, C c) -> Status {
                    const double alpha = f.GetDouble("alpha", 1.0);
                    const std::string v = f.GetString("workload", "zipf");
                    if (Status s = CheckEnumValue("workload", v,
                                                  {"zipf", "uniform"});
                        !s.ok()) {
                      return s;
                    }
                    if (v == "zipf") {
                      c->workload_options.spec = workload::WorkloadSpec::Zipf(alpha);
                    } else {
                      c->workload_options.spec = workload::WorkloadSpec::Uniform(alpha);
                    }
                    return Status::OK();
                  }});
  defs.push_back({"templates", FlagType::kInt, "paper",
                  "distinct transaction templates",
                  [](F f, C c) -> Status {
                    if (f.Has("templates")) {
                      c->workload_options.spec.num_templates =
                          static_cast<uint32_t>(f.GetInt("templates"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"keys", FlagType::kInt, "paper", "tuples in the table",
                  [](F f, C c) -> Status {
                    if (f.Has("keys")) {
                      c->workload_options.spec.num_keys =
                          static_cast<uint64_t>(f.GetInt("keys"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"num_keys", FlagType::kInt, "paper",
                  "tuples in the table (alias of --keys; above "
                  "--sketch_threshold the stack switches to lazy storage "
                  "and sketch-based planning)",
                  [](F f, C c) -> Status {
                    if (f.Has("num_keys")) {
                      c->workload_options.spec.num_keys =
                          static_cast<uint64_t>(f.GetInt("num_keys"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"sketch_threshold", FlagType::kInt, "1000000",
                  "largest keyspace that keeps the exact per-tuple paths; "
                  "above it storage bases go lazy and the planner's graph "
                  "uses top-k + count-min sketches with supernodes",
                  [](F f, C c) -> Status {
                    if (f.Has("sketch_threshold")) {
                      c->scale.sketch_threshold =
                          static_cast<uint64_t>(f.GetInt("sketch_threshold"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"sketch_topk", FlagType::kInt, "4096",
                  "hot tuples tracked exactly by the planner in sketch mode",
                  [](F f, C c) -> Status {
                    if (f.Has("sketch_topk")) {
                      c->scale.sketch_topk =
                          static_cast<uint32_t>(f.GetInt("sketch_topk"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"load", FlagType::kString, "high",
                  "high|low, or a raw utilisation number",
                  [](F f, C c) -> Status {
                    const std::string v = f.GetString("load", "high");
                    if (v == "high") {
                      c->workload_options.utilization = workload::kHighLoadUtilization;
                    } else if (v == "low") {
                      c->workload_options.utilization = workload::kLowLoadUtilization;
                    } else {
                      try {
                        c->workload_options.utilization = std::stod(v);
                      } catch (...) {
                        return Status::InvalidArgument("bad --load " + v);
                      }
                    }
                    return Status::OK();
                  }});
  defs.push_back({"isolation", FlagType::kString, "readcommitted",
                  "readcommitted|serializable",
                  [](F f, C c) -> Status {
                    const std::string v =
                        f.GetString("isolation", "readcommitted");
                    if (Status s = CheckEnumValue(
                            "isolation", v, {"readcommitted", "serializable"});
                        !s.ok()) {
                      return s;
                    }
                    if (v == "serializable") {
                      c->cluster.isolation =
                          cluster::IsolationLevel::kSerializable;
                    }
                    return Status::OK();
                  }});
  defs.push_back({"cc", FlagType::kString, "2pl",
                  "2pl|mvcc: concurrency control (mvcc = snapshot reads "
                  "off version chains, lock-free read path, "
                  "first-updater-wins write conflicts)",
                  [](F f, C c) -> Status {
                    const std::string v = f.GetString("cc", "2pl");
                    if (Status s = CheckEnumValue("cc", v, {"2pl", "mvcc"});
                        !s.ok()) {
                      return s;
                    }
                    if (!mvcc::ParseCc(v, &c->cluster.cc)) {
                      return Status::InvalidArgument("unknown --cc " + v);
                    }
                    return Status::OK();
                  }});
  defs.push_back({"warmup", FlagType::kInt, "10", "warmup intervals",
                  [](F f, C c) -> Status {
                    c->warmup_intervals =
                        static_cast<uint32_t>(f.GetInt("warmup", 10));
                    return Status::OK();
                  }});
  defs.push_back({"intervals", FlagType::kInt, "125", "measured intervals",
                  [](F f, C c) -> Status {
                    c->measured_intervals =
                        static_cast<uint32_t>(f.GetInt("intervals", 125));
                    return Status::OK();
                  }});
  defs.push_back({"sp", FlagType::kDouble, "1.05",
                  "feedback setpoint (total/normal cost ratio)",
                  [](F f, C c) -> Status {
                    c->deployment.feedback.sp = f.GetDouble("sp", 1.05);
                    return Status::OK();
                  }});
  defs.push_back({"seed", FlagType::kInt, "1", "RNG seed",
                  [](F f, C c) -> Status {
                    c->seed = static_cast<uint64_t>(f.GetInt("seed", 1));
                    return Status::OK();
                  }});
  defs.push_back({"record-trace", FlagType::kString, "",
                  "save the arrival stream for replay",
                  [](F f, C c) -> Status {
                    c->workload_options.record_trace_path = f.GetString("record-trace", "");
                    return Status::OK();
                  }});
  defs.push_back({"replay-trace", FlagType::kString, "",
                  "drive the run from a recorded trace",
                  [](F f, C c) -> Status {
                    c->workload_options.replay_trace_path = f.GetString("replay-trace", "");
                    return Status::OK();
                  }});
  defs.push_back({"metrics_out", FlagType::kString, "",
                  "Prometheus text dump of the run's metrics",
                  [](F f, C c) -> Status {
                    c->obs.metrics_out = f.GetString("metrics_out", "");
                    return Status::OK();
                  }});
  defs.push_back({"metrics_jsonl", FlagType::kString, "",
                  "per-interval JSONL metric snapshots",
                  [](F f, C c) -> Status {
                    c->obs.metrics_jsonl_out =
                        f.GetString("metrics_jsonl", "");
                    return Status::OK();
                  }});
  defs.push_back({"trace_out", FlagType::kString, "",
                  "Chrome trace JSON (Perfetto-loadable)",
                  [](F f, C c) -> Status {
                    c->obs.trace_out = f.GetString("trace_out", "");
                    return Status::OK();
                  }});
  defs.push_back({"trace_sample", FlagType::kInt, "1",
                  "trace every n-th transaction",
                  [](F f, C c) -> Status {
                    c->obs.trace_sample =
                        static_cast<uint32_t>(f.GetInt("trace_sample", 1));
                    return Status::OK();
                  }});
  defs.push_back({"audit_out", FlagType::kString, "",
                  "decision audit log JSONL (replans, plan ops, deploys)",
                  [](F f, C c) -> Status {
                    c->obs.audit_out = f.GetString("audit_out", "");
                    return Status::OK();
                  }});
  defs.push_back({"timeline_out", FlagType::kString, "",
                  "per-partition timeline JSONL (load, queues, flows)",
                  [](F f, C c) -> Status {
                    c->obs.timeline_out = f.GetString("timeline_out", "");
                    return Status::OK();
                  }});
  defs.push_back({"timeline_interval", FlagType::kInt, "1",
                  "snapshot the timeline every n-th interval",
                  [](F f, C c) -> Status {
                    c->obs.timeline_interval = static_cast<uint32_t>(
                        f.GetInt("timeline_interval", 1));
                    return Status::OK();
                  }});
  defs.push_back({"fault_spec", FlagType::kString, "",
                  "inject faults, e.g. 'crash:node=2,at=120s,down=15s;"
                  "drop:p=0.01' (see EXPERIMENTS.md)",
                  [](F f, C c) -> Status {
                    c->fault_options.spec = f.GetString("fault_spec", "");
                    return Status::OK();
                  }});
  defs.push_back({"planner", FlagType::kBool, "off",
                  "enable the online co-access-graph planner",
                  [](F f, C c) -> Status {
                    if (f.GetBool("planner")) c->planner_options.enabled = true;
                    return Status::OK();
                  }});
  defs.push_back({"replan", FlagType::kInt, "3",
                  "planner replan period in intervals",
                  [](F f, C c) -> Status {
                    if (f.Has("replan")) {
                      c->planner_options.replan_period =
                          static_cast<uint32_t>(f.GetInt("replan"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"plan_ops", FlagType::kInt, "2048",
                  "max repartition ops per emitted plan",
                  [](F f, C c) -> Status {
                    if (f.Has("plan_ops")) {
                      c->planner_options.builder.max_ops =
                          static_cast<uint32_t>(f.GetInt("plan_ops"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"plan_min_heat", FlagType::kInt, "1",
                  "min co-access weight to move a key",
                  [](F f, C c) -> Status {
                    if (f.Has("plan_min_heat")) {
                      c->planner_options.builder.min_vertex_weight =
                          static_cast<uint64_t>(f.GetInt("plan_min_heat"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"drift_phases", FlagType::kInt, "3",
                  "number of drift phases", nullptr});
  defs.push_back({"drift_phase_len", FlagType::kInt, "8",
                  "intervals per drift phase", nullptr});
  defs.push_back({"pair_fraction", FlagType::kDouble, "0.35",
                  "cross-template paired-txn fraction", nullptr});
  defs.push_back({"write_fraction", FlagType::kDouble, "",
                  "fraction of each template's accesses that write",
                  [](F f, C c) -> Status {
                    if (f.Has("write_fraction")) {
                      c->workload_options.spec.write_fraction =
                          f.GetDouble("write_fraction");
                    }
                    return Status::OK();
                  }});
  // After --warmup and --workload: drift rewrites the spec using both.
  defs.push_back({"drift", FlagType::kString, "",
                  "hotspot|skewflip|mixrotation: drifting workload (phases "
                  "start right after warmup)",
                  [](F f, C c) -> Status {
                    const std::string v = f.GetString("drift", "");
                    if (v.empty()) return Status::OK();
                    if (Status s = CheckEnumValue(
                            "drift", v,
                            {"hotspot", "skewflip", "mixrotation"});
                        !s.ok()) {
                      return s;
                    }
                    const auto phases =
                        static_cast<uint32_t>(f.GetInt("drift_phases", 3));
                    const auto phase_len = static_cast<uint32_t>(
                        f.GetInt("drift_phase_len", 8));
                    const double pair = f.GetDouble("pair_fraction", 0.35);
                    if (v == "hotspot") {
                      c->workload_options.spec = workload::WorkloadSpec::HotspotDrift(
                          c->workload_options.spec, c->warmup_intervals, phases, phase_len,
                          pair);
                    } else if (v == "skewflip") {
                      c->workload_options.spec = workload::WorkloadSpec::SkewFlip(
                          c->workload_options.spec, c->warmup_intervals, phases, phase_len,
                          /*high_s=*/1.16, /*low_s=*/0.4, pair);
                    } else {
                      c->workload_options.spec = workload::WorkloadSpec::MixRotation(
                          c->workload_options.spec, c->warmup_intervals, phases, phase_len,
                          pair);
                    }
                    return Status::OK();
                  }});
  defs.push_back({"pair_affinity", FlagType::kBool, "off",
                  "hub partner keyed by issuing partition instead of base "
                  "template (stable across popularity rotation); needs "
                  "--pair_hub",
                  nullptr});
  defs.push_back({"pair_write", FlagType::kDouble, "0",
                  "probability a paired txn writes its borrowed hub keys "
                  "instead of reading them",
                  nullptr});
  // After --drift: the hub phase stacks on whatever spec is in place.
  defs.push_back({"pair_hub", FlagType::kInt, "0",
                  "pair a --pair_fraction share of txns with one of the N "
                  "hottest templates (shared reference data; 0 = chained "
                  "pairing)",
                  [](F f, C c) -> Status {
                    const int hub = f.GetInt("pair_hub", 0);
                    if (hub <= 0) return Status::OK();
                    workload::DriftPhase phase;
                    phase.start_interval = 0;
                    phase.zipf_s = c->workload_options.spec.zipf_s;
                    phase.pair_fraction = f.GetDouble("pair_fraction", 0.35);
                    phase.pair_hub = static_cast<uint32_t>(hub);
                    phase.pair_affinity = f.GetBool("pair_affinity");
                    phase.pair_write = f.GetDouble("pair_write", 0.0);
                    c->workload_options.spec.phases.push_back(phase);
                    return Status::OK();
                  }});
  defs.push_back({"replicas", FlagType::kBool, "off",
                  "primary-copy replication: planner replicates read-heavy "
                  "keys, reads route to the nearest live copy (implies "
                  "--planner)",
                  [](F f, C c) -> Status {
                    if (f.GetBool("replicas")) {
                      c->replicas.enabled = true;
                      c->planner_options.enabled = true;
                    }
                    return Status::OK();
                  }});
  defs.push_back({"replica_copies", FlagType::kInt, "2",
                  "total copies per key, primary included",
                  [](F f, C c) -> Status {
                    if (f.Has("replica_copies")) {
                      c->replicas.max_copies =
                          static_cast<uint32_t>(f.GetInt("replica_copies"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"replica_ratio", FlagType::kDouble, "3.0",
                  "min read/write ratio to replicate instead of migrate",
                  [](F f, C c) -> Status {
                    if (f.Has("replica_ratio")) {
                      c->replicas.min_read_write_ratio =
                          f.GetDouble("replica_ratio");
                    }
                    return Status::OK();
                  }});
  defs.push_back({"replica_split", FlagType::kDouble, "0.2",
                  "min second-partition share of a key's co-access pull "
                  "to replicate instead of migrate",
                  [](F f, C c) -> Status {
                    if (f.Has("replica_split")) {
                      c->replicas.split_threshold =
                          f.GetDouble("replica_split");
                    }
                    return Status::OK();
                  }});
  defs.push_back({"promotion_delay_ms", FlagType::kInt, "500",
                  "failure-detection delay before replica promotion",
                  [](F f, C c) -> Status {
                    if (f.Has("promotion_delay_ms")) {
                      c->replicas.promotion_delay =
                          Millis(f.GetInt("promotion_delay_ms"));
                    }
                    return Status::OK();
                  }});
  defs.push_back({"replica_keep_stale", FlagType::kBool, "off",
                  "keep replicas whose key went cold or write-heavy",
                  [](F f, C c) -> Status {
                    if (f.GetBool("replica_keep_stale")) {
                      c->replicas.drop_stale_replicas = false;
                    }
                    return Status::OK();
                  }});
  defs.push_back({"lion", FlagType::kBool, "off",
                  "adaptive replica provisioning: budgeted replica cache, "
                  "predictive admission, leader shifting for write-hot keys "
                  "(implies --replicas and --planner)",
                  [](F f, C c) -> Status {
                    if (f.GetBool("lion")) {
                      c->lion.enabled = true;
                      c->replicas.enabled = true;
                      c->planner_options.enabled = true;
                    }
                    return Status::OK();
                  }});
  defs.push_back({"replica_budget", FlagType::kInt, "1024",
                  "per-partition cap on lion-created replica copies",
                  [](F f, C c) -> Status {
                    if (f.Has("replica_budget")) {
                      c->lion.replica_budget = f.GetInt("replica_budget");
                    }
                    return Status::OK();
                  }});
  defs.push_back({"shift_threshold", FlagType::kDouble, "0.6",
                  "share of a key's windowed write mass a replica holder "
                  "must issue before leadership shifts onto it",
                  [](F f, C c) -> Status {
                    if (f.Has("shift_threshold")) {
                      c->lion.shift_threshold =
                          f.GetDouble("shift_threshold");
                    }
                    return Status::OK();
                  }});
  defs.push_back({"evict", FlagType::kString, "lru",
                  "lru|heat: lion replica eviction when the budget is full",
                  [](F f, C c) -> Status {
                    const std::string v = f.GetString("evict", "lru");
                    if (Status s =
                            CheckEnumValue("evict", v, {"lru", "heat"});
                        !s.ok()) {
                      return s;
                    }
                    c->lion.evict = v;
                    return Status::OK();
                  }});
  defs.push_back({"check", FlagType::kBool, "off",
                  "record the run's history and verify consistency "
                  "(serializability audit + online invariants)",
                  [](F f, C c) -> Status {
                    if (f.GetBool("check")) c->check.enabled = true;
                    return Status::OK();
                  }});
  defs.push_back({"history_out", FlagType::kString, "",
                  "JSONL dump of the recorded history (implies --check)",
                  [](F f, C c) -> Status {
                    c->check.history_out = f.GetString("history_out", "");
                    return Status::OK();
                  }});
  // Hidden checker self-test hook: injects exactly one deliberate bug of
  // the named class so tests can prove the checker catches it.
  defs.push_back({"check_break", FlagType::kString, "",
                  "replica_apply|double_deploy|lost_write|stale_snapshot|"
                  "double_primary: corrupt one apply/observation on purpose "
                  "(implies --check; testing only)",
                  [](F f, C c) -> Status {
                    c->check.break_mode = f.GetString("check_break", "");
                    return Status::OK();
                  },
                  /*hidden=*/true});
  defs.push_back({"log_level", FlagType::kString, "warn",
                  "debug|info|warn|error",
                  [](F f, C c) -> Status {
                    (void)c;
                    const std::string v = f.GetString("log_level", "");
                    if (v.empty()) return Status::OK();
                    std::optional<LogLevel> level = ParseLogLevel(v);
                    if (!level.has_value()) {
                      return Status::InvalidArgument("unknown --log_level " +
                                                     v);
                    }
                    Logger::Instance().set_level(*level);
                    return Status::OK();
                  }});
  defs.push_back({"help", FlagType::kBool, "", "this text", nullptr});

  // Subsystem grouping for --help, assigned by name so the row literals
  // above stay positional. Unlisted rows fall under "general".
  const std::vector<std::pair<std::string, std::string>> groups = {
      {"isolation", "cluster"},        {"cc", "cluster"},
      {"alpha", "workload"},           {"workload", "workload"},
      {"templates", "workload"},       {"keys", "workload"},
      {"num_keys", "workload"},        {"load", "workload"},
      {"write_fraction", "workload"},  {"drift", "workload"},
      {"drift_phases", "workload"},    {"drift_phase_len", "workload"},
      {"pair_fraction", "workload"},   {"pair_hub", "workload"},
      {"pair_affinity", "workload"},   {"pair_write", "workload"},
      {"record-trace", "workload"},    {"replay-trace", "workload"},
      {"strategy", "deployment"},      {"sp", "deployment"},
      {"warmup", "deployment"},        {"intervals", "deployment"},
      {"planner", "planner"},          {"replan", "planner"},
      {"plan_ops", "planner"},         {"plan_min_heat", "planner"},
      {"sketch_threshold", "planner"}, {"sketch_topk", "planner"},
      {"replicas", "replica"},         {"replica_copies", "replica"},
      {"replica_ratio", "replica"},    {"replica_split", "replica"},
      {"promotion_delay_ms", "replica"},
      {"replica_keep_stale", "replica"},
      {"lion", "lion"},                {"replica_budget", "lion"},
      {"shift_threshold", "lion"},     {"evict", "lion"},
      {"metrics_out", "obs"},          {"metrics_jsonl", "obs"},
      {"trace_out", "obs"},            {"trace_sample", "obs"},
      {"audit_out", "obs"},            {"timeline_out", "obs"},
      {"timeline_interval", "obs"},
      {"check", "check"},              {"history_out", "check"},
      {"check_break", "check"},
      {"fault_spec", "faults"},
  };
  for (FlagDef& def : defs) {
    for (const auto& [name, group] : groups) {
      if (def.name == name) {
        def.group = group;
        break;
      }
    }
  }
  return FlagTable(std::move(defs));
}

}  // namespace soap::engine
