// Declarative command-line surface for the experiment stack: one table of
// (name, type, default, help, config binding) rows replaces the hand-rolled
// flag plumbing that soap_run and the figure benches used to duplicate.
// The table generates --help, applies the bindings to an ExperimentConfig
// in row order (so later rows may read flags earlier rows declared), and
// rejects unknown flags with a near-miss suggestion instead of silently
// ignoring a typo.

#ifndef SOAP_ENGINE_FLAG_TABLE_H_
#define SOAP_ENGINE_FLAG_TABLE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/flags.h"
#include "src/engine/experiment.h"

namespace soap::engine {

enum class FlagType { kBool, kInt, kDouble, kString };

struct FlagDef {
  std::string name;
  FlagType type = FlagType::kString;
  /// Default as shown in --help (empty: no default printed).
  std::string default_text;
  std::string help;
  /// Applies the flag to the config; null for rows the frontend consumes
  /// itself (presentation flags like --csv) or that another row's binding
  /// reads (e.g. --alpha, folded into --workload's binding).
  std::function<Status(const Flags&, ExperimentConfig*)> bind;
  /// Accepted but left out of --help (testing hooks like --check_break).
  bool hidden = false;
  /// Subsystem heading the flag is listed under in --help (cluster,
  /// planner, replica, lion, obs, check, ...). Empty rows group under
  /// "general". Assigned by ExperimentFlagTable after the rows are built,
  /// so row literals stay positional.
  std::string group;
};

class FlagTable {
 public:
  explicit FlagTable(std::vector<FlagDef> defs) : defs_(std::move(defs)) {}

  const std::vector<FlagDef>& defs() const { return defs_; }

  /// Appends rows (frontend-specific flags on top of a shared table).
  void Add(FlagDef def) { defs_.push_back(std::move(def)); }

  /// Generated usage text: tagline, then one aligned row per flag.
  std::string Help(std::string_view program, std::string_view tagline) const;

  /// Rejects flags that match no row. The error names the offender and,
  /// when a row is within edit distance 2 (or is a prefix/extension),
  /// suggests it: `unknown flag --seedz (did you mean --seeds?)`.
  Status CheckUnknown(const Flags& flags) const;

  /// Runs every row's binding against `config`, in table order; stops at
  /// the first failure.
  Status Apply(const Flags& flags, ExperimentConfig* config) const;

 private:
  std::vector<FlagDef> defs_;
};

/// Validates an enum-valued flag's value against its allowed spellings.
/// OK when `value` matches one; otherwise InvalidArgument naming the flag
/// and, when an allowed value is within edit distance 2, suggesting it:
/// `unknown --cc value 'mvvc' (did you mean mvcc?)`. With no near miss the
/// error lists the allowed set instead.
Status CheckEnumValue(const std::string& flag, const std::string& value,
                      const std::vector<std::string>& allowed);

/// The shared experiment flag table: everything that configures an
/// ExperimentConfig (workload, strategy, planner, replication, faults,
/// observability). Frontends copy it and Add() their presentation flags.
FlagTable ExperimentFlagTable();

}  // namespace soap::engine

#endif  // SOAP_ENGINE_FLAG_TABLE_H_
