#include "src/engine/parallel_runner.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

namespace soap::engine {

namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::vector<CellOutcome> ParallelRunner::Run(std::vector<ExperimentCell> cells,
                                             const ResultFn& on_result) {
  std::vector<CellOutcome> outcomes(cells.size());
  if (cells.empty()) return outcomes;

  unsigned threads = threads_;
  if (threads > cells.size()) threads = static_cast<unsigned>(cells.size());
  if (threads <= 1) {
    // Serial path: identical to the historical bench loop — run, report,
    // advance. Kept free of any pool machinery so single-threaded runs
    // have exactly the seed's behaviour and timing profile.
    for (size_t i = 0; i < cells.size(); ++i) {
      const auto start = std::chrono::steady_clock::now();
      Experiment experiment(std::move(cells[i].config));
      outcomes[i].index = i;
      outcomes[i].result = experiment.Run();
      outcomes[i].wall_seconds = Elapsed(start);
      if (on_result) on_result(outcomes[i]);
    }
    return outcomes;
  }

  // Work-stealing-free dispatch: cells are claimed in order via an atomic
  // cursor; completion is signalled per cell so the caller can stream
  // outcome i as soon as 0..i are all done.
  std::atomic<size_t> next{0};
  std::vector<char> done(cells.size(), 0);
  std::mutex mu;
  std::condition_variable cv;

  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      const auto start = std::chrono::steady_clock::now();
      Experiment experiment(std::move(cells[i].config));
      CellOutcome outcome;
      outcome.index = i;
      outcome.result = experiment.Run();
      outcome.wall_seconds = Elapsed(start);
      {
        std::lock_guard<std::mutex> guard(mu);
        outcomes[i] = std::move(outcome);
        done[i] = 1;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);

  // Stream results in input order from the calling thread.
  {
    std::unique_lock<std::mutex> guard(mu);
    for (size_t i = 0; i < cells.size(); ++i) {
      cv.wait(guard, [&] { return done[i] != 0; });
      if (on_result) {
        guard.unlock();
        on_result(outcomes[i]);
        guard.lock();
      }
    }
  }
  for (auto& t : pool) t.join();
  return outcomes;
}

unsigned ParseThreadCount(const char* text) {
  if (text == nullptr || *text == '\0') return 1;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 1) return 1;
  const long kMax = 256;
  return static_cast<unsigned>(value < kMax ? value : kMax);
}

}  // namespace soap::engine
