// ParallelRunner: fans independent experiment cells across a bounded pool
// of worker threads while reporting results strictly in input order.
//
// Every Experiment owns its whole stack (simulator, RNGs, metrics), and the
// only cross-experiment global — the Logger's virtual-time clock — is
// thread-local, so cells share nothing and each cell's result is
// bit-identical to a serial run of the same config. With `threads <= 1` the
// runner degenerates to the exact serial loop the benches always had.

#ifndef SOAP_ENGINE_PARALLEL_RUNNER_H_
#define SOAP_ENGINE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/engine/experiment.h"

namespace soap::engine {

/// One unit of work: a config to run plus its position in the panel.
struct ExperimentCell {
  ExperimentConfig config;
};

/// Outcome of one cell, augmented with host-side timing.
struct CellOutcome {
  size_t index = 0;           ///< position in the input vector
  ExperimentResult result;
  double wall_seconds = 0.0;  ///< host wall-clock spent inside Run()
};

class ParallelRunner {
 public:
  /// Called once per cell, always in input order (cell i is reported only
  /// after cells 0..i-1), from the caller's thread.
  using ResultFn = std::function<void(const CellOutcome&)>;

  /// `threads` is clamped to [1, cells.size()]; 1 means run serially on
  /// the calling thread with no pool at all.
  explicit ParallelRunner(unsigned threads) : threads_(threads) {}

  /// Runs every cell and streams outcomes to `on_result` in input order.
  /// Blocks until all cells finished. Returns the outcomes, also in input
  /// order (the callback may be null if only the return value is wanted).
  std::vector<CellOutcome> Run(std::vector<ExperimentCell> cells,
                               const ResultFn& on_result = nullptr);

  unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

/// Parses a `--threads N` style value (also used for SOAP_BENCH_THREADS):
/// returns 1 for empty/invalid input, otherwise the clamped count.
unsigned ParseThreadCount(const char* text);

}  // namespace soap::engine

#endif  // SOAP_ENGINE_PARALLEL_RUNNER_H_
