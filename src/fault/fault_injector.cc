#include "src/fault/fault_injector.h"

#include "src/common/logging.h"

namespace soap::fault {

void FaultInjector::Start() {
  for (const CrashEvent& ev : spec_.crashes) {
    sim_->At(ev.at, [this, ev] { Crash(ev); });
  }
  // Partition windows need no scheduled events: Partitioned() compares the
  // current virtual time against each window on the message path.
}

void FaultInjector::Crash(const CrashEvent& ev) {
  if (down_.count(ev.node) != 0) return;  // already down
  down_.insert(ev.node);
  ++stats_.crashes;
  if (m_crashes_) m_crashes_->Increment();
  SOAP_LOG(kInfo) << "fault: crashing node " << ev.node << " at t="
                 << ToSeconds(sim_->Now()) << "s (down "
                 << ToSeconds(ev.down) << "s)";
  if (on_crash_) on_crash_(ev.node);
  if (ev.down > 0) {
    sim_->After(ev.down, [this, node = ev.node] { Restart(node); });
  } else {
    gone_.insert(ev.node);
  }
}

void FaultInjector::Restart(sim::NodeId node) {
  if (down_.erase(node) == 0) return;
  ++stats_.restarts;
  if (m_restarts_) m_restarts_->Increment();
  SOAP_LOG(kInfo) << "fault: restarting node " << node << " at t="
                 << ToSeconds(sim_->Now()) << "s";
  if (on_restart_) on_restart_(node);
  // Redeliver messages parked for this node, in arrival order, shortly
  // after the restart so they queue behind the recovery replay job.
  std::vector<sim::InlineFn> redeliver;
  auto it = parked_.begin();
  while (it != parked_.end()) {
    if (it->first == node) {
      redeliver.push_back(std::move(it->second));
      it = parked_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& deliver : redeliver) {
    // The node can crash *again* inside this 1ms window (or later, while
    // its WAL replay is still in flight). Re-check at delivery time and
    // re-park instead of handing a message to a down node — it will ride
    // the next restart.
    sim_->After(Millis(1), [this, node, d = std::move(deliver)]() mutable {
      if (down_.count(node) != 0) {
        Park(node, std::move(d));
        return;
      }
      ++stats_.msgs_redelivered;
      if (m_redelivered_) m_redelivered_->Increment();
      d();
    });
  }
}

bool FaultInjector::Partitioned(sim::NodeId from, sim::NodeId to) const {
  const SimTime now = sim_->Now();
  for (const PartitionEvent& ev : spec_.partitions) {
    if (now >= ev.at && now < ev.at + ev.duration &&
        ev.Separates(from, to)) {
      return true;
    }
  }
  return false;
}

sim::MsgFate FaultInjector::OnMessage(sim::NodeId from, sim::NodeId to,
                                      sim::MsgClass cls) {
  sim::MsgFate fate;
  // A crashed sender emits nothing; its in-flight work is aborted by the
  // crash callback, so the message is simply lost.
  if (down_.count(from) != 0) {
    fate.action = sim::MsgFate::Action::kDrop;
    ++stats_.msgs_dropped;
    if (m_dropped_) m_dropped_->Increment();
    return fate;
  }
  // A down destination parks idempotent control traffic for redelivery at
  // restart; data transfers fail fast so the sender aborts.
  if (down_.count(to) != 0) {
    if (cls == sim::MsgClass::kControl) {
      fate.action = sim::MsgFate::Action::kPark;
    } else {
      fate.action = sim::MsgFate::Action::kDrop;
      ++stats_.msgs_dropped;
      if (m_dropped_) m_dropped_->Increment();
    }
    return fate;
  }
  if (from != to && Partitioned(from, to)) {
    fate.action = sim::MsgFate::Action::kDrop;
    ++stats_.msgs_dropped;
    if (m_dropped_) m_dropped_->Increment();
    return fate;
  }
  for (const MessageRule& rule : spec_.drops) {
    if (rule.Matches(from, to) && rng_.NextBernoulli(rule.p)) {
      fate.action = sim::MsgFate::Action::kDrop;
      ++stats_.msgs_dropped;
      if (m_dropped_) m_dropped_->Increment();
      return fate;
    }
  }
  for (const MessageRule& rule : spec_.delays) {
    if (rule.Matches(from, to) && rng_.NextBernoulli(rule.p)) {
      fate.extra_delay += rule.add;
      ++stats_.msgs_delayed;
    }
  }
  if (cls == sim::MsgClass::kControl) {
    for (const MessageRule& rule : spec_.dups) {
      if (rule.Matches(from, to) && rng_.NextBernoulli(rule.p)) {
        fate.duplicate = true;
        ++stats_.msgs_duplicated;
        break;
      }
    }
  }
  return fate;
}

void FaultInjector::Park(sim::NodeId to, sim::InlineFn deliver) {
  ++stats_.msgs_parked;
  if (m_parked_) m_parked_->Increment();
  parked_.emplace_back(to, std::move(deliver));
}

void FaultInjector::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_crashes_ = nullptr;
    m_restarts_ = nullptr;
    m_dropped_ = nullptr;
    m_parked_ = nullptr;
    m_redelivered_ = nullptr;
    return;
  }
  m_crashes_ = registry->GetCounter("soap_fault_crashes_total");
  m_restarts_ = registry->GetCounter("soap_fault_restarts_total");
  m_dropped_ = registry->GetCounter("soap_fault_msgs_dropped_total");
  m_parked_ = registry->GetCounter("soap_fault_msgs_parked_total");
  m_redelivered_ = registry->GetCounter("soap_fault_msgs_redelivered_total");
}

}  // namespace soap::fault
