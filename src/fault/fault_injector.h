// FaultInjector: executes a FaultSpec against one simulated run. Crashes,
// restarts and partition windows become ordinary simulator events scheduled
// up front; per-message fates (drop / delay / duplicate / park) are decided
// synchronously from Network's send path via the NetworkFaultHooks
// interface, using a dedicated RNG so the workload's random stream is
// untouched.
//
// Crash/restart sequencing contract (relied on by engine::Experiment):
//   crash event:   mark node down  -> on_crash callback
//   restart event: mark node up    -> on_restart callback -> redeliver
//                  parked messages (they queue behind recovery work)
//
// Control messages addressed to a down node are parked (store-and-forward)
// and redelivered at restart; data messages fail fast so the owning
// transaction aborts instead of hanging.

#ifndef SOAP_FAULT_FAULT_INJECTOR_H_
#define SOAP_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/fault/fault_spec.h"
#include "src/obs/metrics.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace soap::fault {

struct FaultStats {
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t msgs_dropped = 0;
  uint64_t msgs_parked = 0;
  uint64_t msgs_redelivered = 0;
  uint64_t msgs_duplicated = 0;
  uint64_t msgs_delayed = 0;
};

class FaultInjector : public sim::NetworkFaultHooks {
 public:
  FaultInjector(sim::Simulator* sim, FaultSpec spec, uint64_t seed)
      : sim_(sim), spec_(std::move(spec)), rng_(seed) {}

  /// Invoked right after the node is marked down / back up.
  void set_on_crash(std::function<void(sim::NodeId)> fn) {
    on_crash_ = std::move(fn);
  }
  void set_on_restart(std::function<void(sim::NodeId)> fn) {
    on_restart_ = std::move(fn);
  }

  /// Schedules all crash/restart events from the spec. Call once, before
  /// Simulator::Run.
  void Start();

  bool NodeDown(sim::NodeId node) const {
    return down_.count(node) != 0;
  }

  /// True for a node crashed with down=0: it is gone for good, nothing
  /// parked for it will ever be redelivered. Consumers (the 2PC decision
  /// retry) stop waiting on such nodes.
  bool NeverRestarts(sim::NodeId node) const {
    return gone_.count(node) != 0;
  }

  // sim::NetworkFaultHooks
  sim::MsgFate OnMessage(sim::NodeId from, sim::NodeId to,
                         sim::MsgClass cls) override;
  void Park(sim::NodeId to, sim::InlineFn deliver) override;

  const FaultStats& stats() const { return stats_; }

  /// Publishes fault counters into `registry` (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  void Crash(const CrashEvent& ev);
  void Restart(sim::NodeId node);
  bool Partitioned(sim::NodeId from, sim::NodeId to) const;

  sim::Simulator* sim_;
  FaultSpec spec_;
  Rng rng_;
  std::function<void(sim::NodeId)> on_crash_;
  std::function<void(sim::NodeId)> on_restart_;
  std::set<sim::NodeId> down_;
  std::set<sim::NodeId> gone_;
  std::vector<std::pair<sim::NodeId, sim::InlineFn>> parked_;
  FaultStats stats_;
  obs::Counter* m_crashes_ = nullptr;
  obs::Counter* m_restarts_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
  obs::Counter* m_parked_ = nullptr;
  obs::Counter* m_redelivered_ = nullptr;
};

}  // namespace soap::fault

#endif  // SOAP_FAULT_FAULT_INJECTOR_H_
