#include "src/fault/fault_spec.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace soap::fault {

namespace {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

Result<Duration> ParseDuration(const std::string& value) {
  if (value.empty()) return Status::InvalidArgument("empty duration");
  size_t pos = 0;
  const long long magnitude = std::strtoll(value.c_str(), nullptr, 10);
  while (pos < value.size() &&
         (std::isdigit(static_cast<unsigned char>(value[pos])) ||
          value[pos] == '-' || value[pos] == '+')) {
    ++pos;
  }
  const std::string suffix = value.substr(pos);
  if (pos == 0) {
    return Status::InvalidArgument("bad duration '" + value + "'");
  }
  Duration unit = kMicrosecond;
  if (suffix == "us" || suffix.empty()) {
    unit = kMicrosecond;
  } else if (suffix == "ms") {
    unit = kMillisecond;
  } else if (suffix == "s") {
    unit = kSecond;
  } else if (suffix == "m") {
    unit = kMinute;
  } else {
    return Status::InvalidArgument("bad duration suffix '" + value + "'");
  }
  return static_cast<Duration>(magnitude) * unit;
}

Result<uint64_t> ParseUint(const std::string& value) {
  if (value.empty() ||
      !std::isdigit(static_cast<unsigned char>(value[0]))) {
    return Status::InvalidArgument("bad integer '" + value + "'");
  }
  return static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
}

Result<double> ParseDouble(const std::string& value) {
  char* end = nullptr;
  const double d = std::strtod(value.c_str(), &end);
  if (value.empty() || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + value + "'");
  }
  return d;
}

/// "1-3" into an unordered edge.
Status ParseEdge(const std::string& value, MessageRule* rule) {
  const std::vector<std::string> ends = Split(value, '-');
  if (ends.size() != 2) {
    return Status::InvalidArgument("bad edge '" + value + "' (want a-b)");
  }
  Result<uint64_t> a = ParseUint(ends[0]);
  Result<uint64_t> b = ParseUint(ends[1]);
  if (!a.ok()) return a.status();
  if (!b.ok()) return b.status();
  rule->edge_a = static_cast<int32_t>(*a);
  rule->edge_b = static_cast<int32_t>(*b);
  return Status::OK();
}

/// Key=value pairs of one clause body.
Result<std::vector<std::pair<std::string, std::string>>> ParsePairs(
    const std::string& body, const std::string& clause) {
  std::vector<std::pair<std::string, std::string>> pairs;
  if (body.empty()) return pairs;
  for (const std::string& item : Split(body, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("bad parameter '" + item +
                                     "' in clause '" + clause + "'");
    }
    pairs.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return pairs;
}

Status UnknownKey(const std::string& key, const std::string& clause) {
  return Status::InvalidArgument("unknown key '" + key + "' in clause '" +
                                 clause + "'");
}

std::string DurationToString(Duration d) {
  std::ostringstream os;
  if (d != 0 && d % kSecond == 0) {
    os << (d / kSecond) << "s";
  } else if (d != 0 && d % kMillisecond == 0) {
    os << (d / kMillisecond) << "ms";
  } else {
    os << d << "us";
  }
  return os.str();
}

std::string RuleToString(const char* kind, const MessageRule& rule) {
  std::ostringstream os;
  os << kind << ":p=" << rule.p;
  if (rule.add != 0) os << ",add=" << DurationToString(rule.add);
  if (rule.edge_a >= 0) os << ",edge=" << rule.edge_a << "-" << rule.edge_b;
  return os.str();
}

}  // namespace

Result<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  for (const std::string& clause : Split(text, ';')) {
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    const std::string kind = clause.substr(0, colon);
    const std::string body =
        colon == std::string::npos ? "" : clause.substr(colon + 1);

    if (kind == "seed") {
      Result<uint64_t> s = ParseUint(body);
      if (!s.ok()) return s.status();
      spec.seed = *s;
      continue;
    }

    auto pairs = ParsePairs(body, clause);
    if (!pairs.ok()) return pairs.status();

    if (kind == "crash") {
      CrashEvent ev;
      for (const auto& [key, value] : *pairs) {
        if (key == "node") {
          Result<uint64_t> n = ParseUint(value);
          if (!n.ok()) return n.status();
          ev.node = static_cast<uint32_t>(*n);
        } else if (key == "at") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          ev.at = *d;
        } else if (key == "down") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          ev.down = *d;
        } else {
          return UnknownKey(key, clause);
        }
      }
      spec.crashes.push_back(ev);
    } else if (kind == "drop" || kind == "delay" || kind == "dup") {
      MessageRule rule;
      for (const auto& [key, value] : *pairs) {
        if (key == "p") {
          Result<double> p = ParseDouble(value);
          if (!p.ok()) return p.status();
          if (*p < 0.0 || *p > 1.0) {
            return Status::InvalidArgument("probability out of [0,1]: " +
                                           value);
          }
          rule.p = *p;
        } else if (key == "add" && kind == "delay") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          rule.add = *d;
        } else if (key == "edge") {
          SOAP_RETURN_NOT_OK(ParseEdge(value, &rule));
        } else {
          return UnknownKey(key, clause);
        }
      }
      if (kind == "delay" && rule.add <= 0) {
        return Status::InvalidArgument("delay clause needs add=<duration>");
      }
      if (kind == "drop") {
        spec.drops.push_back(rule);
      } else if (kind == "delay") {
        spec.delays.push_back(rule);
      } else {
        spec.dups.push_back(rule);
      }
    } else if (kind == "partition") {
      PartitionEvent ev;
      for (const auto& [key, value] : *pairs) {
        if (key == "at") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          ev.at = *d;
        } else if (key == "for") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          ev.duration = *d;
        } else if (key == "group") {
          for (const std::string& node : Split(value, '-')) {
            Result<uint64_t> n = ParseUint(node);
            if (!n.ok()) return n.status();
            ev.group.push_back(static_cast<uint32_t>(*n));
          }
        } else {
          return UnknownKey(key, clause);
        }
      }
      if (ev.duration <= 0 || ev.group.empty()) {
        return Status::InvalidArgument(
            "partition clause needs for=<duration>,group=a-b-...");
      }
      spec.partitions.push_back(ev);
    } else if (kind == "tpc") {
      for (const auto& [key, value] : *pairs) {
        if (key == "prepare_to") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          spec.tpc.prepare_timeout = *d;
        } else if (key == "ack_to") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          spec.tpc.ack_timeout = *d;
        } else if (key == "resends") {
          Result<uint64_t> n = ParseUint(value);
          if (!n.ok()) return n.status();
          spec.tpc.max_resends = static_cast<uint32_t>(*n);
        } else if (key == "backoff") {
          Result<double> b = ParseDouble(value);
          if (!b.ok()) return b.status();
          spec.tpc.backoff = *b;
        } else if (key == "jitter") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          spec.tpc.jitter = *d;
        } else {
          return UnknownKey(key, clause);
        }
      }
    } else if (kind == "retry") {
      for (const auto& [key, value] : *pairs) {
        if (key == "base") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          spec.retry.base = *d;
        } else if (key == "cap") {
          Result<Duration> d = ParseDuration(value);
          if (!d.ok()) return d.status();
          spec.retry.cap = *d;
        } else {
          return UnknownKey(key, clause);
        }
      }
    } else {
      return Status::InvalidArgument("unknown fault clause '" + kind + "'");
    }
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&os, &first]() {
    if (!first) os << ";";
    first = false;
  };
  for (const CrashEvent& ev : crashes) {
    sep();
    os << "crash:node=" << ev.node << ",at=" << DurationToString(ev.at)
       << ",down=" << DurationToString(ev.down);
  }
  for (const MessageRule& rule : drops) {
    sep();
    os << RuleToString("drop", rule);
  }
  for (const MessageRule& rule : delays) {
    sep();
    os << RuleToString("delay", rule);
  }
  for (const MessageRule& rule : dups) {
    sep();
    os << RuleToString("dup", rule);
  }
  for (const PartitionEvent& ev : partitions) {
    sep();
    os << "partition:at=" << DurationToString(ev.at)
       << ",for=" << DurationToString(ev.duration) << ",group=";
    for (size_t i = 0; i < ev.group.size(); ++i) {
      if (i > 0) os << "-";
      os << ev.group[i];
    }
  }
  if (seed != 0) {
    sep();
    os << "seed:" << seed;
  }
  return os.str();
}

}  // namespace soap::fault
