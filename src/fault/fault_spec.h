// Fault plan specification: a small parseable grammar describing which
// failures to inject into one run. The spec is the single determinism
// boundary of soap::fault — identical (seed, workload, fault_spec) triples
// produce identical runs, and an empty spec injects nothing at all.
//
// Grammar (clauses separated by ';', parameters by ','):
//
//   crash:node=2,at=120s,down=15s      crash node 2 at t=120s, restart
//                                      after 15s (down=0: never restarts)
//   drop:p=0.01[,edge=1-3]             drop each message with prob. p,
//                                      optionally only between nodes 1,3
//   delay:p=0.05,add=10ms[,edge=a-b]   add `add` extra latency with prob. p
//   dup:p=0.02[,edge=a-b]              duplicate control messages
//   partition:at=100s,for=20s,group=0-1  cut nodes {0,1} off from the rest
//                                        for the window [at, at+for)
//   tpc:prepare_to=3s,ack_to=3s,resends=3,backoff=2.0,jitter=100ms
//                                      2PC timeout/retry tuning
//   retry:base=500ms,cap=30s           repartition resubmission backoff
//   seed:7                             fault RNG seed (default: derived
//                                      from the experiment seed)
//
// Durations accept the suffixes us, ms, s and m; a bare number means
// microseconds.

#ifndef SOAP_FAULT_FAULT_SPEC_H_
#define SOAP_FAULT_FAULT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/time.h"

namespace soap::fault {

/// One scheduled node crash (and optional restart).
struct CrashEvent {
  uint32_t node = 0;
  SimTime at = 0;
  /// Downtime before the restart fires; 0 means the node never comes back.
  Duration down = Seconds(15);
};

/// A probabilistic message rule (drop / duplicate / extra delay). The rule
/// applies to every message unless an edge restricts it to the unordered
/// node pair {a, b}.
struct MessageRule {
  double p = 0.0;
  /// Edge restriction; -1 = any node.
  int32_t edge_a = -1;
  int32_t edge_b = -1;
  /// Extra latency for delay rules; unused by drop/dup.
  Duration add = 0;

  bool Matches(uint32_t from, uint32_t to) const {
    if (edge_a < 0) return true;
    const auto a = static_cast<uint32_t>(edge_a);
    const auto b = static_cast<uint32_t>(edge_b);
    return (from == a && to == b) || (from == b && to == a);
  }
};

/// A transient network partition: during [at, at+duration) messages
/// between `group` and its complement are cut.
struct PartitionEvent {
  SimTime at = 0;
  Duration duration = 0;
  std::vector<uint32_t> group;

  bool Separates(uint32_t from, uint32_t to) const {
    bool from_in = false;
    bool to_in = false;
    for (uint32_t n : group) {
      if (n == from) from_in = true;
      if (n == to) to_in = true;
    }
    return from_in != to_in;
  }
};

/// 2PC timeout/retry tuning (consumed by txn::TwoPhaseCommitDriver).
struct TpcTuning {
  Duration prepare_timeout = Seconds(3);
  Duration ack_timeout = Seconds(3);
  uint32_t max_resends = 3;
  double backoff = 2.0;
  Duration jitter = Millis(100);
};

/// Repartition resubmission backoff tuning (consumed by the Repartitioner).
struct RetryTuning {
  Duration base = Millis(500);
  Duration cap = Seconds(30);
};

/// The parsed fault plan.
struct FaultSpec {
  std::vector<CrashEvent> crashes;
  std::vector<MessageRule> drops;
  std::vector<MessageRule> delays;
  std::vector<MessageRule> dups;
  std::vector<PartitionEvent> partitions;
  TpcTuning tpc;
  RetryTuning retry;
  /// Explicit fault RNG seed; 0 = derive from the experiment seed.
  uint64_t seed = 0;

  /// True when the spec injects no faults (tuning-only specs count as
  /// empty: there is nothing for the tuned machinery to react to).
  bool empty() const {
    return crashes.empty() && drops.empty() && delays.empty() &&
           dups.empty() && partitions.empty();
  }

  /// Parses the grammar above. Unknown clauses or keys are errors, so a
  /// typo cannot silently produce a fault-free run.
  static Result<FaultSpec> Parse(const std::string& text);

  /// Canonical round-trippable rendering (Parse(ToString()) == *this).
  std::string ToString() const;
};

}  // namespace soap::fault

#endif  // SOAP_FAULT_FAULT_SPEC_H_
