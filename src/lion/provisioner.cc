#include "src/lion/provisioner.h"

#include <algorithm>

namespace soap::lion {

void Provisioner::BeginCycle(const router::RoutingTable& routing) {
  ++cycle_;
  occupancy_.clear();
  hosted_.clear();
  picked_.clear();
  routing.ForEachReplicated(
      [this](storage::TupleKey key, const router::Placement& placement) {
        for (router::PartitionId rep : placement.replicas) {
          hosted_[rep].push_back(key);
        }
      });
  for (auto& [partition, keys] : hosted_) {
    std::sort(keys.begin(), keys.end());
    occupancy_[partition] = static_cast<uint32_t>(keys.size());
  }
  // Age out recency/trend state for copies that no longer exist (keeps
  // both maps bounded by the live replica set).
  auto hosted_on = [this](storage::TupleKey key, uint32_t partition) {
    auto it = hosted_.find(partition);
    if (it == hosted_.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), key);
  };
  for (auto it = last_touch_.begin(); it != last_touch_.end();) {
    if (!hosted_on(it->first.key, it->first.partition)) {
      it = last_touch_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = trend_.begin(); it != trend_.end();) {
    if (it->second.cycle + 1 < cycle_) {
      it = trend_.erase(it);
    } else {
      ++it;
    }
  }
}

void Provisioner::Touch(storage::TupleKey key, uint32_t partition) {
  last_touch_[{key, partition}] = cycle_;
}

bool Provisioner::ChargeCreate(uint32_t partition) {
  uint32_t& used = occupancy_[partition];
  if (used >= config_.replica_budget) return false;
  ++used;
  return true;
}

void Provisioner::Release(uint32_t partition) {
  uint32_t& used = occupancy_[partition];
  if (used > 0) --used;
}

std::optional<storage::TupleKey> Provisioner::PickEviction(
    uint32_t partition, storage::TupleKey except, const HeatFn& heat) {
  auto it = hosted_.find(partition);
  if (it == hosted_.end()) return std::nullopt;
  bool found = false;
  storage::TupleKey victim = 0;
  uint64_t best_score = 0;
  for (storage::TupleKey key : it->second) {  // ascending: ties -> lowest key
    if (key == except || picked_.count(key) > 0) continue;
    uint64_t score = 0;
    if (config_.evict == EvictPolicy::kLru) {
      auto touch = last_touch_.find({key, partition});
      score = touch == last_touch_.end() ? 0 : touch->second;
    } else {
      score = heat ? heat(key) : 0;
    }
    if (!found || score < best_score) {
      found = true;
      victim = key;
      best_score = score;
    }
  }
  if (!found) return std::nullopt;
  picked_.insert(victim);
  return victim;
}

double Provisioner::PredictedShare(storage::TupleKey key, uint32_t partition,
                                   double share) {
  const KeyPartition kp{key, partition};
  double predicted = share;
  auto it = trend_.find(kp);
  if (it != trend_.end() && it->second.cycle + 1 == cycle_ &&
      share > it->second.share) {
    predicted = share + (share - it->second.share);
  }
  trend_[kp] = ShareSample{share, cycle_};
  return predicted;
}

}  // namespace soap::lion
