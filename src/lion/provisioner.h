// Lion-style adaptive replica provisioning (PAPERS.md, arXiv 2403.11221):
// the replica set is a budgeted per-partition cache. The provisioner owns
// the cache policy — per-partition slot budget, LRU/heat eviction picks,
// and predictive admission from the sliding co-access window — while the
// PlanBuilder owns candidate generation and emits the resulting
// PlacementActions (create, drop, leader shift). Heat scores come through
// a callback so the heat source stays sketch-backed above
// `sketch_threshold` (the CoAccessGraph's HeatEstimate) without this
// library depending on the planner.

#ifndef SOAP_LION_PROVISIONER_H_
#define SOAP_LION_PROVISIONER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/router/routing_table.h"
#include "src/storage/tuple.h"

namespace soap::lion {

enum class EvictPolicy : uint8_t {
  kLru,   ///< evict the replica least recently pulled by its partition
  kHeat,  ///< evict the replica with the lowest window heat
};

inline const char* EvictPolicyName(EvictPolicy policy) {
  switch (policy) {
    case EvictPolicy::kLru:
      return "lru";
    case EvictPolicy::kHeat:
      return "heat";
  }
  return "unknown";
}

inline bool ParseEvictPolicy(const std::string& text, EvictPolicy* out) {
  if (text == "lru") {
    *out = EvictPolicy::kLru;
    return true;
  }
  if (text == "heat") {
    *out = EvictPolicy::kHeat;
    return true;
  }
  return false;
}

struct LionConfig {
  bool enabled = false;
  /// Max replicas (non-primary copies) a partition may host.
  uint32_t replica_budget = 1024;
  EvictPolicy evict = EvictPolicy::kLru;
  /// Share of a key's windowed write mass a replica-holding partition
  /// must issue before the planner shifts the key's primary there.
  /// In (0, 1].
  double shift_threshold = 0.6;
};

struct ProvisionerStats {
  uint64_t evictions = 0;         ///< drops emitted to free budget slots
  uint64_t budget_denials = 0;    ///< creates rejected, nothing evictable
  uint64_t predictive_creates = 0;  ///< creates admitted on trend alone
};

class Provisioner {
 public:
  using HeatFn = std::function<uint64_t(storage::TupleKey)>;

  explicit Provisioner(LionConfig config) : config_(config) {}

  /// Opens a replan cycle: snapshots per-partition occupancy and hosted
  /// replica sets from the live routing table, and ages out recency/trend
  /// state for copies that no longer exist.
  void BeginCycle(const router::RoutingTable& routing);

  /// Recency signal: `key`'s copy on `partition` pulled co-access mass
  /// this cycle.
  void Touch(storage::TupleKey key, uint32_t partition);

  /// True (and charges one slot) when `partition` can host another
  /// replica within the budget.
  bool ChargeCreate(uint32_t partition);

  /// Returns one slot on `partition` (an eviction/drop was emitted).
  void Release(uint32_t partition);

  /// Victim replica hosted on `partition` under the eviction policy —
  /// least recently touched (LRU) or coldest window heat — excluding
  /// `except` and any victim already picked this cycle. Ties break toward
  /// the lowest key. Nullopt when nothing is evictable.
  std::optional<storage::TupleKey> PickEviction(uint32_t partition,
                                                storage::TupleKey except,
                                                const HeatFn& heat);

  /// Predictive pull share: the current share plus the positive trend
  /// since the previous cycle (one-step linear extrapolation of the
  /// sliding co-access window). Also records `share` for the next cycle.
  double PredictedShare(storage::TupleKey key, uint32_t partition,
                        double share);

  void CountBudgetDenial() { ++stats_.budget_denials; }
  void CountEviction() { ++stats_.evictions; }
  void CountPredictiveCreate() { ++stats_.predictive_creates; }

  const LionConfig& config() const { return config_; }
  const ProvisionerStats& stats() const { return stats_; }
  uint64_t cycle() const { return cycle_; }

 private:
  struct KeyPartition {
    storage::TupleKey key = 0;
    uint32_t partition = 0;
    bool operator==(const KeyPartition& o) const {
      return key == o.key && partition == o.partition;
    }
  };
  struct KeyPartitionHash {
    size_t operator()(const KeyPartition& kp) const {
      uint64_t h = kp.key * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(kp.partition) + 0x9E3779B9ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct ShareSample {
    double share = 0.0;
    uint64_t cycle = 0;
  };

  LionConfig config_;
  ProvisionerStats stats_;
  uint64_t cycle_ = 0;
  /// Per-partition replica occupancy for this cycle (live + charged).
  std::unordered_map<uint32_t, uint32_t> occupancy_;
  /// Replicas hosted per partition at cycle start, keys ascending.
  std::unordered_map<uint32_t, std::vector<storage::TupleKey>> hosted_;
  /// Victims already picked this cycle (never pick one twice).
  std::unordered_set<storage::TupleKey> picked_;
  /// (key, partition) -> cycle the copy last pulled mass.
  std::unordered_map<KeyPartition, uint64_t, KeyPartitionHash> last_touch_;
  /// (key, partition) -> previous cycle's pull share, for the trend term.
  std::unordered_map<KeyPartition, ShareSample, KeyPartitionHash> trend_;
};

}  // namespace soap::lion

#endif  // SOAP_LION_PROVISIONER_H_
