// Concurrency-control engine selector (--cc). k2PL is the seed's strict
// two-phase locking pipeline, byte-identical when selected; kMvcc layers
// versioned storage + snapshot reads on top of it (src/mvcc/): reads are
// served lock-free from per-key version chains at the transaction's begin
// timestamp while writers keep their commit-window exclusive locks and
// abort on first-updater-wins write-write conflicts.

#ifndef SOAP_MVCC_CC_MODE_H_
#define SOAP_MVCC_CC_MODE_H_

#include <cstdint>
#include <string>

namespace soap::mvcc {

enum class ConcurrencyControl : uint8_t {
  /// Strict 2PL (the seed pipeline): serializable reads take shared locks
  /// at execution; writes lock exclusively for the commit window.
  k2PL = 0,
  /// MVCC snapshot reads: reads acquire no locks at any isolation level;
  /// writers keep 2PL write locks and install versions at commit, with
  /// first-updater-wins write-write conflict detection.
  kMvcc,
};

inline const char* CcName(ConcurrencyControl cc) {
  switch (cc) {
    case ConcurrencyControl::k2PL: return "2pl";
    case ConcurrencyControl::kMvcc: return "mvcc";
  }
  return "2pl";
}

/// Parses a --cc value; empty means the default (2pl). Returns false on an
/// unknown engine name.
inline bool ParseCc(const std::string& text, ConcurrencyControl* cc) {
  if (text.empty() || text == "2pl") {
    *cc = ConcurrencyControl::k2PL;
  } else if (text == "mvcc") {
    *cc = ConcurrencyControl::kMvcc;
  } else {
    return false;
  }
  return true;
}

}  // namespace soap::mvcc

#endif  // SOAP_MVCC_CC_MODE_H_
