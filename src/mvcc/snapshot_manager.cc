#include "src/mvcc/snapshot_manager.h"

namespace soap::mvcc {

void SnapshotManager::Begin(uint64_t txn_id, SimTime begin_ts) {
  auto it = by_txn_.find(txn_id);
  if (it != by_txn_.end()) {
    if (it->second == begin_ts) return;
    // Retry attempt: drop the previous registration before re-registering.
    auto old = active_.find(it->second);
    if (old != active_.end() && --old->second == 0) active_.erase(old);
    it->second = begin_ts;
  } else {
    by_txn_.emplace(txn_id, begin_ts);
  }
  ++active_[begin_ts];
}

void SnapshotManager::End(uint64_t txn_id) {
  auto it = by_txn_.find(txn_id);
  if (it == by_txn_.end()) return;
  auto old = active_.find(it->second);
  if (old != active_.end() && --old->second == 0) active_.erase(old);
  by_txn_.erase(it);
}

}  // namespace soap::mvcc
