// Snapshot registry for MVCC reads: issues begin timestamps (virtual time
// at execution start) and tracks which snapshots are still active so the
// version store's GC knows which chain versions remain visible to someone.
// Cluster-global, mirroring the repo's single logical lock table — keys
// are globally unique and partitions disjoint, so per-node registries
// would partition an already-disjoint set.

#ifndef SOAP_MVCC_SNAPSHOT_MANAGER_H_
#define SOAP_MVCC_SNAPSHOT_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/common/time.h"

namespace soap::mvcc {

class SnapshotManager {
 public:
  /// Registers `txn_id` as reading at snapshot `begin_ts`. Idempotent per
  /// transaction (a resubmitted attempt re-registers at its new start).
  void Begin(uint64_t txn_id, SimTime begin_ts);

  /// Ends a transaction's snapshot; idempotent (commit, abort and drain
  /// paths all funnel through the same completion hook).
  void End(uint64_t txn_id);

  /// Oldest begin timestamp still active; kNone when no snapshot is open.
  static constexpr SimTime kNone = -1;
  SimTime OldestActive() const {
    return active_.empty() ? kNone : active_.begin()->first;
  }

  size_t active_count() const { return by_txn_.size(); }

  /// Sorted active begin timestamps with multiplicity, oldest first.
  /// The version store's pruner walks this in one pass per chain.
  const std::map<SimTime, uint32_t>& active() const { return active_; }

 private:
  /// begin_ts -> number of active snapshots at that timestamp.
  std::map<SimTime, uint32_t> active_;
  std::unordered_map<uint64_t, SimTime> by_txn_;
};

}  // namespace soap::mvcc

#endif  // SOAP_MVCC_SNAPSHOT_MANAGER_H_
