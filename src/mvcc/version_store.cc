#include "src/mvcc/version_store.h"

#include <algorithm>

#include "src/mvcc/snapshot_manager.h"
#include "src/storage/wal.h"

namespace soap::mvcc {

void VersionStore::Install(storage::TupleKey key, uint64_t writer,
                           int64_t value, SimTime commit_ts) {
  auto& chain = chains_[key];
  chain.push_back({writer, value, commit_ts});
  ++versions_live_;
  if (chain.size() > kPruneThreshold) Prune(&chain);
}

VersionRead VersionStore::ReadAsOf(storage::TupleKey key, SimTime ts) const {
  auto it = chains_.find(key);
  if (it != chains_.end()) {
    const auto& chain = it->second;
    for (auto v = chain.rbegin(); v != chain.rend(); ++v) {
      if (v->commit_ts < ts) return {v->writer, v->value};
    }
  }
  // Version-0: the synthesized base row (Table::SynthesizeRow), also what a
  // never-written lazy virtual key reads as.
  return {0, static_cast<int64_t>(key)};
}

bool VersionStore::CommittedSince(storage::TupleKey key,
                                  SimTime begin_ts) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return false;
  return it->second.back().commit_ts >= begin_ts;
}

bool VersionStore::StaleObservation(storage::TupleKey key, SimTime ts,
                                    uint64_t* writer) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return false;
  const auto& chain = it->second;
  // Index of the version a correct read at `ts` observes, or npos for the
  // synthesized base.
  size_t visible = chain.size();
  for (size_t i = chain.size(); i-- > 0;) {
    if (chain[i].commit_ts < ts) {
      visible = i;
      break;
    }
  }
  if (visible == chain.size()) {
    // Correct read is the base (writer 0); a committed writer id differs.
    *writer = chain.back().writer;
  } else if (visible == 0) {
    // Correct read is the oldest committed version; the base differs.
    *writer = 0;
  } else {
    // Report the immediately older committed version — a classic stale
    // snapshot, guaranteed a different writer.
    *writer = chain[visible - 1].writer;
  }
  return true;
}

void VersionStore::RebuildFromWal(const storage::Wal& wal) {
  for (const auto& rec : wal.records()) {
    if (rec.kind != storage::WalRecord::Kind::kUpdate) continue;
    auto& chain = chains_[rec.tuple.key];
    bool seen = false;
    for (const auto& v : chain) {
      if (v.writer == rec.txn_id) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    Version v{rec.txn_id, rec.tuple.content, rec.commit_ts};
    // Log order is commit order per partition, but a migrated key's later
    // writes live in another partition's log — insert in timestamp order.
    auto pos = std::upper_bound(
        chain.begin(), chain.end(), v,
        [](const Version& a, const Version& b) {
          return a.commit_ts < b.commit_ts;
        });
    chain.insert(pos, v);
    ++versions_live_;
  }
}

void VersionStore::PruneChain(storage::TupleKey key) {
  auto it = chains_.find(key);
  if (it != chains_.end()) Prune(&it->second);
}

void VersionStore::Prune(std::vector<Version>* chain) {
  if (chain->size() <= 1) return;
  // Keep the tail plus, for each active snapshot, the newest version it can
  // see. Both the chain and the active set are sorted, so one forward pass
  // marks every retained index.
  std::vector<char> keep(chain->size(), 0);
  keep.back() = 1;
  if (snapshots_ != nullptr) {
    size_t j = 0;
    for (const auto& [ts, count] : snapshots_->active()) {
      (void)count;
      while (j + 1 < chain->size() && (*chain)[j + 1].commit_ts < ts) ++j;
      if ((*chain)[j].commit_ts < ts) keep[j] = 1;
      // else: this snapshot predates the whole chain and reads the base.
    }
  }
  size_t out = 0;
  for (size_t i = 0; i < chain->size(); ++i) {
    if (keep[i]) (*chain)[out++] = (*chain)[i];
  }
  const size_t removed = chain->size() - out;
  chain->resize(out);
  pruned_total_ += removed;
  versions_live_ -= removed;
}

}  // namespace soap::mvcc
