// Versioned storage for MVCC snapshot reads: per-key chains of committed
// versions stamped with virtual-time commit timestamps. The store is
// cluster-global — like the lock table, keys are globally unique and
// partitions disjoint, so migrations and replica deployments need not move
// chains; `storage::Table` stays the authoritative committed-latest image
// (migration staging, replica catch-up, consistency checks and crash
// recovery all read the table, the store only serves point-in-time reads).
//
// Composes with PR 8's lazy virtual-base tables: a key with no chain is its
// own version-0 ({writer 0, value == key}, matching Table::SynthesizeRow),
// so the store holds entries only for keys that were actually written.
//
// GC: a watermark alone leaves chains unbounded when one idle snapshot
// pins history under a hot writer, so pruning keeps, per chain, the newest
// version visible to each active snapshot plus the chain tail, and runs
// whenever a chain outgrows a small threshold.

#ifndef SOAP_MVCC_VERSION_STORE_H_
#define SOAP_MVCC_VERSION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/storage/tuple.h"

namespace soap::storage {
class Wal;
}  // namespace soap::storage

namespace soap::mvcc {

class SnapshotManager;

/// One committed version of a key. Chains are append-only and sorted by
/// commit_ts (virtual time is monotone and versions install at commit).
struct Version {
  uint64_t writer = 0;  // committing transaction id; 0 = initial bulk load
  int64_t value = 0;
  SimTime commit_ts = 0;
};

/// What a snapshot read observes for a key.
struct VersionRead {
  uint64_t writer = 0;
  int64_t value = 0;
};

class VersionStore {
 public:
  /// `snapshots` feeds the pruner the active begin timestamps; may be null
  /// (no snapshot tracking: pruning keeps only the chain tail).
  explicit VersionStore(const SnapshotManager* snapshots)
      : snapshots_(snapshots) {}

  /// Installs a committed version at the chain tail. Commit timestamps are
  /// non-decreasing per key (enforced by the 2PL write locks that serialize
  /// writers on a key). Triggers a chain-local prune past the threshold.
  void Install(storage::TupleKey key, uint64_t writer, int64_t value,
               SimTime commit_ts);

  /// Strict snapshot read: the newest version with commit_ts < ts. A key
  /// with no chain (or none old enough) reads as its synthesized base
  /// version-0, {writer 0, value == key}.
  VersionRead ReadAsOf(storage::TupleKey key, SimTime ts) const;

  /// First-updater-wins probe: true when a version committed at or after
  /// `begin_ts` already exists for `key`. The committing transaction's own
  /// versions install only after this check, so probing the chain tail
  /// suffices.
  bool CommittedSince(storage::TupleKey key, SimTime begin_ts) const;

  /// Break-mode helper (--check_break=stale_snapshot): picks an observed
  /// writer provably different from what a correct snapshot read at `ts`
  /// would report. Returns false when the key has no chain — an injected
  /// stale read would be indistinguishable from a correct base read, so
  /// the caller must not consume the break on such a key.
  bool StaleObservation(storage::TupleKey key, SimTime ts,
                        uint64_t* writer) const;

  /// Rebuilds chains from a partition's redo log: kUpdate records carry
  /// their commit timestamps, so replay re-installs them in order.
  /// Idempotent by (key, txn_id) — re-replaying a log (crash recovery
  /// replays checkpoint + log) never duplicates versions.
  void RebuildFromWal(const storage::Wal& wal);

  uint64_t versions_live() const { return versions_live_; }
  uint64_t pruned_total() const { return pruned_total_; }
  size_t chains() const { return chains_.size(); }
  /// Rough footprint for the GC-bound test: chain entries × entry size.
  uint64_t ApproxBytes() const { return versions_live_ * sizeof(Version); }
  size_t ChainLength(storage::TupleKey key) const {
    auto it = chains_.find(key);
    return it == chains_.end() ? 0 : it->second.size();
  }

  /// Exposed for tests; Install() calls it automatically.
  void PruneChain(storage::TupleKey key);

 private:
  void Prune(std::vector<Version>* chain);

  const SnapshotManager* snapshots_;
  std::unordered_map<storage::TupleKey, std::vector<Version>> chains_;
  uint64_t versions_live_ = 0;
  uint64_t pruned_total_ = 0;

  /// Chains prune once they outgrow this many entries. Small enough to
  /// bound memory tightly, large enough to amortize the prune pass.
  static constexpr size_t kPruneThreshold = 8;
};

}  // namespace soap::mvcc

#endif  // SOAP_MVCC_VERSION_STORE_H_
