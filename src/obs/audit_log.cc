#include "src/obs/audit_log.h"

#include <cstdio>

#include "src/common/json.h"

namespace soap::obs {

namespace {

/// %.9g, matching the metrics exporter so one formatting convention covers
/// every JSONL artifact.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

AuditRecord::AuditRecord(AuditLog* log, std::string_view type, SimTime t_us)
    : log_(log) {
  line_ = "{\"v\":" + std::to_string(kAuditSchemaVersion) +
          ",\"t_us\":" + std::to_string(t_us) + ",\"type\":\"" +
          std::string(type) + "\"";
}

AuditRecord::~AuditRecord() {
  line_.push_back('}');
  if (log_ != nullptr) log_->Append(std::move(line_));
}

AuditRecord& AuditRecord::U64(std::string_view key, uint64_t value) {
  line_ += ",\"" + std::string(key) + "\":" + std::to_string(value);
  return *this;
}

AuditRecord& AuditRecord::I64(std::string_view key, int64_t value) {
  line_ += ",\"" + std::string(key) + "\":" + std::to_string(value);
  return *this;
}

AuditRecord& AuditRecord::Dbl(std::string_view key, double value) {
  line_ += ",\"" + std::string(key) + "\":" + FormatDouble(value);
  return *this;
}

AuditRecord& AuditRecord::Str(std::string_view key, std::string_view value) {
  line_ += ",\"" + std::string(key) + "\":\"" + json::Escape(value) + "\"";
  return *this;
}

AuditRecord& AuditRecord::Bool(std::string_view key, bool value) {
  line_ += ",\"" + std::string(key) + "\":" + (value ? "true" : "false");
  return *this;
}

AuditRecord& AuditRecord::Raw(std::string_view key, std::string_view jsonv) {
  line_ += ",\"" + std::string(key) + "\":" + std::string(jsonv);
  return *this;
}

void AuditLog::Append(std::string line) {
  if (lines_.size() >= config_.max_records) {
    ++dropped_;
    return;
  }
  lines_.push_back(std::move(line));
}

std::string AuditLog::ToJsonl() const {
  std::string out;
  size_t total = 0;
  for (const std::string& line : lines_) total += line.size() + 1;
  out.reserve(total);
  for (const std::string& line : lines_) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

Status AuditLog::WriteFile(const std::string& path) const {
  const std::string contents = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int rc = std::fclose(f);
  if (written != contents.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace soap::obs
