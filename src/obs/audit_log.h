// Decision-level audit log: a schema-versioned JSONL record stream of the
// system's consequential choices — replan cycles with their co-access
// graph stats, each candidate migration/replica op with its cost inputs
// and accept/reject reason, every deployment lifecycle transition
// (submit/piggyback/retry/abort/apply) with virtual-time latency, replica
// promotion/catch-up sweeps, and system-transaction aborts by reason.
//
// Cost discipline matches src/obs/metrics.h: producers hold a raw
// `AuditLog*` that is nullptr when auditing is off, so a disabled run pays
// one branch per would-be record and stays byte-identical to the seed.
// Every value recorded is virtual-time or a counter — no wall clock — so
// the log is byte-identical across thread counts and repeat runs.
//
// Schema (contract; see EXPERIMENTS.md "Observability v2"): every line is
// one JSON object with at least {"v":1,"t_us":<virtual us>,"type":...}.
// Record types and their fields are produced exclusively through the
// typed helpers below, so the schema lives in one file.

#ifndef SOAP_OBS_AUDIT_LOG_H_
#define SOAP_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/time.h"

namespace soap::obs {

/// Audit schema version; bump when a record type changes incompatibly.
inline constexpr int kAuditSchemaVersion = 1;

/// Builds one audit line incrementally: `AuditRecord(log, "replan", now)
/// .U64("cycle", n).Str("outcome", "emitted")` appends on destruction.
/// Field order is the call order (deterministic output).
class AuditLog;
class AuditRecord {
 public:
  AuditRecord(AuditLog* log, std::string_view type, SimTime t_us);
  ~AuditRecord();
  AuditRecord(const AuditRecord&) = delete;
  AuditRecord& operator=(const AuditRecord&) = delete;

  AuditRecord& U64(std::string_view key, uint64_t value);
  AuditRecord& I64(std::string_view key, int64_t value);
  AuditRecord& Dbl(std::string_view key, double value);
  AuditRecord& Str(std::string_view key, std::string_view value);
  AuditRecord& Bool(std::string_view key, bool value);
  /// Appends `key` with a pre-serialised JSON value (object/array).
  AuditRecord& Raw(std::string_view key, std::string_view json);

 private:
  AuditLog* log_;
  std::string line_;
};

/// Bounded append-only record log. Records past `max_records` are dropped
/// (flight-recorder discipline: the head of the run is what explains the
/// decisions; `dropped()` reports the loss).
class AuditLog {
 public:
  struct Config {
    size_t max_records = 1'000'000;
  };

  AuditLog() = default;
  explicit AuditLog(Config config) : config_(config) {}
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  /// Appends one complete JSON object line (no trailing newline).
  void Append(std::string line);

  size_t size() const { return lines_.size(); }
  size_t dropped() const { return dropped_; }
  const std::deque<std::string>& lines() const { return lines_; }

  /// The whole log as JSONL (one record per line, trailing newline).
  std::string ToJsonl() const;

  Status WriteFile(const std::string& path) const;

 private:
  Config config_;
  std::deque<std::string> lines_;
  size_t dropped_ = 0;
};

}  // namespace soap::obs

#endif  // SOAP_OBS_AUDIT_LOG_H_
