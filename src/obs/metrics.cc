#include "src/obs/metrics.h"

#include <cstdio>
#include <sstream>

#include "src/common/json.h"

namespace soap::obs {

namespace {

/// Formats a double the way Prometheus clients do: shortest round-trip-ish
/// representation without locale surprises.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Re-escapes a stored label string for exposition. Label VALUES may have
/// been built by hand (historically unescaped), so walk the quoted
/// regions: keep escapes that are already valid (\\, \", \n), escape any
/// other backslash, and turn raw newlines into \n. Quotes outside a valid
/// escape terminate the value, as the format requires.
std::string SanitizeLabels(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_value = false;
  for (size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (!in_value) {
      out.push_back(c);
      if (c == '"') in_value = true;
      continue;
    }
    if (c == '\\') {
      const char next = i + 1 < labels.size() ? labels[i + 1] : '\0';
      if (next == '\\' || next == '"' || next == 'n') {
        out.push_back(c);
        out.push_back(next);
        ++i;
      } else {
        out += "\\\\";
      }
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
      if (c == '"') in_value = false;
    }
  }
  return out;
}

std::string FullName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + SanitizeLabels(labels) + "}";
}

/// `name{labels,extra}` / `name{extra}` — merges a histogram's `le` label
/// into an existing label set.
std::string WithExtraLabel(const std::string& name, const std::string& labels,
                           const std::string& extra) {
  if (labels.empty()) return name + "{" + extra + "}";
  return name + "{" + SanitizeLabels(labels) + "," + extra + "}";
}

/// JSON string escape for metric keys in the JSONL snapshot (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s) { return json::Escape(s); }

}  // namespace

std::string MetricsRegistry::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  auto& slot = counters_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  auto& slot = gauges_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& labels) {
  auto& slot = histograms_[Key{name, labels}];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name,
                                            const std::string& labels) const {
  auto it = counters_.find(Key{name, labels});
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name,
                                        const std::string& labels) const {
  auto it = gauges_.find(Key{name, labels});
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name, const std::string& labels) const {
  auto it = histograms_.find(Key{name, labels});
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetValues() {
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::ostringstream os;
  std::string last_family;
  auto family_header = [&](const std::string& name, const char* type) {
    if (name == last_family) return;
    last_family = name;
    os << "# TYPE " << name << " " << type << "\n";
  };

  for (const auto& [key, c] : counters_) {
    family_header(key.name, "counter");
    os << FullName(key.name, key.labels) << " " << c->value() << "\n";
  }
  for (const auto& [key, g] : gauges_) {
    family_header(key.name, "gauge");
    os << FullName(key.name, key.labels) << " " << FormatValue(g->value())
       << "\n";
  }
  for (const auto& [key, h] : histograms_) {
    family_header(key.name, "histogram");
    const Histogram& hist = h->histogram();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t in_bucket = hist.bucket_count(b);
      if (in_bucket == 0) continue;  // sparse: empty buckets add no info
      cumulative += in_bucket;
      const uint64_t ub = Histogram::BucketUpperBound(b);
      const std::string le =
          ub == UINT64_MAX ? "+Inf"
                           : FormatValue(static_cast<double>(ub) / 1e6);
      os << WithExtraLabel(key.name + "_bucket", key.labels,
                           "le=\"" + le + "\"")
         << " " << cumulative << "\n";
    }
    if (cumulative > 0 && hist.bucket_count(Histogram::kNumBuckets - 1) == 0) {
      os << WithExtraLabel(key.name + "_bucket", key.labels, "le=\"+Inf\"")
         << " " << cumulative << "\n";
    }
    os << FullName(key.name + "_sum", key.labels) << " "
       << FormatValue(h->sum_seconds()) << "\n";
    os << FullName(key.name + "_count", key.labels) << " " << h->count()
       << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ToJsonLine(SimTime now, int64_t interval) const {
  std::ostringstream os;
  os << "{\"t_us\":" << now << ",\"interval\":" << interval;
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(FullName(key.name, key.labels)) << "\":"
       << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(FullName(key.name, key.labels)) << "\":"
       << FormatValue(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(FullName(key.name, key.labels)) << "\":"
       << "{\"count\":" << h->count() << ",\"sum_s\":"
       << FormatValue(h->sum_seconds()) << ",\"mean_s\":"
       << FormatValue(h->MeanSeconds()) << ",\"p50_s\":"
       << FormatValue(h->PercentileSeconds(50.0)) << ",\"p99_s\":"
       << FormatValue(h->PercentileSeconds(99.0)) << ",\"max_s\":"
       << FormatValue(static_cast<double>(h->histogram().max()) / 1e6) << "}";
  }
  os << "}}";
  return os.str();
}

Status MetricsRegistry::WriteFile(const std::string& path,
                                  const std::string& contents) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int rc = std::fclose(f);
  if (written != contents.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace soap::obs
