// Cross-layer metrics: a registry of named counters, gauges and latency
// histograms that every subsystem can publish into, with Prometheus-style
// text exposition and per-interval JSONL snapshots. All values live in
// virtual time; the experiment engine owns one registry per run.
//
// Cost discipline: instrumented components hold raw pointers to metric
// objects, nullptr when observability is off. A hot-path hook is a single
// branch on that pointer plus an integer add — no allocation, no lookup,
// no time read — so enabled-off runs are bit-identical to uninstrumented
// ones.

#ifndef SOAP_OBS_METRICS_H_
#define SOAP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace soap::obs {

/// Monotonically increasing event count (Prometheus counter).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (Prometheus gauge). Doubles cover both counts
/// (queue depth) and controller terms (which are signed).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Latency distribution in virtual microseconds, exported in seconds (the
/// Prometheus base unit). Wraps common/Histogram: O(1) record into
/// exponential buckets.
class LatencyHistogram {
 public:
  void RecordMicros(uint64_t micros) { hist_.Record(micros); }
  void Record(Duration d) { hist_.Record(d < 0 ? 0 : static_cast<uint64_t>(d)); }
  void Reset() { hist_.Clear(); }

  const Histogram& histogram() const { return hist_; }
  uint64_t count() const { return hist_.count(); }
  double sum_seconds() const { return hist_.sum() / 1e6; }
  double MeanSeconds() const { return hist_.Mean() / 1e6; }
  double PercentileSeconds(double p) const { return hist_.Percentile(p) / 1e6; }

 private:
  Histogram hist_;
};

/// The process-wide metric namespace for one experiment. Get* registers on
/// first use and returns a stable pointer (metrics are never removed, so
/// components may cache the pointer for the registry's lifetime).
///
/// Names follow Prometheus conventions: snake_case with a unit suffix
/// (`soap_lock_wait_seconds`, `soap_network_messages_total`). An optional
/// label set ("node=\"3\"") distinguishes instances of one family; the
/// exporter groups families under one # TYPE line.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Escapes a label VALUE per the Prometheus exposition format:
  /// backslash -> \\, double quote -> \", newline -> \n.
  static std::string EscapeLabelValue(const std::string& value);

  /// Builds one `name="value"` label pair with the value escaped; callers
  /// with untrusted values (paths, strategy names) should build label
  /// strings through this instead of string concatenation.
  static std::string Label(const std::string& name, const std::string& value) {
    return name + "=\"" + EscapeLabelValue(value) + "\"";
  }

  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& labels = "");

  /// Lookup without registration; nullptr when absent (for tests/tools).
  const Counter* FindCounter(const std::string& name,
                             const std::string& labels = "") const;
  const Gauge* FindGauge(const std::string& name,
                         const std::string& labels = "") const;
  const LatencyHistogram* FindHistogram(const std::string& name,
                                        const std::string& labels = "") const;

  /// Zeroes every registered metric (registration survives — cached
  /// pointers stay valid). Call between experiments sharing a registry.
  void ResetValues();

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Prometheus text exposition format (families sorted by name, one
  /// # TYPE line per family; histograms expand to _bucket/_sum/_count
  /// with `le` in seconds).
  std::string ToPrometheusText() const;

  /// One JSON object (single line, no trailing newline) snapshotting every
  /// metric: {"t_us":...,"interval":...,"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum_s,mean_s,p50_s,p99_s,max_s}}}.
  /// See EXPERIMENTS.md "Observability" for the schema contract.
  std::string ToJsonLine(SimTime now, int64_t interval) const;

  Status WriteFile(const std::string& path, const std::string& contents) const;

 private:
  struct Key {
    std::string name;
    std::string labels;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };

  // std::map: stable iteration order for deterministic exposition, and
  // node-based so metric addresses survive future registrations.
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace soap::obs

#endif  // SOAP_OBS_METRICS_H_
