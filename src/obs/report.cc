#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "src/obs/audit_log.h"
#include "src/obs/timeline.h"

namespace soap::obs::report {

namespace {

std::string FmtDouble(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

std::string FmtSeconds(double t_us) { return FmtDouble(t_us / 1e6, 1) + "s"; }

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool GetBool(const json::Value& rec, std::string_view key) {
  const json::Value* v = rec.Find(key);
  if (v == nullptr) return false;
  if (v->is_bool()) return v->AsBool();
  return v->is_number() && v->AsDouble() != 0;
}

Status BadRecord(std::string_view stream, size_t index,
                 const std::string& why) {
  return Status::InvalidArgument(std::string(stream) + " record " +
                                 std::to_string(index + 1) + ": " + why);
}

/// Required fields per audit record type; a missing field is a schema
/// violation, an unknown type is too (forward compatibility is handled by
/// bumping kAuditSchemaVersion, not by silently skipping).
const std::map<std::string, std::vector<const char*>>& AuditFieldTable() {
  static const std::map<std::string, std::vector<const char*>> table = {
      {"run_meta", {"seed", "strategy", "nodes", "keys"}},
      {"replan", {"cycle", "outcome", "plan"}},
      {"plan_op",
       {"cycle", "key", "op", "decision", "reason", "source", "target",
        "heat", "reads", "writes", "copies"}},
      {"round", {"plan", "txns", "ops"}},
      {"deploy", {"event", "plan", "rid", "txn", "attempt", "ops"}},
      {"abort", {"plan", "rid", "txn", "kind", "reason", "attempt"}},
      {"promotion", {"node", "promoted", "failovers"}},
      {"catchup", {"node", "refreshed", "dropped"}},
      {"invariant", {"check", "detail"}},
      {"check_summary", {"violations", "txns", "reads", "ok"}},
      {"run_end", {"events", "committed_normal", "drained"}},
  };
  return table;
}

/// Emitted plans present in an audit stream, with their cycles.
std::map<uint64_t, uint64_t> EmittedPlans(
    const std::vector<json::Value>& audit) {
  std::map<uint64_t, uint64_t> plan_to_cycle;
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") == "replan" &&
        rec.GetString("outcome") == "emitted") {
      plan_to_cycle[rec.GetUint64("plan")] = rec.GetUint64("cycle");
    }
  }
  return plan_to_cycle;
}

struct DeployDigest {
  uint64_t submits = 0;
  uint64_t piggybacks = 0;
  uint64_t retries = 0;
  uint64_t applies = 0;
  uint64_t latency_count = 0;
  double latency_sum_us = 0;
  double latency_max_us = 0;
};

DeployDigest DigestDeploys(const std::vector<json::Value>& audit,
                           uint64_t plan_id, bool all_plans) {
  DeployDigest d;
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") != "deploy") continue;
    if (!all_plans && rec.GetUint64("plan") != plan_id) continue;
    const std::string event = rec.GetString("event");
    if (event == "submit") ++d.submits;
    if (event == "piggyback") ++d.piggybacks;
    if (event == "retry") ++d.retries;
    if (event == "apply") {
      ++d.applies;
      const json::Value* lat = rec.Find("latency_us");
      if (lat != nullptr && lat->is_number()) {
        ++d.latency_count;
        d.latency_sum_us += lat->AsDouble();
        d.latency_max_us = std::max(d.latency_max_us, lat->AsDouble());
      }
    }
  }
  return d;
}

std::map<std::string, uint64_t> DigestAborts(
    const std::vector<json::Value>& audit, uint64_t plan_id,
    bool all_plans) {
  std::map<std::string, uint64_t> by_reason;
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") != "abort") continue;
    if (!all_plans && rec.GetUint64("plan") != plan_id) continue;
    ++by_reason[rec.GetString("reason")];
  }
  return by_reason;
}

std::string JoinCounts(const std::map<std::string, uint64_t>& counts) {
  std::string out;
  for (const auto& [name, n] : counts) {
    if (!out.empty()) out += " ";
    out += name + "=" + std::to_string(n);
  }
  return out.empty() ? "none" : out;
}

/// Inline SVG sparkline over `values`, normalised to its own max.
std::string Sparkline(const std::vector<double>& values, int width = 220,
                      int height = 36) {
  if (values.empty()) return "<span class=\"dim\">no data</span>";
  double max = 0;
  for (double v : values) max = std::max(max, v);
  std::string points;
  const size_t n = values.size();
  for (size_t i = 0; i < n; ++i) {
    const double x =
        n == 1 ? 0.0
               : static_cast<double>(i) / static_cast<double>(n - 1) * width;
    const double y =
        height - 2 - (max > 0 ? values[i] / max * (height - 4) : 0.0);
    if (!points.empty()) points += " ";
    points += FmtDouble(x, 1) + "," + FmtDouble(y, 1);
  }
  return "<svg width=\"" + std::to_string(width) + "\" height=\"" +
         std::to_string(height) +
         "\" class=\"spark\"><polyline fill=\"none\" stroke=\"#2a6\" "
         "stroke-width=\"1.5\" points=\"" +
         points + "\"/></svg> <span class=\"dim\">max " +
         FmtDouble(max, 3) + "</span>";
}

}  // namespace

Result<std::vector<json::Value>> LoadJsonlFile(const std::string& path) {
  return LoadJsonlFile(path, nullptr);
}

Result<std::vector<json::Value>> LoadJsonlFile(const std::string& path,
                                               bool* truncated_final_line) {
  if (truncated_final_line != nullptr) *truncated_final_line = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Result<std::vector<json::Value>> parsed = json::ParseLines(text);
  if (!parsed.ok() && truncated_final_line != nullptr) {
    // Recover from a partial final line: everything up to the last newline
    // must parse cleanly, and the tail on its own must not (a complete
    // final record that merely lost its newline is not truncation).
    const size_t tail_end = text.find_last_not_of("\r\n");
    const size_t cut =
        tail_end == std::string::npos ? std::string::npos
                                      : text.rfind('\n', tail_end);
    if (cut != std::string::npos) {
      const std::string_view head(text.data(), cut + 1);
      const std::string_view tail(text.data() + cut + 1, tail_end - cut);
      Result<std::vector<json::Value>> head_parsed = json::ParseLines(head);
      if (head_parsed.ok() && !json::Parse(tail).ok()) {
        *truncated_final_line = true;
        return head_parsed;
      }
    }
  }
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().ToString());
  }
  return parsed;
}

Status ValidateAudit(const std::vector<json::Value>& records) {
  if (records.empty()) {
    return Status::InvalidArgument("audit stream is empty");
  }
  const auto& table = AuditFieldTable();
  uint64_t prev_t = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    const json::Value& rec = records[i];
    if (!rec.is_object()) return BadRecord("audit", i, "not an object");
    if (rec.GetUint64("v") != kAuditSchemaVersion) {
      return BadRecord("audit", i,
                       "schema version " +
                           std::to_string(rec.GetUint64("v")) +
                           " (want " +
                           std::to_string(kAuditSchemaVersion) + ")");
    }
    const json::Value* t = rec.Find("t_us");
    if (t == nullptr || !t->is_number()) {
      return BadRecord("audit", i, "missing t_us");
    }
    if (t->AsUint64() < prev_t) {
      return BadRecord("audit", i, "t_us goes backwards");
    }
    prev_t = t->AsUint64();
    const std::string type = rec.GetString("type");
    auto it = table.find(type);
    if (it == table.end()) {
      return BadRecord("audit", i, "unknown type \"" + type + "\"");
    }
    for (const char* field : it->second) {
      if (rec.Find(field) == nullptr) {
        return BadRecord("audit", i,
                         type + " missing field \"" + field + "\"");
      }
    }
  }
  if (records.front().GetString("type") != "run_meta") {
    return Status::InvalidArgument("audit stream must start with run_meta");
  }
  return Status::OK();
}

Status ValidateTimeline(const std::vector<json::Value>& ticks) {
  int64_t prev_interval = -1;
  size_t partitions = 0;
  for (size_t i = 0; i < ticks.size(); ++i) {
    const json::Value& tick = ticks[i];
    if (!tick.is_object()) return BadRecord("timeline", i, "not an object");
    if (tick.GetUint64("v") != kTimelineSchemaVersion) {
      return BadRecord("timeline", i, "bad schema version");
    }
    if (tick.GetString("type") != "tick") {
      return BadRecord("timeline", i, "type is not \"tick\"");
    }
    for (const char* field :
         {"t_us", "interval", "queue_depth", "lock_wait_p99_ms",
          "distributed_ratio", "partitions"}) {
      if (tick.Find(field) == nullptr) {
        return BadRecord("timeline", i,
                         std::string("missing field \"") + field + "\"");
      }
    }
    const auto interval = static_cast<int64_t>(tick.GetUint64("interval"));
    if (interval <= prev_interval) {
      return BadRecord("timeline", i, "interval does not increase");
    }
    prev_interval = interval;
    const json::Value* parts = tick.Find("partitions");
    if (!parts->is_array()) {
      return BadRecord("timeline", i, "partitions is not an array");
    }
    if (i == 0) {
      partitions = parts->AsArray().size();
    } else if (parts->AsArray().size() != partitions) {
      return BadRecord("timeline", i, "partition count changes mid-stream");
    }
    for (const json::Value& row : parts->AsArray()) {
      for (const char* field :
           {"p", "load", "queued_jobs", "primaries", "replicas",
            "migrations_in", "migrations_out", "replica_creates",
            "replica_drops"}) {
        if (row.Find(field) == nullptr) {
          return BadRecord("timeline", i,
                           std::string("partition row missing \"") + field +
                               "\"");
        }
      }
    }
  }
  return Status::OK();
}

std::vector<OpDecision> CollectDecisions(
    const std::vector<json::Value>& audit, uint64_t cycle) {
  std::vector<OpDecision> out;
  // (key, op) -> index into `out`, for dropped_by_cap overrides: the cap
  // drop is logged after the accept for the same candidate and wins.
  std::map<std::pair<uint64_t, std::string>, size_t> by_candidate;
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") != "plan_op") continue;
    if (rec.GetUint64("cycle") != cycle) continue;
    OpDecision d;
    d.key = rec.GetUint64("key");
    d.op = rec.GetString("op");
    d.accepted = rec.GetString("decision") == "accept";
    d.reason = rec.GetString("reason");
    d.source = rec.GetUint64("source");
    d.target = rec.GetUint64("target");
    d.heat = rec.GetUint64("heat");
    d.reads = rec.GetUint64("reads");
    d.writes = rec.GetUint64("writes");
    d.copies = rec.GetUint64("copies");
    const auto candidate = std::make_pair(d.key, d.op);
    auto it = by_candidate.find(candidate);
    if (d.reason == "dropped_by_cap" && it != by_candidate.end()) {
      OpDecision& prior = out[it->second];
      prior.accepted = false;
      prior.reason = "dropped_by_cap";
      prior.capped = true;
      continue;
    }
    by_candidate[candidate] = out.size();
    out.push_back(std::move(d));
  }
  return out;
}

std::string Explain(const std::vector<json::Value>& audit,
                    uint64_t plan_id) {
  const std::map<uint64_t, uint64_t> plans = EmittedPlans(audit);
  auto found = plans.find(plan_id);
  if (found == plans.end()) {
    std::string known;
    for (const auto& [plan, cycle] : plans) {
      if (!known.empty()) known += ", ";
      known += std::to_string(plan);
    }
    return "plan " + std::to_string(plan_id) +
           " not found; emitted plans: " + (known.empty() ? "none" : known) +
           "\n";
  }
  const uint64_t cycle = found->second;

  std::ostringstream os;
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") == "replan" &&
        rec.GetUint64("plan") == plan_id &&
        rec.GetString("outcome") == "emitted") {
      os << "plan " << plan_id << " (cycle " << cycle << ", emitted @ "
         << FmtSeconds(rec.GetDouble("t_us")) << ")\n";
      os << "  graph: " << rec.GetUint64("graph_vertices") << " vertices, "
         << rec.GetUint64("graph_edges") << " edges, "
         << rec.GetUint64("txns_observed") << " txns observed\n";
      os << "  clustering: cut=" << rec.GetUint64("cut_weight")
         << " internal=" << rec.GetUint64("internal_weight")
         << " moved=" << rec.GetUint64("moved") << "\n";
      os << "  emitted: " << rec.GetUint64("ops") << " ops ("
         << rec.GetUint64("replica_creates") << " replica_create, "
         << rec.GetUint64("replica_drops") << " replica_delete), "
         << rec.GetUint64("dropped_by_cap") << " dropped by cap, "
         << "deploy_cost=" << FmtSeconds(rec.GetDouble("deploy_cost_us"))
         << "\n";
      break;
    }
  }
  for (const json::Value& rec : audit) {
    if (rec.GetString("type") == "round" &&
        rec.GetUint64("plan") == plan_id) {
      os << "  deployment: " << rec.GetUint64("txns")
         << " repartition txns carrying " << rec.GetUint64("ops")
         << " ops\n";
      break;
    }
  }

  const std::vector<OpDecision> decisions = CollectDecisions(audit, cycle);
  uint64_t accepted = 0;
  for (const OpDecision& d : decisions) accepted += d.accepted ? 1 : 0;
  os << "  decisions (" << decisions.size() << " candidates, " << accepted
     << " accepted):\n";
  for (const OpDecision& d : decisions) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    key=%-8llu %-14s %llu->%-3llu %-6s %-28s "
                  "heat=%llu reads=%llu writes=%llu copies=%llu\n",
                  static_cast<unsigned long long>(d.key), d.op.c_str(),
                  static_cast<unsigned long long>(d.source),
                  static_cast<unsigned long long>(d.target),
                  d.accepted ? "ACCEPT" : "REJECT", d.reason.c_str(),
                  static_cast<unsigned long long>(d.heat),
                  static_cast<unsigned long long>(d.reads),
                  static_cast<unsigned long long>(d.writes),
                  static_cast<unsigned long long>(d.copies));
    os << line;
  }

  const DeployDigest dep = DigestDeploys(audit, plan_id, false);
  os << "  lifecycle: submits=" << dep.submits
     << " piggybacks=" << dep.piggybacks << " retries=" << dep.retries
     << " applies=" << dep.applies;
  if (dep.latency_count > 0) {
    os << " apply_latency mean="
       << FmtDouble(dep.latency_sum_us /
                        static_cast<double>(dep.latency_count) / 1000.0)
       << "ms max=" << FmtDouble(dep.latency_max_us / 1000.0) << "ms";
  }
  os << "\n";
  os << "  aborts: " << JoinCounts(DigestAborts(audit, plan_id, false))
     << "\n";
  return os.str();
}

std::string Summary(const RunData& run) {
  std::ostringstream os;
  for (const json::Value& rec : run.audit) {
    if (rec.GetString("type") == "run_meta") {
      os << "run: seed=" << rec.GetUint64("seed") << " strategy="
         << rec.GetString("strategy") << " nodes=" << rec.GetUint64("nodes")
         << " keys=" << rec.GetUint64("keys")
         << " planner=" << (GetBool(rec, "planner") ? "on" : "off")
         << " replicas=" << (GetBool(rec, "replicas") ? "on" : "off")
         << "\n";
      break;
    }
  }

  std::map<std::string, uint64_t> replans;
  std::map<std::string, uint64_t> accepts;
  std::map<std::string, uint64_t> rejects;
  uint64_t promotions = 0, failovers = 0, catchup_refreshed = 0,
           catchup_dropped = 0;
  for (const json::Value& rec : run.audit) {
    const std::string type = rec.GetString("type");
    if (type == "replan") ++replans[rec.GetString("outcome")];
    if (type == "plan_op") {
      auto& bucket =
          rec.GetString("decision") == "accept" ? accepts : rejects;
      ++bucket[rec.GetString("reason")];
    }
    if (type == "promotion") {
      promotions += rec.GetUint64("promoted");
      failovers += rec.GetUint64("failovers");
    }
    if (type == "catchup") {
      catchup_refreshed += rec.GetUint64("refreshed");
      catchup_dropped += rec.GetUint64("dropped");
    }
  }
  os << "replans: " << JoinCounts(replans) << "\n";
  os << "op accepts: " << JoinCounts(accepts) << "\n";
  os << "op rejects: " << JoinCounts(rejects) << "\n";
  const DeployDigest dep = DigestDeploys(run.audit, 0, /*all_plans=*/true);
  os << "deploys: submits=" << dep.submits
     << " piggybacks=" << dep.piggybacks << " retries=" << dep.retries
     << " applies=" << dep.applies;
  if (dep.latency_count > 0) {
    os << " apply_latency mean="
       << FmtDouble(dep.latency_sum_us /
                        static_cast<double>(dep.latency_count) / 1000.0)
       << "ms max=" << FmtDouble(dep.latency_max_us / 1000.0) << "ms";
  }
  os << "\n";
  os << "system-txn aborts: "
     << JoinCounts(DigestAborts(run.audit, 0, /*all_plans=*/true)) << "\n";
  if (promotions > 0 || failovers > 0 || catchup_refreshed > 0 ||
      catchup_dropped > 0) {
    os << "replication: promotions=" << promotions
       << " failovers=" << failovers
       << " catchup_refreshed=" << catchup_refreshed
       << " catchup_dropped=" << catchup_dropped << "\n";
  }

  if (!run.timeline.empty()) {
    uint64_t max_queue = 0;
    double max_load = 0;
    uint64_t max_load_partition = 0;
    uint64_t migrations = 0, creates = 0, drops = 0;
    for (const json::Value& tick : run.timeline) {
      max_queue = std::max(max_queue, tick.GetUint64("queue_depth"));
      const json::Value* parts = tick.Find("partitions");
      if (parts == nullptr || !parts->is_array()) continue;
      for (const json::Value& row : parts->AsArray()) {
        if (row.GetDouble("load") > max_load) {
          max_load = row.GetDouble("load");
          max_load_partition = row.GetUint64("p");
        }
        migrations += row.GetUint64("migrations_in");
        creates += row.GetUint64("replica_creates");
        drops += row.GetUint64("replica_drops");
      }
    }
    os << "timeline: " << run.timeline.size()
       << " ticks, peak queue=" << max_queue << ", peak load="
       << FmtDouble(max_load) << " on partition " << max_load_partition
       << ", migrations=" << migrations << " replica_creates=" << creates
       << " replica_drops=" << drops << "\n";
  }

  std::map<std::string, uint64_t> invariant_hits;
  for (const json::Value& rec : run.audit) {
    if (rec.GetString("type") == "invariant") {
      ++invariant_hits[rec.GetString("check")];
    }
    if (rec.GetString("type") == "check_summary") {
      os << "check: " << (GetBool(rec, "ok") ? "ok" : "VIOLATIONS")
         << " violations=" << rec.GetUint64("violations")
         << " txns=" << rec.GetUint64("txns")
         << " reads=" << rec.GetUint64("reads")
         << " ww=" << rec.GetUint64("ww") << " wr=" << rec.GetUint64("wr")
         << " rw=" << rec.GetUint64("rw")
         << " invariant_checks=" << rec.GetUint64("invariant_checks");
      if (rec.GetUint64("breaks_fired") > 0) {
        os << " breaks_fired=" << rec.GetUint64("breaks_fired");
      }
      os << "\n";
    }
  }
  if (!invariant_hits.empty()) {
    os << "check violations by rule: " << JoinCounts(invariant_hits) << "\n";
  }

  for (const json::Value& rec : run.audit) {
    if (rec.GetString("type") == "run_end") {
      os << "end: events=" << rec.GetUint64("events")
         << " committed_normal=" << rec.GetUint64("committed_normal")
         << " committed_repartition="
         << rec.GetUint64("committed_repartition")
         << " ops_applied=" << rec.GetUint64("repartition_ops_applied")
         << " rounds=" << rec.GetUint64("rounds")
         << " drained=" << (GetBool(rec, "drained") ? "yes" : "no") << "\n";
      break;
    }
  }
  return os.str();
}

std::string HtmlReport(const RunData& run) {
  std::ostringstream os;
  os << "<!doctype html><html><head><meta charset=\"utf-8\">"
     << "<title>soap_report</title><style>"
     << "body{font:14px/1.5 system-ui,sans-serif;margin:24px;color:#123}"
     << "h1{font-size:20px}h2{font-size:16px;margin-top:28px}"
     << "pre{background:#f4f6f5;padding:10px;border-radius:6px}"
     << "table{border-collapse:collapse;margin:8px 0}"
     << "td,th{border:1px solid #cdd;padding:3px 8px;font-size:13px;"
     << "text-align:right}th{background:#eef2f0}td.l,th.l{text-align:left}"
     << "tr.reject td{color:#a44}.dim{color:#789;font-size:12px}"
     << ".spark{vertical-align:middle}"
     << "</style></head><body><h1>SOAP run report</h1>";

  os << "<h2>Summary</h2><pre>" << HtmlEscape(Summary(run)) << "</pre>";

  if (!run.timeline.empty()) {
    std::vector<double> queue, dist, lockp99;
    std::map<uint64_t, std::vector<double>> load_by_partition;
    for (const json::Value& tick : run.timeline) {
      queue.push_back(tick.GetDouble("queue_depth"));
      dist.push_back(tick.GetDouble("distributed_ratio"));
      lockp99.push_back(tick.GetDouble("lock_wait_p99_ms"));
      const json::Value* parts = tick.Find("partitions");
      if (parts == nullptr || !parts->is_array()) continue;
      for (const json::Value& row : parts->AsArray()) {
        load_by_partition[row.GetUint64("p")].push_back(
            row.GetDouble("load"));
      }
    }
    os << "<h2>Timelines</h2><table>"
       << "<tr><th class=\"l\">series</th><th class=\"l\">trend</th></tr>"
       << "<tr><td class=\"l\">TM queue depth</td><td class=\"l\">"
       << Sparkline(queue) << "</td></tr>"
       << "<tr><td class=\"l\">distributed txn ratio</td><td class=\"l\">"
       << Sparkline(dist) << "</td></tr>"
       << "<tr><td class=\"l\">lock-wait p99 (ms)</td><td class=\"l\">"
       << Sparkline(lockp99) << "</td></tr>";
    for (const auto& [p, loads] : load_by_partition) {
      os << "<tr><td class=\"l\">partition " << p
         << " load</td><td class=\"l\">" << Sparkline(loads)
         << "</td></tr>";
    }
    os << "</table>";
  }

  const std::map<uint64_t, uint64_t> plans = EmittedPlans(run.audit);
  for (const auto& [plan_id, cycle] : plans) {
    os << "<h2>Plan " << plan_id << " (cycle " << cycle << ")</h2>";
    const std::vector<OpDecision> decisions =
        CollectDecisions(run.audit, cycle);
    os << "<table><tr><th class=\"l\">key</th><th class=\"l\">op</th>"
       << "<th>src</th><th>dst</th><th class=\"l\">decision</th>"
       << "<th class=\"l\">reason</th><th>heat</th><th>reads</th>"
       << "<th>writes</th><th>copies</th></tr>";
    for (const OpDecision& d : decisions) {
      os << "<tr" << (d.accepted ? "" : " class=\"reject\"") << ">"
         << "<td class=\"l\">" << d.key << "</td><td class=\"l\">"
         << HtmlEscape(d.op) << "</td><td>" << d.source << "</td><td>"
         << d.target << "</td><td class=\"l\">"
         << (d.accepted ? "accept" : "reject") << "</td><td class=\"l\">"
         << HtmlEscape(d.reason) << "</td><td>" << d.heat << "</td><td>"
         << d.reads << "</td><td>" << d.writes << "</td><td>" << d.copies
         << "</td></tr>";
    }
    os << "</table>";
    const DeployDigest dep = DigestDeploys(run.audit, plan_id, false);
    os << "<p class=\"dim\">lifecycle: submits=" << dep.submits
       << " piggybacks=" << dep.piggybacks << " retries=" << dep.retries
       << " applies=" << dep.applies << " · aborts: "
       << HtmlEscape(JoinCounts(DigestAborts(run.audit, plan_id, false)))
       << "</p>";
  }

  os << "</body></html>\n";
  return os.str();
}

}  // namespace soap::obs::report
