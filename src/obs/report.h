// Offline analysis of observability exports: the library behind the
// soap_report tool. Ingests the audit log (--audit_out), the partition
// timeline (--timeline_out) and optionally the per-interval metrics
// snapshots (--metrics_jsonl), all JSONL, and renders:
//
//   - Explain(plan):  every candidate op of one plan generation with its
//     cost inputs and accept/reject reason, joined with the plan's
//     deployment lifecycle (submits, piggybacks, retries, aborts, apply
//     latency).
//   - Summary():      whole-run digest — replans by outcome, decisions by
//     reason, deployment and abort counts, promotion/catch-up sweeps,
//     timeline peaks.
//   - HtmlReport():   a self-contained HTML page (inline SVG sparklines,
//     per-plan explain tables) for sharing a run.
//   - Validate*():    schema checks used by tests and CI.
//
// Everything operates on parsed json::Value records, so tests can build
// inputs without touching the filesystem.

#ifndef SOAP_OBS_REPORT_H_
#define SOAP_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/result.h"

namespace soap::obs::report {

/// Parsed inputs for one run. Any stream may be empty (e.g. a run without
/// --timeline_out); renderers degrade to what is present.
struct RunData {
  std::vector<json::Value> audit;
  std::vector<json::Value> timeline;
  std::vector<json::Value> metrics;
};

/// Reads and parses one JSONL file.
Result<std::vector<json::Value>> LoadJsonlFile(const std::string& path);

/// Tolerant variant: a malformed FINAL line (a writer that died mid-record
/// leaves exactly this shape) is dropped and `*truncated_final_line` is set
/// instead of failing the load. Corruption anywhere earlier still fails.
Result<std::vector<json::Value>> LoadJsonlFile(const std::string& path,
                                               bool* truncated_final_line);

/// Schema check for an audit stream: version, known record types,
/// per-type required fields, non-decreasing virtual time.
Status ValidateAudit(const std::vector<json::Value>& records);

/// Schema check for a timeline stream: version, tick fields, strictly
/// increasing intervals, rectangular partition arrays.
Status ValidateTimeline(const std::vector<json::Value>& ticks);

/// The final decision for one candidate op after applying overrides: a
/// plan_op accepted by the builder but later dropped by the per-plan op
/// cap (`dropped_by_cap`) ends up rejected.
struct OpDecision {
  uint64_t key = 0;
  std::string op;        // migrate | replica_create | replica_delete
  bool accepted = false;
  std::string reason;    // final reason (override wins)
  uint64_t source = 0;
  uint64_t target = 0;
  uint64_t heat = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t copies = 0;
  bool capped = false;   // accepted by cost, then dropped by the cap
};

/// All decisions of one planner cycle, in emission order, with
/// dropped_by_cap overrides applied.
std::vector<OpDecision> CollectDecisions(
    const std::vector<json::Value>& audit, uint64_t cycle);

/// Human-readable explanation of one plan generation (text). Empty plan id
/// list -> error string naming the plans that exist.
std::string Explain(const std::vector<json::Value>& audit, uint64_t plan_id);

/// Whole-run text digest.
std::string Summary(const RunData& run);

/// Self-contained HTML report (no external assets).
std::string HtmlReport(const RunData& run);

}  // namespace soap::obs::report

#endif  // SOAP_OBS_REPORT_H_
