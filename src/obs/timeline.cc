#include "src/obs/timeline.h"

#include <algorithm>
#include <cstdio>

namespace soap::obs {

double HistogramWindow::WindowPercentileMs(const Histogram& cumulative,
                                           double p) {
  if (prev_buckets_.empty()) {
    prev_buckets_.assign(Histogram::kNumBuckets, 0);
  }
  std::vector<uint64_t> delta(Histogram::kNumBuckets, 0);
  uint64_t total = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t now = cumulative.bucket_count(b);
    delta[b] = now - prev_buckets_[b];
    total += delta[b];
    prev_buckets_[b] = now;
  }
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (delta[b] == 0) continue;
    const uint64_t next = seen + delta[b];
    if (static_cast<double>(next) >= target) {
      const double lo =
          b == 0 ? 0.0
                 : static_cast<double>(Histogram::BucketUpperBound(b - 1)) + 1;
      const uint64_t ub = Histogram::BucketUpperBound(b);
      // The overflow bucket has no finite upper bound; report its floor.
      const double hi = ub == UINT64_MAX ? lo : static_cast<double>(ub);
      const double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(delta[b]);
      return (lo + frac * (hi - lo)) / 1000.0;  // us -> ms
    }
    seen = next;
  }
  return 0.0;
}

void Timeline::Record(TimelineTick tick) {
  if (config_.max_ticks > 0 && ticks_.size() >= config_.max_ticks) {
    ticks_.pop_front();
    ++evicted_;
  }
  ticks_.push_back(std::move(tick));
}

std::string Timeline::ToJsonl() const {
  auto format_double = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  std::string out;
  for (const TimelineTick& tick : ticks_) {
    out += "{\"v\":" + std::to_string(kTimelineSchemaVersion) +
           ",\"t_us\":" + std::to_string(tick.t_us) +
           ",\"type\":\"tick\",\"interval\":" + std::to_string(tick.interval) +
           ",\"queue_depth\":" + std::to_string(tick.queue_depth) +
           ",\"lock_wait_p99_ms\":" + format_double(tick.lock_wait_p99_ms) +
           ",\"distributed_ratio\":" + format_double(tick.distributed_ratio) +
           ",\"partitions\":[";
    bool first = true;
    for (const TimelinePartitionRow& row : tick.partitions) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"p\":" + std::to_string(row.partition) +
             ",\"load\":" + format_double(row.load) +
             ",\"queued_jobs\":" + std::to_string(row.queued_jobs) +
             ",\"primaries\":" + std::to_string(row.primaries) +
             ",\"replicas\":" + std::to_string(row.replicas) +
             ",\"migrations_in\":" + std::to_string(row.migrations_in) +
             ",\"migrations_out\":" + std::to_string(row.migrations_out) +
             ",\"replica_creates\":" + std::to_string(row.replica_creates) +
             ",\"replica_drops\":" + std::to_string(row.replica_drops) + "}";
    }
    out += "]}\n";
  }
  return out;
}

Status Timeline::WriteFile(const std::string& path) const {
  const std::string contents = ToJsonl();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const int rc = std::fclose(f);
  if (written != contents.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace soap::obs
