// Per-partition flight recorder: a bounded ring of periodic snapshots
// (one per experiment interval by default) capturing for each partition
// its load, node queue depth, placement counts (primaries/replicas) and
// migration/replica flows, plus cluster-wide queue depth, windowed
// lock-wait p99 and the distributed-transaction ratio. Exported as JSONL
// for soap_report's sparkline timelines.
//
// Everything recorded is virtual-time or a counter, so the export is
// byte-identical across thread counts. Cost discipline as in metrics.h:
// the TM holds a raw `PartitionFlows*` (nullptr when off) and pays one
// branch plus an integer add per routing flip.

#ifndef SOAP_OBS_TIMELINE_H_
#define SOAP_OBS_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace soap::obs {

/// Timeline schema version; bump when a tick's fields change incompatibly.
inline constexpr int kTimelineSchemaVersion = 1;

/// Cumulative per-partition placement-change counters, fed by the TM when
/// it applies post-commit routing updates. The timeline snapshots deltas
/// between ticks.
struct PartitionFlows {
  std::vector<uint64_t> migrations_in;
  std::vector<uint64_t> migrations_out;
  std::vector<uint64_t> replica_creates;
  std::vector<uint64_t> replica_drops;
  /// Leader shifts landing on a partition (it became the primary). Not
  /// part of the tick schema (v1) — read directly by reports/benches.
  std::vector<uint64_t> leader_shifts;

  void Resize(uint32_t partitions) {
    migrations_in.assign(partitions, 0);
    migrations_out.assign(partitions, 0);
    replica_creates.assign(partitions, 0);
    replica_drops.assign(partitions, 0);
    leader_shifts.assign(partitions, 0);
  }

  void OnMigration(uint32_t source, uint32_t target) {
    if (source < migrations_out.size()) ++migrations_out[source];
    if (target < migrations_in.size()) ++migrations_in[target];
  }
  void OnReplicaCreate(uint32_t target) {
    if (target < replica_creates.size()) ++replica_creates[target];
  }
  void OnReplicaDrop(uint32_t at) {
    if (at < replica_drops.size()) ++replica_drops[at];
  }
  void OnLeaderShift(uint32_t target) {
    if (target < leader_shifts.size()) ++leader_shifts[target];
  }
};

/// One partition's row inside a tick. Flow fields are per-window deltas.
struct TimelinePartitionRow {
  uint32_t partition = 0;
  /// Worker-busy fraction over the window (normal + repartition work).
  double load = 0.0;
  /// Jobs queued on the node at snapshot time (bulk + urgent).
  uint64_t queued_jobs = 0;
  uint64_t primaries = 0;
  uint64_t replicas = 0;
  uint64_t migrations_in = 0;
  uint64_t migrations_out = 0;
  uint64_t replica_creates = 0;
  uint64_t replica_drops = 0;
};

/// One periodic snapshot.
struct TimelineTick {
  SimTime t_us = 0;
  uint32_t interval = 0;
  /// TM processing-queue depth at snapshot time.
  uint64_t queue_depth = 0;
  /// p99 lock wait over this window (ms); 0 when nothing waited.
  double lock_wait_p99_ms = 0.0;
  /// Distributed share of the window's committed normal transactions.
  double distributed_ratio = 0.0;
  std::vector<TimelinePartitionRow> partitions;
};

/// Approximates a windowed percentile from a cumulative histogram by
/// diffing bucket counts against the previous observation.
class HistogramWindow {
 public:
  /// Percentile of the samples recorded since the last call (ms; input
  /// histogram in microseconds). Advances the window.
  double WindowPercentileMs(const Histogram& cumulative, double p);

 private:
  std::vector<uint64_t> prev_buckets_;
};

/// Bounded ring of ticks; the newest max_ticks survive.
class Timeline {
 public:
  struct Config {
    size_t max_ticks = 8192;
  };

  Timeline() = default;
  explicit Timeline(Config config) : config_(config) {}
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  void Record(TimelineTick tick);

  const std::deque<TimelineTick>& ticks() const { return ticks_; }
  size_t evicted() const { return evicted_; }
  PartitionFlows* flows() { return &flows_; }
  const PartitionFlows& flows() const { return flows_; }

  /// JSONL: one {"v":1,"type":"tick",...} object per tick.
  std::string ToJsonl() const;

  Status WriteFile(const std::string& path) const;

 private:
  Config config_;
  std::deque<TimelineTick> ticks_;
  size_t evicted_ = 0;
  PartitionFlows flows_;
};

}  // namespace soap::obs

#endif  // SOAP_OBS_TIMELINE_H_
