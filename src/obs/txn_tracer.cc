#include "src/obs/txn_tracer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace soap::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueued:
      return "queued";
    case SpanKind::kExecute:
      return "execute";
    case SpanKind::kLockWait:
      return "lock_wait";
    case SpanKind::kPrepare:
      return "2pc_prepare";
    case SpanKind::kCommit:
      return "commit";
    case SpanKind::kTxn:
      return "txn";
  }
  return "?";
}

const char* TxnKindName(TxnKind kind) {
  switch (kind) {
    case TxnKind::kClient:
      return "client";
    case TxnKind::kRepartition:
      return "repartition";
    case TxnKind::kReplicaApply:
      return "replica-apply";
    case TxnKind::kCarrier:
      return "carrier";
  }
  return "?";
}

void TxnTracer::Begin(uint64_t txn_id, SpanKind kind, SimTime now) {
  open_.emplace(OpenKey(txn_id, kind), now);  // no overwrite: idempotent
}

void TxnTracer::End(uint64_t txn_id, SpanKind kind, SimTime now) {
  auto it = open_.find(OpenKey(txn_id, kind));
  if (it == open_.end()) return;
  TraceSpan span;
  span.txn_id = txn_id;
  span.kind = kind;
  span.start_us = it->second;
  span.end_us = now;
  open_.erase(it);
  Emit(span);
}

void TxnTracer::FinishTxn(uint64_t txn_id, SimTime submit_us, SimTime now,
                          uint32_t coordinator, bool committed,
                          TxnKind txn_kind) {
  for (int k = 0; k <= static_cast<int>(SpanKind::kCommit); ++k) {
    End(txn_id, static_cast<SpanKind>(k), now);
  }
  TraceSpan span;
  span.txn_id = txn_id;
  span.kind = SpanKind::kTxn;
  span.start_us = submit_us;
  span.end_us = now;
  span.node = coordinator;
  span.committed = committed;
  span.txn_kind = txn_kind;
  Emit(span);
}

void TxnTracer::Emit(TraceSpan span) {
  if (spans_.size() >= config_.max_spans) {
    ++dropped_;
    return;
  }
  spans_.push_back(span);
}

void TxnTracer::Clear() {
  open_.clear();
  spans_.clear();
  dropped_ = 0;
}

CriticalPathBreakdown TxnTracer::AggregateCriticalPath() const {
  CriticalPathBreakdown b;
  Duration execute_gross = 0;
  for (const TraceSpan& s : spans_) {
    switch (s.kind) {
      case SpanKind::kQueued:
        b.queued += s.duration();
        break;
      case SpanKind::kLockWait:
        b.lock_wait += s.duration();
        break;
      case SpanKind::kExecute:
        execute_gross += s.duration();
        break;
      case SpanKind::kPrepare:
        b.prepare += s.duration();
        break;
      case SpanKind::kCommit:
        b.commit += s.duration();
        break;
      case SpanKind::kTxn:
        ++b.txns;
        break;
    }
  }
  // Lock waits happen inside the execute phase (op locks and the
  // commit-lock chain both precede the commit protocol); subtract them so
  // the buckets partition the critical path instead of double counting.
  b.execute = std::max<Duration>(0, execute_gross - b.lock_wait);
  return b;
}

std::string TxnTracer::ToChromeJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << SpanKindName(s.kind)
       << "\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":" << s.start_us
       << ",\"dur\":" << s.duration() << ",\"pid\":" << s.node
       << ",\"tid\":" << s.txn_id;
    if (s.kind == SpanKind::kTxn) {
      os << ",\"args\":{\"outcome\":\""
         << (s.committed ? "committed" : "aborted") << "\",\"kind\":\""
         << TxnKindName(s.txn_kind) << "\"}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

Status TxnTracer::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  if (written != json.size() || rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace soap::obs
