// Sampling per-transaction lifecycle tracer. The transaction manager marks
// phase transitions (queued -> execute -> lock-wait -> prepare -> commit /
// abort) in virtual time; the tracer turns them into spans and exports
// Chrome trace-event JSON that Perfetto / chrome://tracing load directly.
//
// Sampling is deterministic — txn_id % sample_every == 0 — so a traced run
// is reproducible and the trace decision costs one branch plus one modulo,
// only taken when tracing is enabled at all.

#ifndef SOAP_OBS_TXN_TRACER_H_
#define SOAP_OBS_TXN_TRACER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"

namespace soap::obs {

/// Transaction lifecycle phases. kTxn is the enclosing whole-transaction
/// span emitted at completion.
enum class SpanKind : uint8_t {
  kQueued = 0,    ///< submit -> dispatch (processing-queue residence)
  kExecute = 1,   ///< dispatch -> commit protocol start (per-op work)
  kLockWait = 2,  ///< one blocking lock acquisition (may repeat)
  kPrepare = 3,   ///< 2PC phase 1 round
  kCommit = 4,    ///< 2PC phase 2 / local commit
  kTxn = 5,       ///< whole transaction, submit -> finish
};

const char* SpanKindName(SpanKind kind);

/// What kind of transaction a kTxn span belongs to, so Chrome traces can
/// filter workload transactions from the system's own repartition /
/// replica-maintenance traffic.
enum class TxnKind : uint8_t {
  kClient = 0,        ///< normal workload transaction
  kRepartition = 1,   ///< pure repartition transaction (migrations)
  kReplicaApply = 2,  ///< pure repartition txn of only replica ops
  kCarrier = 3,       ///< normal txn carrying piggybacked repartition ops
};

const char* TxnKindName(TxnKind kind);

struct TraceSpan {
  uint64_t txn_id = 0;
  SpanKind kind = SpanKind::kTxn;
  SimTime start_us = 0;
  SimTime end_us = 0;
  /// Trace-track hint: the coordinator node for whole-txn spans, 0 for
  /// phases (phases ride on their transaction's track).
  uint32_t node = 0;
  /// Outcome flag for kTxn spans ("committed"/"aborted" argument).
  bool committed = false;
  /// Transaction kind for kTxn spans (client/repartition/replica-apply/
  /// carrier); kClient for phase spans.
  TxnKind txn_kind = TxnKind::kClient;

  Duration duration() const { return end_us - start_us; }
};

/// Where a traced transaction's virtual time went, summed over phases.
/// Queue + lock-wait + prepare separate scheduling and coordination cost
/// from useful execution — the critical-path split §4's figures lack.
struct CriticalPathBreakdown {
  Duration queued = 0;
  Duration lock_wait = 0;
  Duration execute = 0;  ///< execute-span time minus contained lock waits
  Duration prepare = 0;
  Duration commit = 0;
  uint64_t txns = 0;  ///< finished traced transactions aggregated

  Duration Total() const {
    return queued + lock_wait + execute + prepare + commit;
  }
};

class TxnTracer {
 public:
  struct Config {
    /// Trace every n-th transaction id; 0 disables tracing entirely,
    /// 1 traces everything.
    uint32_t sample_every = 0;
    /// Hard cap on stored spans (memory backstop for long runs; spans
    /// past the cap are dropped and counted).
    size_t max_spans = 2'000'000;
  };

  TxnTracer() = default;
  explicit TxnTracer(Config config) : config_(config) {}
  TxnTracer(const TxnTracer&) = delete;
  TxnTracer& operator=(const TxnTracer&) = delete;

  bool enabled() const { return config_.sample_every > 0; }

  /// The sampling decision; callers gate every other call on this.
  bool Sampled(uint64_t txn_id) const {
    return config_.sample_every > 0 && txn_id % config_.sample_every == 0;
  }

  /// Opens a phase span at `now`. Opening a kind that is already open is
  /// a no-op (idempotent against resubmission races).
  void Begin(uint64_t txn_id, SpanKind kind, SimTime now);

  /// Closes an open phase span; no-op if that kind is not open.
  void End(uint64_t txn_id, SpanKind kind, SimTime now);

  /// Closes every phase the transaction still has open (abort paths) and
  /// emits the enclosing kTxn span from `submit_us` to `now`, tagged with
  /// the transaction's kind.
  void FinishTxn(uint64_t txn_id, SimTime submit_us, SimTime now,
                 uint32_t coordinator, bool committed,
                 TxnKind kind = TxnKind::kClient);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  size_t dropped_spans() const { return dropped_; }
  size_t open_spans() const { return open_.size(); }
  void Clear();

  /// Aggregates finished transactions' phase times.
  CriticalPathBreakdown AggregateCriticalPath() const;

  /// Chrome trace-event JSON (object form, {"traceEvents":[...]}) with one
  /// complete ("ph":"X") event per span; ts/dur in virtual microseconds,
  /// pid = coordinator node, tid = transaction id.
  std::string ToChromeJson() const;

  Status WriteChromeJson(const std::string& path) const;

 private:
  static uint64_t OpenKey(uint64_t txn_id, SpanKind kind) {
    return (txn_id << 3) | static_cast<uint64_t>(kind);
  }
  void Emit(TraceSpan span);

  Config config_;
  std::unordered_map<uint64_t, SimTime> open_;  // OpenKey -> start time
  std::vector<TraceSpan> spans_;
  size_t dropped_ = 0;
};

}  // namespace soap::obs

#endif  // SOAP_OBS_TXN_TRACER_H_
