#include "src/planner/co_access_graph.h"

#include <algorithm>

namespace soap::planner {

void CoAccessGraph::Observe(const txn::Transaction& t) {
  // Distinct data keys only; piggybacked/repartition ops carry
  // repartition_op_id != 0 and are not workload co-access.
  std::vector<storage::TupleKey> keys;
  keys.reserve(t.ops.size());
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    keys.push_back(op.key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty() || keys.size() > config_.max_keys_per_txn) return;

  ++txns_observed_;
  for (storage::TupleKey k : keys) vertices_[k].weight += 1;
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    if (op.kind == txn::OpKind::kRead) {
      vertices_[op.key].reads += 1;
    } else if (op.kind == txn::OpKind::kWrite) {
      vertices_[op.key].writes += 1;
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      Vertex& va = vertices_[keys[i]];
      auto [it, inserted] = va.out.try_emplace(keys[j], 0);
      it->second += 1;
      vertices_[keys[j]].out[keys[i]] += 1;
      if (inserted) ++edge_count_;
    }
  }
  if (edge_count_ > config_.max_edges) EvictOverCap();
}

void CoAccessGraph::EraseEdge(storage::TupleKey a, storage::TupleKey b) {
  auto ia = vertices_.find(a);
  auto ib = vertices_.find(b);
  if (ia != vertices_.end()) ia->second.out.erase(b);
  if (ib != vertices_.end()) ib->second.out.erase(a);
  --edge_count_;
}

void CoAccessGraph::EvictOverCap() {
  if (edge_count_ <= config_.max_edges) return;
  std::vector<Edge> edges = SortedEdges();
  // Lightest first; SortedEdges' (a, b) order makes ties deterministic.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& x, const Edge& y) {
                     return x.weight < y.weight;
                   });
  const size_t excess = edge_count_ - config_.max_edges;
  for (size_t i = 0; i < excess && i < edges.size(); ++i) {
    EraseEdge(edges[i].a, edges[i].b);
  }
}

void CoAccessGraph::Decay() {
  std::vector<std::pair<storage::TupleKey, storage::TupleKey>> dead_edges;
  for (auto& [key, v] : vertices_) {
    v.weight >>= config_.decay_shift;
    v.reads >>= config_.decay_shift;
    v.writes >>= config_.decay_shift;
    for (auto& [nbr, w] : v.out) {
      w >>= config_.decay_shift;
      if (w < config_.min_edge_weight && key < nbr) {
        dead_edges.emplace_back(key, nbr);
      }
    }
  }
  for (const auto& [a, b] : dead_edges) EraseEdge(a, b);
  // Drop vertices that decayed to nothing and have no edges left.
  for (auto it = vertices_.begin(); it != vertices_.end();) {
    if (it->second.weight == 0 && it->second.out.empty()) {
      it = vertices_.erase(it);
    } else {
      ++it;
    }
  }
  EvictOverCap();
}

uint64_t CoAccessGraph::VertexWeight(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.weight;
}

uint64_t CoAccessGraph::VertexReads(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.reads;
}

uint64_t CoAccessGraph::VertexWrites(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.writes;
}

uint64_t CoAccessGraph::EdgeWeight(storage::TupleKey a,
                                   storage::TupleKey b) const {
  auto it = vertices_.find(a);
  if (it == vertices_.end()) return 0;
  auto e = it->second.out.find(b);
  return e == it->second.out.end() ? 0 : e->second;
}

std::vector<storage::TupleKey> CoAccessGraph::SortedVertices() const {
  std::vector<storage::TupleKey> keys;
  keys.reserve(vertices_.size());
  for (const auto& [key, v] : vertices_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<CoAccessGraph::Edge> CoAccessGraph::SortedEdges() const {
  std::vector<Edge> edges;
  edges.reserve(edge_count_);
  for (const auto& [key, v] : vertices_) {
    for (const auto& [nbr, w] : v.out) {
      if (key < nbr) edges.push_back({key, nbr, w});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return edges;
}

std::vector<std::pair<storage::TupleKey, uint64_t>>
CoAccessGraph::NeighborsOf(storage::TupleKey key) const {
  std::vector<std::pair<storage::TupleKey, uint64_t>> out;
  auto it = vertices_.find(key);
  if (it == vertices_.end()) return out;
  out.reserve(it->second.out.size());
  for (const auto& [nbr, w] : it->second.out) out.emplace_back(nbr, w);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace soap::planner
