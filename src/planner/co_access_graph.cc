#include "src/planner/co_access_graph.h"

#include <algorithm>
#include <utility>

namespace soap::planner {

namespace {

// The partition a transaction is "homed" on: the modal source partition
// across its data ops, ties to the lowest id — the partition the txn
// would run single-node on if every key it writes lived there. Ops are
// few (normal SOAP txns touch 5 keys), so a flat scan beats a map.
uint32_t TxnHome(const txn::Transaction& t) {
  // (partition, count) pairs, insertion-ordered; resolved at the end.
  std::vector<std::pair<uint32_t, uint64_t>> counts;
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    bool found = false;
    for (auto& [p, c] : counts) {
      if (p == op.source_partition) {
        ++c;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(op.source_partition, 1);
  }
  uint32_t home = 0;
  uint64_t best = 0;
  for (const auto& [p, c] : counts) {
    if (c > best || (c == best && p < home)) {
      home = p;
      best = c;
    }
  }
  return home;
}

}  // namespace

CoAccessGraph::CoAccessGraph(CoAccessGraphConfig config)
    : config_(config) {
  sketch_mode_ = config_.num_keys > config_.sketch_threshold;
  if (sketch_mode_) {
    const uint64_t ranges = std::max<uint64_t>(1, config_.supernode_ranges);
    supernode_width_ = std::max<uint64_t>(1, (config_.num_keys + ranges - 1) /
                                                 ranges);
    hot_ = std::make_unique<sketch::SpaceSaving>(config_.sketch_topk);
    heat_ = std::make_unique<sketch::CountMin>(config_.count_min_width_log2,
                                               config_.count_min_depth);
  }
}

void CoAccessGraph::Observe(const txn::Transaction& t) {
  // Distinct data keys only; piggybacked/repartition ops carry
  // repartition_op_id != 0 and are not workload co-access.
  std::vector<storage::TupleKey> keys;
  keys.reserve(t.ops.size());
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    keys.push_back(op.key);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty() || keys.size() > config_.max_keys_per_txn) return;

  if (sketch_mode_) {
    ObserveSketch(keys, t);
    return;
  }

  ++txns_observed_;
  for (storage::TupleKey k : keys) vertices_[k].weight += 1;
  const uint32_t home = TxnHome(t);
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    if (op.kind == txn::OpKind::kRead) {
      vertices_[op.key].reads += 1;
    } else if (op.kind == txn::OpKind::kWrite) {
      Vertex& v = vertices_[op.key];
      v.writes += 1;
      v.write_from[home] += 1;
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      Vertex& va = vertices_[keys[i]];
      auto [it, inserted] = va.out.try_emplace(keys[j], 0);
      it->second += 1;
      vertices_[keys[j]].out[keys[i]] += 1;
      if (inserted) ++edge_count_;
    }
  }
  if (edge_count_ > config_.max_edges) EvictOverCap();
}

void CoAccessGraph::ObserveSketch(const std::vector<storage::TupleKey>& keys,
                                  const txn::Transaction& t) {
  ++txns_observed_;
  // Feed the sketches first so a key that just crossed into the top-k is
  // treated as hot within the same transaction.
  for (storage::TupleKey k : keys) {
    hot_->Add(k);
    heat_->Add(k);
  }
  // Vertex id per key: hot keys keep themselves, the cold tail folds into
  // its keyspace-range supernode.
  std::vector<storage::TupleKey> vids;
  vids.reserve(keys.size());
  for (storage::TupleKey k : keys) {
    vids.push_back(IsHotLocked(k) ? k : SupernodeOf(k));
  }
  for (storage::TupleKey vid : vids) vertices_[vid].weight += 1;
  const uint32_t home = TxnHome(t);
  for (const txn::Operation& op : t.ops) {
    if (op.repartition_op_id != 0) continue;
    const storage::TupleKey vid =
        IsHotLocked(op.key) ? op.key : SupernodeOf(op.key);
    if (op.kind == txn::OpKind::kRead) {
      vertices_[vid].reads += 1;
    } else if (op.kind == txn::OpKind::kWrite) {
      Vertex& v = vertices_[vid];
      v.writes += 1;
      // Supernodes aggregate the cold tail and never shift leaders, so
      // write attribution stays on exact (hot) vertices only.
      if (!IsSupernode(vid)) v.write_from[home] += 1;
    }
  }
  // Edges among distinct vertex ids (cold keys sharing a supernode
  // collapse; intra-supernode co-access carries no placement signal).
  std::vector<storage::TupleKey> distinct = vids;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (size_t i = 0; i < distinct.size(); ++i) {
    for (size_t j = i + 1; j < distinct.size(); ++j) {
      Vertex& va = vertices_[distinct[i]];
      auto [it, inserted] = va.out.try_emplace(distinct[j], 0);
      it->second += 1;
      vertices_[distinct[j]].out[distinct[i]] += 1;
      if (inserted) ++edge_count_;
    }
  }
  if (edge_count_ > config_.max_edges) EvictOverCap();
}

void CoAccessGraph::EraseEdge(storage::TupleKey a, storage::TupleKey b) {
  auto ia = vertices_.find(a);
  auto ib = vertices_.find(b);
  if (ia != vertices_.end()) ia->second.out.erase(b);
  if (ib != vertices_.end()) ib->second.out.erase(a);
  --edge_count_;
}

void CoAccessGraph::EvictOverCap() {
  if (edge_count_ <= config_.max_edges) return;
  std::vector<Edge> edges = SortedEdges();
  // Lightest first; SortedEdges' (a, b) order makes ties deterministic.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& x, const Edge& y) {
                     return x.weight < y.weight;
                   });
  const size_t excess = edge_count_ - config_.max_edges;
  for (size_t i = 0; i < excess && i < edges.size(); ++i) {
    EraseEdge(edges[i].a, edges[i].b);
  }
}

void CoAccessGraph::FoldVertex(storage::TupleKey key) {
  const storage::TupleKey sid = SupernodeOf(key);
  vertices_.try_emplace(sid);  // ensure target exists before taking refs
  auto it = vertices_.find(key);
  if (it == vertices_.end()) return;
  Vertex v = std::move(it->second);
  // Detach all of key's edges first (both directions).
  for (const auto& [nbr, w] : v.out) {
    auto nb = vertices_.find(nbr);
    if (nb != vertices_.end()) nb->second.out.erase(key);
    --edge_count_;
  }
  vertices_.erase(it);
  Vertex& sv = vertices_[sid];
  sv.weight += v.weight;
  sv.reads += v.reads;
  sv.writes += v.writes;
  // Re-attach edges to the supernode; edges into the own supernode become
  // internal and vanish.
  for (const auto& [nbr, w] : v.out) {
    if (nbr == sid) continue;
    auto nb = vertices_.find(nbr);
    if (nb == vertices_.end()) continue;
    auto [e, inserted] = sv.out.try_emplace(nbr, 0);
    e->second += w;
    nb->second.out[sid] += w;
    if (inserted) ++edge_count_;
  }
}

void CoAccessGraph::FoldColdVertices() {
  std::vector<storage::TupleKey> cold;
  for (const auto& [key, v] : vertices_) {
    if (!IsSupernode(key) && !IsHotLocked(key)) cold.push_back(key);
  }
  std::sort(cold.begin(), cold.end());
  for (storage::TupleKey key : cold) FoldVertex(key);
}

void CoAccessGraph::Decay() {
  std::vector<std::pair<storage::TupleKey, storage::TupleKey>> dead_edges;
  for (auto& [key, v] : vertices_) {
    v.weight >>= config_.decay_shift;
    v.reads >>= config_.decay_shift;
    v.writes >>= config_.decay_shift;
    for (auto wit = v.write_from.begin(); wit != v.write_from.end();) {
      wit->second >>= config_.decay_shift;
      wit = wit->second == 0 ? v.write_from.erase(wit) : std::next(wit);
    }
    for (auto& [nbr, w] : v.out) {
      w >>= config_.decay_shift;
      if (w < config_.min_edge_weight && key < nbr) {
        dead_edges.emplace_back(key, nbr);
      }
    }
  }
  for (const auto& [a, b] : dead_edges) EraseEdge(a, b);
  // Drop vertices that decayed to nothing and have no edges left.
  for (auto it = vertices_.begin(); it != vertices_.end();) {
    if (it->second.weight == 0 && it->second.out.empty()) {
      it = vertices_.erase(it);
    } else {
      ++it;
    }
  }
  if (sketch_mode_) {
    hot_->Decay(config_.decay_shift);
    heat_->Decay(config_.decay_shift);
    // Keys demoted out of the top-k lose their exact vertex: their
    // remaining mass and edges fold into the supernode hierarchy.
    FoldColdVertices();
  }
  EvictOverCap();
}

uint64_t CoAccessGraph::VertexWeight(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.weight;
}

uint64_t CoAccessGraph::VertexReads(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.reads;
}

uint64_t CoAccessGraph::VertexWrites(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  return it == vertices_.end() ? 0 : it->second.writes;
}

std::vector<std::pair<uint32_t, uint64_t>> CoAccessGraph::WriteSources(
    storage::TupleKey key) const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  auto it = vertices_.find(key);
  if (it == vertices_.end()) return out;
  out.assign(it->second.write_from.begin(), it->second.write_from.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

uint64_t CoAccessGraph::HeatEstimate(storage::TupleKey key) const {
  auto it = vertices_.find(key);
  if (it != vertices_.end()) return it->second.weight;
  if (sketch_mode_) return heat_->Estimate(key);
  return 0;
}

uint64_t CoAccessGraph::EdgeWeight(storage::TupleKey a,
                                   storage::TupleKey b) const {
  auto it = vertices_.find(a);
  if (it == vertices_.end()) return 0;
  auto e = it->second.out.find(b);
  return e == it->second.out.end() ? 0 : e->second;
}

size_t CoAccessGraph::ApproxBytes() const {
  constexpr size_t kHashNodeOverhead = 2 * sizeof(void*);
  size_t bytes = sizeof(*this);
  bytes += vertices_.bucket_count() * sizeof(void*);
  for (const auto& [key, v] : vertices_) {
    bytes += sizeof(key) + sizeof(Vertex) + kHashNodeOverhead;
    bytes += v.out.bucket_count() * sizeof(void*);
    bytes += v.out.size() *
             (sizeof(storage::TupleKey) + sizeof(uint64_t) +
              kHashNodeOverhead);
    bytes += v.write_from.bucket_count() * sizeof(void*);
    bytes += v.write_from.size() *
             (sizeof(uint32_t) + sizeof(uint64_t) + kHashNodeOverhead);
  }
  if (hot_) bytes += hot_->ApproxBytes();
  if (heat_) bytes += heat_->ApproxBytes();
  return bytes;
}

std::vector<storage::TupleKey> CoAccessGraph::SortedVertices() const {
  std::vector<storage::TupleKey> keys;
  keys.reserve(vertices_.size());
  for (const auto& [key, v] : vertices_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<CoAccessGraph::Edge> CoAccessGraph::SortedEdges() const {
  std::vector<Edge> edges;
  edges.reserve(edge_count_);
  for (const auto& [key, v] : vertices_) {
    for (const auto& [nbr, w] : v.out) {
      if (key < nbr) edges.push_back({key, nbr, w});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return edges;
}

std::vector<std::pair<storage::TupleKey, uint64_t>>
CoAccessGraph::NeighborsOf(storage::TupleKey key) const {
  std::vector<std::pair<storage::TupleKey, uint64_t>> out;
  auto it = vertices_.find(key);
  if (it == vertices_.end()) return out;
  out.reserve(it->second.out.size());
  for (const auto& [nbr, w] : it->second.out) out.emplace_back(nbr, w);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace soap::planner
