// Sliding-window tuple co-access graph (the workload model of Schism,
// SWORD and the hypergraph partitioners): vertices are tuple keys weighted
// by access rate, edges connect keys touched by the same committed
// transaction, weighted by co-access frequency. Memory stays bounded by
// deterministic exponential decay (right-shift per interval) plus
// lowest-weight-first eviction against hard caps — no wall clock, no
// hashing-order dependence in anything observable.
//
// Production-cardinality sketch mode (SWORD-style hierarchy): above a
// configured keyspace threshold the graph stops allocating a vertex per
// touched tuple. A space-saving top-k identifies the hot tuples, which
// keep exact vertices and edges; the cold tail folds into per-range
// *supernodes* (one vertex per contiguous keyspace range, tagged by a
// high id bit), and a count-min sketch answers heat queries for tuples
// without a vertex. At paper scale (num_keys <= sketch_threshold) the
// exact path runs unchanged, byte for byte.

#ifndef SOAP_PLANNER_CO_ACCESS_GRAPH_H_
#define SOAP_PLANNER_CO_ACCESS_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sketch/count_min.h"
#include "src/sketch/space_saving.h"
#include "src/storage/tuple.h"
#include "src/txn/transaction.h"

namespace soap::planner {

struct CoAccessGraphConfig {
  /// Right-shift applied to every vertex/edge weight at Decay(); 1 halves
  /// the window each interval, making the effective sliding window a few
  /// intervals deep.
  uint32_t decay_shift = 1;
  /// Edges whose weight falls below this after decay are evicted.
  uint64_t min_edge_weight = 1;
  /// Hard cap on undirected edge count; exceeding it evicts the lightest
  /// edges (ties broken by key order) until back under the cap.
  size_t max_edges = 1u << 20;
  /// Transactions touching more keys than this are ignored (quadratic
  /// edge fan-out guard; normal SOAP transactions touch 5 keys).
  size_t max_keys_per_txn = 32;

  // --- Sketch mode (engaged when num_keys > sketch_threshold) ---
  /// Monitored table cardinality; the default 0 never exceeds the
  /// threshold, so an unconfigured graph stays exact.
  uint64_t num_keys = 0;
  /// Keyspaces up to this size use the exact per-tuple path (byte-for-
  /// byte the paper-scale behaviour); larger ones switch to sketches.
  uint64_t sketch_threshold = 1'000'000;
  /// Hot tuples tracked with exact vertices (space-saving capacity).
  uint32_t sketch_topk = 4096;
  /// A tracked tuple counts as hot only once its guaranteed (error-free)
  /// space-saving count reaches this; below it the key is treated as cold
  /// churn through the sketch's bottom slot and maps to its supernode.
  uint64_t hot_min_guarantee = 2;
  /// Contiguous keyspace ranges the cold tail folds into.
  uint32_t supernode_ranges = 1024;
  /// Count-min geometry for sketch-mode heat estimates.
  uint32_t count_min_width_log2 = 16;
  uint32_t count_min_depth = 4;
};

class CoAccessGraph {
 public:
  explicit CoAccessGraph(CoAccessGraphConfig config = {});

  /// Feeds one committed normal transaction: each distinct key's vertex
  /// weight +1, each distinct key pair's edge weight +1. In sketch mode
  /// cold keys contribute to their supernode instead.
  void Observe(const txn::Transaction& t);

  /// Ages the window: every weight >>= decay_shift, then evicts edges
  /// below min_edge_weight, isolated zero-weight vertices, and (if still
  /// over max_edges) the lightest edges. In sketch mode also decays the
  /// sketches and folds no-longer-hot vertices into their supernodes.
  void Decay();

  uint64_t VertexWeight(storage::TupleKey key) const;
  uint64_t EdgeWeight(storage::TupleKey a, storage::TupleKey b) const;

  /// Per-vertex access mix (reads and writes of the key across observed
  /// transactions, decayed with the window). Feeds the replica-aware plan
  /// builder's read/write-ratio test; tracking them does not change
  /// weights, edges or eviction, so migration-only planning is unaffected.
  uint64_t VertexReads(storage::TupleKey key) const;
  uint64_t VertexWrites(storage::TupleKey key) const;

  /// Write-source attribution (the Lion leader-shift signal): how many of
  /// `key`'s windowed writes were issued by transactions homed on each
  /// partition, where a transaction's home is the modal source partition
  /// of its data ops (ties to the lowest id) — the partition the txn
  /// would be single-node on. Sorted by count descending, ties to the
  /// lower partition id; decays with the window. Empty for unwritten
  /// keys and for supernodes (the cold tail never shifts leaders).
  std::vector<std::pair<uint32_t, uint64_t>> WriteSources(
      storage::TupleKey key) const;

  /// Heat of a tuple whether or not it holds a vertex: exact weight when
  /// one exists (always, in exact mode), else the count-min estimate.
  uint64_t HeatEstimate(storage::TupleKey key) const;

  size_t vertex_count() const { return vertices_.size(); }
  size_t edge_count() const { return edge_count_; }
  uint64_t txns_observed() const { return txns_observed_; }

  /// True when the graph runs the sketch/supernode path.
  bool sketch_mode() const { return sketch_mode_; }

  /// Supernode ids carry this tag bit; they can never collide with tuple
  /// keys, which the routing table bounds below 2^63.
  static constexpr storage::TupleKey kSupernodeBit = 1ULL << 63;
  static bool IsSupernode(storage::TupleKey id) {
    return (id & kSupernodeBit) != 0;
  }
  /// The supernode id of a (cold) tuple key in sketch mode.
  storage::TupleKey SupernodeOf(storage::TupleKey key) const {
    return kSupernodeBit | (key / supernode_width_);
  }

  /// Rough heap footprint (vertices + adjacency + sketches), for scaling
  /// reports. Not allocator-exact.
  size_t ApproxBytes() const;

  /// Deterministic snapshots for the partitioner (sorted by key).
  std::vector<storage::TupleKey> SortedVertices() const;
  struct Edge {
    storage::TupleKey a = 0;  // a < b
    storage::TupleKey b = 0;
    uint64_t weight = 0;
  };
  std::vector<Edge> SortedEdges() const;

  /// Sorted neighbours of one vertex with edge weights.
  std::vector<std::pair<storage::TupleKey, uint64_t>> NeighborsOf(
      storage::TupleKey key) const;

 private:
  struct Vertex {
    uint64_t weight = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    /// Windowed write counts keyed by the issuing transaction's home
    /// partition. Tiny in practice (one or two writers per key).
    std::unordered_map<uint32_t, uint64_t> write_from;
    /// Adjacency is stored in both directions with equal weights.
    std::unordered_map<storage::TupleKey, uint64_t> out;
  };

  void EraseEdge(storage::TupleKey a, storage::TupleKey b);
  void EvictOverCap();
  /// Sketch-mode Observe body (keys pre-deduped and size-guarded).
  void ObserveSketch(const std::vector<storage::TupleKey>& keys,
                     const txn::Transaction& t);
  /// Hot = tracked by the top-k with enough guaranteed count.
  bool IsHotLocked(storage::TupleKey key) const {
    return hot_->Contains(key) &&
           hot_->Guaranteed(key) >= config_.hot_min_guarantee;
  }
  /// Moves a demoted hot vertex's mass and edges onto its supernode.
  void FoldVertex(storage::TupleKey key);
  void FoldColdVertices();

  CoAccessGraphConfig config_;
  bool sketch_mode_ = false;
  uint64_t supernode_width_ = 1;
  std::unique_ptr<sketch::SpaceSaving> hot_;
  std::unique_ptr<sketch::CountMin> heat_;
  std::unordered_map<storage::TupleKey, Vertex> vertices_;
  size_t edge_count_ = 0;  // undirected pairs
  uint64_t txns_observed_ = 0;
};

}  // namespace soap::planner

#endif  // SOAP_PLANNER_CO_ACCESS_GRAPH_H_
