// Sliding-window tuple co-access graph (the workload model of Schism,
// SWORD and the hypergraph partitioners): vertices are tuple keys weighted
// by access rate, edges connect keys touched by the same committed
// transaction, weighted by co-access frequency. Memory stays bounded by
// deterministic exponential decay (right-shift per interval) plus
// lowest-weight-first eviction against hard caps — no wall clock, no
// hashing-order dependence in anything observable.

#ifndef SOAP_PLANNER_CO_ACCESS_GRAPH_H_
#define SOAP_PLANNER_CO_ACCESS_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/storage/tuple.h"
#include "src/txn/transaction.h"

namespace soap::planner {

struct CoAccessGraphConfig {
  /// Right-shift applied to every vertex/edge weight at Decay(); 1 halves
  /// the window each interval, making the effective sliding window a few
  /// intervals deep.
  uint32_t decay_shift = 1;
  /// Edges whose weight falls below this after decay are evicted.
  uint64_t min_edge_weight = 1;
  /// Hard cap on undirected edge count; exceeding it evicts the lightest
  /// edges (ties broken by key order) until back under the cap.
  size_t max_edges = 1u << 20;
  /// Transactions touching more keys than this are ignored (quadratic
  /// edge fan-out guard; normal SOAP transactions touch 5 keys).
  size_t max_keys_per_txn = 32;
};

class CoAccessGraph {
 public:
  explicit CoAccessGraph(CoAccessGraphConfig config = {})
      : config_(config) {}

  /// Feeds one committed normal transaction: each distinct key's vertex
  /// weight +1, each distinct key pair's edge weight +1.
  void Observe(const txn::Transaction& t);

  /// Ages the window: every weight >>= decay_shift, then evicts edges
  /// below min_edge_weight, isolated zero-weight vertices, and (if still
  /// over max_edges) the lightest edges.
  void Decay();

  uint64_t VertexWeight(storage::TupleKey key) const;
  uint64_t EdgeWeight(storage::TupleKey a, storage::TupleKey b) const;

  /// Per-vertex access mix (reads and writes of the key across observed
  /// transactions, decayed with the window). Feeds the replica-aware plan
  /// builder's read/write-ratio test; tracking them does not change
  /// weights, edges or eviction, so migration-only planning is unaffected.
  uint64_t VertexReads(storage::TupleKey key) const;
  uint64_t VertexWrites(storage::TupleKey key) const;

  size_t vertex_count() const { return vertices_.size(); }
  size_t edge_count() const { return edge_count_; }
  uint64_t txns_observed() const { return txns_observed_; }

  /// Deterministic snapshots for the partitioner (sorted by key).
  std::vector<storage::TupleKey> SortedVertices() const;
  struct Edge {
    storage::TupleKey a = 0;  // a < b
    storage::TupleKey b = 0;
    uint64_t weight = 0;
  };
  std::vector<Edge> SortedEdges() const;

  /// Sorted neighbours of one vertex with edge weights.
  std::vector<std::pair<storage::TupleKey, uint64_t>> NeighborsOf(
      storage::TupleKey key) const;

 private:
  struct Vertex {
    uint64_t weight = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    /// Adjacency is stored in both directions with equal weights.
    std::unordered_map<storage::TupleKey, uint64_t> out;
  };

  void EraseEdge(storage::TupleKey a, storage::TupleKey b);
  void EvictOverCap();

  CoAccessGraphConfig config_;
  std::unordered_map<storage::TupleKey, Vertex> vertices_;
  size_t edge_count_ = 0;  // undirected pairs
  uint64_t txns_observed_ = 0;
};

}  // namespace soap::planner

#endif  // SOAP_PLANNER_CO_ACCESS_GRAPH_H_
