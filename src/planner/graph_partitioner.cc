#include "src/planner/graph_partitioner.h"

#include <algorithm>
#include <unordered_map>

namespace soap::planner {

Clustering GraphPartitioner::Partition(const CoAccessGraph& graph,
                                       const router::RoutingTable& routing,
                                       uint32_t num_partitions) const {
  Clustering out;
  out.keys = graph.SortedVertices();
  out.load.assign(num_partitions, 0.0);
  const size_t n = out.keys.size();
  out.partition_of.resize(n);
  if (n == 0 || num_partitions == 0) return out;

  std::unordered_map<storage::TupleKey, uint32_t> index_of;
  index_of.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    index_of[out.keys[i]] = static_cast<uint32_t>(i);
  }

  // CSR adjacency restricted to graph vertices (sorted per vertex).
  std::vector<uint32_t> adj_start(n + 1, 0);
  std::vector<uint32_t> adj_vertex;
  std::vector<uint64_t> adj_weight;
  {
    const std::vector<CoAccessGraph::Edge> edges = graph.SortedEdges();
    std::vector<uint32_t> degree(n, 0);
    for (const CoAccessGraph::Edge& e : edges) {
      ++degree[index_of[e.a]];
      ++degree[index_of[e.b]];
    }
    for (size_t i = 0; i < n; ++i) adj_start[i + 1] = adj_start[i] + degree[i];
    adj_vertex.resize(adj_start[n]);
    adj_weight.resize(adj_start[n]);
    std::vector<uint32_t> fill(adj_start.begin(), adj_start.end() - 1);
    for (const CoAccessGraph::Edge& e : edges) {
      const uint32_t ia = index_of[e.a];
      const uint32_t ib = index_of[e.b];
      adj_vertex[fill[ia]] = ib;
      adj_weight[fill[ia]++] = e.weight;
      adj_vertex[fill[ib]] = ia;
      adj_weight[fill[ib]++] = e.weight;
    }
  }

  // Seed labels from the live routing; a vertex each weighs at least 1
  // toward balance so cold-but-present tuples still count.
  std::vector<uint32_t> label(n, 0);
  std::vector<double> vweight(n, 1.0);
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Result<router::PartitionId> p = routing.GetPrimary(out.keys[i]);
    label[i] = p.ok() ? (*p % num_partitions) : static_cast<uint32_t>(
                                                    out.keys[i] %
                                                    num_partitions);
    const uint64_t w = graph.VertexWeight(out.keys[i]);
    vweight[i] = w > 0 ? static_cast<double>(w) : 1.0;
    total_weight += vweight[i];
    out.load[label[i]] += vweight[i];
  }
  const std::vector<uint32_t> seed_label = label;
  const double cap =
      config_.balance_slack * total_weight / static_cast<double>(num_partitions);

  // Label propagation: sorted visit order + lowest-partition tie-break
  // keep every sweep deterministic.
  std::vector<uint64_t> weight_to(num_partitions, 0);
  auto gather = [&](size_t i) {
    std::fill(weight_to.begin(), weight_to.end(), 0);
    for (uint32_t e = adj_start[i]; e < adj_start[i + 1]; ++e) {
      weight_to[label[adj_vertex[e]]] += adj_weight[e];
    }
  };
  auto sweep = [&]() {
    uint32_t changed = 0;
    for (size_t i = 0; i < n; ++i) {
      if (adj_start[i] == adj_start[i + 1]) continue;
      gather(i);
      const uint32_t cur = label[i];
      uint32_t best = cur;
      uint64_t best_w = weight_to[cur];
      for (uint32_t p = 0; p < num_partitions; ++p) {
        if (weight_to[p] > best_w) {
          best = p;
          best_w = weight_to[p];
        }
      }
      if (best == cur) continue;
      if (best_w < weight_to[cur] + config_.min_gain) continue;
      if (out.load[best] + vweight[i] > cap) continue;
      out.load[cur] -= vweight[i];
      out.load[best] += vweight[i];
      label[i] = best;
      ++changed;
    }
    return changed;
  };
  for (uint32_t pass = 0; pass < config_.max_passes; ++pass) {
    if (sweep() == 0) break;
  }

  // Balance stage. Propagation only refuses to move weight INTO an
  // over-cap partition; it never drains one that drift overloaded — a
  // hot vertex's neighbours share its label, so the majority vote says
  // stay. Evict the weakest-attached vertices from each over-cap
  // partition to the best under-cap alternative (max co-access pull,
  // then least load, then lowest index), and let a propagation sweep
  // re-cohere the displaced co-access groups.
  auto evict = [&]() {
    uint32_t moved = 0;
    for (uint32_t p = 0; p < num_partitions; ++p) {
      if (out.load[p] <= cap) continue;
      // (attachment to own partition, vertex index): weakest leave
      // first, so the cut pays as little as possible for balance.
      std::vector<std::pair<uint64_t, uint32_t>> members;
      for (size_t i = 0; i < n; ++i) {
        if (label[i] != p) continue;
        uint64_t attach = 0;
        for (uint32_t e = adj_start[i]; e < adj_start[i + 1]; ++e) {
          if (label[adj_vertex[e]] == p) attach += adj_weight[e];
        }
        members.emplace_back(attach, static_cast<uint32_t>(i));
      }
      std::sort(members.begin(), members.end());
      for (const auto& member : members) {
        if (out.load[p] <= cap) break;
        const size_t i = member.second;
        gather(i);
        uint32_t best = num_partitions;
        uint64_t best_w = 0;
        for (uint32_t q = 0; q < num_partitions; ++q) {
          if (q == p || out.load[q] + vweight[i] > cap) continue;
          if (best == num_partitions || weight_to[q] > best_w ||
              (weight_to[q] == best_w && out.load[q] < out.load[best])) {
            best = q;
            best_w = weight_to[q];
          }
        }
        if (best == num_partitions) continue;
        out.load[p] -= vweight[i];
        out.load[best] += vweight[i];
        label[i] = best;
        ++moved;
      }
    }
    return moved;
  };
  for (uint32_t round = 0; round < config_.max_passes; ++round) {
    if (evict() == 0) break;
    if (sweep() == 0) break;
  }
  evict();  // sweeps respect the cap, but re-drain in case one refilled

  for (size_t i = 0; i < n; ++i) {
    out.partition_of[i] = label[i];
    if (label[i] != seed_label[i]) ++out.moved;
  }
  // Objective decomposition over undirected edges.
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t e = adj_start[i]; e < adj_start[i + 1]; ++e) {
      const uint32_t j = adj_vertex[e];
      if (j <= i) continue;  // count each undirected edge once
      if (label[i] == label[j]) {
        out.internal_weight += adj_weight[e];
      } else {
        out.cut_weight += adj_weight[e];
      }
    }
  }
  return out;
}

}  // namespace soap::planner
