// Deterministic greedy graph clustering (label propagation with a
// per-partition load-balance constraint, the lightweight end of the
// Schism/SWORD design space): seeds every vertex with its current routing
// partition, then repeatedly moves vertices to the partition holding the
// plurality of their co-access weight, as long as the target partition
// stays under its balance cap. Vertices are visited in sorted key order
// and ties break toward the lowest partition id, so the result is a pure
// function of (graph, routing, config).

#ifndef SOAP_PLANNER_GRAPH_PARTITIONER_H_
#define SOAP_PLANNER_GRAPH_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "src/planner/co_access_graph.h"
#include "src/router/routing_table.h"
#include "src/storage/tuple.h"

namespace soap::planner {

struct GraphPartitionerConfig {
  /// Label-propagation sweeps over all vertices; convergence usually
  /// happens in 2-3.
  uint32_t max_passes = 8;
  /// A partition may hold at most balance_slack * (total vertex weight /
  /// num_partitions) of vertex weight.
  double balance_slack = 1.25;
  /// Minimum co-access weight improvement for a vertex to switch
  /// partitions (hysteresis against ping-ponging on noise).
  uint64_t min_gain = 1;
};

/// The clustering result: a partition label per graph vertex plus the
/// objective decomposition (cut = co-access weight crossing partitions,
/// i.e. distributed-transaction weight; internal = collocated weight).
struct Clustering {
  std::vector<storage::TupleKey> keys;  // sorted
  std::vector<uint32_t> partition_of;   // parallel to keys
  uint64_t cut_weight = 0;
  uint64_t internal_weight = 0;
  std::vector<double> load;  // vertex weight per partition
  uint32_t moved = 0;        // labels changed vs. the routing seed
};

class GraphPartitioner {
 public:
  explicit GraphPartitioner(GraphPartitionerConfig config = {})
      : config_(config) {}

  Clustering Partition(const CoAccessGraph& graph,
                       const router::RoutingTable& routing,
                       uint32_t num_partitions) const;

 private:
  GraphPartitionerConfig config_;
};

}  // namespace soap::planner

#endif  // SOAP_PLANNER_GRAPH_PARTITIONER_H_
