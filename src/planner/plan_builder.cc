#include "src/planner/plan_builder.h"

#include <algorithm>
#include <unordered_set>

namespace soap::planner {

BuiltPlan PlanBuilder::Build(const Clustering& clustering,
                             const CoAccessGraph& graph,
                             const router::RoutingTable& routing,
                             repartition::OpIdAllocator* ids,
                             const PlanAuditContext* audit) const {
  using repartition::PlacementKind;
  struct Move {
    storage::TupleKey key = 0;
    uint32_t source = 0;
    uint32_t target = 0;
    uint64_t heat = 0;
    PlacementKind kind = PlacementKind::kMigrate;
    repartition::PlacementCost cost;
  };
  obs::AuditLog* audit_log =
      audit != nullptr && audit->log != nullptr ? audit->log : nullptr;
  // One `plan_op` record per decision point; cost inputs come straight
  // from the structures the decision itself read. Pull shares are zero
  // for branches that never computed them.
  auto audit_op = [&](storage::TupleKey key, PlacementKind kind, bool accept,
                      const char* reason, uint32_t source, uint32_t target,
                      uint64_t heat, uint64_t pull_target,
                      uint64_t pull_total, size_t copies) {
    if (audit_log == nullptr) return;
    obs::AuditRecord rec(audit_log, "plan_op", audit->t_us);
    rec.U64("cycle", audit->cycle)
        .U64("key", key)
        .Str("op", repartition::PlacementKindName(kind))
        .Str("decision", accept ? "accept" : "reject")
        .Str("reason", reason)
        .U64("source", source)
        .U64("target", target)
        .U64("heat", heat)
        .U64("reads", graph.VertexReads(key))
        .U64("writes", graph.VertexWrites(key))
        .U64("copies", copies);
    if (pull_total > 0) {
      rec.U64("pull_target", pull_target).U64("pull_total", pull_total);
    }
  };
  auto read_heavy = [this, &graph](storage::TupleKey key) {
    const uint64_t reads = graph.VertexReads(key);
    const uint64_t writes = graph.VertexWrites(key);
    return static_cast<double>(reads) >
           config_.min_read_write_ratio * static_cast<double>(writes);
  };
  // Clustering label of a key; keys outside the clustering (cold, evicted
  // from the graph) count at their current primary.
  auto label_of = [&clustering, &routing](storage::TupleKey key) -> int64_t {
    auto it = std::lower_bound(clustering.keys.begin(),
                               clustering.keys.end(), key);
    if (it != clustering.keys.end() && *it == key) {
      return clustering.partition_of[it - clustering.keys.begin()];
    }
    Result<router::PartitionId> p = routing.GetPrimary(key);
    return p.ok() ? static_cast<int64_t>(*p) : -1;
  };
  // Co-access pull on `key` from each partition: edge mass toward
  // neighbours by their clustered label. A key whose mass concentrates on
  // one partition belongs there outright; a split key is read from two
  // places at once and is the replica candidate.
  struct PullMass {
    std::unordered_map<uint32_t, uint64_t> per_partition;
    uint64_t total = 0;
    uint64_t On(uint32_t p) const {
      auto it = per_partition.find(p);
      return it == per_partition.end() ? 0 : it->second;
    }
    /// Partitions by pull, heaviest first (ties: lowest id).
    std::vector<std::pair<uint32_t, uint64_t>> Sorted() const {
      std::vector<std::pair<uint32_t, uint64_t>> v(per_partition.begin(),
                                                   per_partition.end());
      std::sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
        if (x.second != y.second) return x.second > y.second;
        return x.first < y.first;
      });
      return v;
    }
  };
  auto pull_mass = [&graph, &label_of](storage::TupleKey key) {
    PullMass m;
    for (const auto& [neighbor, weight] : graph.NeighborsOf(key)) {
      const int64_t label = label_of(neighbor);
      if (label < 0) continue;
      m.per_partition[static_cast<uint32_t>(label)] += weight;
      m.total += weight;
    }
    return m;
  };
  // Same pull, but against *deployed* primaries instead of this
  // generation's labels. The drop test uses it: labels of borderline
  // clusters can flip between generations, and dropping a copy on a
  // label flip (only to recreate it next interval) is pure churn.
  auto deployed_pull_mass = [&graph, &routing](storage::TupleKey key) {
    PullMass m;
    for (const auto& [neighbor, weight] : graph.NeighborsOf(key)) {
      Result<router::PartitionId> p = routing.GetPrimary(neighbor);
      if (!p.ok()) continue;
      m.per_partition[*p] += weight;
      m.total += weight;
    }
    return m;
  };

  // Lion path: active only when both the config switch and a provisioner
  // are present. With lion off this function is byte-identical to the
  // static fan-in planner.
  lion::Provisioner* lion =
      config_.lion.enabled && config_.replicate_read_heavy ? lion_ : nullptr;
  if (lion != nullptr) lion->BeginCycle(routing);
  auto heat_fn = [&graph](storage::TupleKey key) {
    return graph.HeatEstimate(key);
  };
  // Uniform candidate pricing (DESIGN.md §9.1): every candidate carries
  // move bytes, a 2PC-savings estimate from the co-access window, and the
  // ongoing freshness/fan-out penalty it commits us to, all in the cost
  // model's node-work-microsecond currency.
  const double dist_gap =
      lion == nullptr
          ? 0.0
          : static_cast<double>(cost_model_->DistributedTxnCost(2) -
                                cost_model_->CollocatedTxnCost());
  constexpr uint64_t kTupleWireBytes = 64;  // fixed-size simulated tuples
  auto priced = [&](PlacementKind kind, uint64_t pull_target,
                    uint64_t pull_away, uint64_t writes) {
    repartition::PlacementCost cost;
    cost.tpc_savings = static_cast<double>(pull_target) * dist_gap;
    switch (kind) {
      case PlacementKind::kMigrate:
        // The old partition's pull turns remote when the primary leaves.
        cost.move_bytes = kTupleWireBytes;
        cost.freshness_penalty = static_cast<double>(pull_away) * dist_gap;
        break;
      case PlacementKind::kReplicaCreate: {
        // Every window write now fans out to one more 2PC participant.
        const auto& costs = cost_model_->costs();
        cost.move_bytes = kTupleWireBytes;
        cost.freshness_penalty =
            static_cast<double>(writes) *
            static_cast<double>(costs.prepare + costs.commit_apply);
        break;
      }
      case PlacementKind::kLeaderShift:
        // Role swap: no bytes move, and the demoted primary keeps a copy,
        // so no reader goes remote that was local before. The ongoing
        // cost is the write mass still issued from the demoted primary,
        // which turns remote.
        cost.freshness_penalty = static_cast<double>(pull_away) * dist_gap;
        break;
      case PlacementKind::kReplicaDrop:
        break;
    }
    return cost;
  };

  std::vector<Move> moves;
  std::unordered_set<storage::TupleKey> shift_keys;
  // Budget admission shared by every lion replica-create emission: charge
  // the target partition, evicting its LRU/coldest copy to make room when
  // the budget is full. Returns false when nothing is evictable.
  auto admit_create = [&](uint32_t p, storage::TupleKey for_key) {
    if (lion->ChargeCreate(p)) return true;
    std::optional<storage::TupleKey> victim =
        lion->PickEviction(p, for_key, heat_fn);
    if (!victim.has_value()) return false;
    Result<router::Placement> vp = routing.GetPlacement(*victim);
    const uint32_t victim_primary = vp.ok() ? vp->primary : 0;
    audit_op(*victim, PlacementKind::kReplicaDrop, true, "evicted_for_budget",
             p, victim_primary, graph.VertexWeight(*victim), 0, 0,
             vp.ok() ? vp->copy_count() : 0);
    moves.push_back({*victim, p, victim_primary, graph.VertexWeight(*victim),
                     PlacementKind::kReplicaDrop});
    lion->CountEviction();
    lion->Release(p);
    return lion->ChargeCreate(p);
  };
  for (size_t i = 0; i < clustering.keys.size(); ++i) {
    const storage::TupleKey key = clustering.keys[i];
    Result<router::PartitionId> cur = routing.GetPrimary(key);
    if (!cur.ok()) continue;
    const uint32_t want = clustering.partition_of[i];
    const uint64_t heat = graph.VertexWeight(key);
    if (heat < config_.min_vertex_weight) {
      if (*cur != want) {
        audit_op(key, PlacementKind::kMigrate, false, "below_min_heat", *cur,
                 want, heat, 0, 0, 1);
      }
      continue;
    }
    if (!config_.replicate_read_heavy) {
      if (*cur != want) {
        audit_op(key, PlacementKind::kMigrate, true, "migrate_to_cluster",
                 *cur, want, heat, 0, 0, 1);
        moves.push_back({key, *cur, want, heat});
      }
      continue;
    }
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok()) continue;

    if (lion != nullptr) {
      // ---- Lion candidate pool: price migrate / replicate / shift with
      // one cost vocabulary and keep the best-net action for this key.
      const uint64_t writes = graph.VertexWrites(key);
      const PullMass mass = pull_mass(key);
      struct Candidate {
        Move move;
        bool predictive = false;
        const char* reason = "";
      };
      std::vector<Candidate> pool;

      // Leader shift (the Lion trigger): a write-hot key whose windowed
      // writes are issued mostly by transactions homed on one *remote*
      // copy-holding partition — the co-access graph attributes every
      // write to the issuing txn's modal home. Swapping primary and
      // replica roles makes that write mass single-node at zero move
      // cost; the demoted primary keeps a copy, so no reader that was
      // local goes remote. The swap's price is the write mass still
      // issued from the current primary, which turns remote. Shifting
      // toward mere *readers* is never priced in: their copies already
      // serve them, and the swap would only re-home the writers.
      // A couple of stray writes make any partition a "dominant" source
      // with share 1.0; staging copies for that noise adds write fan-out
      // with no swap payoff. Demand a real windowed write rate first.
      constexpr uint64_t kShiftMinWriteMass = 4;
      if (writes >= kShiftMinWriteMass) {
        const auto sources = graph.WriteSources(key);
        uint64_t write_mass = 0;
        uint64_t from_cur = 0;
        for (const auto& [p, w] : sources) {
          write_mass += w;
          if (p == *cur) from_cur = w;
        }
        if (!sources.empty() && write_mass >= kShiftMinWriteMass) {
          const uint32_t dominant = sources.front().first;
          const uint64_t dominant_writes = sources.front().second;
          const double share = static_cast<double>(dominant_writes) /
                               static_cast<double>(write_mass);
          // Only an *existing* copy can be promoted (the TM guard refuses
          // to promote a partition holding no copy), and shipping a fresh
          // copy to a write source just to promote it later is a trap:
          // every write 2PCs across all live copies, so the staged copy
          // makes even the dominant source's writes distributed until the
          // swap lands — on slow-deploying strategies, a long poisoned
          // interim. Lion therefore shifts only onto copies its read-side
          // provisioning already placed; a write source without one is
          // the migrate path's business, not the shift's.
          if (dominant != *cur && share >= config_.lion.shift_threshold &&
              placement->HasReplicaOn(dominant)) {
            pool.push_back(
                {{key, *cur, dominant, heat, PlacementKind::kLeaderShift,
                  priced(PlacementKind::kLeaderShift, dominant_writes,
                         from_cur, writes)},
                 false,
                 "shift_write_source"});
          }
        }
      }
      // Migrate / replicate candidates carry the same churn guards the
      // static path learned the hard way (§5): a primary that still pulls
      // a split-threshold share of its key's reads is never migrated away
      // (its readers would all go remote), and a copy already sitting on
      // the clustering label makes re-migration pure churn. Inside those
      // guards the pool prices everything and the best Net() wins, so a
      // qualifying shift can still beat either static action.
      const bool can_copy = read_heavy(key) &&
                            placement->copy_count() < config_.max_copies;
      const bool cur_still_reads =
          can_copy && mass.total > 0 &&
          static_cast<double>(mass.On(*cur)) >
              config_.replica_split_threshold *
                  static_cast<double>(mass.total);
      if (*cur != want && !cur_still_reads) {
        if (!placement->HasReplicaOn(want)) {
          pool.push_back({{key, *cur, want, heat, PlacementKind::kMigrate,
                           priced(PlacementKind::kMigrate, mass.On(want),
                                  mass.On(*cur), writes)},
                          false,
                          mass.total > 0 ? "migrate_to_majority"
                                         : "migrate_to_cluster"});
        }
      } else if (can_copy) {
        // Replica for the heaviest uncovered split reader, with
        // predictive admission: a below-threshold share whose one-step
        // window trend crosses the threshold gets its copy one cycle
        // before the static planner would create it.
        for (const auto& [p, pull] : mass.Sorted()) {
          if (mass.total == 0) break;
          if (p == *cur) continue;
          if (placement->HasReplicaOn(p)) {
            lion->Touch(key, p);  // live copy still pulling: refresh LRU
            continue;
          }
          const double share =
              static_cast<double>(pull) / static_cast<double>(mass.total);
          if (share <= 0.5 * config_.replica_split_threshold) break;
          const double predicted = lion->PredictedShare(key, p, share);
          const bool qualifies =
              static_cast<double>(pull) >
              config_.replica_split_threshold * static_cast<double>(mass.total);
          if (!qualifies && predicted <= config_.replica_split_threshold) {
            continue;
          }
          pool.push_back(
              {{key, *cur, p, heat, PlacementKind::kReplicaCreate,
                priced(PlacementKind::kReplicaCreate, pull, 0, writes)},
               !qualifies,
               "replica_split_reader"});
          break;  // one admission per key per cycle
        }
      }
      if (pool.empty()) continue;
      // Best net score wins; ties prefer the cheaper deployment (shift
      // before migrate before create), then the lower target id.
      const Candidate* best = &pool[0];
      for (const Candidate& c : pool) {
        const double net_c = c.move.cost.Net();
        const double net_b = best->move.cost.Net();
        if (net_c > net_b ||
            (net_c == net_b &&
             (c.move.cost.move_bytes < best->move.cost.move_bytes ||
              (c.move.cost.move_bytes == best->move.cost.move_bytes &&
               c.move.target < best->move.target)))) {
          best = &c;
        }
      }
      if (best->move.kind == PlacementKind::kReplicaCreate) {
        const uint32_t p = best->move.target;
        if (!admit_create(p, key)) {
          lion->CountBudgetDenial();
          audit_op(key, PlacementKind::kReplicaCreate, false,
                   "replica_budget_exhausted", *cur, p, heat, 0,
                   mass.total, placement->copy_count());
          continue;
        }
        if (best->predictive) lion->CountPredictiveCreate();
        lion->Touch(key, p);
      }
      if (best->move.kind == PlacementKind::kLeaderShift) {
        shift_keys.insert(key);
      }
      audit_op(key, best->move.kind, true,
               best->predictive ? "replica_predicted_split_reader"
                                : best->reason,
               best->move.source, best->move.target, heat,
               mass.On(best->move.target), mass.total,
               placement->copy_count());
      moves.push_back(best->move);
      if (best->move.kind == PlacementKind::kReplicaCreate) {
        // One copy per cycle starves wide fan-in: a hub key pulled by many
        // partitions needs its whole split-reader set covered in one
        // generation (as the static path does), or slow-deploying
        // strategies never converge before the workload drifts again.
        uint32_t copies = placement->copy_count() + 1;
        for (const auto& [p, pull] : mass.Sorted()) {
          if (copies >= config_.max_copies) break;
          if (p == *cur || p == best->move.target) continue;
          if (placement->HasReplicaOn(p)) continue;
          if (static_cast<double>(pull) <=
              config_.replica_split_threshold *
                  static_cast<double>(mass.total)) {
            break;  // sorted: nothing below qualifies either
          }
          if (!admit_create(p, key)) {
            lion->CountBudgetDenial();
            audit_op(key, PlacementKind::kReplicaCreate, false,
                     "replica_budget_exhausted", *cur, p, heat, pull,
                     mass.total, placement->copy_count());
            continue;
          }
          audit_op(key, PlacementKind::kReplicaCreate, true,
                   "replica_split_reader", *cur, p, heat, pull, mass.total,
                   placement->copy_count());
          moves.push_back({key, *cur, p, heat, PlacementKind::kReplicaCreate,
                           priced(PlacementKind::kReplicaCreate, pull, 0,
                                  writes)});
          lion->Touch(key, p);
          ++copies;
        }
      }
      continue;
    }

    // ---- Static fan-in path (lion off) ----
    const bool can_copy = read_heavy(key) &&
                          placement->copy_count() < config_.max_copies;
    const PullMass mass = can_copy ? pull_mass(key) : PullMass{};
    const bool cur_still_reads =
        can_copy && mass.total > 0 &&
        static_cast<double>(mass.On(*cur)) >
            config_.replica_split_threshold * static_cast<double>(mass.total);
    if (*cur != want && !cur_still_reads) {
      // Single-sided pull: everything that touches the key lives at
      // `want` now; move the primary with its readers — unless a copy
      // from an earlier generation already satisfies the clustering
      // (re-emitting would churn).
      if (!placement->HasReplicaOn(want)) {
        audit_op(key, PlacementKind::kMigrate, true,
                 mass.total > 0 ? "migrate_to_majority" : "migrate_to_cluster",
                 *cur, want, heat, mass.On(want), mass.total,
                 placement->copy_count());
        moves.push_back({key, *cur, want, heat});
      } else {
        audit_op(key, PlacementKind::kMigrate, false,
                 "replica_already_on_target", *cur, want, heat, mass.On(want),
                 mass.total, placement->copy_count());
      }
      continue;
    }
    if (*cur != want) {
      // cur_still_reads: the clustering wanted the primary elsewhere, but
      // the current partition keeps a split-threshold share of the pull —
      // keep the primary and cover the remote readers with copies below.
      audit_op(key, PlacementKind::kMigrate, false,
               "primary_retained_split_readers", *cur, want, heat,
               mass.On(*cur), mass.total, placement->copy_count());
    }
    // The primary stays put (it either sits with the majority already, or
    // its own partition still reads the key meaningfully). Cover every
    // other partition holding a split-threshold share of the key's pull
    // with a copy, budget permitting — all in one generation, because
    // slow-deploying strategies may only get a few plan generations.
    if (!can_copy) continue;
    uint32_t budget = config_.max_copies - placement->copy_count();
    for (const auto& [p, pull] : mass.Sorted()) {
      // Audit-only tail: once the budget is gone no move can be emitted,
      // but qualifying partitions still get a reject record so explain
      // output shows what the copy budget cut.
      if (budget == 0 && audit_log == nullptr) break;
      if (p == *cur || placement->HasReplicaOn(p)) continue;
      if (static_cast<double>(pull) <=
          config_.replica_split_threshold * static_cast<double>(mass.total)) {
        break;  // sorted: nothing below qualifies either
      }
      if (budget == 0) {
        audit_op(key, PlacementKind::kReplicaCreate, false,
                 "copy_budget_exhausted", *cur, p, heat, pull, mass.total,
                 placement->copy_count());
        continue;
      }
      audit_op(key, PlacementKind::kReplicaCreate, true,
               "replica_split_reader", *cur, p, heat, pull, mass.total,
               placement->copy_count());
      moves.push_back({key, *cur, p, heat, PlacementKind::kReplicaCreate});
      --budget;
    }
  }

  if (config_.replicate_read_heavy && config_.drop_stale_replicas) {
    routing.ForEachReplicated([&](storage::TupleKey key,
                                  const router::Placement& placement) {
      // A key being shifted this generation keeps its copies: the shift's
      // execution guard needs the target copy alive, and the demoted
      // primary is retired by next generation's sweep instead.
      if (lion != nullptr && shift_keys.count(key) > 0) return;
      const uint64_t heat = graph.VertexWeight(key);
      const bool keep_any =
          heat >= config_.min_vertex_weight && read_heavy(key);
      const PullMass mass = keep_any ? deployed_pull_mass(key) : PullMass{};
      for (router::PartitionId rep : placement.replicas) {
        // Hysteresis: a copy survives while its partition keeps at least
        // half the create threshold's share of the key's pull.
        if (keep_any && mass.total > 0 &&
            static_cast<double>(mass.On(rep)) >=
                0.5 * config_.replica_split_threshold *
                    static_cast<double>(mass.total)) {
          audit_op(key, PlacementKind::kReplicaDrop, false,
                   "kept_by_hysteresis", rep, placement.primary, heat,
                   mass.On(rep), mass.total, placement.copy_count());
          continue;
        }
        audit_op(key, PlacementKind::kReplicaDrop, true,
                 keep_any ? "drop_below_share" : "drop_cold_or_write_heavy",
                 rep, placement.primary, heat, mass.On(rep), mass.total,
                 placement.copy_count());
        moves.push_back({key, rep, placement.primary, heat,
                         PlacementKind::kReplicaDrop});
      }
    });
  }

  // Keys must come out sorted (lock-order discipline for pure repartition
  // transactions); a stable sort keeps migration-before-deletion order for
  // a key that has both. No-op for migration-only plans, which are built
  // key-sorted already.
  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& x, const Move& y) { return x.key < y.key; });

  BuiltPlan out;
  if (config_.max_ops > 0 && moves.size() > config_.max_ops) {
    out.dropped = moves.size() - config_.max_ops;
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) {
                       if (x.heat != y.heat) return x.heat > y.heat;
                       return x.key < y.key;
                     });
    for (size_t i = config_.max_ops; i < moves.size(); ++i) {
      const Move& m = moves[i];
      audit_op(m.key, m.kind, false, "dropped_by_cap", m.source, m.target,
               m.heat, 0, 0, 0);
    }
    moves.resize(config_.max_ops);
    // Emission order stays key-sorted regardless of the heat cut.
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) { return x.key < y.key; });
  }

  out.plan.epoch = ids->BeginEpoch();
  out.plan.ops.reserve(moves.size());
  for (const Move& m : moves) {
    repartition::PlacementAction op;
    op.id = ids->Allocate();
    op.kind = m.kind;
    op.key = m.key;
    op.source_partition = m.source;
    op.target_partition = m.target;
    op.cost = m.cost;
    const uint32_t tmpl = catalog_->TemplateOfKey(m.key);
    if (tmpl != workload::TemplateCatalog::kNoTemplate) {
      op.affected_templates.push_back(tmpl);
    }
    out.plan.ops.push_back(std::move(op));
  }
  if (!out.plan.ops.empty()) {
    out.deploy_cost = cost_model_->RepartitionTxnCost(out.plan.ops);
  }
  return out;
}

}  // namespace soap::planner
