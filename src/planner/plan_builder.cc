#include "src/planner/plan_builder.h"

#include <algorithm>

namespace soap::planner {

namespace {

const char* OpTypeName(repartition::RepartitionOpType type) {
  switch (type) {
    case repartition::RepartitionOpType::kObjectsMigration:
      return "migrate";
    case repartition::RepartitionOpType::kNewReplicaCreation:
      return "replica_create";
    case repartition::RepartitionOpType::kReplicaDeletion:
      return "replica_delete";
  }
  return "?";
}

}  // namespace

BuiltPlan PlanBuilder::Build(const Clustering& clustering,
                             const CoAccessGraph& graph,
                             const router::RoutingTable& routing,
                             repartition::OpIdAllocator* ids,
                             const PlanAuditContext* audit) const {
  struct Move {
    storage::TupleKey key = 0;
    uint32_t source = 0;
    uint32_t target = 0;
    uint64_t heat = 0;
    repartition::RepartitionOpType type =
        repartition::RepartitionOpType::kObjectsMigration;
  };
  obs::AuditLog* audit_log =
      audit != nullptr && audit->log != nullptr ? audit->log : nullptr;
  // One `plan_op` record per decision point; cost inputs come straight
  // from the structures the decision itself read. Pull shares are zero
  // for branches that never computed them.
  auto audit_op = [&](storage::TupleKey key,
                      repartition::RepartitionOpType type, bool accept,
                      const char* reason, uint32_t source, uint32_t target,
                      uint64_t heat, uint64_t pull_target,
                      uint64_t pull_total, size_t copies) {
    if (audit_log == nullptr) return;
    obs::AuditRecord rec(audit_log, "plan_op", audit->t_us);
    rec.U64("cycle", audit->cycle)
        .U64("key", key)
        .Str("op", OpTypeName(type))
        .Str("decision", accept ? "accept" : "reject")
        .Str("reason", reason)
        .U64("source", source)
        .U64("target", target)
        .U64("heat", heat)
        .U64("reads", graph.VertexReads(key))
        .U64("writes", graph.VertexWrites(key))
        .U64("copies", copies);
    if (pull_total > 0) {
      rec.U64("pull_target", pull_target).U64("pull_total", pull_total);
    }
  };
  auto read_heavy = [this, &graph](storage::TupleKey key) {
    const uint64_t reads = graph.VertexReads(key);
    const uint64_t writes = graph.VertexWrites(key);
    return static_cast<double>(reads) >
           config_.min_read_write_ratio * static_cast<double>(writes);
  };
  // Clustering label of a key; keys outside the clustering (cold, evicted
  // from the graph) count at their current primary.
  auto label_of = [&clustering, &routing](storage::TupleKey key) -> int64_t {
    auto it = std::lower_bound(clustering.keys.begin(),
                               clustering.keys.end(), key);
    if (it != clustering.keys.end() && *it == key) {
      return clustering.partition_of[it - clustering.keys.begin()];
    }
    Result<router::PartitionId> p = routing.GetPrimary(key);
    return p.ok() ? static_cast<int64_t>(*p) : -1;
  };
  // Co-access pull on `key` from each partition: edge mass toward
  // neighbours by their clustered label. A key whose mass concentrates on
  // one partition belongs there outright; a split key is read from two
  // places at once and is the replica candidate.
  struct PullMass {
    std::unordered_map<uint32_t, uint64_t> per_partition;
    uint64_t total = 0;
    uint64_t On(uint32_t p) const {
      auto it = per_partition.find(p);
      return it == per_partition.end() ? 0 : it->second;
    }
    /// Partitions by pull, heaviest first (ties: lowest id).
    std::vector<std::pair<uint32_t, uint64_t>> Sorted() const {
      std::vector<std::pair<uint32_t, uint64_t>> v(per_partition.begin(),
                                                   per_partition.end());
      std::sort(v.begin(), v.end(), [](const auto& x, const auto& y) {
        if (x.second != y.second) return x.second > y.second;
        return x.first < y.first;
      });
      return v;
    }
  };
  auto pull_mass = [&graph, &label_of](storage::TupleKey key) {
    PullMass m;
    for (const auto& [neighbor, weight] : graph.NeighborsOf(key)) {
      const int64_t label = label_of(neighbor);
      if (label < 0) continue;
      m.per_partition[static_cast<uint32_t>(label)] += weight;
      m.total += weight;
    }
    return m;
  };
  // Same pull, but against *deployed* primaries instead of this
  // generation's labels. The drop test uses it: labels of borderline
  // clusters can flip between generations, and dropping a copy on a
  // label flip (only to recreate it next interval) is pure churn.
  auto deployed_pull_mass = [&graph, &routing](storage::TupleKey key) {
    PullMass m;
    for (const auto& [neighbor, weight] : graph.NeighborsOf(key)) {
      Result<router::PartitionId> p = routing.GetPrimary(neighbor);
      if (!p.ok()) continue;
      m.per_partition[*p] += weight;
      m.total += weight;
    }
    return m;
  };

  std::vector<Move> moves;
  for (size_t i = 0; i < clustering.keys.size(); ++i) {
    const storage::TupleKey key = clustering.keys[i];
    Result<router::PartitionId> cur = routing.GetPrimary(key);
    if (!cur.ok()) continue;
    const uint32_t want = clustering.partition_of[i];
    const uint64_t heat = graph.VertexWeight(key);
    constexpr auto kMigration = repartition::RepartitionOpType::kObjectsMigration;
    if (heat < config_.min_vertex_weight) {
      if (*cur != want) {
        audit_op(key, kMigration, false, "below_min_heat", *cur, want, heat,
                 0, 0, 1);
      }
      continue;
    }
    if (!config_.replicate_read_heavy) {
      if (*cur != want) {
        audit_op(key, kMigration, true, "migrate_to_cluster", *cur, want,
                 heat, 0, 0, 1);
        moves.push_back({key, *cur, want, heat});
      }
      continue;
    }
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok()) continue;
    const bool can_copy = read_heavy(key) &&
                          placement->copy_count() < config_.max_copies;
    const PullMass mass = can_copy ? pull_mass(key) : PullMass{};
    const bool cur_still_reads =
        can_copy && mass.total > 0 &&
        static_cast<double>(mass.On(*cur)) >
            config_.replica_split_threshold * static_cast<double>(mass.total);
    if (*cur != want && !cur_still_reads) {
      // Single-sided pull: everything that touches the key lives at
      // `want` now; move the primary with its readers — unless a copy
      // from an earlier generation already satisfies the clustering
      // (re-emitting would churn).
      if (!placement->HasReplicaOn(want)) {
        audit_op(key, kMigration, true,
                 mass.total > 0 ? "migrate_to_majority" : "migrate_to_cluster",
                 *cur, want, heat, mass.On(want), mass.total,
                 placement->copy_count());
        moves.push_back({key, *cur, want, heat});
      } else {
        audit_op(key, kMigration, false, "replica_already_on_target", *cur,
                 want, heat, mass.On(want), mass.total,
                 placement->copy_count());
      }
      continue;
    }
    if (*cur != want) {
      // cur_still_reads: the clustering wanted the primary elsewhere, but
      // the current partition keeps a split-threshold share of the pull —
      // keep the primary and cover the remote readers with copies below.
      audit_op(key, kMigration, false, "primary_retained_split_readers",
               *cur, want, heat, mass.On(*cur), mass.total,
               placement->copy_count());
    }
    // The primary stays put (it either sits with the majority already, or
    // its own partition still reads the key meaningfully). Cover every
    // other partition holding a split-threshold share of the key's pull
    // with a copy, budget permitting — all in one generation, because
    // slow-deploying strategies may only get a few plan generations.
    if (!can_copy) continue;
    uint32_t budget = config_.max_copies - placement->copy_count();
    for (const auto& [p, pull] : mass.Sorted()) {
      // Audit-only tail: once the budget is gone no move can be emitted,
      // but qualifying partitions still get a reject record so explain
      // output shows what the copy budget cut.
      if (budget == 0 && audit_log == nullptr) break;
      if (p == *cur || placement->HasReplicaOn(p)) continue;
      if (static_cast<double>(pull) <=
          config_.replica_split_threshold * static_cast<double>(mass.total)) {
        break;  // sorted: nothing below qualifies either
      }
      constexpr auto kCreate =
          repartition::RepartitionOpType::kNewReplicaCreation;
      if (budget == 0) {
        audit_op(key, kCreate, false, "copy_budget_exhausted", *cur, p, heat,
                 pull, mass.total, placement->copy_count());
        continue;
      }
      audit_op(key, kCreate, true, "replica_split_reader", *cur, p, heat,
               pull, mass.total, placement->copy_count());
      moves.push_back({key, *cur, p, heat,
                       repartition::RepartitionOpType::kNewReplicaCreation});
      --budget;
    }
  }

  if (config_.replicate_read_heavy && config_.drop_stale_replicas) {
    routing.ForEachReplicated([&](storage::TupleKey key,
                                  const router::Placement& placement) {
      const uint64_t heat = graph.VertexWeight(key);
      const bool keep_any =
          heat >= config_.min_vertex_weight && read_heavy(key);
      const PullMass mass = keep_any ? deployed_pull_mass(key) : PullMass{};
      for (router::PartitionId rep : placement.replicas) {
        constexpr auto kDelete =
            repartition::RepartitionOpType::kReplicaDeletion;
        // Hysteresis: a copy survives while its partition keeps at least
        // half the create threshold's share of the key's pull.
        if (keep_any && mass.total > 0 &&
            static_cast<double>(mass.On(rep)) >=
                0.5 * config_.replica_split_threshold *
                    static_cast<double>(mass.total)) {
          audit_op(key, kDelete, false, "kept_by_hysteresis", rep,
                   placement.primary, heat, mass.On(rep), mass.total,
                   placement.copy_count());
          continue;
        }
        audit_op(key, kDelete, true,
                 keep_any ? "drop_below_share" : "drop_cold_or_write_heavy",
                 rep, placement.primary, heat, mass.On(rep), mass.total,
                 placement.copy_count());
        moves.push_back({key, rep, placement.primary, heat,
                         repartition::RepartitionOpType::kReplicaDeletion});
      }
    });
  }

  // Keys must come out sorted (lock-order discipline for pure repartition
  // transactions); a stable sort keeps migration-before-deletion order for
  // a key that has both. No-op for migration-only plans, which are built
  // key-sorted already.
  std::stable_sort(moves.begin(), moves.end(),
                   [](const Move& x, const Move& y) { return x.key < y.key; });

  BuiltPlan out;
  if (config_.max_ops > 0 && moves.size() > config_.max_ops) {
    out.dropped = moves.size() - config_.max_ops;
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) {
                       if (x.heat != y.heat) return x.heat > y.heat;
                       return x.key < y.key;
                     });
    for (size_t i = config_.max_ops; i < moves.size(); ++i) {
      const Move& m = moves[i];
      audit_op(m.key, m.type, false, "dropped_by_cap", m.source, m.target,
               m.heat, 0, 0, 0);
    }
    moves.resize(config_.max_ops);
    // Emission order stays key-sorted regardless of the heat cut.
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) { return x.key < y.key; });
  }

  out.plan.epoch = ids->BeginEpoch();
  out.plan.ops.reserve(moves.size());
  for (const Move& m : moves) {
    repartition::RepartitionOp op;
    op.id = ids->Allocate();
    op.type = m.type;
    op.key = m.key;
    op.source_partition = m.source;
    op.target_partition = m.target;
    const uint32_t tmpl = catalog_->TemplateOfKey(m.key);
    if (tmpl != workload::TemplateCatalog::kNoTemplate) {
      op.affected_templates.push_back(tmpl);
    }
    out.plan.ops.push_back(std::move(op));
  }
  if (!out.plan.ops.empty()) {
    out.deploy_cost = cost_model_->RepartitionTxnCost(out.plan.ops);
  }
  return out;
}

}  // namespace soap::planner
