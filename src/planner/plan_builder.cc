#include "src/planner/plan_builder.h"

#include <algorithm>

namespace soap::planner {

BuiltPlan PlanBuilder::Build(const Clustering& clustering,
                             const CoAccessGraph& graph,
                             const router::RoutingTable& routing,
                             repartition::OpIdAllocator* ids) const {
  struct Move {
    storage::TupleKey key = 0;
    uint32_t source = 0;
    uint32_t target = 0;
    uint64_t heat = 0;
  };
  std::vector<Move> moves;
  for (size_t i = 0; i < clustering.keys.size(); ++i) {
    const storage::TupleKey key = clustering.keys[i];
    Result<router::PartitionId> cur = routing.GetPrimary(key);
    if (!cur.ok()) continue;
    const uint32_t want = clustering.partition_of[i];
    if (*cur == want) continue;
    const uint64_t heat = graph.VertexWeight(key);
    if (heat < config_.min_vertex_weight) continue;
    moves.push_back({key, *cur, want, heat});
  }

  BuiltPlan out;
  if (config_.max_ops > 0 && moves.size() > config_.max_ops) {
    out.dropped = moves.size() - config_.max_ops;
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& x, const Move& y) {
                       if (x.heat != y.heat) return x.heat > y.heat;
                       return x.key < y.key;
                     });
    moves.resize(config_.max_ops);
    // Emission order stays key-sorted regardless of the heat cut.
    std::sort(moves.begin(), moves.end(),
              [](const Move& x, const Move& y) { return x.key < y.key; });
  }

  out.plan.epoch = ids->BeginEpoch();
  out.plan.ops.reserve(moves.size());
  for (const Move& m : moves) {
    repartition::RepartitionOp op;
    op.id = ids->Allocate();
    op.type = repartition::RepartitionOpType::kObjectsMigration;
    op.key = m.key;
    op.source_partition = m.source;
    op.target_partition = m.target;
    const uint32_t tmpl = catalog_->TemplateOfKey(m.key);
    if (tmpl != workload::TemplateCatalog::kNoTemplate) {
      op.affected_templates.push_back(tmpl);
    }
    out.plan.ops.push_back(std::move(op));
  }
  if (!out.plan.ops.empty()) {
    out.deploy_cost = cost_model_->RepartitionTxnCost(out.plan.ops);
  }
  return out;
}

}  // namespace soap::planner
