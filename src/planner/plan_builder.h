// Turns a clustering into a deployable RepartitionPlan: diffs the desired
// labels against the live routing table, emits one migration op per tuple
// that must move, prices the plan with the existing CostModel, and draws
// op ids from the run-wide OpIdAllocator so successive generations never
// collide in the registry's idempotency tracking.

#ifndef SOAP_PLANNER_PLAN_BUILDER_H_
#define SOAP_PLANNER_PLAN_BUILDER_H_

#include <cstdint>
#include <unordered_map>

#include "src/lion/provisioner.h"
#include "src/obs/audit_log.h"
#include "src/planner/co_access_graph.h"
#include "src/planner/graph_partitioner.h"
#include "src/repartition/cost_model.h"
#include "src/repartition/operation.h"
#include "src/router/routing_table.h"
#include "src/workload/template_catalog.h"

namespace soap::planner {

/// Optional decision-audit sink for one Build() call. When `log` is set,
/// every candidate the builder considers — accepted or rejected — becomes
/// one `plan_op` audit record carrying the cost-model inputs that decided
/// it (heat, window reads/writes, pull shares, copy count) and the reason
/// string. The records join the planner's `replan` record via `cycle`.
struct PlanAuditContext {
  obs::AuditLog* log = nullptr;
  uint64_t cycle = 0;
  SimTime t_us = 0;
};

struct PlanBuilderConfig {
  /// Cap on migration ops per generation (0 = unlimited); when over, the
  /// hottest tuples (highest vertex weight, ties by key) win.
  size_t max_ops = 2048;
  /// Tuples colder than this vertex weight are not worth migrating.
  uint64_t min_vertex_weight = 1;

  /// Replica-aware planning (soap::replica): a read-heavy tuple whose
  /// co-access neighbourhood is *split* — a second partition's cluster
  /// holds a meaningful share of the key's co-access mass — gets a
  /// replica on the minority reader's partition instead of (or in
  /// addition to staying put after) a migration. Readers on both sides
  /// go local, writers keep the single primary, and the copy doubles as
  /// a failover target. Keys pulled by only one partition migrate as
  /// before: replicating those would strand the primary away from all
  /// its readers. Off by default; off means Build() takes exactly the
  /// migration-only path.
  bool replicate_read_heavy = false;
  /// A tuple is read-heavy when window reads > ratio * window writes.
  double min_read_write_ratio = 3.0;
  /// Total copies (primary included) a key may reach via planning.
  uint32_t max_copies = 2;
  /// Fraction of a key's co-access neighbour mass a second partition must
  /// hold before the key counts as split (replicate) rather than moved
  /// with the majority (migrate). Replicas are dropped again when the
  /// hosting partition's share falls below half this threshold
  /// (hysteresis against create/drop flapping).
  double replica_split_threshold = 0.2;
  /// Also emit replica deletions for copies whose key went cold,
  /// write-heavy or single-reader, so the replica set tracks the
  /// workload both ways.
  bool drop_stale_replicas = true;

  /// Lion-style adaptive provisioning (soap::lion): per-partition replica
  /// budget with LRU/heat eviction, predictive admission from the window
  /// trend, and leader shifting. When `lion.enabled`, the builder prices
  /// migrate-vs-replicate-vs-leader-shift per key from one candidate pool
  /// and fills each emitted action's PlacementCost. Requires a Provisioner
  /// via set_lion(); off by default (byte-identical plans to the static
  /// fan-in path).
  lion::LionConfig lion;
};

struct BuiltPlan {
  repartition::RepartitionPlan plan;
  /// CostModel price of deploying the plan (one standalone repartition
  /// txn worth of node work per op batch; diagnostic only).
  Duration deploy_cost = 0;
  /// Moves dropped by the max_ops cap (0 = plan is complete).
  size_t dropped = 0;
};

class PlanBuilder {
 public:
  PlanBuilder(const workload::TemplateCatalog* catalog,
              const repartition::CostModel* cost_model,
              PlanBuilderConfig config = {})
      : catalog_(catalog), cost_model_(cost_model), config_(config) {}

  BuiltPlan Build(const Clustering& clustering, const CoAccessGraph& graph,
                  const router::RoutingTable& routing,
                  repartition::OpIdAllocator* ids,
                  const PlanAuditContext* audit = nullptr) const;

  /// Non-owning; the provisioner holds budget/recency state across Build()
  /// calls. Must outlive the builder. Null disables the lion path even if
  /// config_.lion.enabled is set.
  void set_lion(lion::Provisioner* provisioner) { lion_ = provisioner; }

 private:
  const workload::TemplateCatalog* catalog_;
  const repartition::CostModel* cost_model_;
  PlanBuilderConfig config_;
  lion::Provisioner* lion_ = nullptr;
};

}  // namespace soap::planner

#endif  // SOAP_PLANNER_PLAN_BUILDER_H_
