#include "src/planner/planner.h"

namespace soap::planner {

Planner::Planner(const workload::TemplateCatalog* catalog,
                 const router::RoutingTable* routing,
                 core::Repartitioner* repartitioner, PlannerConfig config)
    : catalog_(catalog),
      routing_(routing),
      repartitioner_(repartitioner),
      config_(config),
      graph_(config.graph),
      partitioner_(config.partitioner),
      builder_(catalog, &repartitioner->cost_model(), config.builder) {}

void Planner::OnTxnComplete(const txn::Transaction& t) {
  if (t.is_repartition || !t.committed()) return;
  graph_.Observe(t);
  ++stats_.txns_observed;
}

void Planner::OnIntervalTick(uint32_t interval) {
  if (interval + 1 >= config_.first_plan_interval) {
    const uint32_t since_eligible = interval + 1 - config_.first_plan_interval;
    if (since_eligible % config_.replan_period == 0) TryReplan();
  }
  graph_.Decay();
  if (m_graph_vertices_ != nullptr) {
    m_graph_vertices_->Set(static_cast<double>(graph_.vertex_count()));
    m_graph_edges_->Set(static_cast<double>(graph_.edge_count()));
    m_cut_weight_->Set(static_cast<double>(stats_.last_cut_weight));
    m_plans_emitted_->Set(static_cast<double>(stats_.plans_emitted));
    m_ops_emitted_->Set(static_cast<double>(stats_.ops_emitted));
  }
}

void Planner::TryReplan() {
  // A still-deploying generation must finish first: op ids in flight keep
  // their registry entries until AllDone, and FinishRound() refuses to
  // retire an unfinished round.
  if (repartitioner_->active()) {
    if (!repartitioner_->FinishRound()) {
      ++stats_.replans_skipped_active;
      return;
    }
  }
  const Clustering clustering = partitioner_.Partition(
      graph_, *routing_, catalog_->num_partitions());
  stats_.last_cut_weight = clustering.cut_weight;
  stats_.last_internal_weight = clustering.internal_weight;
  stats_.last_graph_vertices = graph_.vertex_count();
  stats_.last_graph_edges = graph_.edge_count();
  stats_.last_moved = clustering.moved;

  const BuiltPlan built = builder_.Build(clustering, graph_, *routing_,
                                         &repartitioner_->op_ids());
  stats_.ops_dropped_by_cap += built.dropped;
  if (built.plan.size() < config_.min_plan_ops) {
    ++stats_.replans_skipped_small;
    return;
  }
  if (repartitioner_->StartRepartitioningWithPlan(built.plan)) {
    ++stats_.plans_emitted;
    stats_.ops_emitted += built.plan.size();
    for (const repartition::RepartitionOp& op : built.plan.ops) {
      if (op.type == repartition::RepartitionOpType::kNewReplicaCreation) {
        ++stats_.replica_creates_emitted;
      } else if (op.type == repartition::RepartitionOpType::kReplicaDeletion) {
        ++stats_.replica_drops_emitted;
      }
    }
  }
}

void Planner::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_graph_vertices_ = nullptr;
    m_graph_edges_ = nullptr;
    m_cut_weight_ = nullptr;
    m_plans_emitted_ = nullptr;
    m_ops_emitted_ = nullptr;
    return;
  }
  m_graph_vertices_ = registry->GetGauge("soap_planner_graph_vertices");
  m_graph_edges_ = registry->GetGauge("soap_planner_graph_edges");
  m_cut_weight_ = registry->GetGauge("soap_planner_cut_weight");
  m_plans_emitted_ = registry->GetGauge("soap_planner_plans_emitted");
  m_ops_emitted_ = registry->GetGauge("soap_planner_ops_emitted");
}

}  // namespace soap::planner
