#include "src/planner/planner.h"

#include <chrono>

#include "src/sim/simulator.h"

namespace soap::planner {

Planner::Planner(const workload::TemplateCatalog* catalog,
                 const router::RoutingTable* routing,
                 core::Repartitioner* repartitioner, PlannerConfig config)
    : catalog_(catalog),
      routing_(routing),
      repartitioner_(repartitioner),
      config_(config),
      graph_(config.graph),
      partitioner_(config.partitioner),
      builder_(catalog, &repartitioner->cost_model(), config.builder) {
  if (config_.builder.lion.enabled) {
    lion_ = std::make_unique<lion::Provisioner>(config_.builder.lion);
    builder_.set_lion(lion_.get());
  }
}

void Planner::OnTxnComplete(const txn::Transaction& t) {
  if (t.is_repartition || !t.committed()) return;
  graph_.Observe(t);
  ++stats_.txns_observed;
}

void Planner::OnIntervalTick(uint32_t interval) {
  if (interval + 1 >= config_.first_plan_interval) {
    const uint32_t since_eligible = interval + 1 - config_.first_plan_interval;
    if (since_eligible % config_.replan_period == 0) TryReplan();
  }
  graph_.Decay();
  if (m_graph_vertices_ != nullptr) {
    m_graph_vertices_->Set(static_cast<double>(graph_.vertex_count()));
    m_graph_edges_->Set(static_cast<double>(graph_.edge_count()));
    m_cut_weight_->Set(static_cast<double>(stats_.last_cut_weight));
    m_plans_emitted_->Set(static_cast<double>(stats_.plans_emitted));
    m_ops_emitted_->Set(static_cast<double>(stats_.ops_emitted));
  }
}

void Planner::TryReplan() {
  const uint64_t cycle = ++stats_.replan_cycles;
  if (m_replans_total_ != nullptr) m_replans_total_->Increment();
  const SimTime now = sim_ != nullptr ? sim_->Now() : 0;
  // One `replan` record per cycle, whatever the outcome; plan_op records
  // emitted by Build() join it via `cycle`. Emitted *after* the plan_op
  // records so the outcome (which depends on the repartitioner's verdict)
  // is known — readers sort by cycle, not record order.
  auto audit_replan = [&](const char* outcome, uint64_t plan,
                          const Clustering* clustering,
                          const BuiltPlan* built) {
    if (audit_ == nullptr) return;
    obs::AuditRecord rec(audit_, "replan", now);
    rec.U64("cycle", cycle).Str("outcome", outcome).U64("plan", plan);
    rec.U64("graph_vertices", graph_.vertex_count())
        .U64("graph_edges", graph_.edge_count())
        .U64("txns_observed", stats_.txns_observed);
    if (clustering != nullptr) {
      rec.U64("cut_weight", clustering->cut_weight)
          .U64("internal_weight", clustering->internal_weight)
          .U64("moved", clustering->moved);
    }
    if (built != nullptr) {
      uint64_t creates = 0;
      uint64_t drops = 0;
      uint64_t shifts = 0;
      for (const repartition::PlacementAction& op : built->plan.ops) {
        if (op.kind == repartition::PlacementKind::kReplicaCreate) {
          ++creates;
        } else if (op.kind == repartition::PlacementKind::kReplicaDrop) {
          ++drops;
        } else if (op.kind == repartition::PlacementKind::kLeaderShift) {
          ++shifts;
        }
      }
      rec.U64("ops", built->plan.size())
          .U64("replica_creates", creates)
          .U64("replica_drops", drops);
      // Lion-only field, so lion-off audit streams stay byte-identical.
      if (lion_ != nullptr) rec.U64("leader_shifts", shifts);
      rec.U64("dropped_by_cap", built->dropped)
          .I64("deploy_cost_us", built->deploy_cost);
    }
  };
  // A still-deploying generation must finish first: op ids in flight keep
  // their registry entries until AllDone, and FinishRound() refuses to
  // retire an unfinished round.
  if (repartitioner_->active()) {
    if (!repartitioner_->FinishRound()) {
      ++stats_.replans_skipped_active;
      audit_replan("skipped_active", 0, nullptr, nullptr);
      return;
    }
  }
  // Wall-clock plan-construction latency (graph partitioning + plan
  // build). Wall time is inherently nondeterministic, so it only ever
  // feeds the metrics histogram — never the audit log, which must stay
  // byte-identical across thread counts and machines.
  const auto wall_start = m_plan_build_seconds_ != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  const Clustering clustering = partitioner_.Partition(
      graph_, *routing_, catalog_->num_partitions());
  stats_.last_cut_weight = clustering.cut_weight;
  stats_.last_internal_weight = clustering.internal_weight;
  stats_.last_graph_vertices = graph_.vertex_count();
  stats_.last_graph_edges = graph_.edge_count();
  stats_.last_moved = clustering.moved;

  const PlanAuditContext audit_ctx{audit_, cycle, now};
  const BuiltPlan built =
      builder_.Build(clustering, graph_, *routing_, &repartitioner_->op_ids(),
                     audit_ != nullptr ? &audit_ctx : nullptr);
  if (m_plan_build_seconds_ != nullptr) {
    const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - wall_start);
    m_plan_build_seconds_->RecordMicros(
        static_cast<uint64_t>(wall_us.count()));
  }
  stats_.ops_dropped_by_cap += built.dropped;
  if (built.plan.size() < config_.min_plan_ops) {
    ++stats_.replans_skipped_small;
    audit_replan("skipped_small", 0, &clustering, &built);
    return;
  }
  if (repartitioner_->StartRepartitioningWithPlan(built.plan)) {
    ++stats_.plans_emitted;
    stats_.ops_emitted += built.plan.size();
    for (const repartition::PlacementAction& op : built.plan.ops) {
      if (op.kind == repartition::PlacementKind::kReplicaCreate) {
        ++stats_.replica_creates_emitted;
      } else if (op.kind == repartition::PlacementKind::kReplicaDrop) {
        ++stats_.replica_drops_emitted;
      } else if (op.kind == repartition::PlacementKind::kLeaderShift) {
        ++stats_.leader_shifts_emitted;
      }
    }
    if (lion_ != nullptr) {
      stats_.replicas_evicted_budget = lion_->stats().evictions;
      stats_.replica_budget_denials = lion_->stats().budget_denials;
      stats_.predictive_creates = lion_->stats().predictive_creates;
    }
    audit_replan("emitted", repartitioner_->rounds_started(), &clustering,
                 &built);
  } else {
    audit_replan("rejected_by_repartitioner", 0, &clustering, &built);
  }
}

void Planner::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_graph_vertices_ = nullptr;
    m_graph_edges_ = nullptr;
    m_cut_weight_ = nullptr;
    m_plans_emitted_ = nullptr;
    m_ops_emitted_ = nullptr;
    m_replans_total_ = nullptr;
    m_plan_build_seconds_ = nullptr;
    return;
  }
  m_graph_vertices_ = registry->GetGauge("soap_planner_graph_vertices");
  m_graph_edges_ = registry->GetGauge("soap_planner_graph_edges");
  m_cut_weight_ = registry->GetGauge("soap_planner_cut_weight");
  m_plans_emitted_ = registry->GetGauge("soap_planner_plans_emitted");
  m_ops_emitted_ = registry->GetGauge("soap_planner_ops_emitted");
  m_replans_total_ = registry->GetCounter("soap_planner_replans_total");
  m_plan_build_seconds_ =
      registry->GetHistogram("soap_planner_plan_build_seconds");
}

void Planner::BindAudit(obs::AuditLog* audit, const sim::Simulator* sim) {
  audit_ = audit;
  sim_ = sim;
}

}  // namespace soap::planner
