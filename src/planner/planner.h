// The online planner: closes the monitor→plan→deploy loop the paper
// leaves open. Committed transactions feed the CoAccessGraph; every
// replan_period intervals the GraphPartitioner re-clusters the graph, the
// PlanBuilder diffs the clustering against the live routing table, and —
// if the previous generation has fully deployed — the resulting plan is
// handed to the Repartitioner, which packages, ranks and schedules it with
// whichever of the five strategies the experiment configured. Disabled
// (the default) the planner is never constructed and every run stays
// byte-identical to the static pipeline.

#ifndef SOAP_PLANNER_PLANNER_H_
#define SOAP_PLANNER_PLANNER_H_

#include <cstdint>
#include <memory>

#include "src/core/repartitioner.h"
#include "src/lion/provisioner.h"
#include "src/obs/audit_log.h"
#include "src/obs/metrics.h"
#include "src/planner/co_access_graph.h"
#include "src/planner/graph_partitioner.h"
#include "src/planner/plan_builder.h"
#include "src/workload/template_catalog.h"

namespace soap::sim {
class Simulator;
}  // namespace soap::sim

namespace soap::planner {

struct PlannerConfig {
  /// Off by default: experiments construct a Planner only when set, so
  /// the static pipeline stays untouched.
  bool enabled = false;
  /// First interval index (0-based, counted like the experiment's
  /// interval ticks) at which a plan may be deployed; 0 = "at the end of
  /// warmup", resolved by the experiment.
  uint32_t first_plan_interval = 0;
  /// Intervals between generation attempts.
  uint32_t replan_period = 3;
  /// Generations that would move fewer tuples than this are skipped
  /// (deployment churn guard).
  size_t min_plan_ops = 8;
  CoAccessGraphConfig graph;
  GraphPartitionerConfig partitioner;
  PlanBuilderConfig builder;
};

struct PlannerStats {
  uint64_t txns_observed = 0;
  uint64_t plans_emitted = 0;
  uint64_t ops_emitted = 0;
  /// Replan attempts skipped because the previous generation was still
  /// deploying.
  uint64_t replans_skipped_active = 0;
  /// Replan attempts skipped because the diff was below min_plan_ops.
  uint64_t replans_skipped_small = 0;
  uint64_t ops_dropped_by_cap = 0;
  /// Replica creations / deletions among ops_emitted (replica-aware
  /// planning only; zero for migration-only configurations).
  uint64_t replica_creates_emitted = 0;
  uint64_t replica_drops_emitted = 0;
  /// Leader shifts among ops_emitted (lion only).
  uint64_t leader_shifts_emitted = 0;
  /// Replica drops emitted to free budget slots (lion only).
  uint64_t replicas_evicted_budget = 0;
  /// Creates the budget rejected with nothing evictable (lion only).
  uint64_t replica_budget_denials = 0;
  /// Creates admitted on the predictive window trend alone (lion only).
  uint64_t predictive_creates = 0;
  uint64_t last_cut_weight = 0;
  uint64_t last_internal_weight = 0;
  uint64_t last_graph_vertices = 0;
  uint64_t last_graph_edges = 0;
  uint64_t last_moved = 0;
  /// Replan cycles attempted (every TryReplan entry, skipped or not);
  /// doubles as the audit `cycle` id joining replan and plan_op records.
  uint64_t replan_cycles = 0;
};

class Planner {
 public:
  Planner(const workload::TemplateCatalog* catalog,
          const router::RoutingTable* routing,
          core::Repartitioner* repartitioner, PlannerConfig config);

  /// Feed from the TM completion callback; only committed normal
  /// transactions enter the graph.
  void OnTxnComplete(const txn::Transaction& t);

  /// One experiment interval closed (0-based index). Replans on schedule,
  /// then ages the graph window.
  void OnIntervalTick(uint32_t interval);

  const PlannerStats& stats() const { return stats_; }
  const CoAccessGraph& graph() const { return graph_; }
  const PlannerConfig& config() const { return config_; }
  /// Null unless lion provisioning is enabled in the builder config.
  const lion::Provisioner* lion() const { return lion_.get(); }

  /// Publishes soap_planner_* gauges, the soap_planner_replans_total
  /// counter and the soap_planner_plan_build_seconds wall-clock
  /// histogram; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches the decision audit log; `sim` supplies the virtual
  /// timestamps stamped on replan / plan_op records (the planner has no
  /// clock of its own). nullptr detaches.
  void BindAudit(obs::AuditLog* audit, const sim::Simulator* sim);

 private:
  void TryReplan();

  const workload::TemplateCatalog* catalog_;
  const router::RoutingTable* routing_;
  core::Repartitioner* repartitioner_;
  PlannerConfig config_;
  CoAccessGraph graph_;
  GraphPartitioner partitioner_;
  PlanBuilder builder_;
  /// Lion budget/recency state; owned here so it persists across replan
  /// cycles (the builder only borrows it).
  std::unique_ptr<lion::Provisioner> lion_;
  PlannerStats stats_;
  // Observability hooks; nullptr when disabled.
  obs::Gauge* m_graph_vertices_ = nullptr;
  obs::Gauge* m_graph_edges_ = nullptr;
  obs::Gauge* m_cut_weight_ = nullptr;
  obs::Gauge* m_plans_emitted_ = nullptr;
  obs::Gauge* m_ops_emitted_ = nullptr;
  obs::Counter* m_replans_total_ = nullptr;
  obs::LatencyHistogram* m_plan_build_seconds_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
};

}  // namespace soap::planner

#endif  // SOAP_PLANNER_PLANNER_H_
