#include "src/repartition/cost_model.h"

namespace soap::repartition {

Duration CostModel::CollocatedTxnCost() const {
  // begin + q queries + one-phase local commit. Reads and writes cost the
  // same in the default model; use the mean if they ever differ.
  const Duration query =
      (costs_.read_query + costs_.write_query) / 2;
  return costs_.begin + queries_per_txn_ * query + costs_.local_commit;
}

Duration CostModel::DistributedTxnCost(uint32_t partitions) const {
  if (partitions <= 1) return CollocatedTxnCost();
  const Duration query =
      (costs_.read_query + costs_.write_query) / 2;
  return costs_.begin + queries_per_txn_ * query +
         static_cast<Duration>(partitions) *
             (costs_.prepare + costs_.commit_apply);
}

Duration CostModel::RepartitionTxnCost(
    const std::vector<RepartitionOp>& ops) const {
  Duration work = costs_.begin;
  uint32_t partitions = 0;
  bool crosses = false;
  for (const RepartitionOp& op : ops) {
    switch (op.type) {
      case RepartitionOpType::kObjectsMigration:
        work += costs_.migrate_insert + costs_.migrate_delete;
        crosses = true;
        break;
      case RepartitionOpType::kNewReplicaCreation:
        work += costs_.replica_create;
        crosses = true;
        break;
      case RepartitionOpType::kReplicaDeletion:
        work += costs_.replica_delete;
        break;
    }
  }
  // Migrations always involve a source and a destination, so the commit
  // is a two-participant 2PC.
  partitions = crosses ? 2 : 1;
  if (partitions > 1) {
    work += static_cast<Duration>(partitions) *
            (costs_.prepare + costs_.commit_apply);
  } else {
    work += costs_.local_commit;
  }
  return work;
}

Duration CostModel::PiggybackedOpCost(const RepartitionOp& op) const {
  switch (op.type) {
    case RepartitionOpType::kObjectsMigration:
      return costs_.migrate_insert + costs_.migrate_delete;
    case RepartitionOpType::kNewReplicaCreation:
      return costs_.replica_create;
    case RepartitionOpType::kReplicaDeletion:
      return costs_.replica_delete;
  }
  return 0;
}

}  // namespace soap::repartition
