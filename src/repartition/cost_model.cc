#include "src/repartition/cost_model.h"

namespace soap::repartition {

Duration CostModel::CollocatedTxnCost() const {
  // begin + q queries + one-phase local commit. Reads and writes cost the
  // same in the default model; use the mean if they ever differ.
  const Duration query =
      (costs_.read_query + costs_.write_query) / 2;
  return costs_.begin + queries_per_txn_ * query + costs_.local_commit;
}

Duration CostModel::DistributedTxnCost(uint32_t partitions) const {
  if (partitions <= 1) return CollocatedTxnCost();
  const Duration query =
      (costs_.read_query + costs_.write_query) / 2;
  return costs_.begin + queries_per_txn_ * query +
         static_cast<Duration>(partitions) *
             (costs_.prepare + costs_.commit_apply);
}

Duration CostModel::RepartitionTxnCost(
    const std::vector<RepartitionOp>& ops) const {
  Duration work = costs_.begin;
  uint32_t partitions = 0;
  bool crosses = false;
  for (const PlacementAction& op : ops) {
    switch (op.kind) {
      case PlacementKind::kMigrate:
        work += costs_.migrate_insert + costs_.migrate_delete;
        crosses = true;
        break;
      case PlacementKind::kReplicaCreate:
        work += costs_.replica_create;
        crosses = true;
        break;
      case PlacementKind::kReplicaDrop:
        work += costs_.replica_delete;
        break;
      case PlacementKind::kLeaderShift:
        // Role swap: no data moves, but the old and new primary both
        // participate in the commit.
        work += costs_.leader_shift;
        crosses = true;
        break;
    }
  }
  // Migrations always involve a source and a destination, so the commit
  // is a two-participant 2PC.
  partitions = crosses ? 2 : 1;
  if (partitions > 1) {
    work += static_cast<Duration>(partitions) *
            (costs_.prepare + costs_.commit_apply);
  } else {
    work += costs_.local_commit;
  }
  return work;
}

Duration CostModel::PiggybackedOpCost(const PlacementAction& op) const {
  switch (op.kind) {
    case PlacementKind::kMigrate:
      return costs_.migrate_insert + costs_.migrate_delete;
    case PlacementKind::kReplicaCreate:
      return costs_.replica_create;
    case PlacementKind::kReplicaDrop:
      return costs_.replica_delete;
    case PlacementKind::kLeaderShift:
      return costs_.leader_shift;
  }
  return 0;
}

}  // namespace soap::repartition
