// Transaction cost model (§3.1, after Schism [4]): a transaction whose
// tuples are collocated on one partition costs Ci; one that spans more
// than one partition costs 2·Ci. This class grounds those abstract costs
// in the cluster's service-time model so that calibration, Algorithm 1's
// benefit densities, and the feedback controller's work ratios all share
// one currency: node-work microseconds.

#ifndef SOAP_REPARTITION_COST_MODEL_H_
#define SOAP_REPARTITION_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/time.h"
#include "src/repartition/operation.h"

namespace soap::repartition {

class CostModel {
 public:
  CostModel(const cluster::ExecutionCosts& costs, uint32_t queries_per_txn)
      : costs_(costs), queries_per_txn_(queries_per_txn) {}

  /// Node work of one collocated normal transaction (the paper's Ci).
  Duration CollocatedTxnCost() const;

  /// Node work of a normal transaction spanning `partitions` partitions
  /// (the paper's 2·Ci for partitions > 1; the service-time model makes
  /// the ratio emerge from real 2PC work, see DESIGN.md §4.2).
  Duration DistributedTxnCost(uint32_t partitions = 2) const;

  /// Node work of a standalone repartition transaction executing `ops`
  /// (Algorithm 1 line 23's Cost(ri, O)).
  Duration RepartitionTxnCost(const std::vector<PlacementAction>& ops) const;

  /// Node work of one plan unit when piggybacked (no extra begin/commit).
  Duration PiggybackedOpCost(const PlacementAction& op) const;

  /// The paper's abstract per-transaction cost: 1.0 collocated, 2.0
  /// distributed (for tests mirroring the published model directly).
  static double AbstractCost(bool distributed) {
    return distributed ? 2.0 : 1.0;
  }

  const cluster::ExecutionCosts& costs() const { return costs_; }
  uint32_t queries_per_txn() const { return queries_per_txn_; }

 private:
  cluster::ExecutionCosts costs_;
  uint32_t queries_per_txn_;
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_COST_MODEL_H_
