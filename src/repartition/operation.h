// Placement actions: the unified planner-op vocabulary. The paper's
// optimizer (§2.2) emitted three ad-hoc op kinds (migration, replica
// creation, replica deletion); the Lion-style provisioner adds leader
// shifting, and all four are now one `PlacementAction` carrying a uniform
// cost breakdown so the PlanBuilder can price migrate-vs-replicate-vs-shift
// from a single candidate pool.
//
// Compatibility: `RepartitionOp` / `RepartitionOpType` and the old
// enumerator spellings (`kObjectsMigration`, `kNewReplicaCreation`,
// `kReplicaDeletion`) remain as thin aliases for one release; new code
// should use `PlacementAction` / `PlacementKind`.

#ifndef SOAP_REPARTITION_OPERATION_H_
#define SOAP_REPARTITION_OPERATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/storage/tuple.h"

namespace soap::repartition {

enum class PlacementKind : uint8_t {
  /// Move the primary copy (insert-at-destination + delete-at-source
  /// inside one transaction).
  kMigrate,
  /// Install a read replica at the target partition.
  kReplicaCreate,
  /// Retire the replica hosted at the source partition.
  kReplicaDrop,
  /// Atomically swap primary/replica roles: the target partition (which
  /// must already hold a replica) becomes the primary and the old primary
  /// is demoted into the replica set. No data moves.
  kLeaderShift,

  // Deprecated spellings (pre-redesign names). Same underlying values, so
  // old and new code agree on the wire and in switches.
  kObjectsMigration = kMigrate,
  kNewReplicaCreation = kReplicaCreate,
  kReplicaDeletion = kReplicaDrop,
};

inline const char* PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kMigrate: return "migrate";
    case PlacementKind::kReplicaCreate: return "replica_create";
    case PlacementKind::kReplicaDrop: return "replica_delete";
    case PlacementKind::kLeaderShift: return "leader_shift";
  }
  return "unknown";
}

/// Uniform cost inputs attached to every placement action so candidates of
/// different kinds are comparable in one pool (§ DESIGN.md 9.1).
struct PlacementCost {
  /// Bytes copied over the wire to deploy this action (0 for role swaps
  /// and drops).
  uint64_t move_bytes = 0;
  /// Estimated 2PC work saved per window, from the sliding co-access
  /// window: pull mass toward the target times the distributed-vs-local
  /// cost gap (microseconds of cluster work).
  double tpc_savings = 0.0;
  /// Ongoing freshness/lag cost the action commits us to: write fan-out
  /// for replicas, remote-reader staleness for shifts (microseconds).
  double freshness_penalty = 0.0;

  /// Net score used to rank candidates: savings minus penalties.
  double Net() const {
    return tpc_savings - freshness_penalty - static_cast<double>(move_bytes);
  }
};

/// One plan unit: moves/copies/deletes one tuple or swaps its leader.
/// `id` is the unit the RepRate metric counts (1-based; 0 means "not a
/// repartition op" in transaction operations).
struct PlacementAction {
  uint64_t id = 0;
  PlacementKind kind = PlacementKind::kMigrate;
  storage::TupleKey key = 0;
  uint32_t source_partition = 0;
  uint32_t target_partition = 0;
  /// Templates of normal transactions whose objects this op repartitions
  /// (Algorithm 1's "normal transaction ti accessing the objects modified
  /// by opk"). With disjoint template key sets this has one element.
  std::vector<uint32_t> affected_templates;
  /// Accumulated benefit, filled by Algorithm 1 (lines 6-9).
  double benefit = 0.0;
  /// Uniform cost breakdown (filled by cost-aware producers; zeroed by
  /// legacy ones).
  PlacementCost cost;
};

/// Deprecated aliases — one release of grace for pre-redesign call sites.
using RepartitionOp = PlacementAction;
using RepartitionOpType = PlacementKind;

/// The optimizer's output: the full set of plan units. `epoch` numbers the
/// plan generation the ids were drawn in (1-based; 0 = unset/legacy).
struct RepartitionPlan {
  std::vector<PlacementAction> ops;
  uint64_t epoch = 0;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// Monotonic op-id source shared by every plan producer in a run. Op ids
/// feed the TM's applied-op idempotency tracking and the RepRate metric,
/// so ids from successive plan generations must never collide — each
/// generation opens a new epoch and keeps drawing from the same counter.
class OpIdAllocator {
 public:
  /// Next unique op id (1-based, never reused within a run).
  uint64_t Allocate() { return next_id_++; }

  /// Opens a new plan generation and returns its epoch number (1-based).
  uint64_t BeginEpoch() { return ++epochs_; }

  uint64_t next_id() const { return next_id_; }
  uint64_t epochs() const { return epochs_; }

 private:
  uint64_t next_id_ = 1;
  uint64_t epochs_ = 0;
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_OPERATION_H_
