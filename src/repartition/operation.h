// Repartition operations (§2.2): the optimizer emits three kinds — new
// replica creation, replica deletion, and objects migration (realised as
// insert-at-destination + delete-at-source inside one transaction).

#ifndef SOAP_REPARTITION_OPERATION_H_
#define SOAP_REPARTITION_OPERATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/storage/tuple.h"

namespace soap::repartition {

enum class RepartitionOpType : uint8_t {
  kObjectsMigration,
  kNewReplicaCreation,
  kReplicaDeletion,
};

/// One plan unit: moves/copies/deletes one tuple. `id` is the unit the
/// RepRate metric counts (1-based; 0 means "not a repartition op" in
/// transaction operations).
struct RepartitionOp {
  uint64_t id = 0;
  RepartitionOpType type = RepartitionOpType::kObjectsMigration;
  storage::TupleKey key = 0;
  uint32_t source_partition = 0;
  uint32_t target_partition = 0;
  /// Templates of normal transactions whose objects this op repartitions
  /// (Algorithm 1's "normal transaction ti accessing the objects modified
  /// by opk"). With disjoint template key sets this has one element.
  std::vector<uint32_t> affected_templates;
  /// Accumulated benefit, filled by Algorithm 1 (lines 6-9).
  double benefit = 0.0;
};

/// The optimizer's output: the full set of plan units.
struct RepartitionPlan {
  std::vector<RepartitionOp> ops;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_OPERATION_H_
