// Repartition operations (§2.2): the optimizer emits three kinds — new
// replica creation, replica deletion, and objects migration (realised as
// insert-at-destination + delete-at-source inside one transaction).

#ifndef SOAP_REPARTITION_OPERATION_H_
#define SOAP_REPARTITION_OPERATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/storage/tuple.h"

namespace soap::repartition {

enum class RepartitionOpType : uint8_t {
  kObjectsMigration,
  kNewReplicaCreation,
  kReplicaDeletion,
};

/// One plan unit: moves/copies/deletes one tuple. `id` is the unit the
/// RepRate metric counts (1-based; 0 means "not a repartition op" in
/// transaction operations).
struct RepartitionOp {
  uint64_t id = 0;
  RepartitionOpType type = RepartitionOpType::kObjectsMigration;
  storage::TupleKey key = 0;
  uint32_t source_partition = 0;
  uint32_t target_partition = 0;
  /// Templates of normal transactions whose objects this op repartitions
  /// (Algorithm 1's "normal transaction ti accessing the objects modified
  /// by opk"). With disjoint template key sets this has one element.
  std::vector<uint32_t> affected_templates;
  /// Accumulated benefit, filled by Algorithm 1 (lines 6-9).
  double benefit = 0.0;
};

/// The optimizer's output: the full set of plan units. `epoch` numbers the
/// plan generation the ids were drawn in (1-based; 0 = unset/legacy).
struct RepartitionPlan {
  std::vector<RepartitionOp> ops;
  uint64_t epoch = 0;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }
};

/// Monotonic op-id source shared by every plan producer in a run. Op ids
/// feed the TM's applied-op idempotency tracking and the RepRate metric,
/// so ids from successive plan generations must never collide — each
/// generation opens a new epoch and keeps drawing from the same counter.
class OpIdAllocator {
 public:
  /// Next unique op id (1-based, never reused within a run).
  uint64_t Allocate() { return next_id_++; }

  /// Opens a new plan generation and returns its epoch number (1-based).
  uint64_t BeginEpoch() { return ++epochs_; }

  uint64_t next_id() const { return next_id_; }
  uint64_t epochs() const { return epochs_; }

 private:
  uint64_t next_id_ = 1;
  uint64_t epochs_ = 0;
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_OPERATION_H_
