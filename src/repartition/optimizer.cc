#include "src/repartition/optimizer.h"

#include <algorithm>
#include <unordered_map>

namespace soap::repartition {

uint32_t Optimizer::SpanOf(const workload::TxnTemplate& tmpl,
                           const router::RoutingTable& routing) const {
  uint32_t seen_mask = 0;  // partition counts are small (paper: 5)
  uint32_t span = 0;
  for (storage::TupleKey key : tmpl.keys) {
    Result<router::PartitionId> p = routing.GetPrimary(key);
    if (!p.ok()) continue;
    const uint32_t bit = 1u << (*p % 32);
    if ((seen_mask & bit) == 0) {
      seen_mask |= bit;
      ++span;
    }
  }
  return span;
}

double Optimizer::EstimateUtilization(
    const workload::WorkloadHistory& history,
    const router::RoutingTable& routing) const {
  double offered_work_per_s = 0.0;  // worker-microseconds per second
  for (uint32_t t = 0; t < catalog_->size(); ++t) {
    const double rate = history.FrequencyOf(t);
    if (rate <= 0.0) continue;
    const uint32_t span = SpanOf(catalog_->at(t), routing);
    const Duration cost = span > 1 ? cost_model_->DistributedTxnCost(span)
                                   : cost_model_->CollocatedTxnCost();
    offered_work_per_s += rate * static_cast<double>(cost);
  }
  const double capacity_per_s = static_cast<double>(total_workers_) * 1e6;
  return offered_work_per_s / capacity_per_s;
}

bool Optimizer::ShouldRepartition(const workload::WorkloadHistory& history,
                                  const router::RoutingTable& routing) const {
  return EstimateUtilization(history, routing) >
         config_.utilization_threshold;
}

Duration Optimizer::TemplateGain(uint32_t template_id,
                                 const router::RoutingTable& routing) const {
  const uint32_t span = SpanOf(catalog_->at(template_id), routing);
  if (span <= 1) return 0;
  return cost_model_->DistributedTxnCost(span) -
         cost_model_->CollocatedTxnCost();
}

RepartitionPlan Optimizer::DerivePlan(const router::RoutingTable& routing,
                                      OpIdAllocator* ids) const {
  RepartitionPlan plan;
  plan.epoch = ids->BeginEpoch();
  for (uint32_t t = 0; t < catalog_->size(); ++t) {
    const workload::TxnTemplate& tmpl = catalog_->at(t);
    // Current placement of the template's keys.
    std::unordered_map<uint32_t, uint32_t> count_by_partition;
    std::vector<std::pair<storage::TupleKey, uint32_t>> key_partitions;
    key_partitions.reserve(tmpl.keys.size());
    for (storage::TupleKey key : tmpl.keys) {
      Result<router::PartitionId> p = routing.GetPrimary(key);
      if (!p.ok()) continue;
      key_partitions.emplace_back(key, *p);
      count_by_partition[*p]++;
    }
    if (count_by_partition.size() <= 1) continue;  // already collocated

    // Majority partition wins (fewest tuples moved); ties break low.
    uint32_t target = 0;
    uint32_t best = 0;
    for (const auto& [partition, count] : count_by_partition) {
      if (count > best || (count == best && partition < target)) {
        best = count;
        target = partition;
      }
    }
    for (const auto& [key, partition] : key_partitions) {
      if (partition == target) continue;
      RepartitionOp op;
      op.id = ids->Allocate();
      op.kind = PlacementKind::kMigrate;
      op.key = key;
      op.source_partition = partition;
      op.target_partition = target;
      op.affected_templates.push_back(t);
      plan.ops.push_back(std::move(op));
    }
  }
  return plan;
}

}  // namespace soap::repartition
