// The repartitioner's optimizer (§2.2): watches the workload history,
// estimates near-future performance, and derives a cost-based repartition
// plan when the estimate falls below threshold. The plan collocates every
// template whose tuples currently span multiple partitions by migrating
// the minority keys to the majority partition (the Schism/Sword objective:
// minimise distributed transactions).

#ifndef SOAP_REPARTITION_OPTIMIZER_H_
#define SOAP_REPARTITION_OPTIMIZER_H_

#include <cstdint>

#include "src/repartition/cost_model.h"
#include "src/repartition/operation.h"
#include "src/router/routing_table.h"
#include "src/workload/history.h"
#include "src/workload/template_catalog.h"

namespace soap::repartition {

struct OptimizerConfig {
  /// Trigger a repartitioning when estimated utilisation (offered work /
  /// capacity) exceeds this.
  double utilization_threshold = 0.9;
};

class Optimizer {
 public:
  Optimizer(const workload::TemplateCatalog* catalog,
            const CostModel* cost_model, uint32_t total_workers,
            OptimizerConfig config = {})
      : catalog_(catalog),
        cost_model_(cost_model),
        total_workers_(total_workers),
        config_(config) {}

  /// Estimated utilisation of the cluster for the near future: the
  /// history's per-template rates priced by the cost model against the
  /// current placement.
  double EstimateUtilization(const workload::WorkloadHistory& history,
                             const router::RoutingTable& routing) const;

  /// True if the estimate warrants repartitioning.
  bool ShouldRepartition(const workload::WorkloadHistory& history,
                         const router::RoutingTable& routing) const;

  /// Derives the plan from the *actual* current placement: one migration
  /// unit per key that must move for its template to become collocated.
  /// Op ids are drawn from `ids`, which survives across calls so that
  /// successive plan generations never reuse an id (registry idempotency
  /// and applied-op tracking key on them).
  RepartitionPlan DerivePlan(const router::RoutingTable& routing,
                             OpIdAllocator* ids) const;

  /// Convenience overload backed by an optimizer-owned allocator: the
  /// first call yields ids 1..N, later calls continue monotonically.
  RepartitionPlan DerivePlan(const router::RoutingTable& routing) const {
    return DerivePlan(routing, &own_ids_);
  }

  /// Per-template gain the plan realises: Ci(O) - Ci(P) in node-work
  /// microseconds (0 when the template is already collocated).
  Duration TemplateGain(uint32_t template_id,
                        const router::RoutingTable& routing) const;

 private:
  /// Distinct partitions currently holding the template's keys.
  uint32_t SpanOf(const workload::TxnTemplate& tmpl,
                  const router::RoutingTable& routing) const;

  const workload::TemplateCatalog* catalog_;
  const CostModel* cost_model_;
  uint32_t total_workers_;
  OptimizerConfig config_;
  /// Backs the allocator-less DerivePlan overload; mutable because id
  /// allocation is bookkeeping, not optimizer state the plan depends on.
  mutable OpIdAllocator own_ids_;
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_OPTIMIZER_H_
