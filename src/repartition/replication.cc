#include "src/repartition/replication.h"

#include <algorithm>
#include <string>

namespace soap::repartition {

Result<RepartitionPlan> ReplicaPlanner::PlanReplication(
    const router::RoutingTable& routing,
    const std::vector<storage::TupleKey>& keys, uint32_t factor) const {
  if (factor < 1 || factor > num_partitions_) {
    return Status::InvalidArgument(
        "replication factor " + std::to_string(factor) +
        " out of range for " + std::to_string(num_partitions_) +
        " partitions");
  }
  // Copies already hosted per partition, to spread the new ones.
  std::vector<uint64_t> load(num_partitions_, 0);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    load[p] = routing.CountPrimaries(p);
  }

  RepartitionPlan plan;
  uint64_t next_id = 1;
  for (storage::TupleKey key : keys) {
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok()) return placement.status();
    uint32_t copies = static_cast<uint32_t>(placement->copy_count());
    while (copies < factor) {
      // Least-loaded partition without a copy of this key.
      int best = -1;
      for (uint32_t p = 0; p < num_partitions_; ++p) {
        if (placement->HasReplicaOn(p)) continue;
        if (best < 0 || load[p] < load[static_cast<uint32_t>(best)]) {
          best = static_cast<int>(p);
        }
      }
      if (best < 0) break;  // no eligible partition left
      RepartitionOp op;
      op.id = next_id++;
      op.kind = PlacementKind::kReplicaCreate;
      op.key = key;
      op.source_partition = placement->primary;
      op.target_partition = static_cast<uint32_t>(best);
      plan.ops.push_back(op);
      placement->replicas.push_back(static_cast<uint32_t>(best));
      load[static_cast<uint32_t>(best)]++;
      ++copies;
    }
  }
  return plan;
}

Result<RepartitionPlan> ReplicaPlanner::PlanDereplication(
    const router::RoutingTable& routing,
    const std::vector<storage::TupleKey>& keys, uint32_t factor) const {
  if (factor < 1) {
    return Status::InvalidArgument("cannot drop below one copy");
  }
  std::vector<uint64_t> load(num_partitions_, 0);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    load[p] = routing.CountPrimaries(p);
  }

  RepartitionPlan plan;
  uint64_t next_id = 1;
  for (storage::TupleKey key : keys) {
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok()) return placement.status();
    auto copies = static_cast<uint32_t>(placement->copy_count());
    // Drop from the most-loaded replica partitions first (never the
    // primary).
    std::vector<uint32_t> replicas = placement->replicas;
    std::sort(replicas.begin(), replicas.end(),
              [&](uint32_t a, uint32_t b) { return load[a] > load[b]; });
    for (uint32_t p : replicas) {
      if (copies <= factor) break;
      RepartitionOp op;
      op.id = next_id++;
      op.kind = PlacementKind::kReplicaDrop;
      op.key = key;
      op.source_partition = p;
      plan.ops.push_back(op);
      if (load[p] > 0) load[p]--;
      --copies;
    }
  }
  return plan;
}

}  // namespace soap::repartition
