// Replica planning. The paper assumes "tuple replicas are only made for
// the purpose of high availability", distributed over distinct partitions
// (§2.2), and gives the optimizer two dedicated operation types for them:
// new replica creation and replica deletion. This planner produces those
// plans: bring a key set up to a replication factor (placing copies on the
// least-loaded partitions) or trim it back down.

#ifndef SOAP_REPARTITION_REPLICATION_H_
#define SOAP_REPARTITION_REPLICATION_H_

#include <cstdint>
#include <vector>

#include "src/repartition/operation.h"
#include "src/router/routing_table.h"

namespace soap::repartition {

class ReplicaPlanner {
 public:
  explicit ReplicaPlanner(uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  /// Plan to raise every key in `keys` to `factor` copies. New replicas
  /// go to the partitions with the fewest copies overall (balance),
  /// never to a partition that already holds one (the paper's distinct-
  /// partition rule). Keys already at or above the factor are skipped.
  /// Fails if factor exceeds the partition count.
  Result<RepartitionPlan> PlanReplication(
      const router::RoutingTable& routing,
      const std::vector<storage::TupleKey>& keys, uint32_t factor) const;

  /// Plan to trim every key in `keys` down to `factor` copies, dropping
  /// replicas from the partitions with the most copies first. The primary
  /// is never dropped.
  Result<RepartitionPlan> PlanDereplication(
      const router::RoutingTable& routing,
      const std::vector<storage::TupleKey>& keys, uint32_t factor) const;

 private:
  uint32_t num_partitions_;
};

}  // namespace soap::repartition

#endif  // SOAP_REPARTITION_REPLICATION_H_
