#include "src/replica/replica_manager.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace soap::replica {

ReplicaManager::ReplicaManager(cluster::Cluster* cluster,
                               ReplicaManagerConfig config)
    : cluster_(cluster), config_(config) {}

void ReplicaManager::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_promotions_ = nullptr;
    m_replica_count_ = nullptr;
    m_replicated_keys_ = nullptr;
    return;
  }
  m_promotions_ = registry->GetCounter("soap_replica_promotions_total");
  m_replica_count_ = registry->GetGauge("soap_replica_count");
  m_replicated_keys_ = registry->GetGauge("soap_replicated_keys");
}

void ReplicaManager::PublishGauges() {
  if (m_replica_count_ == nullptr) return;
  const router::RoutingTable& routing = cluster_->routing_table();
  uint64_t replicas = 0;
  for (uint32_t p = 0; p < cluster_->num_nodes(); ++p) {
    replicas += routing.CountReplicas(p);
  }
  m_replica_count_->Set(static_cast<double>(replicas));
  m_replicated_keys_->Set(static_cast<double>(routing.replicated_key_count()));
}

void ReplicaManager::OnNodeCrash(uint32_t node) {
  // Nothing to fail over if no key is replicated; scheduling no event
  // keeps the replication-off run's event stream untouched.
  if (cluster_->routing_table().replicated_key_count() == 0) return;
  // Until the restart catch-up completes, the node's surviving replica
  // copies must be treated as stale (reads route around them).
  stale_.insert(node);
  cluster_->simulator()->After(config_.promotion_delay, [this, node]() {
    if (cluster_->node(node).down()) PromoteAwayFrom(node);
  });
}

void ReplicaManager::PromoteAwayFrom(uint32_t node) {
  router::RoutingTable& routing = cluster_->routing_table();
  uint64_t promoted = 0;
  // Ordered streaming sweep: the table stays unlocked while each key is
  // handled, so Promote below mutates it safely mid-iteration.
  routing.ForEachReplicated([&](storage::TupleKey key,
                                const router::Placement& placement) {
    if (placement.primary != node) return;
    router::PartitionId best = router::QueryRouter::kNoPreference;
    for (router::PartitionId r : placement.replicas) {
      if (!cluster_->node(r).down() &&
          (best == router::QueryRouter::kNoPreference || r < best)) {
        best = r;
      }
    }
    if (best == router::QueryRouter::kNoPreference) return;
    Status s = routing.Promote(key, best);
    if (s.ok()) {
      ++promoted;
      ++stats_.promotions;
      if (m_promotions_) m_promotions_->Increment();
      if (promotion_hook_) promotion_hook_(key, best);
    } else {
      SOAP_LOG(kWarn) << "promotion of key " << key << " failed: "
                      << s.ToString();
    }
  });
  if (promoted > 0) ++stats_.failovers;
  if (audit_ != nullptr) {
    obs::AuditRecord rec(audit_, "promotion",
                         cluster_->simulator()->Now());
    rec.U64("node", node).U64("promoted", promoted).U64(
        "failovers", stats_.failovers);
  }
}

void ReplicaManager::OnNodeRestart(uint32_t node) {
  if (cluster_->routing_table().replicated_key_count() == 0) {
    // No replicated keys anywhere: WAL replay already restored this node
    // exactly, so there is nothing to catch up (and nothing stale).
    stale_.erase(node);
    return;
  }
  // Size the sweep by what the node stores now; the refresh set is
  // recomputed when the job completes so it reflects any writes that
  // landed during the sweep.
  const size_t stored = cluster_->storage(node).tuple_count();
  const Duration service =
      config_.catchup_fixed +
      config_.catchup_per_tuple * static_cast<Duration>(stored);
  cluster_->node(node).RunJob(service, cluster::WorkCategory::kRepartition,
                              cluster::JobClass::kBulk,
                              [this, node]() { ApplyCatchup(node); });
}

void ReplicaManager::ApplyCatchup(uint32_t node) {
  const uint64_t refreshed_before = stats_.catchup_refreshed;
  const uint64_t dropped_before = stats_.catchup_dropped;
  router::RoutingTable& routing = cluster_->routing_table();
  storage::StorageEngine& store = cluster_->storage(node);
  // Orphan pass: copies the routing table no longer places on this node
  // (migration committed, or the replica was dropped, while it was down)
  // are unreachable — erase them.
  std::vector<storage::TupleKey> keys;
  keys.reserve(store.tuple_count());
  store.table().ForEach(
      [&keys](const storage::Tuple& t) { keys.push_back(t.key); });
  std::sort(keys.begin(), keys.end());
  for (storage::TupleKey key : keys) {
    Result<router::Placement> placement = routing.GetPlacement(key);
    if (!placement.ok() || !placement->HasReplicaOn(node)) {
      if (store.ApplyErase(0, key).ok()) ++stats_.catchup_dropped;
    }
  }
  // Refresh pass, straight off the routing table's ordered replica index:
  // surviving stale replicas take their content from the current primary.
  routing.ForEachReplicated([&](storage::TupleKey key,
                                const router::Placement& placement) {
    if (placement.primary == node) return;  // WAL replay restored it
    if (std::find(placement.replicas.begin(), placement.replicas.end(),
                  node) == placement.replicas.end()) {
      return;
    }
    if (!store.Contains(key)) return;  // never copied while it was down
    Result<storage::Tuple> fresh =
        cluster_->storage(placement.primary).Read(key);
    if (!fresh.ok()) return;
    if (store.ApplyUpdate(0, key, fresh->content).ok()) {
      ++stats_.catchup_refreshed;
    }
  });
  // Every surviving copy is refreshed (or dropped): the node's replicas
  // are coherent again and may serve reads.
  stale_.erase(node);
  if (audit_ != nullptr) {
    obs::AuditRecord rec(audit_, "catchup", cluster_->simulator()->Now());
    rec.U64("node", node)
        .U64("refreshed", stats_.catchup_refreshed - refreshed_before)
        .U64("dropped", stats_.catchup_dropped - dropped_before);
  }
}

}  // namespace soap::replica
