// Primary-copy replication manager: failover and catch-up on top of the
// routing table's placements. Normal-path replica maintenance (creation,
// deletion, write-through) is executed by the transaction layer as part of
// repartition transactions; this class owns the crash-time protocol:
//
//  * On a node crash, after a failure-detection delay, every key whose
//    primary lived on the node and that still has a live replica is
//    promoted: the lowest-numbered live replica becomes the primary and
//    the dead node is demoted to a (stale) replica entry, so its on-disk
//    copy stays routed and can be caught up later. Reads fail over to live
//    replicas immediately via the router's kNearestLive policy; the delay
//    models the failure detector's lease, during which reads are served by
//    replicas while writes to the dead primary abort.
//
//  * On a restart (after WAL replay restores the node's committed state),
//    the node's surviving copies are caught up: every tuple it stores for
//    a key whose current primary is elsewhere is refreshed from that
//    primary, and tuples the routing table no longer places here are
//    dropped. The sweep is charged to the node as repartition-class work.
//
// With replication disabled no key ever has a replica, both sweeps visit
// nothing, and no event is scheduled that consumes virtual time — which is
// what keeps replication-off runs byte-identical.

#ifndef SOAP_REPLICA_REPLICA_MANAGER_H_
#define SOAP_REPLICA_REPLICA_MANAGER_H_

#include <cstdint>
#include <functional>
#include <set>

#include "src/cluster/cluster.h"
#include "src/common/time.h"
#include "src/obs/audit_log.h"
#include "src/obs/metrics.h"

namespace soap::replica {

struct ReplicaManagerConfig {
  /// Failure-detection delay between a crash and the promotion sweep (the
  /// lease a real failure detector would wait out before failing over).
  Duration promotion_delay = Millis(500);
  /// Catch-up sweep cost on the restarted node: fixed startup plus a
  /// per-stored-tuple term.
  Duration catchup_fixed = Millis(50);
  Duration catchup_per_tuple = Millis(3);
};

struct ReplicaStats {
  uint64_t promotions = 0;        ///< keys whose primary was failed over
  uint64_t failovers = 0;         ///< crash sweeps that promoted >=1 key
  uint64_t catchup_refreshed = 0; ///< stale replica tuples refreshed
  uint64_t catchup_dropped = 0;   ///< orphaned tuples erased at restart
};

class ReplicaManager {
 public:
  explicit ReplicaManager(cluster::Cluster* cluster,
                          ReplicaManagerConfig config = {});

  /// Fault-layer hook: called when `node` crashes. Schedules the promotion
  /// sweep `promotion_delay` later; the sweep is skipped if the node came
  /// back in the meantime.
  void OnNodeCrash(uint32_t node);

  /// Fault-layer hook: called once WAL replay has restored the node's
  /// committed state. Schedules the catch-up sweep as a job on the node.
  void OnNodeRestart(uint32_t node);

  const ReplicaStats& stats() const { return stats_; }

  /// True while `node`'s surviving replica copies may lag the primary: from
  /// its crash until the restart catch-up sweep finishes. Reads must not be
  /// served by a stale replica (the router folds this into its down probe),
  /// and the consistency checker's coherence sweep skips such nodes.
  bool IsStale(uint32_t node) const { return stale_.count(node) != 0; }

  /// Invoked once per key successfully failed over (after the routing
  /// table's Promote), with the key and its new primary. Used by the
  /// consistency checker's promotion invariants.
  void set_promotion_hook(
      std::function<void(storage::TupleKey, uint32_t)> hook) {
    promotion_hook_ = std::move(hook);
  }

  /// Publishes promotion counters and replica-count gauges into
  /// `registry`; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Refreshes the replica-count gauges (the engine calls this at interval
  /// boundaries). No-op when metrics are unbound.
  void PublishGauges();

  /// Attaches the decision audit log: promotion sweeps and catch-up
  /// sweeps get one record each. nullptr detaches.
  void set_audit(obs::AuditLog* audit) { audit_ = audit; }

 private:
  void PromoteAwayFrom(uint32_t node);
  void ApplyCatchup(uint32_t node);

  cluster::Cluster* cluster_;
  ReplicaManagerConfig config_;
  ReplicaStats stats_;
  obs::Counter* m_promotions_ = nullptr;
  obs::Gauge* m_replica_count_ = nullptr;
  obs::Gauge* m_replicated_keys_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
  /// Nodes whose replica copies may lag (crashed, catch-up not yet done).
  std::set<uint32_t> stale_;
  std::function<void(storage::TupleKey, uint32_t)> promotion_hook_;
};

}  // namespace soap::replica

#endif  // SOAP_REPLICA_REPLICA_MANAGER_H_
