#include "src/router/query_parser.h"

#include <cctype>
#include <charconv>

namespace soap::router {

namespace {

/// Cursor over the SQL text with case-insensitive keyword matching.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Consumes `keyword` case-insensitively; false (no movement) otherwise.
  bool Keyword(std::string_view keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) return false;
    for (size_t i = 0; i < keyword.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(keyword[i]))) {
        return false;
      }
    }
    // Keywords must end at a word boundary.
    const size_t end = pos_ + keyword.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool Symbol(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes an identifier ([A-Za-z_][A-Za-z0-9_]*).
  bool Identifier(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      *out = std::string(text_.substr(start, pos_ - start));
      return true;
    }
    return false;
  }

  /// Consumes a (possibly signed) integer literal.
  bool Integer(int64_t* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    size_t digits_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return false;
    }
    auto [ptr, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, *out);
    (void)ptr;
    return ec == std::errc();
  }

  bool AtEnd() {
    SkipSpace();
    // A trailing semicolon is allowed.
    if (pos_ < text_.size() && text_[pos_] == ';') ++pos_;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseError(std::string_view sql, const char* what) {
  return Status::InvalidArgument(std::string("cannot parse query (") + what +
                                 "): " + std::string(sql));
}

}  // namespace

Result<ParsedQuery> QueryParser::Parse(std::string_view sql) {
  Cursor cur(sql);
  ParsedQuery q;

  if (cur.Keyword("select")) {
    q.kind = ParsedQuery::Kind::kSelect;
    std::string column;
    if (!cur.Identifier(&column)) return ParseError(sql, "select column");
    if (!cur.Keyword("from")) return ParseError(sql, "FROM");
    if (!cur.Identifier(&q.table)) return ParseError(sql, "table name");
  } else if (cur.Keyword("update")) {
    q.kind = ParsedQuery::Kind::kUpdate;
    if (!cur.Identifier(&q.table)) return ParseError(sql, "table name");
    if (!cur.Keyword("set")) return ParseError(sql, "SET");
    std::string column;
    if (!cur.Identifier(&column)) return ParseError(sql, "set column");
    if (!cur.Symbol('=')) return ParseError(sql, "= after set column");
    if (!cur.Integer(&q.value)) return ParseError(sql, "set value");
  } else {
    return ParseError(sql, "expected SELECT or UPDATE");
  }

  if (!cur.Keyword("where")) return ParseError(sql, "WHERE");
  std::string key_column;
  if (!cur.Identifier(&key_column)) return ParseError(sql, "key column");
  if (key_column != "key") {
    return ParseError(sql, "predicate must be on the partition attribute");
  }
  if (!cur.Symbol('=')) return ParseError(sql, "= in predicate");
  int64_t key = 0;
  if (!cur.Integer(&key) || key < 0) return ParseError(sql, "key literal");
  q.key = static_cast<storage::TupleKey>(key);
  if (!cur.AtEnd()) return ParseError(sql, "trailing input");
  return q;
}

std::string QueryParser::ToSql(const ParsedQuery& query) {
  if (query.kind == ParsedQuery::Kind::kSelect) {
    return "SELECT content FROM " + query.table +
           " WHERE key = " + std::to_string(query.key);
  }
  return "UPDATE " + query.table +
         " SET content = " + std::to_string(query.value) +
         " WHERE key = " + std::to_string(query.key);
}

}  // namespace soap::router
