// The paper's prototype includes "a query parser that reads a query and
// extracts the partition attributes of the target objects" (§4.1). This is
// that component: a parser for the single-tuple SQL subset the workload
// uses, producing the key the router needs.

#ifndef SOAP_ROUTER_QUERY_PARSER_H_
#define SOAP_ROUTER_QUERY_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/storage/tuple.h"

namespace soap::router {

/// A parsed single-tuple query.
struct ParsedQuery {
  enum class Kind { kSelect, kUpdate };
  Kind kind = Kind::kSelect;
  storage::TupleKey key = 0;   ///< the partition attribute
  int64_t value = 0;           ///< SET content = <value>, updates only
  std::string table;           ///< table name (informational)
};

/// Parses queries of the forms
///   SELECT content FROM <table> WHERE key = <k>
///   UPDATE <table> SET content = <v> WHERE key = <k>
/// Case-insensitive keywords, arbitrary whitespace. Anything else is an
/// InvalidArgument error.
class QueryParser {
 public:
  static Result<ParsedQuery> Parse(std::string_view sql);

  /// Renders a query back to SQL (round-trip helper for tests/examples).
  static std::string ToSql(const ParsedQuery& query);
};

}  // namespace soap::router

#endif  // SOAP_ROUTER_QUERY_PARSER_H_
