#include "src/router/query_router.h"

#include <algorithm>

namespace soap::router {

Result<PartitionId> QueryRouter::RouteRead(storage::TupleKey key) {
  ++routed_queries_;
  if (policy_ == ReplicaPolicy::kPrimaryOnly) {
    return table_->GetPrimary(key);
  }
  SOAP_ASSIGN_OR_RETURN(Placement placement, table_->GetPlacement(key));
  const size_t copies = placement.copy_count();
  const size_t pick = round_robin_++ % copies;
  if (pick == 0) return placement.primary;
  return placement.replicas[pick - 1];
}

Result<PartitionId> QueryRouter::RouteWrite(storage::TupleKey key) {
  ++routed_queries_;
  return table_->GetPrimary(key);
}

Result<std::vector<PartitionId>> QueryRouter::RouteTransaction(
    txn::Transaction* txn) {
  std::vector<PartitionId> partitions;
  for (txn::Operation& op : txn->ops) {
    PartitionId partition = 0;
    switch (op.kind) {
      case txn::OpKind::kRead: {
        SOAP_ASSIGN_OR_RETURN(partition, RouteRead(op.key));
        break;
      }
      case txn::OpKind::kWrite: {
        SOAP_ASSIGN_OR_RETURN(partition, RouteWrite(op.key));
        break;
      }
      default:
        // Repartition ops carry their own source/target from the plan.
        partition = op.source_partition;
        break;
    }
    op.source_partition = partition;
    if (std::find(partitions.begin(), partitions.end(), partition) ==
        partitions.end()) {
      partitions.push_back(partition);
    }
  }
  return partitions;
}

Result<PartitionId> QueryRouter::RouteSql(std::string_view sql) {
  SOAP_ASSIGN_OR_RETURN(ParsedQuery query, QueryParser::Parse(sql));
  if (query.kind == ParsedQuery::Kind::kSelect) {
    return RouteRead(query.key);
  }
  return RouteWrite(query.key);
}

}  // namespace soap::router
