#include "src/router/query_router.h"

#include <algorithm>

namespace soap::router {

Result<PartitionId> QueryRouter::RouteRead(storage::TupleKey key) {
  if (policy_ == ReplicaPolicy::kNearestLive) {
    return RouteReadNear(key, kNoPreference);
  }
  ++routed_queries_;
  ++reads_routed_;
  if (policy_ == ReplicaPolicy::kPrimaryOnly) {
    if (m_reads_primary_ != nullptr) m_reads_primary_->Increment();
    return table_->GetPrimary(key);
  }
  SOAP_ASSIGN_OR_RETURN(Placement placement, table_->GetPlacement(key));
  const size_t copies = placement.copy_count();
  const size_t pick = round_robin_++ % copies;
  if (pick == 0) {
    if (m_reads_primary_ != nullptr) m_reads_primary_->Increment();
    return placement.primary;
  }
  ++replica_reads_;
  if (m_reads_replica_ != nullptr) m_reads_replica_->Increment();
  return placement.replicas[pick - 1];
}

Result<std::pair<PartitionId, PartitionId>> QueryRouter::PickWithPrimary(
    storage::TupleKey key, PartitionId preferred) const {
  SOAP_ASSIGN_OR_RETURN(Placement placement, table_->GetPlacement(key));
  // Unreplicated keys route to the primary unconditionally — a down
  // primary must surface as an abort, exactly as without this subsystem.
  if (placement.replicas.empty()) {
    return std::make_pair(placement.primary, placement.primary);
  }
  auto down = [this](PartitionId p) {
    return down_probe_ && down_probe_(p);
  };
  if (preferred != kNoPreference && placement.HasReplicaOn(preferred) &&
      !down(preferred)) {
    return std::make_pair(preferred, placement.primary);
  }
  if (!down(placement.primary)) {
    return std::make_pair(placement.primary, placement.primary);
  }
  PartitionId best = kNoPreference;
  for (PartitionId r : placement.replicas) {
    if (!down(r) && (best == kNoPreference || r < best)) best = r;
  }
  if (best == kNoPreference) best = placement.primary;  // all copies down
  return std::make_pair(best, placement.primary);
}

Result<PartitionId> QueryRouter::PickReadPartition(storage::TupleKey key,
                                                   PartitionId preferred)
    const {
  SOAP_ASSIGN_OR_RETURN(auto picked, PickWithPrimary(key, preferred));
  return picked.first;
}

Result<PartitionId> QueryRouter::RouteReadNear(storage::TupleKey key,
                                               PartitionId preferred) {
  ++routed_queries_;
  ++reads_routed_;
  SOAP_ASSIGN_OR_RETURN(auto picked, PickWithPrimary(key, preferred));
  if (picked.first != picked.second) {
    ++replica_reads_;
    if (m_reads_replica_ != nullptr) m_reads_replica_->Increment();
  } else if (m_reads_primary_ != nullptr) {
    m_reads_primary_->Increment();
  }
  return picked.first;
}

void QueryRouter::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_reads_primary_ = nullptr;
    m_reads_replica_ = nullptr;
    return;
  }
  m_reads_primary_ = registry->GetCounter(
      "soap_replica_read_routed_total",
      obs::MetricsRegistry::Label("target", "primary"));
  m_reads_replica_ = registry->GetCounter(
      "soap_replica_read_routed_total",
      obs::MetricsRegistry::Label("target", "replica"));
}

Result<PartitionId> QueryRouter::RouteWrite(storage::TupleKey key) {
  ++routed_queries_;
  return table_->GetPrimary(key);
}

Result<std::vector<PartitionId>> QueryRouter::RouteTransaction(
    txn::Transaction* txn) {
  std::vector<PartitionId> partitions;
  for (txn::Operation& op : txn->ops) {
    PartitionId partition = 0;
    switch (op.kind) {
      case txn::OpKind::kRead: {
        SOAP_ASSIGN_OR_RETURN(partition, RouteRead(op.key));
        break;
      }
      case txn::OpKind::kWrite: {
        SOAP_ASSIGN_OR_RETURN(partition, RouteWrite(op.key));
        break;
      }
      default:
        // Repartition ops carry their own source/target from the plan.
        partition = op.source_partition;
        break;
    }
    op.source_partition = partition;
    if (std::find(partitions.begin(), partitions.end(), partition) ==
        partitions.end()) {
      partitions.push_back(partition);
    }
  }
  return partitions;
}

Result<PartitionId> QueryRouter::RouteSql(std::string_view sql) {
  SOAP_ASSIGN_OR_RETURN(ParsedQuery query, QueryParser::Parse(sql));
  if (query.kind == ParsedQuery::Kind::kSelect) {
    return RouteRead(query.key);
  }
  return RouteWrite(query.key);
}

}  // namespace soap::router
