// Query router (§2.1): resolves each query's target partition from the
// routing table, chooses among replicas, and annotates transaction
// operations with their source partitions. The repartitioner calls back
// into the router to update mappings when repartition transactions commit.

#ifndef SOAP_ROUTER_QUERY_ROUTER_H_
#define SOAP_ROUTER_QUERY_ROUTER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"
#include "src/router/query_parser.h"
#include "src/router/routing_table.h"
#include "src/txn/transaction.h"

namespace soap::router {

/// Replica-selection policy for reads.
enum class ReplicaPolicy {
  kPrimaryOnly,  ///< always read the primary copy
  kRoundRobin,   ///< rotate over primary + replicas
  kNearestLive,  ///< prefer a live copy collocated with the caller
};

class QueryRouter {
 public:
  /// Sentinel for RouteReadNear/PickReadPartition: no collocation hint.
  static constexpr PartitionId kNoPreference = UINT32_MAX;

  /// Liveness probe: returns true if the partition's node is down. Unset
  /// means "everything is up" (the replication-off fast path).
  using DownProbe = std::function<bool(PartitionId)>;

  explicit QueryRouter(RoutingTable* table,
                       ReplicaPolicy policy = ReplicaPolicy::kPrimaryOnly)
      : table_(table), policy_(policy) {}

  const RoutingTable& routing_table() const { return *table_; }
  RoutingTable* mutable_routing_table() { return table_; }

  void set_policy(ReplicaPolicy policy) { policy_ = policy; }
  ReplicaPolicy policy() const { return policy_; }
  void set_down_probe(DownProbe probe) { down_probe_ = std::move(probe); }

  /// Partition a read of `key` should visit (replica choice applied).
  Result<PartitionId> RouteRead(storage::TupleKey key);

  /// Replica-aware read routing with a collocation hint: prefer the copy
  /// on `preferred` (typically the transaction's coordinator), else the
  /// primary, else the lowest-numbered live replica. Only ever deviates
  /// from the primary when the key actually has replicas, so with
  /// replication off this is exactly RouteRead.
  Result<PartitionId> RouteReadNear(storage::TupleKey key,
                                    PartitionId preferred);

  /// Side-effect-free version of RouteReadNear (no counters); used for
  /// coordinator selection so the pick is not double-counted.
  Result<PartitionId> PickReadPartition(storage::TupleKey key,
                                        PartitionId preferred) const;

  /// Partition a write of `key` must visit (always the primary).
  Result<PartitionId> RouteWrite(storage::TupleKey key);

  /// Fills every operation's source_partition. Distinct partitions touched
  /// are returned (the transaction's participant set before piggybacking).
  Result<std::vector<PartitionId>> RouteTransaction(txn::Transaction* txn);

  /// Parses SQL and routes it in one step (the paper's parser+router path;
  /// exercised by examples and tests, the hot path pre-parses).
  Result<PartitionId> RouteSql(std::string_view sql);

  /// True if all ops of the transaction land on a single partition — the
  /// distinction the whole cost model rests on (Ci vs 2·Ci).
  static bool IsCollocated(const std::vector<PartitionId>& partitions) {
    return partitions.size() == 1;
  }

  uint64_t routed_queries() const { return routed_queries_; }
  /// Read routes issued (RouteRead + RouteReadNear).
  uint64_t reads_routed() const { return reads_routed_; }
  /// Reads served by a non-primary copy — the replica-read fraction's
  /// numerator. Zero whenever no key has replicas.
  uint64_t replica_reads() const { return replica_reads_; }

  /// Publishes soap_replica_read_routed_total{target="primary"|"replica"}
  /// counters; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  /// Returns {chosen partition, current primary} for a read of `key`.
  Result<std::pair<PartitionId, PartitionId>> PickWithPrimary(
      storage::TupleKey key, PartitionId preferred) const;

  RoutingTable* table_;
  ReplicaPolicy policy_;
  DownProbe down_probe_;
  uint64_t routed_queries_ = 0;
  uint64_t round_robin_ = 0;
  uint64_t reads_routed_ = 0;
  uint64_t replica_reads_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_reads_primary_ = nullptr;
  obs::Counter* m_reads_replica_ = nullptr;
};

}  // namespace soap::router

#endif  // SOAP_ROUTER_QUERY_ROUTER_H_
