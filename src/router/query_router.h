// Query router (§2.1): resolves each query's target partition from the
// routing table, chooses among replicas, and annotates transaction
// operations with their source partitions. The repartitioner calls back
// into the router to update mappings when repartition transactions commit.

#ifndef SOAP_ROUTER_QUERY_ROUTER_H_
#define SOAP_ROUTER_QUERY_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/router/query_parser.h"
#include "src/router/routing_table.h"
#include "src/txn/transaction.h"

namespace soap::router {

/// Replica-selection policy for reads.
enum class ReplicaPolicy {
  kPrimaryOnly,  ///< always read the primary copy
  kRoundRobin,   ///< rotate over primary + replicas
};

class QueryRouter {
 public:
  explicit QueryRouter(RoutingTable* table,
                       ReplicaPolicy policy = ReplicaPolicy::kPrimaryOnly)
      : table_(table), policy_(policy) {}

  const RoutingTable& routing_table() const { return *table_; }
  RoutingTable* mutable_routing_table() { return table_; }

  /// Partition a read of `key` should visit (replica choice applied).
  Result<PartitionId> RouteRead(storage::TupleKey key);

  /// Partition a write of `key` must visit (always the primary).
  Result<PartitionId> RouteWrite(storage::TupleKey key);

  /// Fills every operation's source_partition. Distinct partitions touched
  /// are returned (the transaction's participant set before piggybacking).
  Result<std::vector<PartitionId>> RouteTransaction(txn::Transaction* txn);

  /// Parses SQL and routes it in one step (the paper's parser+router path;
  /// exercised by examples and tests, the hot path pre-parses).
  Result<PartitionId> RouteSql(std::string_view sql);

  /// True if all ops of the transaction land on a single partition — the
  /// distinction the whole cost model rests on (Ci vs 2·Ci).
  static bool IsCollocated(const std::vector<PartitionId>& partitions) {
    return partitions.size() == 1;
  }

  uint64_t routed_queries() const { return routed_queries_; }

 private:
  RoutingTable* table_;
  ReplicaPolicy policy_;
  uint64_t routed_queries_ = 0;
  uint64_t round_robin_ = 0;
};

}  // namespace soap::router

#endif  // SOAP_ROUTER_QUERY_ROUTER_H_
