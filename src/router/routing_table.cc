#include "src/router/routing_table.h"

#include <algorithm>
#include <string>

namespace soap::router {

bool Placement::HasReplicaOn(PartitionId p) const {
  if (primary == p) return true;
  return std::find(replicas.begin(), replicas.end(), p) != replicas.end();
}

RoutingTable::RoutingTable(uint64_t num_keys)
    : num_keys_(num_keys), primary_(num_keys, kUnassigned) {}

Result<PartitionId> RoutingTable::GetPrimary(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  return primary_[key];
}

Result<Placement> RoutingTable::GetPlacement(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  Placement p;
  p.primary = primary_[key];
  auto it = replicas_.find(key);
  if (it != replicas_.end()) p.replicas = it->second;
  return p;
}

Status RoutingTable::SetPrimary(storage::TupleKey key,
                                PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_) {
    return Status::InvalidArgument("key " + std::to_string(key) +
                                   " out of range");
  }
  primary_[key] = partition;
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

Status RoutingTable::AddReplica(storage::TupleKey key,
                                PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (primary_[key] == partition) {
    return Status::AlreadyExists("primary already on partition " +
                                 std::to_string(partition));
  }
  auto& reps = replicas_[key];
  if (std::find(reps.begin(), reps.end(), partition) != reps.end()) {
    return Status::AlreadyExists("replica already on partition " +
                                 std::to_string(partition));
  }
  reps.push_back(partition);
  ++version_;
  return Status::OK();
}

Status RoutingTable::RemoveReplica(storage::TupleKey key,
                                   PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (primary_[key] == partition) {
    return Status::FailedPrecondition(
        "cannot remove the primary copy via RemoveReplica");
  }
  auto it = replicas_.find(key);
  if (it == replicas_.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(partition));
  }
  auto& reps = it->second;
  auto rep_it = std::find(reps.begin(), reps.end(), partition);
  if (rep_it == reps.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(partition));
  }
  reps.erase(rep_it);
  if (reps.empty()) replicas_.erase(it);
  ++version_;
  return Status::OK();
}

Status RoutingTable::Migrate(storage::TupleKey key, PartitionId from,
                             PartitionId to) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (primary_[key] != from) {
    return Status::FailedPrecondition(
        "primary of key " + std::to_string(key) + " is partition " +
        std::to_string(primary_[key]) + ", not " + std::to_string(from));
  }
  primary_[key] = to;
  auto it = replicas_.find(key);
  if (it != replicas_.end()) {
    auto& reps = it->second;
    reps.erase(std::remove(reps.begin(), reps.end(), to), reps.end());
    if (reps.empty()) replicas_.erase(it);
  }
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

Status RoutingTable::Promote(storage::TupleKey key, PartitionId new_primary) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_ || primary_[key] == kUnassigned) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (primary_[key] == new_primary) {
    return Status::AlreadyExists("partition " + std::to_string(new_primary) +
                                 " is already the primary");
  }
  auto it = replicas_.find(key);
  if (it == replicas_.end()) {
    return Status::NotFound("key " + std::to_string(key) + " has no replicas");
  }
  auto& reps = it->second;
  auto rep_it = std::find(reps.begin(), reps.end(), new_primary);
  if (rep_it == reps.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(new_primary));
  }
  // Swap in place: the demoted primary takes the promoted replica's slot,
  // keeping the replica list's order deterministic.
  *rep_it = primary_[key];
  primary_[key] = new_primary;
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

std::vector<storage::TupleKey> RoutingTable::ReplicatedKeys() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<storage::TupleKey> keys;
  keys.reserve(replicas_.size());
  for (const auto& [key, reps] : replicas_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

uint64_t RoutingTable::CountPrimaries(PartitionId partition) const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t count = 0;
  for (PartitionId p : primary_) {
    if (p == partition) ++count;
  }
  return count;
}

uint64_t RoutingTable::CountReplicas(PartitionId partition) const {
  std::lock_guard<std::mutex> guard(mu_);
  uint64_t count = 0;
  for (const auto& [key, reps] : replicas_) {
    count += static_cast<uint64_t>(
        std::count(reps.begin(), reps.end(), partition));
  }
  return count;
}

uint64_t RoutingTable::replicated_key_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return replicas_.size();
}

uint64_t RoutingTable::version() const {
  std::lock_guard<std::mutex> guard(mu_);
  return version_;
}

void RoutingTable::EnableEpochTracking() {
  std::lock_guard<std::mutex> guard(mu_);
  track_epochs_ = true;
}

uint64_t RoutingTable::PlacementEpoch(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = epochs_.find(key);
  return it == epochs_.end() ? 0 : it->second;
}

}  // namespace soap::router
