#include "src/router/routing_table.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace soap::router {

namespace {

/// Number of keys k in [0, x) with k % modulus == r.
uint64_t CongruentBelow(uint64_t x, uint32_t modulus, uint32_t r) {
  if (x <= r) return 0;
  return (x - r + modulus - 1) / modulus;
}

/// Number of keys k in [start, end) with k % modulus == r.
uint64_t CongruentInRange(uint64_t start, uint64_t end, uint32_t modulus,
                          uint32_t r) {
  return CongruentBelow(end, modulus, r) - CongruentBelow(start, modulus, r);
}

}  // namespace

bool Placement::HasReplicaOn(PartitionId p) const {
  if (primary == p) return true;
  return std::find(replicas.begin(), replicas.end(), p) != replicas.end();
}

RoutingTable::RoutingTable(uint64_t num_keys) : num_keys_(num_keys) {}

const RoutingTable::BaseRange* RoutingTable::FindBaseLocked(
    storage::TupleKey key, storage::TupleKey* start_out) const {
  auto it = base_.upper_bound(key);
  if (it == base_.begin()) return nullptr;
  --it;
  if (key >= it->second.end) return nullptr;
  *start_out = it->first;
  return &it->second;
}

std::optional<PartitionId> RoutingTable::BaseOwnerLocked(
    storage::TupleKey key) const {
  storage::TupleKey start = 0;
  const BaseRange* range = FindBaseLocked(key, &start);
  if (range == nullptr) return std::nullopt;
  return RangeOwner(*range, key);
}

std::optional<PartitionId> RoutingTable::PrimaryLocked(
    storage::TupleKey key) const {
  auto it = primary_exc_.find(key);
  if (it != primary_exc_.end()) return it->second;
  return BaseOwnerLocked(key);
}

void RoutingTable::BumpPrimaryCount(PartitionId partition, int64_t delta) {
  if (partition >= primaries_count_.size()) {
    primaries_count_.resize(static_cast<size_t>(partition) + 1, 0);
  }
  primaries_count_[partition] += static_cast<uint64_t>(delta);
}

void RoutingTable::BumpReplicaCount(PartitionId partition, int64_t delta) {
  if (partition >= replicas_count_.size()) {
    replicas_count_.resize(static_cast<size_t>(partition) + 1, 0);
  }
  replicas_count_[partition] += static_cast<uint64_t>(delta);
}

Status RoutingTable::AssignRange(storage::TupleKey start,
                                 storage::TupleKey end,
                                 PartitionId partition) {
  BaseRange entry;
  entry.end = end;
  entry.round_robin = false;
  entry.partition = partition;

  std::lock_guard<std::mutex> guard(mu_);
  if (start >= end || end > num_keys_) {
    return Status::InvalidArgument("range [" + std::to_string(start) + ", " +
                                   std::to_string(end) + ") out of bounds");
  }
  auto it = base_.upper_bound(start);
  if (it != base_.begin() && std::prev(it)->second.end > start) {
    return Status::FailedPrecondition("range overlaps an existing entry");
  }
  if (it != base_.end() && it->first < end) {
    return Status::FailedPrecondition("range overlaps an existing entry");
  }
  base_.emplace(start, entry);
  BumpPrimaryCount(partition, static_cast<int64_t>(end - start));
  // Existing point exceptions stay authoritative over the new base: back
  // the base owner out of the counters for each, absorbing exceptions
  // that now agree with it.
  for (auto exc = primary_exc_.begin(); exc != primary_exc_.end();) {
    if (exc->first < start || exc->first >= end) {
      ++exc;
      continue;
    }
    BumpPrimaryCount(partition, -1);
    if (exc->second == partition) {
      exc = primary_exc_.erase(exc);
    } else {
      ++exc;
    }
  }
  ++version_;
  return Status::OK();
}

Status RoutingTable::AssignRoundRobin(storage::TupleKey start,
                                      storage::TupleKey end,
                                      uint32_t num_partitions) {
  std::lock_guard<std::mutex> guard(mu_);
  if (num_partitions == 0) {
    return Status::InvalidArgument("round-robin needs >= 1 partition");
  }
  if (start >= end || end > num_keys_) {
    return Status::InvalidArgument("range [" + std::to_string(start) + ", " +
                                   std::to_string(end) + ") out of bounds");
  }
  auto it = base_.upper_bound(start);
  if (it != base_.begin() && std::prev(it)->second.end > start) {
    return Status::FailedPrecondition("range overlaps an existing entry");
  }
  if (it != base_.end() && it->first < end) {
    return Status::FailedPrecondition("range overlaps an existing entry");
  }
  BaseRange entry;
  entry.end = end;
  entry.round_robin = true;
  entry.modulus = num_partitions;
  base_.emplace(start, entry);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    BumpPrimaryCount(
        p, static_cast<int64_t>(CongruentInRange(start, end, num_partitions,
                                                 p)));
  }
  for (auto exc = primary_exc_.begin(); exc != primary_exc_.end();) {
    if (exc->first < start || exc->first >= end) {
      ++exc;
      continue;
    }
    const PartitionId owner =
        static_cast<PartitionId>(exc->first % num_partitions);
    BumpPrimaryCount(owner, -1);
    if (exc->second == owner) {
      exc = primary_exc_.erase(exc);
    } else {
      ++exc;
    }
  }
  ++version_;
  return Status::OK();
}

Result<PartitionId> RoutingTable::GetPrimary(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (key < num_keys_) {
    if (std::optional<PartitionId> p = PrimaryLocked(key); p.has_value()) {
      return *p;
    }
  }
  return Status::NotFound("key " + std::to_string(key) + " not routed");
}

Result<Placement> RoutingTable::GetPlacement(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::optional<PartitionId> primary;
  if (key < num_keys_) primary = PrimaryLocked(key);
  if (!primary.has_value()) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  Placement p;
  p.primary = *primary;
  auto it = replicas_.find(key);
  if (it != replicas_.end()) p.replicas = it->second;
  return p;
}

bool RoutingTable::IsPlacedOn(storage::TupleKey key,
                              PartitionId partition) const {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_) return false;
  const std::optional<PartitionId> primary = PrimaryLocked(key);
  if (!primary.has_value()) return false;
  if (*primary == partition) return true;
  auto it = replicas_.find(key);
  return it != replicas_.end() &&
         std::find(it->second.begin(), it->second.end(), partition) !=
             it->second.end();
}

void RoutingTable::CoalesceAroundLocked(storage::TupleKey start) {
  auto it = base_.find(start);
  if (it == base_.end() || it->second.round_robin) return;
  auto next = base_.find(it->second.end);
  if (next != base_.end() && !next->second.round_robin &&
      next->second.partition == it->second.partition) {
    it->second.end = next->second.end;
    base_.erase(next);
  }
  if (it != base_.begin()) {
    auto prev = std::prev(it);
    if (!prev->second.round_robin && prev->second.end == it->first &&
        prev->second.partition == it->second.partition) {
      prev->second.end = it->second.end;
      base_.erase(it);
    }
  }
}

bool RoutingTable::RestructureBlockLocked(storage::TupleKey start,
                                          storage::TupleKey key,
                                          PartitionId partition) {
  auto it = base_.find(start);
  const storage::TupleKey end = it->second.end;
  if (end - start == 1) {
    // Singleton range: retarget and merge into equal-owner neighbours.
    it->second.partition = partition;
    CoalesceAroundLocked(start);
    return true;
  }
  if (key == start) {
    // Split off the first key: extend an adjacent equal-owner block range
    // over it, or mint a singleton range.
    BaseRange rest = it->second;
    bool extended = false;
    if (it != base_.begin()) {
      auto prev = std::prev(it);
      if (!prev->second.round_robin && prev->second.end == start &&
          prev->second.partition == partition) {
        prev->second.end = start + 1;
        extended = true;
      }
    }
    base_.erase(it);
    base_.emplace(start + 1, rest);
    if (!extended) {
      base_.emplace(start, BaseRange{start + 1, false, partition, 0});
    }
    return true;
  }
  if (key == end - 1) {
    // Split off the last key, symmetrically.
    it->second.end = end - 1;
    auto next = base_.find(end);
    if (next != base_.end() && !next->second.round_robin &&
        next->second.partition == partition) {
      BaseRange moved = next->second;
      base_.erase(next);
      base_.emplace(end - 1, moved);
    } else {
      base_.emplace(end - 1, BaseRange{end, false, partition, 0});
    }
    return true;
  }
  return false;  // interior: overlay an exception instead
}

void RoutingTable::SetPrimaryLocked(storage::TupleKey key,
                                    PartitionId partition) {
  if (std::optional<PartitionId> old = PrimaryLocked(key); old.has_value()) {
    BumpPrimaryCount(*old, -1);
  }
  BumpPrimaryCount(partition, +1);

  storage::TupleKey start = 0;
  const BaseRange* range = FindBaseLocked(key, &start);
  auto exc = primary_exc_.find(key);
  if (range != nullptr) {
    if (RangeOwner(*range, key) == partition) {
      // The placement returned to its enclosing range: absorb.
      if (exc != primary_exc_.end()) primary_exc_.erase(exc);
      return;
    }
    if (exc == primary_exc_.end() && !range->round_robin &&
        RestructureBlockLocked(start, key, partition)) {
      return;  // boundary key: the range itself split/coalesced
    }
  }
  if (exc != primary_exc_.end()) {
    exc->second = partition;
  } else {
    primary_exc_.emplace(key, partition);
  }
}

Status RoutingTable::SetPrimary(storage::TupleKey key,
                                PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  if (key >= num_keys_) {
    return Status::InvalidArgument("key " + std::to_string(key) +
                                   " out of range");
  }
  SetPrimaryLocked(key, partition);
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

Status RoutingTable::AddReplica(storage::TupleKey key,
                                PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  std::optional<PartitionId> primary;
  if (key < num_keys_) primary = PrimaryLocked(key);
  if (!primary.has_value()) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (*primary == partition) {
    return Status::AlreadyExists("primary already on partition " +
                                 std::to_string(partition));
  }
  auto& reps = replicas_[key];
  if (std::find(reps.begin(), reps.end(), partition) != reps.end()) {
    return Status::AlreadyExists("replica already on partition " +
                                 std::to_string(partition));
  }
  reps.push_back(partition);
  BumpReplicaCount(partition, +1);
  ++version_;
  return Status::OK();
}

Status RoutingTable::RemoveReplica(storage::TupleKey key,
                                   PartitionId partition) {
  std::lock_guard<std::mutex> guard(mu_);
  std::optional<PartitionId> primary;
  if (key < num_keys_) primary = PrimaryLocked(key);
  if (!primary.has_value()) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (*primary == partition) {
    return Status::FailedPrecondition(
        "cannot remove the primary copy via RemoveReplica");
  }
  auto it = replicas_.find(key);
  if (it == replicas_.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(partition));
  }
  auto& reps = it->second;
  auto rep_it = std::find(reps.begin(), reps.end(), partition);
  if (rep_it == reps.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(partition));
  }
  reps.erase(rep_it);
  if (reps.empty()) replicas_.erase(it);
  BumpReplicaCount(partition, -1);
  ++version_;
  return Status::OK();
}

Status RoutingTable::Migrate(storage::TupleKey key, PartitionId from,
                             PartitionId to) {
  std::lock_guard<std::mutex> guard(mu_);
  std::optional<PartitionId> primary;
  if (key < num_keys_) primary = PrimaryLocked(key);
  if (!primary.has_value()) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (*primary != from) {
    return Status::FailedPrecondition(
        "primary of key " + std::to_string(key) + " is partition " +
        std::to_string(*primary) + ", not " + std::to_string(from));
  }
  SetPrimaryLocked(key, to);
  auto it = replicas_.find(key);
  if (it != replicas_.end()) {
    auto& reps = it->second;
    const auto removed = static_cast<int64_t>(
        std::count(reps.begin(), reps.end(), to));
    reps.erase(std::remove(reps.begin(), reps.end(), to), reps.end());
    if (removed != 0) BumpReplicaCount(to, -removed);
    if (reps.empty()) replicas_.erase(it);
  }
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

Status RoutingTable::Promote(storage::TupleKey key, PartitionId new_primary) {
  std::lock_guard<std::mutex> guard(mu_);
  std::optional<PartitionId> primary;
  if (key < num_keys_) primary = PrimaryLocked(key);
  if (!primary.has_value()) {
    return Status::NotFound("key " + std::to_string(key) + " not routed");
  }
  if (*primary == new_primary) {
    return Status::AlreadyExists("partition " + std::to_string(new_primary) +
                                 " is already the primary");
  }
  auto it = replicas_.find(key);
  if (it == replicas_.end()) {
    return Status::NotFound("key " + std::to_string(key) + " has no replicas");
  }
  auto& reps = it->second;
  auto rep_it = std::find(reps.begin(), reps.end(), new_primary);
  if (rep_it == reps.end()) {
    return Status::NotFound("no replica on partition " +
                            std::to_string(new_primary));
  }
  // Swap in place: the demoted primary takes the promoted replica's slot,
  // keeping the replica list's order deterministic.
  *rep_it = *primary;
  BumpReplicaCount(new_primary, -1);
  BumpReplicaCount(*primary, +1);
  SetPrimaryLocked(key, new_primary);
  BumpEpochLocked(key);
  ++version_;
  return Status::OK();
}

std::vector<storage::TupleKey> RoutingTable::ReplicatedKeys() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<storage::TupleKey> keys;
  keys.reserve(replicas_.size());
  for (const auto& [key, reps] : replicas_) keys.push_back(key);
  return keys;  // std::map: already sorted ascending
}

void RoutingTable::ForEachReplicated(
    const std::function<void(storage::TupleKey, const Placement&)>& fn)
    const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = replicas_.begin();
  while (it != replicas_.end()) {
    const storage::TupleKey key = it->first;
    Placement placement;
    std::optional<PartitionId> primary = PrimaryLocked(key);
    placement.primary = primary.value_or(0);
    placement.replicas = it->second;
    // Run the callback unlocked so it may mutate the table (promotion,
    // replica drops); resume past the visited key afterwards.
    lock.unlock();
    fn(key, placement);
    lock.lock();
    it = replicas_.upper_bound(key);
  }
}

uint64_t RoutingTable::RecountPrimariesLocked(PartitionId partition) const {
  uint64_t count = 0;
  for (const auto& [start, range] : base_) {
    if (range.round_robin) {
      if (partition < range.modulus) {
        count += CongruentInRange(start, range.end, range.modulus, partition);
      }
    } else if (range.partition == partition) {
      count += range.end - start;
    }
  }
  for (const auto& [key, p] : primary_exc_) {
    std::optional<PartitionId> owner = BaseOwnerLocked(key);
    if (owner.has_value() && *owner == partition) --count;
    if (p == partition) ++count;
  }
  return count;
}

uint64_t RoutingTable::RecountReplicasLocked(PartitionId partition) const {
  uint64_t count = 0;
  for (const auto& [key, reps] : replicas_) {
    count += static_cast<uint64_t>(
        std::count(reps.begin(), reps.end(), partition));
  }
  return count;
}

uint64_t RoutingTable::CountPrimaries(PartitionId partition) const {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t count =
      partition < primaries_count_.size() ? primaries_count_[partition] : 0;
  assert(count == RecountPrimariesLocked(partition) &&
         "primary counter diverged from the interval structure");
  return count;
}

uint64_t RoutingTable::CountReplicas(PartitionId partition) const {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t count =
      partition < replicas_count_.size() ? replicas_count_[partition] : 0;
  assert(count == RecountReplicasLocked(partition) &&
         "replica counter diverged from the replica index");
  return count;
}

uint64_t RoutingTable::replicated_key_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return replicas_.size();
}

size_t RoutingTable::range_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return base_.size();
}

size_t RoutingTable::exception_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return primary_exc_.size();
}

size_t RoutingTable::ApproxBytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  // Rule of thumb: tree nodes carry ~3 pointers + color, hash tables one
  // bucket pointer per slot plus the entry itself.
  constexpr size_t kTreeOverhead = 4 * sizeof(void*);
  size_t bytes = sizeof(*this);
  bytes += base_.size() *
           (sizeof(storage::TupleKey) + sizeof(BaseRange) + kTreeOverhead);
  bytes += primary_exc_.size() *
               (sizeof(storage::TupleKey) + sizeof(PartitionId) +
                2 * sizeof(void*)) +
           primary_exc_.bucket_count() * sizeof(void*);
  for (const auto& [key, reps] : replicas_) {
    bytes += sizeof(storage::TupleKey) + sizeof(reps) + kTreeOverhead +
             reps.capacity() * sizeof(PartitionId);
  }
  bytes += (primaries_count_.capacity() + replicas_count_.capacity()) *
           sizeof(uint64_t);
  bytes += epochs_.size() * (sizeof(storage::TupleKey) + sizeof(uint64_t) +
                             2 * sizeof(void*)) +
           epochs_.bucket_count() * sizeof(void*);
  return bytes;
}

uint64_t RoutingTable::version() const {
  std::lock_guard<std::mutex> guard(mu_);
  return version_;
}

void RoutingTable::EnableEpochTracking() {
  std::lock_guard<std::mutex> guard(mu_);
  track_epochs_ = true;
}

uint64_t RoutingTable::PlacementEpoch(storage::TupleKey key) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = epochs_.find(key);
  return it == epochs_.end() ? 0 : it->second;
}

}  // namespace soap::router
