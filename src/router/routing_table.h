// The query router's lookup table (§4.1): maps every tuple key to the
// partition(s) holding a replica of it. The repartitioner updates these
// mappings at repartition-transaction commit time, so routing switches
// atomically with the data movement.
//
// Representation (production-cardinality scale-out): instead of a dense
// per-key vector, the table stores sorted *interval entries* — block
// ranges (one owner) and round-robin ranges (owner = key % modulus, the
// bulk-load layout) — plus a point-exception overlay that only keys whose
// placement diverged from their enclosing range ever enter (migrated,
// replicated or promoted keys). A 4M-key table bulk-loads into a single
// round-robin range; memory is O(ranges + exceptions), not O(keyspace).
// Exceptions are absorbed back into the range when a key's placement
// returns to its range owner, and migrations at a block range's first or
// last key split/coalesce the range itself instead of leaving a point
// entry behind.

#ifndef SOAP_ROUTER_ROUTING_TABLE_H_
#define SOAP_ROUTER_ROUTING_TABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/tuple.h"

namespace soap::router {

using PartitionId = uint32_t;

/// Placement of one tuple: the primary copy plus high-availability
/// replicas. The paper assumes replicas live on distinct partitions.
struct Placement {
  PartitionId primary = 0;
  std::vector<PartitionId> replicas;  // excludes primary

  bool HasReplicaOn(PartitionId p) const;
  size_t copy_count() const { return 1 + replicas.size(); }
};

/// Key -> placement lookup table backed by interval entries with a
/// point-exception overlay (see file comment). Thread-safe.
class RoutingTable {
 public:
  /// Creates a table for keys [0, num_keys) all initially unassigned;
  /// callers either AssignRange/AssignRoundRobin the bulk-load layout or
  /// SetPrimary each key individually.
  explicit RoutingTable(uint64_t num_keys);

  uint64_t num_keys() const { return num_keys_; }

  /// Installs a block range: every key in [start, end) is primary on
  /// `partition`. The range must not overlap an existing one. Existing
  /// point exceptions inside it stay authoritative (those matching
  /// `partition` are absorbed).
  Status AssignRange(storage::TupleKey start, storage::TupleKey end,
                     PartitionId partition);

  /// Installs a round-robin range: every key in [start, end) is primary
  /// on `key % num_partitions` — the bulk-load layout, one entry for the
  /// whole table. Same overlap/exception rules as AssignRange.
  Status AssignRoundRobin(storage::TupleKey start, storage::TupleKey end,
                          uint32_t num_partitions);

  /// Primary partition of a key.
  Result<PartitionId> GetPrimary(storage::TupleKey key) const;

  /// Full placement (primary + replicas).
  Result<Placement> GetPlacement(storage::TupleKey key) const;

  /// Assigns/overwrites the primary partition (bulk load & migration).
  Status SetPrimary(storage::TupleKey key, PartitionId partition);

  /// Adds a replica on `partition`. Fails with AlreadyExists if one (or
  /// the primary) is already there — the paper requires replicas on
  /// distinct partitions.
  Status AddReplica(storage::TupleKey key, PartitionId partition);

  /// Drops the replica on `partition`. The primary cannot be dropped this
  /// way; migrate it first.
  Status RemoveReplica(storage::TupleKey key, PartitionId partition);

  /// Atomically retargets the primary from `from` to `to` (the routing
  /// flip at the commit of an objects-migration transaction). If `to`
  /// already held a replica of the key, that replica entry is absorbed
  /// into the primary slot so no partition appears twice in the placement.
  Status Migrate(storage::TupleKey key, PartitionId from, PartitionId to);

  /// Failover: swaps the primary with the replica on `new_primary` (which
  /// must exist). The old primary is demoted into the replica list — its
  /// copy of the data survives the crash on disk and is caught up on
  /// restart, so routing keeps pointing at it as a (stale) replica.
  Status Promote(storage::TupleKey key, PartitionId new_primary);

  /// Keys that currently have at least one non-primary replica, sorted
  /// ascending (deterministic iteration for failover sweeps).
  std::vector<storage::TupleKey> ReplicatedKeys() const;

  /// Visits every replicated key in ascending order with its current
  /// placement. The table is unlocked while `fn` runs, so the callback
  /// may mutate the table (promote, drop replicas); keys replicated
  /// *after* the visited key mid-sweep are still visited, and the
  /// placement passed is a consistent snapshot taken when its key is
  /// reached. Replaces materializing ReplicatedKeys() on failover and
  /// coherence sweeps.
  void ForEachReplicated(
      const std::function<void(storage::TupleKey, const Placement&)>& fn)
      const;

  /// True when `partition` holds a copy (primary or replica) of `key`.
  /// The consistency audit's per-tuple test: unlike GetPlacement it never
  /// materialises a Placement, so sweeping every stored row stays
  /// allocation-free.
  bool IsPlacedOn(storage::TupleKey key, PartitionId partition) const;

  /// Number of keys whose primary is `partition`. O(1): maintained
  /// counters, debug-asserted against a structural recount.
  uint64_t CountPrimaries(PartitionId partition) const;

  /// Number of non-primary replicas hosted on `partition`. O(1).
  uint64_t CountReplicas(PartitionId partition) const;

  /// Number of keys with at least one non-primary replica.
  uint64_t replicated_key_count() const;

  /// Interval entries currently in the base layer (ranges).
  size_t range_count() const;

  /// Keys currently carried as point exceptions over the base layer.
  size_t exception_count() const;

  /// Rough heap footprint of the table (entries + index overhead), for
  /// scaling reports. Not an allocator-exact byte count.
  size_t ApproxBytes() const;

  /// Routing-table version, bumped on every mutation (lets caches detect
  /// staleness).
  uint64_t version() const;

  /// Opt-in per-key placement epochs for the consistency checker: every
  /// primary-changing mutation (SetPrimary, Migrate, Promote) bumps the
  /// key's epoch, giving failover a monotonic freshness counter to assert
  /// on. Off by default — enabling it is the only way the table allocates
  /// the epoch map.
  void EnableEpochTracking();
  /// The key's placement epoch (0 until the first tracked mutation, or
  /// always when tracking is off).
  uint64_t PlacementEpoch(storage::TupleKey key) const;

 private:
  /// One base-layer interval entry, keyed in `base_` by its start key.
  struct BaseRange {
    storage::TupleKey end = 0;  ///< exclusive
    bool round_robin = false;
    PartitionId partition = 0;  ///< block owner (round_robin == false)
    uint32_t modulus = 0;       ///< round-robin divisor (round_robin)
  };

  void BumpEpochLocked(storage::TupleKey key) {
    if (track_epochs_) ++epochs_[key];
  }

  /// The base entry covering `key` (nullptr if uncovered); `start_out`
  /// receives its start key.
  const BaseRange* FindBaseLocked(storage::TupleKey key,
                                  storage::TupleKey* start_out) const;
  static PartitionId RangeOwner(const BaseRange& range,
                                storage::TupleKey key) {
    return range.round_robin
               ? static_cast<PartitionId>(key % range.modulus)
               : range.partition;
  }
  std::optional<PartitionId> BaseOwnerLocked(storage::TupleKey key) const;
  std::optional<PartitionId> PrimaryLocked(storage::TupleKey key) const;

  /// The primary-placement mutation core: updates the exception overlay
  /// (absorbing where possible), splits/coalesces block ranges at their
  /// boundary keys, and maintains the per-partition primary counters.
  void SetPrimaryLocked(storage::TupleKey key, PartitionId partition);
  /// Block-range restructuring for a boundary (or singleton) key; returns
  /// false when the key is interior and must become an exception.
  bool RestructureBlockLocked(storage::TupleKey start, storage::TupleKey key,
                              PartitionId partition);
  /// Merges `base_[start]` with equal-owner adjacent block ranges.
  void CoalesceAroundLocked(storage::TupleKey start);

  void BumpPrimaryCount(PartitionId partition, int64_t delta);
  void BumpReplicaCount(PartitionId partition, int64_t delta);

  /// Structural O(ranges + exceptions) recount backing the debug assert
  /// in CountPrimaries.
  uint64_t RecountPrimariesLocked(PartitionId partition) const;
  uint64_t RecountReplicasLocked(PartitionId partition) const;

  mutable std::mutex mu_;
  uint64_t num_keys_;
  /// Sorted, non-overlapping interval entries, keyed by start.
  std::map<storage::TupleKey, BaseRange> base_;
  /// Keys whose primary differs from their base range (or that have no
  /// base range at all). Hash-indexed: this is the hot lookup path.
  std::unordered_map<storage::TupleKey, PartitionId> primary_exc_;
  /// Replica lists, ordered by key so failover/coherence sweeps iterate
  /// deterministically without materializing + sorting.
  std::map<storage::TupleKey, std::vector<PartitionId>> replicas_;
  /// Per-partition maintained counters (grown on demand).
  std::vector<uint64_t> primaries_count_;
  std::vector<uint64_t> replicas_count_;
  uint64_t version_ = 0;
  bool track_epochs_ = false;
  std::unordered_map<storage::TupleKey, uint64_t> epochs_;
};

}  // namespace soap::router

#endif  // SOAP_ROUTER_ROUTING_TABLE_H_
