// The query router's lookup table (§4.1): maps every tuple key to the
// partition(s) holding a replica of it. The repartitioner updates these
// mappings at repartition-transaction commit time, so routing switches
// atomically with the data movement.

#ifndef SOAP_ROUTER_ROUTING_TABLE_H_
#define SOAP_ROUTER_ROUTING_TABLE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/tuple.h"

namespace soap::router {

using PartitionId = uint32_t;

/// Placement of one tuple: the primary copy plus high-availability
/// replicas. The paper assumes replicas live on distinct partitions.
struct Placement {
  PartitionId primary = 0;
  std::vector<PartitionId> replicas;  // excludes primary

  bool HasReplicaOn(PartitionId p) const;
  size_t copy_count() const { return 1 + replicas.size(); }
};

/// Key -> placement lookup table. Dense keys [0, n) use a flat vector for
/// the primary (the common case: exactly one copy); the sparse replica map
/// only holds keys that actually have extra replicas. Thread-safe.
class RoutingTable {
 public:
  /// Creates a table for keys [0, num_keys) all initially unassigned;
  /// callers must SetPrimary during bulk load.
  explicit RoutingTable(uint64_t num_keys);

  uint64_t num_keys() const { return num_keys_; }

  /// Primary partition of a key.
  Result<PartitionId> GetPrimary(storage::TupleKey key) const;

  /// Full placement (primary + replicas).
  Result<Placement> GetPlacement(storage::TupleKey key) const;

  /// Assigns/overwrites the primary partition (bulk load & migration).
  Status SetPrimary(storage::TupleKey key, PartitionId partition);

  /// Adds a replica on `partition`. Fails with AlreadyExists if one (or
  /// the primary) is already there — the paper requires replicas on
  /// distinct partitions.
  Status AddReplica(storage::TupleKey key, PartitionId partition);

  /// Drops the replica on `partition`. The primary cannot be dropped this
  /// way; migrate it first.
  Status RemoveReplica(storage::TupleKey key, PartitionId partition);

  /// Atomically retargets the primary from `from` to `to` (the routing
  /// flip at the commit of an objects-migration transaction). If `to`
  /// already held a replica of the key, that replica entry is absorbed
  /// into the primary slot so no partition appears twice in the placement.
  Status Migrate(storage::TupleKey key, PartitionId from, PartitionId to);

  /// Failover: swaps the primary with the replica on `new_primary` (which
  /// must exist). The old primary is demoted into the replica list — its
  /// copy of the data survives the crash on disk and is caught up on
  /// restart, so routing keeps pointing at it as a (stale) replica.
  Status Promote(storage::TupleKey key, PartitionId new_primary);

  /// Keys that currently have at least one non-primary replica, sorted
  /// ascending (deterministic iteration for failover sweeps).
  std::vector<storage::TupleKey> ReplicatedKeys() const;

  /// Number of keys whose primary is `partition` (O(n); for tests/reports).
  uint64_t CountPrimaries(PartitionId partition) const;

  /// Number of non-primary replicas hosted on `partition`.
  uint64_t CountReplicas(PartitionId partition) const;

  /// Number of keys with at least one non-primary replica.
  uint64_t replicated_key_count() const;

  /// Routing-table version, bumped on every mutation (lets caches detect
  /// staleness).
  uint64_t version() const;

  /// Opt-in per-key placement epochs for the consistency checker: every
  /// primary-changing mutation (SetPrimary, Migrate, Promote) bumps the
  /// key's epoch, giving failover a monotonic freshness counter to assert
  /// on. Off by default — enabling it is the only way the table allocates
  /// the epoch map.
  void EnableEpochTracking();
  /// The key's placement epoch (0 until the first tracked mutation, or
  /// always when tracking is off).
  uint64_t PlacementEpoch(storage::TupleKey key) const;

 private:
  static constexpr PartitionId kUnassigned = UINT32_MAX;

  void BumpEpochLocked(storage::TupleKey key) {
    if (track_epochs_) ++epochs_[key];
  }

  mutable std::mutex mu_;
  uint64_t num_keys_;
  std::vector<PartitionId> primary_;
  std::unordered_map<storage::TupleKey, std::vector<PartitionId>> replicas_;
  uint64_t version_ = 0;
  bool track_epochs_ = false;
  std::unordered_map<storage::TupleKey, uint64_t> epochs_;
};

}  // namespace soap::router

#endif  // SOAP_ROUTER_ROUTING_TABLE_H_
