// InlineFn: a move-only `void()` callable with a small-buffer store sized
// for the simulator's hot closures (lock grants, network deliveries, node
// job completions, timers). Unlike std::function it never copies its
// target, and targets up to kInlineCapacity bytes live inside the object —
// no heap allocation on the per-event path. Larger or over-aligned targets
// fall back to a single heap cell, so any callable still works.

#ifndef SOAP_SIM_INLINE_FN_H_
#define SOAP_SIM_INLINE_FN_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace soap::sim {

class InlineFn {
 public:
  /// Chosen to fit the engine's largest hot closure (a shared_ptr pair
  /// plus a few scalars) with the whole object still one cache line.
  static constexpr size_t kInlineCapacity = 48;

  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (FitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineFn");
    ops_->invoke(storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the target, leaving the wrapper empty.
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the target from `from`'s storage into `to`'s and
    /// destroys the original (the relocation a container move needs).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool FitsInline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* from, void* to) noexcept {
        *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
  };

  void MoveFrom(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace soap::sim

#endif  // SOAP_SIM_INLINE_FN_H_
