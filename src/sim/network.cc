#include "src/sim/network.h"

#include <memory>

namespace soap::sim {

Duration Network::NominalLatency(NodeId from, NodeId to,
                                 uint64_t bytes) const {
  if (from == to) return 0;
  return config_.base_latency +
         static_cast<Duration>(bytes) * config_.per_kb / 1024;
}

EventId Network::Send(NodeId from, NodeId to, uint64_t bytes,
                      InlineFn on_delivery, MsgClass cls) {
  return SendImpl(from, to, bytes, std::move(on_delivery), nullptr, cls);
}

EventId Network::SendWithFailure(NodeId from, NodeId to, uint64_t bytes,
                                 InlineFn on_delivery, InlineFn on_drop,
                                 MsgClass cls) {
  return SendImpl(from, to, bytes, std::move(on_delivery),
                  std::move(on_drop), cls);
}

EventId Network::SendImpl(NodeId from, NodeId to, uint64_t bytes,
                          InlineFn on_delivery, InlineFn on_drop,
                          MsgClass cls) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  Duration delay = NominalLatency(from, to, bytes);
  if (from != to && config_.jitter > 0) {
    delay += static_cast<Duration>(
        rng_.NextUint64(static_cast<uint64_t>(config_.jitter) + 1));
  }

  MsgFate fate;
  if (hooks_ != nullptr) fate = hooks_->OnMessage(from, to, cls);

  if (m_messages_) {
    m_messages_->Increment();
    m_bytes_->Increment(bytes);
    m_delivery_seconds_->Record(delay + fate.extra_delay);
  }

  switch (fate.action) {
    case MsgFate::Action::kDrop:
      // The sender notices the loss (if it cares) after the nominal
      // one-way latency — a stand-in for its local failure detector.
      if (on_drop) return sim_->After(delay, std::move(on_drop));
      return kInvalidEventId;
    case MsgFate::Action::kPark:
      hooks_->Park(to, std::move(on_delivery));
      return kInvalidEventId;
    case MsgFate::Action::kDeliver:
      break;
  }

  delay += fate.extra_delay;
  if (fate.duplicate) {
    // Deliver the copy one base latency later, as if resent immediately.
    // InlineFn is move-only, so the duplicate shares the original target
    // through a relay that survives both deliveries.
    auto shared = std::make_shared<InlineFn>(std::move(on_delivery));
    ScheduleDelivery(delay + config_.base_latency, bytes,
                     [shared]() { (*shared)(); });
    return ScheduleDelivery(delay, bytes, [shared]() { (*shared)(); });
  }
  return ScheduleDelivery(delay, bytes, std::move(on_delivery));
}

EventId Network::ScheduleDelivery(Duration delay, uint64_t bytes,
                                  InlineFn cb) {
  if (m_inflight_messages_ == nullptr) {
    return sim_->After(delay, std::move(cb));
  }
  m_inflight_messages_->Add(1.0);
  m_inflight_bytes_->Add(static_cast<double>(bytes));
  // The event id is only known after After() returns, but the wrapped
  // callback needs it to erase its bookkeeping entry — hence the cell.
  auto id_cell = std::make_shared<EventId>(kInvalidEventId);
  EventId id = sim_->After(
      delay, [this, bytes, id_cell, cb = std::move(cb)]() mutable {
        m_inflight_messages_->Add(-1.0);
        m_inflight_bytes_->Add(-static_cast<double>(bytes));
        inflight_by_event_.erase(*id_cell);
        cb();
      });
  *id_cell = id;
  inflight_by_event_.emplace(id, bytes);
  return id;
}

bool Network::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  if (m_inflight_messages_ != nullptr) {
    // With metrics bound, the in-flight map is the authority: an id it no
    // longer holds already delivered (the simulator's lazy Cancel cannot
    // tell and would otherwise leak the gauges it already decremented).
    auto it = inflight_by_event_.find(id);
    if (it == inflight_by_event_.end()) return false;
    if (!sim_->Cancel(id)) return false;
    m_inflight_messages_->Add(-1.0);
    m_inflight_bytes_->Add(-static_cast<double>(it->second));
    inflight_by_event_.erase(it);
    return true;
  }
  return sim_->Cancel(id);
}

void Network::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_messages_ = nullptr;
    m_bytes_ = nullptr;
    m_inflight_messages_ = nullptr;
    m_inflight_bytes_ = nullptr;
    m_delivery_seconds_ = nullptr;
    inflight_by_event_.clear();
    return;
  }
  m_messages_ = registry->GetCounter("soap_network_messages_total");
  m_bytes_ = registry->GetCounter("soap_network_bytes_total");
  m_inflight_messages_ = registry->GetGauge("soap_network_inflight_messages");
  m_inflight_bytes_ = registry->GetGauge("soap_network_inflight_bytes");
  m_delivery_seconds_ = registry->GetHistogram("soap_network_delivery_seconds");
}

}  // namespace soap::sim
