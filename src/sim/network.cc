#include "src/sim/network.h"

namespace soap::sim {

Duration Network::NominalLatency(NodeId from, NodeId to,
                                 uint64_t bytes) const {
  if (from == to) return 0;
  return config_.base_latency +
         static_cast<Duration>(bytes) * config_.per_kb / 1024;
}

EventId Network::Send(NodeId from, NodeId to, uint64_t bytes,
                      std::function<void()> on_delivery) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  Duration delay = NominalLatency(from, to, bytes);
  if (from != to && config_.jitter > 0) {
    delay += static_cast<Duration>(
        rng_.NextUint64(static_cast<uint64_t>(config_.jitter) + 1));
  }
  return sim_->After(delay, std::move(on_delivery));
}

}  // namespace soap::sim
