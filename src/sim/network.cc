#include "src/sim/network.h"

namespace soap::sim {

Duration Network::NominalLatency(NodeId from, NodeId to,
                                 uint64_t bytes) const {
  if (from == to) return 0;
  return config_.base_latency +
         static_cast<Duration>(bytes) * config_.per_kb / 1024;
}

EventId Network::Send(NodeId from, NodeId to, uint64_t bytes,
                      std::function<void()> on_delivery) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  Duration delay = NominalLatency(from, to, bytes);
  if (from != to && config_.jitter > 0) {
    delay += static_cast<Duration>(
        rng_.NextUint64(static_cast<uint64_t>(config_.jitter) + 1));
  }
  if (m_messages_) {
    m_messages_->Increment();
    m_bytes_->Increment(bytes);
    m_delivery_seconds_->Record(delay);
    m_inflight_messages_->Add(1.0);
    m_inflight_bytes_->Add(static_cast<double>(bytes));
    return sim_->After(
        delay, [this, bytes, cb = std::move(on_delivery)]() {
          m_inflight_messages_->Add(-1.0);
          m_inflight_bytes_->Add(-static_cast<double>(bytes));
          cb();
        });
  }
  return sim_->After(delay, std::move(on_delivery));
}

void Network::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_messages_ = nullptr;
    m_bytes_ = nullptr;
    m_inflight_messages_ = nullptr;
    m_inflight_bytes_ = nullptr;
    m_delivery_seconds_ = nullptr;
    return;
  }
  m_messages_ = registry->GetCounter("soap_network_messages_total");
  m_bytes_ = registry->GetCounter("soap_network_bytes_total");
  m_inflight_messages_ = registry->GetGauge("soap_network_inflight_messages");
  m_inflight_bytes_ = registry->GetGauge("soap_network_inflight_bytes");
  m_delivery_seconds_ = registry->GetHistogram("soap_network_delivery_seconds");
}

}  // namespace soap::sim
