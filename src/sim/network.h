// Network model between cluster nodes: fixed propagation latency plus a
// per-byte transfer cost and optional jitter. Message delivery is an event
// on the shared Simulator, so 2PC rounds and tuple migration really consume
// virtual time.
//
// Fault injection attaches through the NetworkFaultHooks interface below:
// the hook decides each message's fate (deliver / drop / park until the
// destination restarts) before the delivery event is scheduled. Without a
// hook the send path is untouched, so fault-free runs stay byte-identical.

#ifndef SOAP_SIM_NETWORK_H_
#define SOAP_SIM_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "src/common/random.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace soap::sim {

/// Identifies a node in the cluster (also used as partition id since the
/// paper maps 5 partitions onto 5 nodes one-to-one).
using NodeId = uint32_t;

struct NetworkConfig {
  /// One-way propagation delay between two distinct nodes. Intra-node
  /// messages are delivered with zero latency.
  Duration base_latency = Millis(1);
  /// Transfer time per kilobyte of payload.
  Duration per_kb = Micros(80);
  /// Uniform jitter in [0, jitter] added per message (0 disables).
  Duration jitter = Micros(200);
};

/// How fault injection classifies a message. Control messages (2PC votes,
/// decisions, acks) are idempotent at the receiver and may be parked for a
/// down node or duplicated; data messages (tuple migration) advance
/// transaction state exactly once, so they only ever deliver or fail fast.
enum class MsgClass : uint8_t {
  kData = 0,
  kControl = 1,
};

/// The injector's verdict for one message.
struct MsgFate {
  enum class Action : uint8_t {
    kDeliver,
    kDrop,
    /// Store-and-forward: hold the delivery until the destination restarts.
    kPark,
  };
  Action action = Action::kDeliver;
  Duration extra_delay = 0;
  /// Deliver a second copy (control messages only).
  bool duplicate = false;
};

/// Implemented by fault::FaultInjector. Lives here so soap_sim does not
/// depend on soap_fault.
class NetworkFaultHooks {
 public:
  virtual ~NetworkFaultHooks() = default;
  virtual MsgFate OnMessage(NodeId from, NodeId to, MsgClass cls) = 0;
  /// Takes ownership of a parked delivery; the injector replays it when
  /// node `to` restarts (or never, if it does not).
  virtual void Park(NodeId to, InlineFn deliver) = 0;
};

/// Delivers messages between nodes with simulated latency. Also counts
/// traffic for the experiment reports.
class Network {
 public:
  Network(Simulator* sim, NetworkConfig config, uint64_t seed = 42)
      : sim_(sim), config_(config), rng_(seed) {}

  /// Schedules `on_delivery` after the simulated transfer of `bytes` from
  /// `from` to `to`. Returns the event id (cancellable). Under fault
  /// injection a dropped or parked message simply never delivers — use
  /// SendWithFailure when the sender must learn about the loss.
  EventId Send(NodeId from, NodeId to, uint64_t bytes,
               InlineFn on_delivery, MsgClass cls = MsgClass::kControl);

  /// Like Send, but a message the injector drops (or addresses to a down
  /// node) invokes `on_drop` after the same simulated delay instead of
  /// silently vanishing, so the sender can abort instead of hanging.
  EventId SendWithFailure(NodeId from, NodeId to, uint64_t bytes,
                          InlineFn on_delivery, InlineFn on_drop,
                          MsgClass cls = MsgClass::kData);

  /// Cancels an in-flight delivery. Returns false if it already fired or
  /// was never tracked. Keeps the in-flight gauges balanced when metrics
  /// are bound (a plain Simulator::Cancel would leak them).
  bool Cancel(EventId id);

  /// The latency such a message would experience (without jitter); used by
  /// cost models.
  Duration NominalLatency(NodeId from, NodeId to, uint64_t bytes) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Attaches (or detaches, with nullptr) the fault injector.
  void set_fault_hooks(NetworkFaultHooks* hooks) { hooks_ = hooks; }

  /// Publishes traffic counters and in-flight gauges into `registry`
  /// (nullptr detaches). In-flight tracking wraps the delivery callback,
  /// but only while bound — unbound sends are untouched.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  EventId SendImpl(NodeId from, NodeId to, uint64_t bytes,
                   InlineFn on_delivery, InlineFn on_drop, MsgClass cls);
  /// Schedules a delivery, wrapping it for gauge accounting when metrics
  /// are bound.
  EventId ScheduleDelivery(Duration delay, uint64_t bytes, InlineFn cb);

  Simulator* sim_;
  NetworkConfig config_;
  Rng rng_;
  NetworkFaultHooks* hooks_ = nullptr;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Gauge* m_inflight_messages_ = nullptr;
  obs::Gauge* m_inflight_bytes_ = nullptr;
  obs::LatencyHistogram* m_delivery_seconds_ = nullptr;
  // Outstanding metered deliveries, so Cancel can release their gauge
  // contribution. Populated only while metrics are bound.
  std::unordered_map<EventId, uint64_t> inflight_by_event_;
};

}  // namespace soap::sim

#endif  // SOAP_SIM_NETWORK_H_
