// Network model between cluster nodes: fixed propagation latency plus a
// per-byte transfer cost and optional jitter. Message delivery is an event
// on the shared Simulator, so 2PC rounds and tuple migration really consume
// virtual time.

#ifndef SOAP_SIM_NETWORK_H_
#define SOAP_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/common/random.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace soap::sim {

/// Identifies a node in the cluster (also used as partition id since the
/// paper maps 5 partitions onto 5 nodes one-to-one).
using NodeId = uint32_t;

struct NetworkConfig {
  /// One-way propagation delay between two distinct nodes. Intra-node
  /// messages are delivered with zero latency.
  Duration base_latency = Millis(1);
  /// Transfer time per kilobyte of payload.
  Duration per_kb = Micros(80);
  /// Uniform jitter in [0, jitter] added per message (0 disables).
  Duration jitter = Micros(200);
};

/// Delivers messages between nodes with simulated latency. Also counts
/// traffic for the experiment reports.
class Network {
 public:
  Network(Simulator* sim, NetworkConfig config, uint64_t seed = 42)
      : sim_(sim), config_(config), rng_(seed) {}

  /// Schedules `on_delivery` after the simulated transfer of `bytes` from
  /// `from` to `to`. Returns the event id (cancellable).
  EventId Send(NodeId from, NodeId to, uint64_t bytes,
               std::function<void()> on_delivery);

  /// The latency such a message would experience (without jitter); used by
  /// cost models.
  Duration NominalLatency(NodeId from, NodeId to, uint64_t bytes) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Publishes traffic counters and in-flight gauges into `registry`
  /// (nullptr detaches). In-flight tracking wraps the delivery callback,
  /// but only while bound — unbound sends are untouched.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  Simulator* sim_;
  NetworkConfig config_;
  Rng rng_;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Gauge* m_inflight_messages_ = nullptr;
  obs::Gauge* m_inflight_bytes_ = nullptr;
  obs::LatencyHistogram* m_delivery_seconds_ = nullptr;
};

}  // namespace soap::sim

#endif  // SOAP_SIM_NETWORK_H_
