#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace soap::sim {

uint32_t Simulator::AcquireSlot() {
  if (free_head_ != kNoFreeSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
    --free_count_;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  s.seq = 0;  // invalidates the outstanding EventId and any stale heap entry
  s.next_free = free_head_;
  free_head_ = slot;
  ++free_count_;
}

void Simulator::HeapPush(HeapEntry entry) {
  size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (entry >= heap_[parent]) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

Simulator::HeapEntry Simulator::HeapPopMin() {
  const HeapEntry min = heap_[0];
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return min;
  // Sift `last` down from the root. The common full-group case selects the
  // least of four children with three wide compares that lower to cmovs.
  const size_t n = heap_.size();
  size_t i = 0;
  for (;;) {
    const size_t fc = 4 * i + 1;
    if (fc + 4 <= n) {
      const size_t a = heap_[fc + 1] < heap_[fc] ? fc + 1 : fc;
      const size_t b = heap_[fc + 3] < heap_[fc + 2] ? fc + 3 : fc + 2;
      const size_t best = heap_[b] < heap_[a] ? b : a;
      if (last <= heap_[best]) break;
      heap_[i] = heap_[best];
      i = best;
    } else {
      if (fc >= n) break;
      size_t best = fc;
      for (size_t c = fc + 1; c < n; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (last <= heap_[best]) break;
      heap_[i] = heap_[best];
      i = best;
    }
  }
  heap_[i] = last;
  return min;
}

EventId Simulator::At(SimTime when, InlineFn fn) {
  assert(when >= now_);
  const uint32_t slot = AcquireSlot();
  assert(slot <= kSlotMask && "event slab exhausted the 24-bit slot space");
  assert(next_seq_ >> (64 - kSlotBits) == 0 && "seq overflow");
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.seq = next_seq_;
  const EventId id = MakeId(slot, next_seq_);
  HeapPush(MakeEntry(when, id));
  ++next_seq_;
  return id;
}

EventId Simulator::After(Duration delay, InlineFn fn) {
  assert(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  const uint64_t seq = id >> kSlotBits;
  const uint64_t slot = id & kSlotMask;
  if (seq == 0 || slot >= slots_.size()) return false;
  if (slots_[slot].seq != seq) return false;  // already fired or cancelled
  ReleaseSlot(static_cast<uint32_t>(slot));
  return true;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    const HeapEntry top = HeapPopMin();
    const EventId id = EntryId(top);
    const uint32_t slot_idx = static_cast<uint32_t>(id & kSlotMask);
    Slot& slot = slots_[slot_idx];
    if (slot.seq != id >> kSlotBits) continue;  // cancelled: stale entry
    assert(EntryWhen(top) >= now_);
    now_ = EntryWhen(top);
    ++events_executed_;
    InlineFn fn = std::move(slot.fn);
    ReleaseSlot(slot_idx);
    fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!heap_.empty()) {
    if (EntryWhen(heap_[0]) > deadline) break;
    if (!Step()) break;
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace soap::sim
