#include "src/sim/simulator.h"

#include <cassert>

namespace soap::sim {

EventId Simulator::At(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  const EventId id = next_seq_;
  queue_.push(Event{when, next_seq_, id, std::move(fn)});
  ++next_seq_;
  return id;
}

EventId Simulator::After(Duration delay, std::function<void()> fn) {
  assert(delay >= 0);
  return At(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_seq_) return false;
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.when >= now_);
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    if (!Step()) break;
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace soap::sim
