// Deterministic discrete-event simulator. A single virtual clock drives the
// whole cluster: node workers, lock waits, network messages and interval
// ticks are all events. Ties at the same timestamp are broken by schedule
// order, so a run is a pure function of (config, seed).

#ifndef SOAP_SIM_SIMULATOR_H_
#define SOAP_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace soap::sim {

/// Opaque handle for a scheduled event; used to cancel timers (e.g. a lock
/// wait timeout that is beaten by a grant).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// The event loop. Not thread-safe: the simulation is single-threaded by
/// design so results are reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (must be >= Now()).
  EventId At(SimTime when, std::function<void()> fn);

  /// Schedules `fn` after `delay` relative to Now().
  EventId After(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was cancelled (lazy deletion: the slot is skipped when popped).
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= `deadline`; afterwards Now() == deadline
  /// (even if the queue drained earlier).
  void RunUntil(SimTime deadline);

  /// Executes the single next event. Returns false when the queue is empty.
  bool Step();

  /// Number of events executed so far (for tests and sanity checks).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending (including cancelled slots).
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // insertion order: stable tie-break
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Cancelled event ids awaiting lazy removal when their slot is popped.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace soap::sim

#endif  // SOAP_SIM_SIMULATOR_H_
