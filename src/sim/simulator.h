// Deterministic discrete-event simulator. A single virtual clock drives the
// whole cluster: node workers, lock waits, network messages and interval
// ticks are all events. Ties at the same timestamp are broken by schedule
// order, so a run is a pure function of (config, seed).
//
// Hot-path design (this is the inner loop of every experiment):
//   - callbacks are sim::InlineFn (small-buffer, move-only) — the common
//     lock-grant / delivery / timer closures never touch the heap;
//   - events live in a slab of generation-tagged slots recycled through a
//     free list, so scheduling allocates nothing in steady state;
//   - the ready queue is an index-based 4-ary min-heap with move-out pops
//     (no closure copies, better cache locality than a binary heap);
//   - Cancel is O(1): it bumps the slot's generation, and the stale heap
//     entry is skipped when popped. Cancelling an already-fired or already
//     cancelled event returns false and leaks nothing.

#ifndef SOAP_SIM_SIMULATOR_H_
#define SOAP_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"
#include "src/sim/inline_fn.h"

namespace soap::sim {

/// Opaque handle for a scheduled event; used to cancel timers (e.g. a lock
/// wait timeout that is beaten by a grant). Encodes (seq, slot) so stale
/// handles are detected in O(1): seq is unique per scheduled event, so a
/// slot whose current seq differs has already fired or been cancelled.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// The event loop. Not thread-safe: one simulation is single-threaded by
/// design so results are reproducible; independent simulators on separate
/// threads (engine::ParallelRunner) share nothing.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (must be >= Now()).
  EventId At(SimTime when, InlineFn fn);

  /// Schedules `fn` after `delay` relative to Now().
  EventId After(Duration delay, InlineFn fn);

  /// Cancels a pending event. Returns false if the event already fired or
  /// was cancelled. O(1): the slot is released now; its heap entry is
  /// skipped when popped.
  bool Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= `deadline`; afterwards Now() == deadline
  /// (even if the queue drained earlier).
  void RunUntil(SimTime deadline);

  /// Executes the single next event. Returns false when the queue is empty.
  bool Step();

  /// Number of events executed so far (for tests and sanity checks).
  uint64_t events_executed() const { return events_executed_; }
  /// Number of events currently pending (including cancelled slots awaiting
  /// lazy removal from the heap).
  size_t pending() const { return heap_.size(); }
  /// Event slots currently holding a live (schedulable) callback; used by
  /// tests to prove cancels and fires release their slot.
  size_t live_slots() const { return slots_.size() - free_count_; }

 private:
  /// Id layout: seq (insertion order, unique, never 0) in the high 40 bits,
  /// slot index in the low 24. seq-major means comparing ids of two entries
  /// at the same timestamp compares schedule order — the heap tie-break.
  static constexpr unsigned kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

  /// One heap entry per scheduled event: a single 128-bit key
  /// (when << 64 | id). Virtual time is non-negative, so unsigned
  /// comparison orders by (when, seq) in ONE wide compare — the sift loops
  /// become branch-predictable cmov chains instead of two-field branches.
  /// (unsigned __int128 is a GCC/Clang extension; this repo builds with
  /// either.) A stale entry (its slot's seq no longer matches) means the
  /// event was cancelled; it is skipped on pop.
  using HeapEntry = unsigned __int128;

  static HeapEntry MakeEntry(SimTime when, EventId id) {
    return static_cast<HeapEntry>(static_cast<uint64_t>(when)) << 64 | id;
  }
  static SimTime EntryWhen(HeapEntry e) {
    return static_cast<SimTime>(static_cast<uint64_t>(e >> 64));
  }
  static EventId EntryId(HeapEntry e) { return static_cast<EventId>(e); }

  struct Slot {
    InlineFn fn;
    uint64_t seq = 0;  // seq of the occupying event; 0 when free/fired
    uint32_t next_free = kNoFreeSlot;
  };
  static constexpr uint32_t kNoFreeSlot = 0xffffffffu;

  static EventId MakeId(uint32_t slot, uint64_t seq) {
    return seq << kSlotBits | slot;
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);
  void HeapPush(HeapEntry entry);
  /// Removes and returns the minimum entry. Heap must be non-empty.
  HeapEntry HeapPopMin();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  /// 4-ary min-heap ordered by (when, seq); children of i start at 4i+1.
  std::vector<HeapEntry> heap_;
  /// Slab of event slots; indices are stable, storage is recycled.
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
  uint32_t free_count_ = 0;
};

}  // namespace soap::sim

#endif  // SOAP_SIM_SIMULATOR_H_
