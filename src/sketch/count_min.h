// Count-min sketch (Cormode & Muthukrishnan): fixed-size frequency
// estimates for the planner's heat monitoring at production cardinality.
// Deterministic — row seeds derive from a caller-supplied seed via
// splitmix64, no wall clock, no platform-dependent hashing — so runs stay
// byte-identical across machines and thread counts.

#ifndef SOAP_SKETCH_COUNT_MIN_H_
#define SOAP_SKETCH_COUNT_MIN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace soap::sketch {

/// One splitmix64 step: the standard 64-bit finalizer-quality mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Conservative frequency over-estimator: Estimate(k) >= true count, with
/// error bounded by (total inserted) * e / width per row, taking the min
/// over `depth` independent rows. Decays by halving, pairing with the
/// co-access graph's right-shift window.
class CountMin {
 public:
  /// `width_log2` buckets-per-row exponent (row width = 2^width_log2),
  /// `depth` independent rows, `seed` fixes the row hash functions.
  explicit CountMin(uint32_t width_log2 = 16, uint32_t depth = 4,
                    uint64_t seed = 0x5eed5eedULL)
      : width_mask_((1ULL << width_log2) - 1), depth_(depth) {
    rows_.resize(depth_,
                 std::vector<uint64_t>(size_t{1} << width_log2, 0));
    row_seed_.reserve(depth_);
    uint64_t s = seed;
    for (uint32_t d = 0; d < depth_; ++d) row_seed_.push_back(s = Mix64(s));
  }

  void Add(uint64_t key, uint64_t count = 1) {
    for (uint32_t d = 0; d < depth_; ++d) {
      rows_[d][Slot(d, key)] += count;
    }
  }

  uint64_t Estimate(uint64_t key) const {
    uint64_t est = UINT64_MAX;
    for (uint32_t d = 0; d < depth_; ++d) {
      est = std::min(est, rows_[d][Slot(d, key)]);
    }
    return est;
  }

  /// Ages the window: every counter >>= shift (the graph's decay step).
  void Decay(uint32_t shift) {
    for (auto& row : rows_) {
      for (uint64_t& c : row) c >>= shift;
    }
  }

  size_t ApproxBytes() const {
    return sizeof(*this) + depth_ * (width_mask_ + 1) * sizeof(uint64_t);
  }

 private:
  size_t Slot(uint32_t d, uint64_t key) const {
    return static_cast<size_t>(Mix64(key ^ row_seed_[d]) & width_mask_);
  }

  uint64_t width_mask_;
  uint32_t depth_;
  std::vector<std::vector<uint64_t>> rows_;
  std::vector<uint64_t> row_seed_;
};

}  // namespace soap::sketch

#endif  // SOAP_SKETCH_COUNT_MIN_H_
