// Space-saving heavy hitters (Metwally, Agrawal & El Abbadi): tracks the
// top-k hottest tuple keys in O(k) memory — the E-Store-style hot-tuple
// identification that decides which keys get exact vertices in the
// co-access graph at production cardinality. Fully deterministic: eviction
// picks the (count, key)-least entry from an ordered index, never a hash
// iteration order.

#ifndef SOAP_SKETCH_SPACE_SAVING_H_
#define SOAP_SKETCH_SPACE_SAVING_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace soap::sketch {

class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity) : capacity_(capacity) {}

  /// Counts one (or `count`) occurrences of `key`. At capacity the
  /// (count, key)-least tracked entry is evicted and `key` inherits its
  /// count as over-estimation error — the classic space-saving step.
  void Add(uint64_t key, uint64_t count = 1) {
    if (capacity_ == 0) return;
    auto it = items_.find(key);
    if (it != items_.end()) {
      order_.erase({it->second.count, key});
      it->second.count += count;
      order_.insert({it->second.count, key});
      return;
    }
    if (items_.size() < capacity_) {
      items_.emplace(key, Item{count, 0});
      order_.insert({count, key});
      return;
    }
    const auto [min_count, min_key] = *order_.begin();
    order_.erase(order_.begin());
    items_.erase(min_key);
    items_.emplace(key, Item{min_count + count, min_count});
    order_.insert({min_count + count, key});
  }

  /// True while `key` occupies one of the k tracked slots ("hot").
  bool Contains(uint64_t key) const { return items_.count(key) > 0; }

  /// Estimated count (an over-estimate by at most the entry's error);
  /// 0 for untracked keys.
  uint64_t Estimate(uint64_t key) const {
    auto it = items_.find(key);
    return it == items_.end() ? 0 : it->second.count;
  }

  /// Guaranteed (error-free) count: count minus inherited error, 0 for
  /// untracked keys. A freshly adopted key has guarantee 1, so consumers
  /// can tell real heavy hitters from churn through the bottom slot.
  uint64_t Guaranteed(uint64_t key) const {
    auto it = items_.find(key);
    return it == items_.end() ? 0 : it->second.count - it->second.error;
  }

  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;
    uint64_t error = 0;  ///< inherited over-estimation at adoption time
  };

  /// Tracked entries, hottest first (ties by ascending key).
  std::vector<Entry> TopK() const {
    std::vector<Entry> out;
    out.reserve(items_.size());
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      out.push_back({it->second, it->first, items_.at(it->second).error});
    }
    // rbegin order is (count desc, key desc); flip ties to key asc.
    std::stable_sort(out.begin(), out.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.count != b.count ? a.count > b.count
                                                 : a.key < b.key;
                     });
    return out;
  }

  /// Ages the window: counts and errors >>= shift; entries decayed to
  /// zero are dropped, freeing slots for the next phase's hot keys.
  void Decay(uint32_t shift) {
    order_.clear();
    for (auto it = items_.begin(); it != items_.end();) {
      it->second.count >>= shift;
      it->second.error >>= shift;
      if (it->second.count == 0) {
        it = items_.erase(it);
      } else {
        order_.insert({it->second.count, it->first});
        ++it;
      }
    }
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  size_t ApproxBytes() const {
    constexpr size_t kTreeOverhead = 4 * sizeof(void*);
    return sizeof(*this) +
           items_.size() * (sizeof(uint64_t) + sizeof(Item) +
                            2 * sizeof(void*)) +
           items_.bucket_count() * sizeof(void*) +
           order_.size() * (sizeof(std::pair<uint64_t, uint64_t>) +
                            kTreeOverhead);
  }

 private:
  struct Item {
    uint64_t count = 0;
    uint64_t error = 0;
  };

  size_t capacity_;
  std::unordered_map<uint64_t, Item> items_;
  /// (count, key) ordered ascending: begin() is the eviction victim.
  std::set<std::pair<uint64_t, uint64_t>> order_;
};

}  // namespace soap::sketch

#endif  // SOAP_SKETCH_SPACE_SAVING_H_
