// SOAP public API — the one header downstream code includes.
//
// Everything a user program needs to build, run, extend and inspect a SOAP
// experiment is re-exported here; the per-layer headers underneath remain
// include-able individually but are implementation detail as far as the
// stability contract goes. Stable entry points, by task:
//
//   Run an experiment
//     engine::ExperimentConfig   grouped configuration (WorkloadOptions,
//                                DeploymentOptions, FaultOptions,
//                                PlannerOptions, ReplicaOptions,
//                                ObsOptions) with Validate()
//     engine::Experiment         builds the whole stack, Run() to completion
//     engine::ExperimentResult   the per-interval series + counters +
//                                Summary()
//     engine::ParallelRunner     fan independent configs across threads
//                                with deterministic, input-ordered results
//
//   Build a CLI frontend
//     Flags                      --key=value parsing (src/common/flags.h)
//     engine::FlagTable          declarative flag table shared by soap_run
//                                and the benches: generated --help,
//                                near-miss unknown-flag errors,
//                                ExperimentFlagTable() bindings
//
//   Describe a placement change
//     repartition::PlacementAction  the single public planner-op type: a
//                                kind (kMigrate, kReplicaCreate,
//                                kReplicaDrop, kLeaderShift), the key, the
//                                source/target partitions, and a uniform
//                                PlacementCost breakdown (move_bytes,
//                                tpc_savings, freshness_penalty). The old
//                                RepartitionOp/RepartitionOpType spellings
//                                and kObjectsMigration-style enumerators
//                                are deprecated aliases of this type.
//     lion::Provisioner          adaptive replica budget + predictive
//                                admission backing --lion
//
//   Assemble the stack manually (what Experiment::Run does internally)
//     sim::Simulator             deterministic discrete-event clock
//     cluster::Cluster           nodes + storage + network + 2PC + routing
//     cluster::TransactionManager transaction execution, replica-aware
//                                when EnableReplicaAwareness() is called
//     core::Repartitioner        plan deployment with the five strategies
//     core::Scheduler            base class for user-defined strategies
//     planner::Planner           online co-access-graph replanning
//     replica::ReplicaManager    primary-copy failover and catch-up
//     fault::FaultInjector       crash/network fault injection from a spec
//
//   Observe a run
//     obs::MetricsRegistry       counters/gauges/histograms, Prometheus and
//                                JSONL export
//     obs::TxnTracer             per-transaction phase tracing, Chrome JSON
//
// The namespaces mirror the directory layout (soap::engine, soap::core,
// soap::cluster, ...); `using namespace soap;` in a program is enough to
// reach all of them qualified by layer.

#ifndef SOAP_SOAP_API_H_
#define SOAP_SOAP_API_H_

#include "src/common/flags.h"             // IWYU pragma: export
#include "src/common/histogram.h"         // IWYU pragma: export
#include "src/common/logging.h"           // IWYU pragma: export
#include "src/common/series.h"            // IWYU pragma: export
#include "src/core/soap.h"                // IWYU pragma: export
#include "src/engine/experiment.h"        // IWYU pragma: export
#include "src/engine/flag_table.h"        // IWYU pragma: export
#include "src/engine/parallel_runner.h"   // IWYU pragma: export
#include "src/fault/fault_injector.h"     // IWYU pragma: export
#include "src/lion/provisioner.h"         // IWYU pragma: export
#include "src/planner/planner.h"          // IWYU pragma: export
#include "src/repartition/operation.h"    // IWYU pragma: export
#include "src/repartition/replication.h"  // IWYU pragma: export
#include "src/replica/replica_manager.h"  // IWYU pragma: export

#endif  // SOAP_SOAP_API_H_
