#include "src/storage/storage_engine.h"

#include <string>

namespace soap::storage {

Status StorageEngine::ApplyInsert(uint64_t txn_id, const Tuple& tuple) {
  SOAP_RETURN_NOT_OK(table_.Insert(tuple));
  wal_.AppendInsert(txn_id, tuple);
  if (observer_ != nullptr) {
    observer_->OnApplyInsert(partition_id_, txn_id, tuple);
  }
  return Status::OK();
}

Status StorageEngine::ApplyUpdate(uint64_t txn_id, TupleKey key,
                                  int64_t content, SimTime commit_ts) {
  SOAP_RETURN_NOT_OK(table_.Update(key, content));
  Result<Tuple> updated = table_.Get(key);
  wal_.AppendUpdate(txn_id, *updated, commit_ts);
  if (observer_ != nullptr) {
    observer_->OnApplyUpdate(partition_id_, txn_id, *updated);
  }
  return Status::OK();
}

Status StorageEngine::ApplyErase(uint64_t txn_id, TupleKey key) {
  SOAP_RETURN_NOT_OK(table_.Erase(key));
  wal_.AppendErase(txn_id, key);
  if (observer_ != nullptr) {
    observer_->OnApplyErase(partition_id_, txn_id, key);
  }
  return Status::OK();
}

Status StorageEngine::RecoverFromWal() {
  // The WAL only holds records appended since the last checkpoint
  // (Checkpoint() truncates it), so replay must start from the
  // checkpoint image — an empty table would silently lose everything
  // the truncated prefix covered.
  Table recovered = checkpoint_;
  SOAP_RETURN_NOT_OK(wal_.Replay(&recovered));
  table_ = std::move(recovered);
  return Status::OK();
}

void StorageEngine::Checkpoint() {
  checkpoint_ = table_;
  wal_.Truncate(0);
}

Status StorageEngine::VerifyRecoveryImage() const {
  Table recovered = checkpoint_;
  SOAP_RETURN_NOT_OK(wal_.Replay(&recovered));
  if (recovered.size() != table_.size()) {
    return Status::Corruption(
        "partition " + std::to_string(partition_id_) + ": recovery yields " +
        std::to_string(recovered.size()) + " tuples, live table has " +
        std::to_string(table_.size()));
  }
  Status mismatch = Status::OK();
  table_.ForEach([&](const Tuple& live) {
    if (!mismatch.ok()) return;
    Result<Tuple> replayed = recovered.Get(live.key);
    if (!replayed.ok() || replayed->content != live.content) {
      mismatch = Status::Corruption(
          "partition " + std::to_string(partition_id_) + " key " +
          std::to_string(live.key) + ": recovery image diverges from live " +
          "table (live content " + std::to_string(live.content) + ")");
    }
  });
  return mismatch;
}

Status StorageEngine::CrashAndRecover() {
  // Crash: the in-memory table is gone. Restart: reload the checkpoint
  // image and roll the WAL suffix forward over it.
  Table recovered = checkpoint_;
  SOAP_RETURN_NOT_OK(wal_.Replay(&recovered));
  table_ = std::move(recovered);
  return Status::OK();
}

}  // namespace soap::storage
