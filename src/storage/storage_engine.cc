#include "src/storage/storage_engine.h"

namespace soap::storage {

Status StorageEngine::ApplyInsert(uint64_t txn_id, const Tuple& tuple) {
  SOAP_RETURN_NOT_OK(table_.Insert(tuple));
  wal_.AppendInsert(txn_id, tuple);
  return Status::OK();
}

Status StorageEngine::ApplyUpdate(uint64_t txn_id, TupleKey key,
                                  int64_t content) {
  SOAP_RETURN_NOT_OK(table_.Update(key, content));
  Result<Tuple> updated = table_.Get(key);
  wal_.AppendUpdate(txn_id, *updated);
  return Status::OK();
}

Status StorageEngine::ApplyErase(uint64_t txn_id, TupleKey key) {
  SOAP_RETURN_NOT_OK(table_.Erase(key));
  wal_.AppendErase(txn_id, key);
  return Status::OK();
}

Status StorageEngine::RecoverFromWal() {
  // The WAL only holds records appended since the last checkpoint
  // (Checkpoint() truncates it), so replay must start from the
  // checkpoint image — an empty table would silently lose everything
  // the truncated prefix covered.
  Table recovered = checkpoint_;
  SOAP_RETURN_NOT_OK(wal_.Replay(&recovered));
  table_ = std::move(recovered);
  return Status::OK();
}

void StorageEngine::Checkpoint() {
  checkpoint_ = table_;
  wal_.Truncate(0);
}

Status StorageEngine::CrashAndRecover() {
  // Crash: the in-memory table is gone. Restart: reload the checkpoint
  // image and roll the WAL suffix forward over it.
  Table recovered = checkpoint_;
  SOAP_RETURN_NOT_OK(wal_.Replay(&recovered));
  table_ = std::move(recovered);
  return Status::OK();
}

}  // namespace soap::storage
