// Per-node storage engine: one partition's table plus its WAL, with the
// replica operations the repartitioner issues (new replica creation,
// replica deletion, and the two halves of objects migration — §2.2).

#ifndef SOAP_STORAGE_STORAGE_ENGINE_H_
#define SOAP_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/storage_observer.h"
#include "src/storage/table.h"
#include "src/storage/tuple.h"
#include "src/storage/wal.h"

namespace soap::storage {

/// Committed-state storage for one data partition. Uncommitted writes are
/// buffered by the transaction layer (src/txn) and applied here only at
/// commit, which is what makes read-committed reads trivially correct.
class StorageEngine {
 public:
  explicit StorageEngine(uint32_t partition_id)
      : partition_id_(partition_id) {}

  uint32_t partition_id() const { return partition_id_; }

  /// Reads the committed version of a tuple.
  /// Pre-sizes the table's hash index (see Table::Reserve).
  void Reserve(size_t expected_rows) { table_.Reserve(expected_rows); }

  Result<Tuple> Read(TupleKey key) const { return table_.Get(key); }

  bool Contains(TupleKey key) const { return table_.Contains(key); }
  size_t tuple_count() const { return table_.size(); }

  /// Commit-time apply: inserts a brand new tuple (bulk load or replica
  /// creation at a destination partition).
  Status ApplyInsert(uint64_t txn_id, const Tuple& tuple);

  /// Commit-time apply: updates an existing tuple's content. `commit_ts`
  /// (virtual time; 0 under 2PL) is recorded on the WAL record so MVCC
  /// recovery can rebuild version chains.
  Status ApplyUpdate(uint64_t txn_id, TupleKey key, int64_t content,
                     SimTime commit_ts = 0);

  /// Commit-time apply: deletes a tuple (replica deletion / migration
  /// source cleanup).
  Status ApplyErase(uint64_t txn_id, TupleKey key);

  /// Bulk load without logging (initial dataset population).
  void BulkLoad(const Tuple& tuple) { table_.Upsert(tuple); }

  /// Bulk removal without logging: drops a key from the load-time base
  /// (used when the initial placement moves a key off its arithmetic home
  /// before the run starts). Absent keys are ignored.
  void BulkEvict(TupleKey key) { (void)table_.Erase(key); }

  /// Declares this node's virtual seed base (see Table::SetLazyBase).
  void SetLazyBase(uint64_t num_keys, uint32_t num_partitions) {
    table_.SetLazyBase(num_keys, partition_id_, num_partitions);
  }

  const Table& table() const { return table_; }
  const Wal& wal() const { return wal_; }
  Wal& mutable_wal() { return wal_; }

  /// Rebuilds the table from the WAL (crash-recovery path; tests use it to
  /// prove replay equivalence).
  Status RecoverFromWal();

  /// Durably snapshots the current committed state and truncates the WAL:
  /// recovery becomes checkpoint + replay of the short log suffix. Also
  /// seals the un-logged bulk-load base, so call it once after loading.
  void Checkpoint();

  /// Simulates a crash (volatile table lost) followed by restart recovery
  /// from the last checkpoint plus the WAL suffix. Fails with Corruption
  /// if the log does not apply cleanly to the checkpoint.
  Status CrashAndRecover();

  /// Virtual size of the last checkpoint (tuples), for reports.
  size_t checkpoint_size() const { return checkpoint_.size(); }

  /// Side-effect-free recovery rehearsal: replays checkpoint + WAL into a
  /// scratch table and compares it to the live table. A mismatch means a
  /// restart right now would not reproduce the committed state (WAL replay
  /// is not idempotent over this history).
  Status VerifyRecoveryImage() const;

  /// Attaches (or with nullptr detaches) a commit-time mutation observer.
  /// The engine only pays the virtual calls while one is attached.
  void set_observer(StorageObserver* observer) { observer_ = observer; }

 private:
  uint32_t partition_id_;
  Table table_;
  Wal wal_;
  /// The durable snapshot (simulated disk image).
  Table checkpoint_;
  StorageObserver* observer_ = nullptr;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_STORAGE_ENGINE_H_
