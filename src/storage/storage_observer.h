// Commit-time mutation observer: a pure interface the consistency checker
// (src/check) attaches to every StorageEngine to record the exact apply
// stream each partition saw. Detached (the default) the engine skips the
// calls entirely, so runs without a checker stay byte-identical.

#ifndef SOAP_STORAGE_STORAGE_OBSERVER_H_
#define SOAP_STORAGE_STORAGE_OBSERVER_H_

#include <cstdint>

#include "src/storage/tuple.h"

namespace soap::storage {

/// Notified after each successful commit-time apply on a partition.
/// txn_id 0 marks system writes outside any transaction (replica
/// catch-up refreshes and drops).
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;

  virtual void OnApplyInsert(uint32_t partition, uint64_t txn_id,
                             const Tuple& tuple) = 0;
  virtual void OnApplyUpdate(uint32_t partition, uint64_t txn_id,
                             const Tuple& tuple) = 0;
  virtual void OnApplyErase(uint32_t partition, uint64_t txn_id,
                            TupleKey key) = 0;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_STORAGE_OBSERVER_H_
