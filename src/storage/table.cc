#include "src/storage/table.h"

#include <string>

namespace soap::storage {

void Table::SetLazyBase(uint64_t num_keys, uint32_t partition,
                        uint32_t num_partitions) {
  lazy_ = true;
  base_num_keys_ = num_keys;
  base_partition_ = partition;
  base_stride_ = num_partitions == 0 ? 1 : num_partitions;
  virtual_live_ =
      partition < num_keys
          ? (num_keys - partition + base_stride_ - 1) / base_stride_
          : 0;
  // Pre-existing rows and tombstones would double-count; the base must be
  // declared before any data lands.
  for (const auto& [key, tuple] : rows_) {
    if (InBase(key)) --virtual_live_;
  }
}

Status Table::Insert(const Tuple& tuple) {
  if (VirtualLive(tuple.key)) {
    return Status::AlreadyExistsTuple(tuple.key);
  }
  auto [it, inserted] = rows_.emplace(tuple.key, tuple);
  if (!inserted) {
    return Status::AlreadyExistsTuple(tuple.key);
  }
  if (lazy_ && InBase(tuple.key)) dead_.erase(tuple.key);
  return Status::OK();
}

void Table::Upsert(const Tuple& tuple) {
  if (VirtualLive(tuple.key)) --virtual_live_;
  if (lazy_ && InBase(tuple.key)) dead_.erase(tuple.key);
  rows_[tuple.key] = tuple;
}

Result<Tuple> Table::Get(TupleKey key) const {
  auto it = rows_.find(key);
  if (it != rows_.end()) {
    return it->second;
  }
  if (VirtualLive(key)) {
    return SynthesizeRow(key);
  }
  return Status::NotFoundTuple(key);
}

Status Table::Update(TupleKey key, int64_t content) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    if (!VirtualLive(key)) {
      return Status::NotFoundTuple(key);
    }
    // First write to a virtual base row: materialise, then update.
    --virtual_live_;
    it = rows_.emplace(key, SynthesizeRow(key)).first;
  }
  it->second.content = content;
  it->second.version++;
  return Status::OK();
}

Status Table::Erase(TupleKey key) {
  if (rows_.erase(key) > 0) {
    if (lazy_ && InBase(key)) dead_.insert(key);
    return Status::OK();
  }
  if (VirtualLive(key)) {
    --virtual_live_;
    dead_.insert(key);
    return Status::OK();
  }
  return Status::NotFoundTuple(key);
}

}  // namespace soap::storage
