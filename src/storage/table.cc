#include "src/storage/table.h"

#include <string>

namespace soap::storage {

Status Table::Insert(const Tuple& tuple) {
  auto [it, inserted] = rows_.emplace(tuple.key, tuple);
  if (!inserted) {
    return Status::AlreadyExistsTuple(tuple.key);
  }
  return Status::OK();
}

void Table::Upsert(const Tuple& tuple) { rows_[tuple.key] = tuple; }

Result<Tuple> Table::Get(TupleKey key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFoundTuple(key);
  }
  return it->second;
}

Status Table::Update(TupleKey key, int64_t content) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFoundTuple(key);
  }
  it->second.content = content;
  it->second.version++;
  return Status::OK();
}

Status Table::Erase(TupleKey key) {
  if (rows_.erase(key) == 0) {
    return Status::NotFoundTuple(key);
  }
  return Status::OK();
}

}  // namespace soap::storage
