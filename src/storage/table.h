// Hash-indexed in-memory table: the per-partition tuple store.

#ifndef SOAP_STORAGE_TABLE_H_
#define SOAP_STORAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/tuple.h"

namespace soap::storage {

/// An unordered collection of tuples keyed by TupleKey. This is the storage
/// behind one partition; the engine layers locking and logging on top, so
/// the table itself is a plain single-writer structure.
class Table {
 public:
  /// Pre-sizes the hash index for an expected row count, so bulk loads and
  /// steady-state stores never rehash mid-run.
  void Reserve(size_t expected_rows) { rows_.reserve(expected_rows); }

  /// Inserts a new tuple. Fails with AlreadyExists if the key is present.
  Status Insert(const Tuple& tuple);

  /// Inserts or overwrites.
  void Upsert(const Tuple& tuple);

  /// Reads a tuple by key.
  Result<Tuple> Get(TupleKey key) const;

  /// Updates the content of an existing tuple, bumping its version.
  /// Fails with NotFound if absent.
  Status Update(TupleKey key, int64_t content);

  /// Removes a tuple. Fails with NotFound if absent.
  Status Erase(TupleKey key);

  bool Contains(TupleKey key) const { return rows_.count(key) > 0; }
  size_t size() const { return rows_.size(); }

  /// Calls `fn(tuple)` for every row (iteration order unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, tuple] : rows_) fn(tuple);
  }

 private:
  std::unordered_map<TupleKey, Tuple> rows_;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_TABLE_H_
