// Hash-indexed in-memory table: the per-partition tuple store.

#ifndef SOAP_STORAGE_TABLE_H_
#define SOAP_STORAGE_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/tuple.h"

namespace soap::storage {

/// An unordered collection of tuples keyed by TupleKey. This is the storage
/// behind one partition; the engine layers locking and logging on top, so
/// the table itself is a plain single-writer structure.
///
/// Lazy base mode (production cardinality): instead of materialising one
/// row per seed tuple, SetLazyBase declares the arithmetic membership
/// {k < num_keys, k % num_partitions == partition} as virtually present
/// with the seed content (content == key, version 0). Rows materialise on
/// first write; evicted/erased base keys get a tombstone. Reads, size()
/// and ForEach behave exactly as if the base had been bulk-loaded.
class Table {
 public:
  /// Pre-sizes the hash index for an expected row count, so bulk loads and
  /// steady-state stores never rehash mid-run.
  void Reserve(size_t expected_rows) { rows_.reserve(expected_rows); }

  /// Declares the virtual seed base (call once, on an empty table). Keys
  /// congruent to `partition` mod `num_partitions` below `num_keys` become
  /// virtually present without allocating rows.
  void SetLazyBase(uint64_t num_keys, uint32_t partition,
                   uint32_t num_partitions);

  /// Inserts a new tuple. Fails with AlreadyExists if the key is present
  /// (materially or virtually).
  Status Insert(const Tuple& tuple);

  /// Inserts or overwrites.
  void Upsert(const Tuple& tuple);

  /// Reads a tuple by key.
  Result<Tuple> Get(TupleKey key) const;

  /// Updates the content of an existing tuple, bumping its version.
  /// Fails with NotFound if absent.
  Status Update(TupleKey key, int64_t content);

  /// Removes a tuple. Fails with NotFound if absent.
  Status Erase(TupleKey key);

  bool Contains(TupleKey key) const {
    return rows_.count(key) > 0 || VirtualLive(key);
  }
  size_t size() const { return rows_.size() + virtual_live_; }

  /// Materialised rows only (excludes the virtual base), for reports.
  size_t materialized_size() const { return rows_.size(); }

  /// Rough heap footprint of the materialised state, for scaling reports.
  size_t ApproxBytes() const {
    constexpr size_t kHashNodeOverhead = 2 * sizeof(void*);
    return sizeof(*this) +
           rows_.size() * (sizeof(TupleKey) + sizeof(Tuple) +
                           kHashNodeOverhead) +
           rows_.bucket_count() * sizeof(void*) +
           dead_.size() * (sizeof(TupleKey) + kHashNodeOverhead) +
           dead_.bucket_count() * sizeof(void*);
  }

  /// Calls `fn(tuple)` for every row (iteration order unspecified).
  /// Virtual base rows are synthesised on the fly.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, tuple] : rows_) fn(tuple);
    if (!lazy_ || virtual_live_ == 0) return;
    for (TupleKey key = base_partition_; key < base_num_keys_;
         key += base_stride_) {
      if (rows_.count(key) > 0 || dead_.count(key) > 0) continue;
      fn(SynthesizeRow(key));
    }
  }

 private:
  /// True while `key` belongs to the declared base membership (whether or
  /// not it has since materialised or died).
  bool InBase(TupleKey key) const {
    return lazy_ && key < base_num_keys_ &&
           key % base_stride_ == base_partition_;
  }
  /// True while `key` is present only virtually.
  bool VirtualLive(TupleKey key) const {
    return InBase(key) && rows_.count(key) == 0 && dead_.count(key) == 0;
  }
  static Tuple SynthesizeRow(TupleKey key) {
    Tuple t;
    t.key = key;
    t.content = static_cast<int64_t>(key);
    t.version = 0;
    return t;
  }

  std::unordered_map<TupleKey, Tuple> rows_;

  // Lazy-base state (inert unless SetLazyBase was called).
  bool lazy_ = false;
  uint64_t base_num_keys_ = 0;
  uint32_t base_partition_ = 0;
  uint32_t base_stride_ = 1;
  /// Count of base keys that are neither materialised nor dead.
  uint64_t virtual_live_ = 0;
  /// Base keys erased/evicted before ever materialising a row.
  std::unordered_set<TupleKey> dead_;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_TABLE_H_
