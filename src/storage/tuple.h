// Tuple representation matching the paper's dataset: a global unique key
// plus an integer content field (8 bytes of user data per tuple, §4.1).

#ifndef SOAP_STORAGE_TUPLE_H_
#define SOAP_STORAGE_TUPLE_H_

#include <cstdint>

namespace soap::storage {

/// Global unique tuple key.
using TupleKey = uint64_t;

/// A stored row. `version` counts committed writes, which lets tests verify
/// read-committed semantics and lost-update prevention under 2PL.
struct Tuple {
  TupleKey key = 0;
  int64_t content = 0;
  uint64_t version = 0;

  /// On-wire size used by the network model (key + content).
  static constexpr uint64_t kWireSize = 16;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_TUPLE_H_
