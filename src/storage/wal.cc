#include "src/storage/wal.h"

#include <fstream>

#include "src/storage/table.h"

namespace soap::storage {

void Wal::AppendInsert(uint64_t txn_id, const Tuple& tuple) {
  records_.push_back({WalRecord::Kind::kInsert, txn_id, tuple});
}

void Wal::AppendUpdate(uint64_t txn_id, const Tuple& tuple,
                       SimTime commit_ts) {
  records_.push_back({WalRecord::Kind::kUpdate, txn_id, tuple, commit_ts});
}

void Wal::AppendErase(uint64_t txn_id, TupleKey key) {
  Tuple t;
  t.key = key;
  records_.push_back({WalRecord::Kind::kErase, txn_id, t});
}

Status Wal::Replay(Table* table) const {
  for (const auto& rec : records_) {
    switch (rec.kind) {
      case WalRecord::Kind::kInsert:
      case WalRecord::Kind::kUpdate:
        table->Upsert(rec.tuple);
        break;
      case WalRecord::Kind::kErase: {
        Status s = table->Erase(rec.tuple.key);
        // An erase of a missing key means the log and checkpoint diverged.
        if (!s.ok()) {
          return Status::Corruption("replay erase of missing key " +
                                    std::to_string(rec.tuple.key));
        }
        break;
      }
    }
  }
  return Status::OK();
}

void Wal::Truncate(size_t keep_last) {
  if (records_.size() <= keep_last) return;
  records_.erase(records_.begin(),
                 records_.end() - static_cast<ptrdiff_t>(keep_last));
}

Status Wal::DumpToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path);
  for (const auto& rec : records_) {
    const char* kind = rec.kind == WalRecord::Kind::kInsert   ? "INSERT"
                       : rec.kind == WalRecord::Kind::kUpdate ? "UPDATE"
                                                              : "ERASE";
    out << kind << " txn=" << rec.txn_id << " key=" << rec.tuple.key
        << " content=" << rec.tuple.content << "\n";
  }
  return out.good() ? Status::OK() : Status::Internal("short write");
}

}  // namespace soap::storage
