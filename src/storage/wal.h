// Append-only write-ahead log per storage engine. Records committed
// mutations so a partition's table can be rebuilt by replay; the recovery
// test and the repartitioner's audit trail use it. Kept in memory (the
// simulator has no durable media) with an optional file dump.

#ifndef SOAP_STORAGE_WAL_H_
#define SOAP_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/storage/tuple.h"

namespace soap::storage {

class Table;

/// A single committed mutation.
struct WalRecord {
  enum class Kind : uint8_t { kInsert, kUpdate, kErase };
  Kind kind;
  uint64_t txn_id;
  Tuple tuple;  // for kErase only the key is meaningful
  /// Virtual-time commit timestamp of the mutation. 0 under 2PL (the seed
  /// format); MVCC stamps updates so replay can rebuild version chains.
  SimTime commit_ts = 0;
};

/// In-memory redo log. Not thread-safe (owned by one engine).
class Wal {
 public:
  void AppendInsert(uint64_t txn_id, const Tuple& tuple);
  void AppendUpdate(uint64_t txn_id, const Tuple& tuple,
                    SimTime commit_ts = 0);
  void AppendErase(uint64_t txn_id, TupleKey key);

  /// Applies all records in order to `table`, rolling the log forward.
  /// Callers must start from the checkpoint image the log was truncated
  /// against (StorageEngine::RecoverFromWal and CrashAndRecover do).
  Status Replay(Table* table) const;

  /// Drops records older than `keep_last` entries (log truncation after a
  /// checkpoint). Safe because recovery replays onto the checkpoint
  /// snapshot, never onto an empty table.
  void Truncate(size_t keep_last);

  size_t size() const { return records_.size(); }
  const std::vector<WalRecord>& records() const { return records_; }

  /// Writes a human-readable dump (one record per line) to `path`.
  Status DumpToFile(const std::string& path) const;

 private:
  std::vector<WalRecord> records_;
};

}  // namespace soap::storage

#endif  // SOAP_STORAGE_WAL_H_
