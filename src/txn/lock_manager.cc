#include "src/txn/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace soap::txn {

void LockManager::Reserve(size_t expected_keys, size_t expected_txns) {
  std::unique_lock<std::mutex> guard(mu_);
  table_.reserve(expected_keys);
  held_.reserve(expected_txns);
  waiting_on_.reserve(expected_txns);
}

void LockManager::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_acquires_ = nullptr;
    m_waits_ = nullptr;
    m_deadlocks_ = nullptr;
    m_upgrades_ = nullptr;
    m_cancelled_waits_ = nullptr;
    m_waiting_txns_ = nullptr;
    return;
  }
  m_acquires_ = registry->GetCounter("soap_lock_acquires_total");
  m_waits_ = registry->GetCounter("soap_lock_waits_total");
  m_deadlocks_ = registry->GetCounter("soap_lock_deadlocks_total");
  m_upgrades_ = registry->GetCounter("soap_lock_upgrades_total");
  m_cancelled_waits_ = registry->GetCounter("soap_lock_cancelled_waits_total");
  m_waiting_txns_ = registry->GetGauge("soap_lock_waiting_txns");
}

bool LockManager::Compatible(const Entry& entry, TxnId txn, LockMode mode) {
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;  // own locks never conflict (upgrade path)
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

AcquireOutcome LockManager::Acquire(TxnId txn, storage::TupleKey key,
                                    LockMode mode, GrantCallback on_grant) {
  std::unique_lock<std::mutex> guard(mu_);
  stats_.acquires++;
  if (m_acquires_) m_acquires_->Increment();
  assert(waiting_on_.find(txn) == waiting_on_.end() &&
         "a transaction may wait for at most one lock at a time");

  Entry& entry = table_[key];

  // Already holding?
  for (Holder& h : entry.holders) {
    if (h.txn != txn) continue;
    if (h.mode == LockMode::kExclusive || mode == LockMode::kShared) {
      stats_.immediate_grants++;
      return AcquireOutcome::kGranted;  // same or weaker mode
    }
    // Upgrade S -> X.
    if (Compatible(entry, txn, LockMode::kExclusive)) {
      h.mode = LockMode::kExclusive;
      stats_.upgrades++;
      stats_.immediate_grants++;
      if (m_upgrades_) m_upgrades_->Increment();
      return AcquireOutcome::kGranted;
    }
    if (WouldDeadlock(txn, key)) {
      stats_.deadlocks++;
      if (m_deadlocks_) m_deadlocks_->Increment();
      return AcquireOutcome::kDeadlock;
    }
    // Upgrades go to the front of the queue: the holder blocks everyone
    // behind it anyway, and front placement avoids upgrade starvation.
    entry.waiters.push_front(
        Waiter{txn, LockMode::kExclusive, /*is_upgrade=*/true,
               std::move(on_grant)});
    waiting_on_[txn] = key;
    stats_.waits++;
    if (m_waits_) m_waits_->Increment();
    if (m_waiting_txns_) m_waiting_txns_->Set(static_cast<double>(waiting_on_.size()));
    return AcquireOutcome::kQueued;
  }

  // Fresh request: grant only if compatible AND nobody is queued ahead
  // (strict FIFO prevents starvation of X requests behind S traffic).
  if (entry.waiters.empty() && Compatible(entry, txn, mode)) {
    entry.holders.push_back(Holder{txn, mode});
    RecordHold(txn, key, mode);
    stats_.immediate_grants++;
    return AcquireOutcome::kGranted;
  }

  if (WouldDeadlock(txn, key)) {
    stats_.deadlocks++;
    if (m_deadlocks_) m_deadlocks_->Increment();
    return AcquireOutcome::kDeadlock;
  }
  entry.waiters.push_back(
      Waiter{txn, mode, /*is_upgrade=*/false, std::move(on_grant)});
  waiting_on_[txn] = key;
  stats_.waits++;
  if (m_waits_) m_waits_->Increment();
  if (m_waiting_txns_) m_waiting_txns_->Set(static_cast<double>(waiting_on_.size()));
  return AcquireOutcome::kQueued;
}

void LockManager::GrantWaiters(storage::TupleKey key, Entry& entry,
                               std::vector<GrantCallback>* callbacks) {
  while (!entry.waiters.empty()) {
    Waiter& w = entry.waiters.front();
    if (!Compatible(entry, w.txn, w.mode)) break;
    if (w.is_upgrade) {
      bool found = false;
      for (Holder& h : entry.holders) {
        if (h.txn == w.txn) {
          h.mode = LockMode::kExclusive;
          found = true;
          break;
        }
      }
      assert(found && "upgrade waiter lost its shared hold");
      (void)found;
      stats_.upgrades++;
      if (m_upgrades_) m_upgrades_->Increment();
    } else {
      entry.holders.push_back(Holder{w.txn, w.mode});
      RecordHold(w.txn, key, w.mode);
    }
    waiting_on_.erase(w.txn);
    callbacks->push_back(std::move(w.on_grant));
    entry.waiters.pop_front();
  }
  if (m_waiting_txns_) m_waiting_txns_->Set(static_cast<double>(waiting_on_.size()));
}

void LockManager::Release(TxnId txn, storage::TupleKey key) {
  std::vector<GrantCallback> callbacks;
  {
    std::unique_lock<std::mutex> guard(mu_);
    auto it = table_.find(key);
    if (it == table_.end()) return;
    Entry& entry = it->second;
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [txn](const Holder& h) { return h.txn == txn; }),
        entry.holders.end());
    auto held_it = held_.find(txn);
    if (held_it != held_.end()) {
      auto& keys = held_it->second;
      keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
      if (keys.empty()) held_.erase(held_it);
    }
    GrantWaiters(key, entry, &callbacks);
    if (entry.holders.empty() && entry.waiters.empty()) table_.erase(it);
  }
  for (auto& cb : callbacks) cb();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::vector<GrantCallback> callbacks;
  {
    std::unique_lock<std::mutex> guard(mu_);
    // Drop a pending wait first.
    auto wait_it = waiting_on_.find(txn);
    if (wait_it != waiting_on_.end()) {
      const storage::TupleKey key = wait_it->second;
      Entry& entry = table_[key];
      entry.waiters.erase(
          std::remove_if(entry.waiters.begin(), entry.waiters.end(),
                         [txn](const Waiter& w) { return w.txn == txn; }),
          entry.waiters.end());
      waiting_on_.erase(wait_it);
      stats_.cancelled_waits++;
      if (m_cancelled_waits_) m_cancelled_waits_->Increment();
      GrantWaiters(key, entry, &callbacks);
      if (entry.holders.empty() && entry.waiters.empty()) table_.erase(key);
    }
    // Then every held lock.
    auto held_it = held_.find(txn);
    if (held_it != held_.end()) {
      std::vector<storage::TupleKey> keys = std::move(held_it->second);
      held_.erase(held_it);
      for (storage::TupleKey key : keys) {
        auto it = table_.find(key);
        if (it == table_.end()) continue;
        Entry& entry = it->second;
        entry.holders.erase(
            std::remove_if(entry.holders.begin(), entry.holders.end(),
                           [txn](const Holder& h) { return h.txn == txn; }),
            entry.holders.end());
        GrantWaiters(key, entry, &callbacks);
        if (entry.holders.empty() && entry.waiters.empty()) table_.erase(it);
      }
    }
  }
  for (auto& cb : callbacks) cb();
}

bool LockManager::CancelWait(TxnId txn) {
  std::vector<GrantCallback> callbacks;
  bool cancelled = false;
  {
    std::unique_lock<std::mutex> guard(mu_);
    auto wait_it = waiting_on_.find(txn);
    if (wait_it == waiting_on_.end()) return false;
    const storage::TupleKey key = wait_it->second;
    Entry& entry = table_[key];
    const size_t before = entry.waiters.size();
    entry.waiters.erase(
        std::remove_if(entry.waiters.begin(), entry.waiters.end(),
                       [txn](const Waiter& w) { return w.txn == txn; }),
        entry.waiters.end());
    cancelled = entry.waiters.size() < before;
    waiting_on_.erase(wait_it);
    stats_.cancelled_waits++;
    if (m_cancelled_waits_) m_cancelled_waits_->Increment();
    // Removing a blocking waiter at the front may unblock those behind it.
    GrantWaiters(key, entry, &callbacks);
    if (entry.holders.empty() && entry.waiters.empty()) table_.erase(key);
  }
  for (auto& cb : callbacks) cb();
  return cancelled;
}

bool LockManager::WouldDeadlock(TxnId txn, storage::TupleKey key) const {
  // DFS over the wait-for graph, starting from the holders of `key`:
  // an edge T -> H exists when T waits on a key H holds. If we can reach
  // `txn` we would close a cycle. The requester's own hold on `key` (the
  // upgrade case) is not an edge — a transaction never waits on itself.
  std::vector<TxnId> stack;
  std::unordered_map<TxnId, bool> visited;
  auto push_holders = [&](storage::TupleKey k, TxnId exclude) {
    auto it = table_.find(k);
    if (it == table_.end()) return;
    for (const Holder& h : it->second.holders) {
      if (h.txn == exclude) continue;
      if (!visited[h.txn]) {
        visited[h.txn] = true;
        stack.push_back(h.txn);
      }
    }
  };
  push_holders(key, txn);
  while (!stack.empty()) {
    TxnId current = stack.back();
    stack.pop_back();
    if (current == txn) return true;
    auto wait_it = waiting_on_.find(current);
    if (wait_it != waiting_on_.end()) {
      // `current`'s own hold on the key it waits for (its upgrade) is not
      // an edge either.
      push_holders(wait_it->second, current);
    }
  }
  return false;
}

void LockManager::RecordHold(TxnId txn, storage::TupleKey key,
                             LockMode mode) {
  (void)mode;
  held_[txn].push_back(key);
}

bool LockManager::Holds(TxnId txn, storage::TupleKey key,
                        LockMode mode) const {
  std::unique_lock<std::mutex> guard(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  for (const Holder& h : it->second.holders) {
    if (h.txn != txn) continue;
    return mode == LockMode::kShared || h.mode == LockMode::kExclusive;
  }
  return false;
}

size_t LockManager::WaiterCount(storage::TupleKey key) const {
  std::unique_lock<std::mutex> guard(mu_);
  auto it = table_.find(key);
  return it == table_.end() ? 0 : it->second.waiters.size();
}

size_t LockManager::LockedKeyCount() const {
  std::unique_lock<std::mutex> guard(mu_);
  size_t count = 0;
  for (const auto& [key, entry] : table_) {
    if (!entry.holders.empty()) ++count;
  }
  return count;
}

}  // namespace soap::txn
