// Two-phase-locking lock manager with shared/exclusive tuple locks, FIFO
// wait queues, lock upgrades, and immediate wait-for-graph deadlock
// detection. The executor adds a lock-wait timeout on top (via the
// simulator), mirroring how PostgreSQL pairs a local deadlock detector with
// lock_timeout for distributed cases.
//
// Tuple keys are globally unique and partitions hold disjoint key ranges,
// so one logical lock table is semantically identical to one table per
// node; a real deployment would shard this class by node (it is
// thread-safe), and the cluster layer records per-node contention stats.

#ifndef SOAP_TXN_LOCK_MANAGER_H_
#define SOAP_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/inline_fn.h"
#include "src/storage/tuple.h"
#include "src/txn/transaction.h"

namespace soap::txn {

enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Outcome of an Acquire call.
enum class AcquireOutcome : uint8_t {
  kGranted,   ///< lock held; proceed
  kQueued,    ///< blocked; the grant callback will fire later
  kDeadlock,  ///< waiting would close a cycle; caller must abort
};

/// Counters exposed for reports and tests.
struct LockStats {
  uint64_t acquires = 0;
  uint64_t immediate_grants = 0;
  uint64_t waits = 0;
  uint64_t deadlocks = 0;
  uint64_t upgrades = 0;
  uint64_t cancelled_waits = 0;
};

/// The lock table. Thread-safe; within the simulator it is driven from the
/// single event-loop thread.
class LockManager {
 public:
  /// Invoked when a queued request is granted. The callback runs inside
  /// the Release/CancelWait call that unblocked it; implementations should
  /// only schedule simulator work, not re-enter the lock manager
  /// synchronously with long critical sections. Move-only and inline up to
  /// sim::InlineFn::kInlineCapacity — the grant path allocates nothing.
  using GrantCallback = sim::InlineFn;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `key` in `mode` for `txn`. A transaction may wait for at most
  /// one lock at a time (the executor runs operations sequentially).
  /// Re-acquiring an already held lock in the same or weaker mode returns
  /// kGranted; holding S and requesting X performs an upgrade.
  AcquireOutcome Acquire(TxnId txn, storage::TupleKey key, LockMode mode,
                         GrantCallback on_grant);

  /// Releases one lock. Grants any newly compatible waiters.
  void Release(TxnId txn, storage::TupleKey key);

  /// Releases everything `txn` holds and cancels its pending wait, if any.
  /// Used on commit and abort.
  void ReleaseAll(TxnId txn);

  /// Abandons `txn`'s pending wait (lock-wait timeout). Returns false if
  /// the transaction was not waiting (e.g. the grant raced the timeout).
  bool CancelWait(TxnId txn);

  /// True if `txn` currently holds `key` in at least `mode`.
  bool Holds(TxnId txn, storage::TupleKey key, LockMode mode) const;

  /// Number of transactions waiting on `key`.
  size_t WaiterCount(storage::TupleKey key) const;
  /// Number of keys with at least one holder.
  size_t LockedKeyCount() const;

  const LockStats& stats() const { return stats_; }
  void ResetStats() { stats_ = LockStats{}; }

  /// Pre-sizes the hash tables from config cardinalities (expected hot-key
  /// working set and concurrent transactions) so the per-acquire paths do
  /// not pay incremental rehashes.
  void Reserve(size_t expected_keys, size_t expected_txns);

  /// Publishes lock-table counters into `registry` (nullptr detaches).
  /// The granted wait *durations* (soap_lock_wait_seconds) are recorded by
  /// the transaction manager, which owns the virtual clock.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  struct Holder {
    TxnId txn;
    LockMode mode;
  };
  struct Waiter {
    TxnId txn;
    LockMode mode;
    bool is_upgrade;
    GrantCallback on_grant;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
  };

  /// True if `mode` can be granted on `entry` right now for `txn`
  /// (ignoring locks txn itself holds, to allow upgrades).
  static bool Compatible(const Entry& entry, TxnId txn, LockMode mode);

  /// Grants every waiter at the front of `entry`'s queue that is now
  /// compatible. Collects callbacks; caller invokes them outside the
  /// per-entry mutation.
  void GrantWaiters(storage::TupleKey key, Entry& entry,
                    std::vector<GrantCallback>* callbacks);

  /// Would `txn` waiting on `key` create a wait-for cycle?
  bool WouldDeadlock(TxnId txn, storage::TupleKey key) const;

  void RecordHold(TxnId txn, storage::TupleKey key, LockMode mode);

  mutable std::mutex mu_;
  std::unordered_map<storage::TupleKey, Entry> table_;
  /// Keys each transaction holds (for ReleaseAll).
  std::unordered_map<TxnId, std::vector<storage::TupleKey>> held_;
  /// The single key each blocked transaction is waiting on.
  std::unordered_map<TxnId, storage::TupleKey> waiting_on_;
  LockStats stats_;
  // Observability hooks; nullptr when disabled (one-branch hot-path cost).
  obs::Counter* m_acquires_ = nullptr;
  obs::Counter* m_waits_ = nullptr;
  obs::Counter* m_deadlocks_ = nullptr;
  obs::Counter* m_upgrades_ = nullptr;
  obs::Counter* m_cancelled_waits_ = nullptr;
  obs::Gauge* m_waiting_txns_ = nullptr;
};

}  // namespace soap::txn

#endif  // SOAP_TXN_LOCK_MANAGER_H_
