// Transaction descriptor shared by the whole system: normal OLTP
// transactions (5 single-tuple queries each, §4.1), pure repartition
// transactions (§3.1), and normal transactions carrying piggybacked
// repartition operations (§3.4) are all instances of this one type.

#ifndef SOAP_TXN_TRANSACTION_H_
#define SOAP_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/storage/tuple.h"

namespace soap::txn {

/// Global unique transaction id, assigned by the transaction manager.
using TxnId = uint64_t;

/// Scheduling priority in the processing queue (§2.1). Higher runs first;
/// FIFO breaks ties. ApplyAll submits repartition txns at kHigh, AfterAll
/// at kLow, Feedback/Hybrid at kNormal.
enum class TxnPriority : uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

/// Life-cycle states.
enum class TxnState : uint8_t {
  kCreated,
  kQueued,
  kRunning,
  kPreparing,   // 2PC phase 1 in flight
  kCommitting,  // 2PC phase 2 / local commit in flight
  kCommitted,
  kAborted,
};

/// What a single operation does. The first two are normal queries; the
/// remaining four are the repartition primitives of §2.2 (objects migration
/// is a MigrateInsert at the destination plus a MigrateDelete at the
/// source, executed in that order inside one transaction).
enum class OpKind : uint8_t {
  kRead,           // read-committed read; lock-free (MVCC semantics)
  kWrite,          // X-lock, buffered write applied at commit
  kMigrateInsert,  // copy tuple into destination partition (X-lock)
  kMigrateDelete,  // drop tuple from source partition (X-lock)
  kReplicaCreate,  // add a replica at destination (X-lock)
  kReplicaDelete,  // remove one replica (X-lock)
  kLeaderShift,    // swap primary/replica roles between source and target
};

/// Returns true for operation kinds that move/copy/delete data between
/// partitions (i.e. repartition primitives).
constexpr bool IsRepartitionOp(OpKind kind) {
  return kind != OpKind::kRead && kind != OpKind::kWrite;
}

/// One operation of a transaction.
struct Operation {
  OpKind kind = OpKind::kRead;
  storage::TupleKey key = 0;
  /// Partition the data currently lives in (filled by the router for
  /// normal ops; set by the optimizer for repartition ops).
  uint32_t source_partition = 0;
  /// Destination partition for migration/replica ops; unused otherwise.
  uint32_t target_partition = 0;
  /// Value written by kWrite.
  int64_t write_value = 0;
  /// Id of the repartition operation this op realises (for RepRate
  /// accounting and piggyback bookkeeping); 0 for normal queries.
  uint64_t repartition_op_id = 0;
};

/// Why a transaction aborted (for failure-rate decomposition in reports).
enum class AbortReason : uint8_t {
  kNone = 0,
  kDeadlock,
  kLockTimeout,
  kQueueTimeout,  // exceeded the transaction deadline while queued
  kVoteAbort,     // a 2PC participant voted no
  kInjected,      // failure injection in tests
  kNodeCrash,     // a participating node crashed or dropped the data
  kShutdown,      // still queued when the experiment drained its queue
  kWriteConflict,  // MVCC first-updater-wins write-write conflict
};

/// Stable reason strings for reports and the audit log.
inline const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kDeadlock:
      return "deadlock";
    case AbortReason::kLockTimeout:
      return "lock_timeout";
    case AbortReason::kQueueTimeout:
      return "queue_timeout";
    case AbortReason::kVoteAbort:
      return "vote_abort";
    case AbortReason::kInjected:
      return "injected";
    case AbortReason::kNodeCrash:
      return "node_crash";
    case AbortReason::kShutdown:
      return "shutdown";
    case AbortReason::kWriteConflict:
      return "write_conflict";
  }
  return "?";
}

/// A transaction as seen by the scheduler and execution engine.
struct Transaction {
  TxnId id = 0;
  TxnPriority priority = TxnPriority::kNormal;
  TxnState state = TxnState::kCreated;

  /// True for a pure repartition transaction produced by Algorithm 1.
  bool is_repartition = false;

  /// Which distinct normal transaction template generated this instance
  /// (the paper's t_i); repartition txns record the template they benefit.
  uint32_t template_id = 0;

  /// Partner template whose keys a drifting (paired) workload mixed into
  /// this transaction's tail queries; kNoPartnerTemplate for the ordinary
  /// single-template case.
  static constexpr uint32_t kNoPartnerTemplate = UINT32_MAX;
  uint32_t partner_template = kNoPartnerTemplate;

  /// The transaction body.
  std::vector<Operation> ops;

  /// Repartition operations injected by the piggyback scheduler (§3.4).
  /// Executed after `ops`, inside the same commit scope.
  std::vector<Operation> piggyback_ops;

  /// Id of the repartition transaction whose ops were piggybacked here
  /// (0 = none). Used by Algorithm 2's success/failure bookkeeping.
  uint64_t piggyback_source = 0;

  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime finish_time = 0;
  AbortReason abort_reason = AbortReason::kNone;
  /// Number of times this transaction body was (re)submitted.
  uint32_t attempt = 0;

  bool committed() const { return state == TxnState::kCommitted; }
  bool aborted() const { return state == TxnState::kAborted; }
  bool has_piggyback() const { return !piggyback_ops.empty(); }

  /// Latency from first submission to final state change.
  Duration Latency() const { return finish_time - submit_time; }
};

/// Monotonic id generator (the TM's "global unique ID" from §2.1).
class TxnIdGenerator {
 public:
  TxnId Next() { return next_++; }

 private:
  TxnId next_ = 1;
};

/// Printable name of a priority (for reports/tests).
inline const char* PriorityName(TxnPriority p) {
  switch (p) {
    case TxnPriority::kLow:
      return "low";
    case TxnPriority::kNormal:
      return "normal";
    case TxnPriority::kHigh:
      return "high";
  }
  return "?";
}

}  // namespace soap::txn

#endif  // SOAP_TXN_TRANSACTION_H_
