#include "src/txn/two_phase_commit.h"

#include <cassert>

namespace soap::txn {

struct TwoPhaseCommitDriver::Instance {
  TxnId txn_id;
  sim::NodeId coordinator;
  std::vector<TpcParticipant> participants;
  std::function<void(bool)> done;
  size_t votes_pending = 0;
  size_t acks_pending = 0;
  bool vote_abort = false;
  bool phase2_started = false;
  bool one_phase = false;
  bool completed = false;
  bool decision = false;  ///< valid once phase2_started
  SimTime prepare_start = 0;  ///< coordinator-side round timestamps
  SimTime phase2_start = 0;
  // Fault handling: per-participant dedup (resends and duplicated
  // messages may produce repeat votes/acks) plus the retry timer.
  std::vector<char> voted;
  std::vector<char> acked;
  uint32_t resends = 0;
  sim::EventId timer = sim::kInvalidEventId;
};

void TwoPhaseCommitDriver::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_protocols_ = nullptr;
    m_messages_ = nullptr;
    m_vote_aborts_ = nullptr;
    m_resends_ = nullptr;
    m_prepare_timeouts_ = nullptr;
    m_prepare_seconds_ = nullptr;
    m_commit_seconds_ = nullptr;
    return;
  }
  m_protocols_ = registry->GetCounter("soap_2pc_protocols_total");
  m_messages_ = registry->GetCounter("soap_2pc_messages_total");
  m_vote_aborts_ = registry->GetCounter("soap_2pc_vote_aborts_total");
  m_resends_ = registry->GetCounter("soap_2pc_resends_total");
  m_prepare_timeouts_ =
      registry->GetCounter("soap_2pc_prepare_timeouts_total");
  m_prepare_seconds_ = registry->GetHistogram("soap_2pc_prepare_seconds");
  m_commit_seconds_ = registry->GetHistogram("soap_2pc_commit_seconds");
}

void TwoPhaseCommitDriver::EnableFaultHandling(const TpcFaultConfig& config) {
  fault_ = config;
  fault_.enabled = true;
  fault_rng_ = Rng(config.seed);
}

void TwoPhaseCommitDriver::Run(TxnId txn_id, sim::NodeId coordinator,
                               std::vector<TpcParticipant> participants,
                               std::function<void(bool)> done) {
  assert(!participants.empty());
  stats_.protocols_run++;
  if (m_protocols_) m_protocols_->Increment();

  // Single local participant: one-phase commit, no messages.
  if (participants.size() == 1 && participants[0].node == coordinator) {
    auto inst = std::make_shared<Instance>();
    inst->txn_id = txn_id;
    inst->coordinator = coordinator;
    inst->one_phase = true;
    inst->done = std::move(done);
    inst->phase2_start = sim_->Now();
    if (fault_.enabled) live_[txn_id] = inst;
    if (tracer_ != nullptr && tracer_->Sampled(txn_id)) {
      tracer_->Begin(txn_id, obs::SpanKind::kCommit, inst->phase2_start);
    }
    auto& p = participants[0];
    auto commit = p.commit;
    commit([this, inst]() { Finalize(inst, true); });
    return;
  }

  auto inst = std::make_shared<Instance>();
  inst->txn_id = txn_id;
  inst->coordinator = coordinator;
  inst->participants = std::move(participants);
  inst->done = std::move(done);
  inst->votes_pending = inst->participants.size();
  inst->prepare_start = sim_->Now();
  if (fault_.enabled) {
    inst->voted.assign(inst->participants.size(), 0);
    inst->acked.assign(inst->participants.size(), 0);
    live_[txn_id] = inst;
    ArmPrepareTimer(inst);
  }
  if (tracer_ != nullptr && tracer_->Sampled(txn_id)) {
    tracer_->Begin(txn_id, obs::SpanKind::kPrepare, inst->prepare_start);
  }
  SendPrepare(inst, /*resend=*/false);
}

void TwoPhaseCommitDriver::SendPrepare(std::shared_ptr<Instance> inst,
                                       bool resend) {
  for (size_t i = 0; i < inst->participants.size(); ++i) {
    if (resend && inst->voted[i]) continue;
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    if (m_messages_) m_messages_->Increment();
    network_->Send(inst->coordinator, node, kControlBytes,
                   [this, inst, i]() {
      // PREPARE delivered: run phase-1 work, then send the vote back.
      if (inst->completed || inst->phase2_started) return;
      TpcParticipant& p = inst->participants[i];
      p.prepare([this, inst, i](bool vote) {
        const sim::NodeId node = inst->participants[i].node;
        stats_.messages++;
        if (m_messages_) m_messages_->Increment();
        network_->Send(node, inst->coordinator, kControlBytes,
                       [this, inst, i, vote]() {
                         if (inst->completed || inst->phase2_started) return;
                         if (fault_.enabled) {
                           if (inst->voted[i]) return;
                           inst->voted[i] = 1;
                         }
                         if (!vote) inst->vote_abort = true;
                         assert(inst->votes_pending > 0);
                         if (--inst->votes_pending == 0) {
                           StartPhase2(inst, !inst->vote_abort);
                         }
                       });
      });
    });
  }
}

void TwoPhaseCommitDriver::StartPhase2(std::shared_ptr<Instance> inst,
                                       bool commit) {
  assert(!inst->phase2_started);
  inst->phase2_started = true;
  inst->decision = commit;
  inst->acks_pending = inst->participants.size();
  inst->phase2_start = sim_->Now();
  if (m_prepare_seconds_) {
    m_prepare_seconds_->Record(inst->phase2_start - inst->prepare_start);
  }
  if (!commit && m_vote_aborts_) m_vote_aborts_->Increment();
  if (tracer_ != nullptr && tracer_->Sampled(inst->txn_id)) {
    tracer_->End(inst->txn_id, obs::SpanKind::kPrepare, inst->phase2_start);
    tracer_->Begin(inst->txn_id, obs::SpanKind::kCommit, inst->phase2_start);
  }
  if (fault_.enabled) {
    CancelTimer(inst);
    inst->resends = 0;
    ArmAckTimer(inst);
  }
  SendDecision(inst, /*resend=*/false);
}

void TwoPhaseCommitDriver::SendDecision(std::shared_ptr<Instance> inst,
                                        bool resend) {
  const bool commit = inst->decision;
  for (size_t i = 0; i < inst->participants.size(); ++i) {
    if (resend && inst->acked[i]) continue;
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    if (m_messages_) m_messages_->Increment();
    network_->Send(inst->coordinator, node, kControlBytes,
                   [this, inst, i, node, commit]() {
                     if (inst->completed) return;
                     TpcParticipant& p = inst->participants[i];
                     auto on_done = [this, inst, i, node, commit]() {
                       stats_.messages++;
                       if (m_messages_) m_messages_->Increment();
                       network_->Send(
                           node, inst->coordinator, kControlBytes,
                           [this, inst, i, commit]() {
                             if (inst->completed) return;
                             if (fault_.enabled) {
                               if (inst->acked[i]) return;
                               inst->acked[i] = 1;
                             }
                             assert(inst->acks_pending > 0);
                             if (--inst->acks_pending == 0) {
                               Finalize(inst, commit);
                             }
                           });
                     };
                     if (commit) {
                       p.commit(on_done);
                     } else {
                       p.abort(on_done);
                     }
                   });
  }
}

void TwoPhaseCommitDriver::Finalize(std::shared_ptr<Instance> inst,
                                    bool commit) {
  if (inst->completed) return;
  inst->completed = true;
  CancelTimer(inst);
  if (commit) {
    stats_.committed++;
  } else {
    stats_.aborted++;
  }
  if (inst->phase2_started || inst->one_phase) {
    if (m_commit_seconds_) {
      m_commit_seconds_->Record(sim_->Now() - inst->phase2_start);
    }
    if (tracer_ != nullptr && tracer_->Sampled(inst->txn_id)) {
      tracer_->End(inst->txn_id, obs::SpanKind::kCommit, sim_->Now());
    }
  } else {
    // Aborted before the decision (coordinator crash): close the prepare
    // round that never resolved.
    if (m_prepare_seconds_) {
      m_prepare_seconds_->Record(sim_->Now() - inst->prepare_start);
    }
    if (tracer_ != nullptr && tracer_->Sampled(inst->txn_id)) {
      tracer_->End(inst->txn_id, obs::SpanKind::kPrepare, sim_->Now());
    }
  }
  if (fault_.enabled) live_.erase(inst->txn_id);
  inst->done(commit);
}

void TwoPhaseCommitDriver::OnNodeCrash(sim::NodeId node) {
  if (!fault_.enabled) return;
  std::vector<std::shared_ptr<Instance>> victims;
  for (const auto& [txn_id, inst] : live_) {
    if (inst->completed) continue;
    if (inst->coordinator != node) continue;
    // A decided multi-participant instance keeps its outcome: the
    // decision is durable and the ack-retry path finishes it. Everything
    // undecided at the dead coordinator is presumed aborted, including a
    // one-phase commit whose apply job the crash vaporized.
    if (!inst->one_phase && inst->phase2_started) continue;
    victims.push_back(inst);
  }
  for (auto& inst : victims) {
    stats_.coordinator_crash_aborts++;
    Finalize(inst, false);
  }
}

Duration TwoPhaseCommitDriver::BackoffDelay(Duration base,
                                            uint32_t resends) {
  // The exponent saturates at the resend budget: retries past it (waiting
  // out a down coordinator) keep the capped cadence instead of growing
  // the delay beyond the run.
  if (resends > fault_.max_resends) resends = fault_.max_resends;
  double d = static_cast<double>(base);
  for (uint32_t i = 0; i < resends; ++i) d *= fault_.backoff;
  Duration delay = static_cast<Duration>(d);
  if (fault_.jitter > 0) {
    delay += static_cast<Duration>(
        fault_rng_.NextUint64(static_cast<uint64_t>(fault_.jitter) + 1));
  }
  return delay;
}

void TwoPhaseCommitDriver::ArmPrepareTimer(std::shared_ptr<Instance> inst) {
  inst->timer = sim_->After(
      BackoffDelay(fault_.prepare_timeout, inst->resends), [this, inst]() {
        if (inst->completed || inst->phase2_started) return;
        if (inst->resends < fault_.max_resends) {
          ++inst->resends;
          stats_.resends++;
          if (m_resends_) m_resends_->Increment();
          SendPrepare(inst, /*resend=*/true);
          ArmPrepareTimer(inst);
        } else {
          // Votes are still missing after every retry: presume abort and
          // tell the reachable participants to roll back.
          stats_.prepare_timeouts++;
          if (m_prepare_timeouts_) m_prepare_timeouts_->Increment();
          StartPhase2(inst, false);
        }
      });
}

void TwoPhaseCommitDriver::ArmAckTimer(std::shared_ptr<Instance> inst) {
  inst->timer = sim_->After(
      BackoffDelay(fault_.ack_timeout, inst->resends), [this, inst]() {
        if (inst->completed) return;
        if (inst->resends < fault_.max_resends) {
          ++inst->resends;
          stats_.resends++;
          if (m_resends_) m_resends_->Increment();
          SendDecision(inst, /*resend=*/true);
          ArmAckTimer(inst);
        } else if (DecisionStillRecoverable(inst)) {
          // Finalizing now would silently drop committed applies: either
          // the coordinator is down-but-returning (its resends vanish
          // until the restart) or a live participant never received the
          // decision (the network ate it). The decision is durable, so
          // keep re-sending at the capped cadence until delivery is
          // guaranteed one way or the other.
          ++inst->resends;
          stats_.resends++;
          if (m_resends_) m_resends_->Increment();
          SendDecision(inst, /*resend=*/true);
          ArmAckTimer(inst);
        } else {
          // The decision stands whether or not every ack arrived; missing
          // applies ride on messages parked for the down node.
          stats_.ack_giveups++;
          Finalize(inst, inst->decision);
        }
      });
}

bool TwoPhaseCommitDriver::DecisionStillRecoverable(
    const std::shared_ptr<Instance>& inst) const {
  if (!down_probe_) return false;
  if (down_probe_(inst->coordinator)) {
    // A down coordinator emits nothing — every "resend" so far was lost at
    // the source. Wait for its restart; a coordinator that never restarts
    // can recover nothing, so fall through to the giveup.
    return !(gone_probe_ && gone_probe_(inst->coordinator));
  }
  for (size_t i = 0; i < inst->participants.size(); ++i) {
    if (inst->acked[i]) continue;
    const sim::NodeId node = inst->participants[i].node;
    // A live unacked participant means the decision was lost in transit; a
    // down one will replay it from the parked-message queue at restart.
    if (!down_probe_(node)) return true;
  }
  return false;
}

void TwoPhaseCommitDriver::CancelTimer(std::shared_ptr<Instance> inst) {
  if (inst->timer != sim::kInvalidEventId) {
    sim_->Cancel(inst->timer);
    inst->timer = sim::kInvalidEventId;
  }
}

}  // namespace soap::txn
