#include "src/txn/two_phase_commit.h"

#include <cassert>

namespace soap::txn {

struct TwoPhaseCommitDriver::Instance {
  TxnId txn_id;
  sim::NodeId coordinator;
  std::vector<TpcParticipant> participants;
  std::function<void(bool)> done;
  size_t votes_pending = 0;
  size_t acks_pending = 0;
  bool vote_abort = false;
  bool phase2_started = false;
  SimTime prepare_start = 0;  ///< coordinator-side round timestamps
  SimTime phase2_start = 0;
};

void TwoPhaseCommitDriver::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    m_protocols_ = nullptr;
    m_messages_ = nullptr;
    m_vote_aborts_ = nullptr;
    m_prepare_seconds_ = nullptr;
    m_commit_seconds_ = nullptr;
    return;
  }
  m_protocols_ = registry->GetCounter("soap_2pc_protocols_total");
  m_messages_ = registry->GetCounter("soap_2pc_messages_total");
  m_vote_aborts_ = registry->GetCounter("soap_2pc_vote_aborts_total");
  m_prepare_seconds_ = registry->GetHistogram("soap_2pc_prepare_seconds");
  m_commit_seconds_ = registry->GetHistogram("soap_2pc_commit_seconds");
}

void TwoPhaseCommitDriver::Run(TxnId txn_id, sim::NodeId coordinator,
                               std::vector<TpcParticipant> participants,
                               std::function<void(bool)> done) {
  assert(!participants.empty());
  stats_.protocols_run++;
  if (m_protocols_) m_protocols_->Increment();

  // Single local participant: one-phase commit, no messages.
  if (participants.size() == 1 && participants[0].node == coordinator) {
    auto inst = std::make_shared<Instance>();
    inst->txn_id = txn_id;
    inst->done = std::move(done);
    inst->phase2_start = sim_->Now();
    if (tracer_ != nullptr && tracer_->Sampled(txn_id)) {
      tracer_->Begin(txn_id, obs::SpanKind::kCommit, inst->phase2_start);
    }
    auto& p = participants[0];
    auto commit = p.commit;
    commit([this, inst]() {
      stats_.committed++;
      if (m_commit_seconds_) {
        m_commit_seconds_->Record(sim_->Now() - inst->phase2_start);
      }
      if (tracer_ != nullptr && tracer_->Sampled(inst->txn_id)) {
        tracer_->End(inst->txn_id, obs::SpanKind::kCommit, sim_->Now());
      }
      inst->done(true);
    });
    return;
  }

  auto inst = std::make_shared<Instance>();
  inst->txn_id = txn_id;
  inst->coordinator = coordinator;
  inst->participants = std::move(participants);
  inst->done = std::move(done);
  inst->votes_pending = inst->participants.size();
  inst->prepare_start = sim_->Now();
  if (tracer_ != nullptr && tracer_->Sampled(txn_id)) {
    tracer_->Begin(txn_id, obs::SpanKind::kPrepare, inst->prepare_start);
  }

  for (size_t i = 0; i < inst->participants.size(); ++i) {
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    if (m_messages_) m_messages_->Increment();
    network_->Send(coordinator, node, kControlBytes, [this, inst, i]() {
      // PREPARE delivered: run phase-1 work, then send the vote back.
      TpcParticipant& p = inst->participants[i];
      p.prepare([this, inst, i](bool vote) {
        const sim::NodeId node = inst->participants[i].node;
        stats_.messages++;
        if (m_messages_) m_messages_->Increment();
        network_->Send(node, inst->coordinator, kControlBytes,
                       [this, inst, vote]() {
                         if (!vote) inst->vote_abort = true;
                         assert(inst->votes_pending > 0);
                         if (--inst->votes_pending == 0) {
                           StartPhase2(inst, !inst->vote_abort);
                         }
                       });
      });
    });
  }
}

void TwoPhaseCommitDriver::StartPhase2(std::shared_ptr<Instance> inst,
                                       bool commit) {
  assert(!inst->phase2_started);
  inst->phase2_started = true;
  inst->acks_pending = inst->participants.size();
  inst->phase2_start = sim_->Now();
  if (m_prepare_seconds_) {
    m_prepare_seconds_->Record(inst->phase2_start - inst->prepare_start);
  }
  if (!commit && m_vote_aborts_) m_vote_aborts_->Increment();
  if (tracer_ != nullptr && tracer_->Sampled(inst->txn_id)) {
    tracer_->End(inst->txn_id, obs::SpanKind::kPrepare, inst->phase2_start);
    tracer_->Begin(inst->txn_id, obs::SpanKind::kCommit, inst->phase2_start);
  }
  for (size_t i = 0; i < inst->participants.size(); ++i) {
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    if (m_messages_) m_messages_->Increment();
    network_->Send(inst->coordinator, node, kControlBytes,
                   [this, inst, i, node, commit]() {
                     TpcParticipant& p = inst->participants[i];
                     auto on_done = [this, inst, node, commit]() {
                       stats_.messages++;
                       if (m_messages_) m_messages_->Increment();
                       network_->Send(
                           node, inst->coordinator, kControlBytes,
                           [this, inst, commit]() {
                             assert(inst->acks_pending > 0);
                             if (--inst->acks_pending == 0) {
                               if (commit) {
                                 stats_.committed++;
                               } else {
                                 stats_.aborted++;
                               }
                               if (m_commit_seconds_) {
                                 m_commit_seconds_->Record(
                                     sim_->Now() - inst->phase2_start);
                               }
                               if (tracer_ != nullptr &&
                                   tracer_->Sampled(inst->txn_id)) {
                                 tracer_->End(inst->txn_id,
                                              obs::SpanKind::kCommit,
                                              sim_->Now());
                               }
                               inst->done(commit);
                             }
                           });
                     };
                     if (commit) {
                       p.commit(on_done);
                     } else {
                       p.abort(on_done);
                     }
                   });
  }
}

}  // namespace soap::txn
