#include "src/txn/two_phase_commit.h"

#include <cassert>

namespace soap::txn {

struct TwoPhaseCommitDriver::Instance {
  TxnId txn_id;
  sim::NodeId coordinator;
  std::vector<TpcParticipant> participants;
  std::function<void(bool)> done;
  size_t votes_pending = 0;
  size_t acks_pending = 0;
  bool vote_abort = false;
  bool phase2_started = false;
};

void TwoPhaseCommitDriver::Run(TxnId txn_id, sim::NodeId coordinator,
                               std::vector<TpcParticipant> participants,
                               std::function<void(bool)> done) {
  assert(!participants.empty());
  stats_.protocols_run++;

  // Single local participant: one-phase commit, no messages.
  if (participants.size() == 1 && participants[0].node == coordinator) {
    auto inst = std::make_shared<Instance>();
    inst->done = std::move(done);
    auto& p = participants[0];
    auto commit = p.commit;
    commit([this, inst]() {
      stats_.committed++;
      inst->done(true);
    });
    return;
  }

  auto inst = std::make_shared<Instance>();
  inst->txn_id = txn_id;
  inst->coordinator = coordinator;
  inst->participants = std::move(participants);
  inst->done = std::move(done);
  inst->votes_pending = inst->participants.size();

  for (size_t i = 0; i < inst->participants.size(); ++i) {
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    network_->Send(coordinator, node, kControlBytes, [this, inst, i]() {
      // PREPARE delivered: run phase-1 work, then send the vote back.
      TpcParticipant& p = inst->participants[i];
      p.prepare([this, inst, i](bool vote) {
        const sim::NodeId node = inst->participants[i].node;
        stats_.messages++;
        network_->Send(node, inst->coordinator, kControlBytes,
                       [this, inst, vote]() {
                         if (!vote) inst->vote_abort = true;
                         assert(inst->votes_pending > 0);
                         if (--inst->votes_pending == 0) {
                           StartPhase2(inst, !inst->vote_abort);
                         }
                       });
      });
    });
  }
}

void TwoPhaseCommitDriver::StartPhase2(std::shared_ptr<Instance> inst,
                                       bool commit) {
  assert(!inst->phase2_started);
  inst->phase2_started = true;
  inst->acks_pending = inst->participants.size();
  for (size_t i = 0; i < inst->participants.size(); ++i) {
    const sim::NodeId node = inst->participants[i].node;
    stats_.messages++;
    network_->Send(inst->coordinator, node, kControlBytes,
                   [this, inst, i, node, commit]() {
                     TpcParticipant& p = inst->participants[i];
                     auto on_done = [this, inst, node, commit]() {
                       stats_.messages++;
                       network_->Send(
                           node, inst->coordinator, kControlBytes,
                           [this, inst, commit]() {
                             assert(inst->acks_pending > 0);
                             if (--inst->acks_pending == 0) {
                               if (commit) {
                                 stats_.committed++;
                               } else {
                                 stats_.aborted++;
                               }
                               inst->done(commit);
                             }
                           });
                     };
                     if (commit) {
                       p.commit(on_done);
                     } else {
                       p.abort(on_done);
                     }
                   });
  }
}

}  // namespace soap::txn
