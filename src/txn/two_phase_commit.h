// Two-phase commit coordinator over the simulated network. The executor
// supplies per-participant hooks that consume node worker time (prepare
// work, commit apply, abort cleanup); this class runs the message protocol:
//
//   coordinator --PREPARE--> each participant --VOTE--> coordinator
//   coordinator --COMMIT/ABORT--> each participant --ACK--> coordinator
//
// matching the XA flow the paper's prototype drives through Bitronix.

#ifndef SOAP_TXN_TWO_PHASE_COMMIT_H_
#define SOAP_TXN_TWO_PHASE_COMMIT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/txn_tracer.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/txn/transaction.h"

namespace soap::txn {

/// One participant's hooks. Each hook receives a continuation it must call
/// exactly once when its (virtual-time) work finishes.
struct TpcParticipant {
  sim::NodeId node = 0;
  /// Performs phase-1 work, then calls `vote(true)` to vote commit or
  /// `vote(false)` to vote abort.
  std::function<void(std::function<void(bool)> vote)> prepare;
  /// Applies the transaction's effects, then calls `ack()`.
  std::function<void(std::function<void()> ack)> commit;
  /// Rolls back, then calls `ack()`.
  std::function<void(std::function<void()> ack)> abort;
};

/// Statistics for reports.
struct TpcStats {
  uint64_t protocols_run = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t messages = 0;
};

/// Runs 2PC instances. Stateless between instances apart from stats; each
/// Run allocates one in-flight protocol record.
class TwoPhaseCommitDriver {
 public:
  TwoPhaseCommitDriver(sim::Simulator* sim, sim::Network* network)
      : sim_(sim), network_(network) {}

  /// Message payload size used for control messages (prepare/vote/...).
  static constexpr uint64_t kControlBytes = 64;

  /// Executes the protocol for `txn_id` coordinated from `coordinator`.
  /// `done(true)` on commit, `done(false)` when any participant voted no.
  /// With a single participant collocated at the coordinator this
  /// degenerates to a one-phase commit (no network messages), matching the
  /// standard 2PC single-resource optimization.
  void Run(TxnId txn_id, sim::NodeId coordinator,
           std::vector<TpcParticipant> participants,
           std::function<void(bool committed)> done);

  const TpcStats& stats() const { return stats_; }

  /// Publishes protocol counters and per-round latency histograms
  /// (soap_2pc_prepare_seconds / soap_2pc_commit_seconds) into `registry`
  /// (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches a lifecycle tracer: sampled transactions get kPrepare /
  /// kCommit spans bracketing the protocol rounds (nullptr detaches).
  void set_tracer(obs::TxnTracer* tracer) { tracer_ = tracer; }

 private:
  struct Instance;
  void StartPhase2(std::shared_ptr<Instance> inst, bool commit);

  sim::Simulator* sim_;
  sim::Network* network_;
  TpcStats stats_;
  obs::TxnTracer* tracer_ = nullptr;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_protocols_ = nullptr;
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_vote_aborts_ = nullptr;
  obs::LatencyHistogram* m_prepare_seconds_ = nullptr;
  obs::LatencyHistogram* m_commit_seconds_ = nullptr;
};

}  // namespace soap::txn

#endif  // SOAP_TXN_TWO_PHASE_COMMIT_H_
