// Two-phase commit coordinator over the simulated network. The executor
// supplies per-participant hooks that consume node worker time (prepare
// work, commit apply, abort cleanup); this class runs the message protocol:
//
//   coordinator --PREPARE--> each participant --VOTE--> coordinator
//   coordinator --COMMIT/ABORT--> each participant --ACK--> coordinator
//
// matching the XA flow the paper's prototype drives through Bitronix.
//
// With fault handling enabled (EnableFaultHandling) the driver survives
// lost messages and dead nodes: a prepare round that stalls is retried
// with exponential backoff and finally resolved by presumed abort; a
// decision round is re-sent to unacknowledged participants and eventually
// finalized regardless (the decision is durable once made); a coordinator
// crash aborts its undecided instances. Votes, acks and participant
// applies are deduplicated so resends and duplicated messages are safe.
// None of this machinery schedules events or draws randomness unless
// enabled, keeping fault-free runs byte-identical.

#ifndef SOAP_TXN_TWO_PHASE_COMMIT_H_
#define SOAP_TXN_TWO_PHASE_COMMIT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/obs/metrics.h"
#include "src/obs/txn_tracer.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/txn/transaction.h"

namespace soap::txn {

/// One participant's hooks. Each hook receives a continuation it must call
/// exactly once when its (virtual-time) work finishes. Under fault
/// injection a hook may be re-invoked by a message resend; the driver
/// deduplicates the resulting votes/acks, and hook effects must be
/// idempotent (the transaction manager's are).
struct TpcParticipant {
  sim::NodeId node = 0;
  /// Performs phase-1 work, then calls `vote(true)` to vote commit or
  /// `vote(false)` to vote abort.
  std::function<void(std::function<void(bool)> vote)> prepare;
  /// Applies the transaction's effects, then calls `ack()`.
  std::function<void(std::function<void()> ack)> commit;
  /// Rolls back, then calls `ack()`.
  std::function<void(std::function<void()> ack)> abort;
};

/// Statistics for reports. Every protocol ends exactly once:
/// protocols_run == committed + aborted holds after the run drains.
struct TpcStats {
  uint64_t protocols_run = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t messages = 0;
  // Fault-handling outcomes (zero in fault-free runs).
  uint64_t resends = 0;
  uint64_t prepare_timeouts = 0;
  uint64_t ack_giveups = 0;
  uint64_t coordinator_crash_aborts = 0;
};

/// Timeout/retry policy; `enabled == false` (the default) turns the whole
/// fault path off.
struct TpcFaultConfig {
  bool enabled = false;
  Duration prepare_timeout = Seconds(3);
  Duration ack_timeout = Seconds(3);
  uint32_t max_resends = 3;
  double backoff = 2.0;
  Duration jitter = Millis(100);
  uint64_t seed = 0x5eed;
};

/// Runs 2PC instances. Stateless between instances apart from stats; each
/// Run allocates one in-flight protocol record.
class TwoPhaseCommitDriver {
 public:
  TwoPhaseCommitDriver(sim::Simulator* sim, sim::Network* network)
      : sim_(sim), network_(network) {}

  /// Message payload size used for control messages (prepare/vote/...).
  static constexpr uint64_t kControlBytes = 64;

  /// Executes the protocol for `txn_id` coordinated from `coordinator`.
  /// `done(true)` on commit, `done(false)` when any participant voted no.
  /// With a single participant collocated at the coordinator this
  /// degenerates to a one-phase commit (no network messages), matching the
  /// standard 2PC single-resource optimization.
  void Run(TxnId txn_id, sim::NodeId coordinator,
           std::vector<TpcParticipant> participants,
           std::function<void(bool committed)> done);

  /// Turns on timeout/retry handling for all subsequent instances.
  void EnableFaultHandling(const TpcFaultConfig& config);

  /// Reacts to a node crash: undecided instances coordinated at `node`
  /// (including one-phase commits running there) abort immediately —
  /// presumed abort, since the dead coordinator can no longer decide.
  /// Decided instances keep their outcome and finish via the ack-retry
  /// path. No-op unless fault handling is enabled.
  void OnNodeCrash(sim::NodeId node);

  /// Live (unfinished) protocol instances; 0 after a clean drain.
  size_t live_instances() const { return live_.size(); }

  const TpcStats& stats() const { return stats_; }

  /// Publishes protocol counters and per-round latency histograms
  /// (soap_2pc_prepare_seconds / soap_2pc_commit_seconds) into `registry`
  /// (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches a lifecycle tracer: sampled transactions get kPrepare /
  /// kCommit spans bracketing the protocol rounds (nullptr detaches).
  void set_tracer(obs::TxnTracer* tracer) { tracer_ = tracer; }

  /// Node-status probes consulted when the decision-retry budget runs out.
  /// `down` reports a currently crashed node (control messages parked for
  /// it redeliver at restart, so its applies are not lost); `gone` reports
  /// a node that will never restart. With the probes set, the driver keeps
  /// re-sending a decided outcome while it could still be lost — the
  /// coordinator is down-but-returning (its sends vanish meanwhile) or an
  /// unacked participant is live (the network ate the decision). Unset
  /// probes (the default) reproduce the unconditional giveup.
  void set_down_probe(std::function<bool(sim::NodeId)> probe) {
    down_probe_ = std::move(probe);
  }
  void set_gone_probe(std::function<bool(sim::NodeId)> probe) {
    gone_probe_ = std::move(probe);
  }

 private:
  struct Instance;
  void StartPhase2(std::shared_ptr<Instance> inst, bool commit);
  void SendPrepare(std::shared_ptr<Instance> inst, bool resend);
  void SendDecision(std::shared_ptr<Instance> inst, bool resend);
  /// Completes the instance exactly once: stats, metrics, tracer span,
  /// `done`. Safe to call from any path; later calls are ignored.
  void Finalize(std::shared_ptr<Instance> inst, bool commit);
  void ArmPrepareTimer(std::shared_ptr<Instance> inst);
  void ArmAckTimer(std::shared_ptr<Instance> inst);
  /// True when finalizing now could silently lose committed applies and
  /// retrying can still deliver them (see set_down_probe).
  bool DecisionStillRecoverable(const std::shared_ptr<Instance>& inst) const;
  void CancelTimer(std::shared_ptr<Instance> inst);
  Duration BackoffDelay(Duration base, uint32_t resends);

  sim::Simulator* sim_;
  sim::Network* network_;
  TpcStats stats_;
  TpcFaultConfig fault_;
  Rng fault_rng_{0x5eed};
  /// Unfinished instances, for OnNodeCrash and drain checks. Populated
  /// only while fault handling is enabled (ordered for determinism).
  std::map<TxnId, std::shared_ptr<Instance>> live_;
  obs::TxnTracer* tracer_ = nullptr;
  std::function<bool(sim::NodeId)> down_probe_;
  std::function<bool(sim::NodeId)> gone_probe_;
  // Observability hooks; nullptr when disabled.
  obs::Counter* m_protocols_ = nullptr;
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_vote_aborts_ = nullptr;
  obs::Counter* m_resends_ = nullptr;
  obs::Counter* m_prepare_timeouts_ = nullptr;
  obs::LatencyHistogram* m_prepare_seconds_ = nullptr;
  obs::LatencyHistogram* m_commit_seconds_ = nullptr;
};

}  // namespace soap::txn

#endif  // SOAP_TXN_TWO_PHASE_COMMIT_H_
